"""Documentation checks: internal links resolve, doctests pass.

Run from the repo root (CI's docs job does both)::

    python tools/check_docs.py            # link-check + doctests
    python tools/check_docs.py --links    # link-check only
    python tools/check_docs.py --doctests # doctests only

Link-check: every markdown link in ``docs/*.md``, ``README.md`` and
``EXPERIMENTS.md`` whose target is a relative path must resolve to a file
in the repository (anchors and external URLs are skipped), and every
``[[wiki-style]]`` reference must resolve to a doc file.  Required
headings: sections other parts of the repo point at (CI jobs, module
docstrings) must keep existing — see ``REQUIRED_HEADINGS``.  Module
docstrings: every public module under ``src/repro/`` must open with a
non-empty docstring (the architecture tour in docs/architecture.md
leans on them).  Doctests: ``doctest.testmod`` runs on every module
under ``src/`` whose source contains a ``>>>`` prompt, so examples in
docstrings cannot rot.
"""

from __future__ import annotations

import argparse
import ast
import doctest
import importlib
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Files whose internal references must resolve (the CI docs contract).
DOC_FILES = ("README.md", "EXPERIMENTS.md")
DOC_GLOBS = ("docs/*.md",)

#: ``[text](target)`` — excluding images' leading ``!`` is unnecessary,
#: image targets must resolve too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")

#: ``[[target]]`` — wiki-style references must resolve to a doc file
#: (``docs/<target>.md``, ``<target>.md`` or the literal path).
_WIKI_LINK = re.compile(r"\[\[([^\]\n]+)\]\]")

#: Doc sections that code elsewhere relies on (CI job descriptions,
#: module docstrings, README cross-references).  Heading matching is by
#: exact line prefix, so a renamed or deleted section fails the docs job
#: instead of silently orphaning its references.
REQUIRED_HEADINGS: dict[str, tuple[str, ...]] = {
    "docs/architecture.md": (
        "## The mesh: simulated chips, real numerics",
        "## Layouts and partitioning: the paper's Section 3",
        "## Capture: trace-once decode programs",
        "## Serving: one replica, two phases",
        "## Cluster: fleets, faults, admission",
        "## Autoscaling and disaggregation",
        "## The paged KV store: prefix sharing",
    ),
    "docs/cluster.md": (
        "## Replicas and health (`repro.cluster.replica`)",
        "## Admission control (`repro.cluster.admission`)",
        "## Dispatch, failover, drain, hedging "
        "(`repro.cluster.control_plane`)",
        "## Disaggregated prefill/decode pools (`repro.cluster.disagg`)",
        "## Chaos harness (`repro.cluster.chaos`)",
    ),
    "docs/fault_tolerance.md": (
        "## Crash recovery & the journal",
    ),
    "docs/kvstore.md": (
        "## Pages and the arena (`repro.kvstore.arena`)",
        "## The radix index (`repro.kvstore.radix`)",
        "## The store facade (`repro.kvstore.store`)",
        "## Cluster integration",
        "## The benchmark gate",
    ),
    "docs/mesh_backends.md": (
        "## Capture and replay: the step compiler",
        "### Bit-exactness contract",
        "### Invalidation rules",
        "## Capture v2: the program cache",
        "### Prefill programs",
        "### Fused decode windows",
        "### Parallel replica stepping",
    ),
    "docs/autoscaling.md": (
        "## The trace generator: load as pure data",
        "## The autoscaler policy",
        "## The brownout ladder",
        "### The disagg ladder: collapse-to-colocated",
        "### Recovery conditions",
        "## The autoscale benchmark",
    ),
}


def check_headings() -> list[str]:
    """All missing required headings, as ``file: heading`` strings."""
    errors = []
    for rel, headings in REQUIRED_HEADINGS.items():
        path = ROOT / rel
        if not path.exists():
            errors.append(f"{rel}: required doc file missing")
            continue
        lines = {line.rstrip() for line in path.read_text().splitlines()}
        for heading in headings:
            if heading not in lines:
                errors.append(f"{rel}: missing required heading "
                              f"{heading!r}")
    return errors


def doc_files() -> list[pathlib.Path]:
    files = [ROOT / name for name in DOC_FILES]
    for pattern in DOC_GLOBS:
        files.extend(sorted(ROOT.glob(pattern)))
    return [f for f in files if f.exists()]


def check_links() -> list[str]:
    """All broken internal references, as ``file: target`` strings."""
    errors = []
    for doc in doc_files():
        for match in _LINK.finditer(doc.read_text()):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#")[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{doc.relative_to(ROOT)}: broken link "
                              f"-> {target}")
    return errors


def check_wiki_links() -> list[str]:
    """All dangling ``[[...]]`` references, as ``file: target`` strings."""
    errors = []
    for doc in doc_files():
        for match in _WIKI_LINK.finditer(doc.read_text()):
            target = match.group(1).strip()
            candidates = (
                ROOT / "docs" / f"{target}.md",
                ROOT / f"{target}.md",
                doc.parent / target,
                ROOT / target,
            )
            if not any(c.exists() for c in candidates):
                errors.append(f"{doc.relative_to(ROOT)}: dangling wiki "
                              f"link -> [[{target}]]")
    return errors


def public_modules() -> list[pathlib.Path]:
    """Every public module file under ``src/repro/`` (``_private`` skipped,
    package ``__init__.py`` files included)."""
    modules = []
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        modules.append(path)
    return modules


def check_docstrings() -> list[str]:
    """Public ``src/repro/`` modules lacking a non-empty docstring."""
    errors = []
    for path in public_modules():
        doc = ast.get_docstring(ast.parse(path.read_text()))
        if not doc or not doc.strip():
            errors.append(f"{path.relative_to(ROOT)}: public module has "
                          f"no docstring")
    return errors


def doctest_modules() -> list[str]:
    """Dotted names of ``src/`` modules containing doctest prompts."""
    modules = []
    for path in sorted((ROOT / "src").rglob("*.py")):
        if ">>>" in path.read_text():
            rel = path.relative_to(ROOT / "src").with_suffix("")
            modules.append(".".join(rel.parts))
    return modules


def run_doctests() -> list[str]:
    """Doctest failures, as ``module: n failed`` strings."""
    sys.path.insert(0, str(ROOT / "src"))
    errors = []
    for name in doctest_modules():
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        if result.failed:
            errors.append(f"{name}: {result.failed} of "
                          f"{result.attempted} doctests failed")
        elif not result.attempted:
            errors.append(f"{name}: contains '>>>' but doctest collected "
                          f"no examples (malformed docstring?)")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--links", action="store_true",
                        help="only check markdown links")
    parser.add_argument("--doctests", action="store_true",
                        help="only run doctests")
    args = parser.parse_args(argv)
    do_links = args.links or not args.doctests
    do_doctests = args.doctests or not args.links

    errors = []
    if do_links:
        errors += check_links()
        errors += check_wiki_links()
        errors += check_headings()
        errors += check_docstrings()
        print(f"link-check: {len(doc_files())} files scanned, "
              f"{len(public_modules())} module docstrings checked")
    if do_doctests:
        errors += run_doctests()
        print(f"doctests: {len(doctest_modules())} modules run")
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
