"""Table 2: example PaLM 540B configurations (64 TPU v4 chips).

The four published operating points — low-latency prefill/decode (int8,
batch 1 / 64) and high-throughput prefill/decode (bf16, batch 512) — each
recomputed with the analytical model and compared against the paper's
measured latency and MFU.  This is the calibration anchor recorded in
EXPERIMENTS.md.
"""

from dataclasses import dataclass

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator

TORUS = Torus3D(4, 4, 4)


@dataclass(frozen=True)
class Scenario:
    name: str
    phase: str          # "prefill" (2048 tokens) or "decode" (64 tokens)
    batch: int
    plan: LayoutPlan
    weight_bytes: int
    paper_latency_s: float
    paper_mfu: float


SCENARIOS = [
    Scenario("low-latency prefill", "prefill", 1,
             LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD),
             1, 0.29, 0.43),
    Scenario("low-latency decode", "decode", 64,
             LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
             1, 1.82, 0.14),
    Scenario("high-throughput prefill", "prefill", 512,
             LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH),
             2, 85.2, 0.76),
    Scenario("high-throughput decode", "decode", 512,
             LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
             2, 6.0, 0.33),
]


def run_scenario(s: Scenario):
    est = InferenceEstimator(PALM_540B_PADDED, TPU_V4, TORUS,
                             weight_dtype_bytes=s.weight_bytes,
                             mfu_params=PALM_540B.n_params)
    if s.phase == "prefill":
        cost = est.prefill_cost(s.plan, s.batch, 2048)
        return cost.time_s, cost.mfu
    gen = est.generate_cost(s.plan, s.batch, 2048, 64)
    return gen.total_s, gen.per_step.mfu


def generate_table() -> str:
    lines = ["Table 2: PaLM 540B example configurations (64 chips)",
             f"{'scenario':26s} {'batch':>6s} {'ours (s)':>9s} "
             f"{'paper (s)':>10s} {'ours MFU':>9s} {'paper MFU':>10s}"]
    for s in SCENARIOS:
        time_s, mfu = run_scenario(s)
        lines.append(f"{s.name:26s} {s.batch:6d} {time_s:9.2f} "
                     f"{s.paper_latency_s:10.2f} {mfu:9.1%} "
                     f"{s.paper_mfu:10.1%}")
    return "\n".join(lines)


def test_table2(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("table2_palm540b", table)

    for s in SCENARIOS:
        time_s, mfu = run_scenario(s)
        # Every operating point within 1.5x of the published latency.
        assert time_s / s.paper_latency_s < 1.5
        assert s.paper_latency_s / time_s < 1.5, (
            f"{s.name}: {time_s:.2f}s vs paper {s.paper_latency_s}s")

    # The tightest anchors: decode int8 and high-throughput prefill match
    # within 10%.
    ll_decode, _ = run_scenario(SCENARIOS[1])
    assert abs(ll_decode - 1.82) / 1.82 < 0.1
    ht_prefill, ht_mfu = run_scenario(SCENARIOS[2])
    assert abs(ht_prefill - 85.2) / 85.2 < 0.1
    assert abs(ht_mfu - 0.76) < 0.08
