"""Eager vs captured-replay decode steps: the trace-once step compiler.

The decode step re-runs an identical partitioned op sequence every
iteration; :mod:`repro.mesh.capture` traces one eager step into a flat
program of whole-mesh kernels (constants folded, output buffers arena-
allocated) and replays it bit-identically without any of the per-step
layout/ShardSpec/group bookkeeping.  This benchmark times both modes on
the shared decode workload of :mod:`repro.mesh.bench` at the
latency-oriented decode batch (per-chip batch 1 on the 4x4x4 torus),
asserts replayed logits are bit-identical to eager on both backends at
every shape, and writes the machine-readable result to
``BENCH_step_capture.json`` at the repo root (consumed by
docs/mesh_backends.md and the README).
"""

import json
import pathlib

from repro.mesh.bench import (
    CAPTURE_BATCH,
    MESH_SHAPES,
    compare_capture,
    format_capture_table,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_step_capture.json"


def run_comparison() -> list[dict]:
    return compare_capture(MESH_SHAPES)


def test_step_capture_speedup(benchmark, save_result):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = format_capture_table(rows)
    save_result("step_capture", table)
    JSON_PATH.write_text(json.dumps({
        "workload": "decode step, 16-layer multiquery model, WG_XY + "
                    f"BATCH layout, batch {CAPTURE_BATCH} "
                    "(latency-oriented decode point); timed windows "
                    "reset the KV fill to a common base so eager and "
                    "replay pay identical numpy work",
        "rows": rows,
    }, indent=2) + "\n")
    print(f"[saved to {JSON_PATH}]")

    # Replay must be bit-identical to eager everywhere, on both backends.
    assert all(row["bit_identical"] for row in rows)
    by_key = {(row["mesh"], row["backend"]): row for row in rows}
    # The acceptance bar: tracing away the per-step bookkeeping at least
    # halves the decode step on the paper's 4x4x4 torus.
    assert by_key[("4x4x4", "stacked")]["speedup"] >= 2.0
    # Folding hoists the weight-gather collectives out of the step: most
    # of the captured collectives must be constant-folded under WG_XY.
    row = by_key[("4x4x4", "stacked")]
    assert row["collectives_folded"] > row["collectives_live"]
