"""Figure 3: FFN communication volume vs. batch size (in tokens).

Regenerates the paper's comparison at its exact parameters (X = Y = Z = 4,
d_model = 16384, d_ff = 65536): per-chip communication volume of the 2D
weight-stationary layout against the X / XY / XYZ weight-gathered layouts,
as batch-in-tokens sweeps 2^8 .. 2^22.

Checked shape: the winning layout switches from WS-2D to progressively
wider weight-gathered layouts as tokens grow, with the crossovers in the
order the paper draws.
"""

from repro.hardware import Torus3D
from repro.partitioning import FfnLayoutKind
from repro.partitioning.ffn_costs import ffn_volume

TORUS = Torus3D(4, 4, 4)
D_MODEL, D_FF = 16384, 65536
KINDS = [FfnLayoutKind.WS_2D, FfnLayoutKind.WG_X, FfnLayoutKind.WG_XY,
         FfnLayoutKind.WG_XYZ]
ACT_BYTES = 2


def generate_figure() -> str:
    lines = ["Figure 3: per-chip FFN comm volume (MB) vs batch tokens "
             f"(X=Y=Z=4, E={D_MODEL}, F={D_FF})",
             f"{'tokens':>10s}" + "".join(f"{k.value:>12s}"
                                          for k in KINDS) + "   winner"]
    for exp in range(8, 23):
        tokens = 2 ** exp
        volumes = {k: ffn_volume(k, TORUS, tokens, D_MODEL, D_FF)
                   * ACT_BYTES for k in KINDS}
        winner = min(volumes, key=volumes.get)
        lines.append(f"{tokens:>10,d}" + "".join(
            f"{volumes[k] / 1e6:12.1f}" for k in KINDS)
            + f"   {winner.value}")
    return "\n".join(lines)


def test_figure3_comm_volume(benchmark, save_result):
    table = benchmark.pedantic(generate_figure, rounds=1, iterations=1)
    save_result("figure3_comm_volume", table)

    def winner(tokens):
        return min(KINDS, key=lambda k: ffn_volume(k, TORUS, tokens,
                                                   D_MODEL, D_FF))

    # WS-2D wins at small token counts, WG-XYZ at very large ones, and
    # the crossover sequence is monotone in gather width (Figure 3).
    assert winner(2 ** 8) is FfnLayoutKind.WS_2D
    assert winner(2 ** 22) is FfnLayoutKind.WG_XYZ
    sequence = []
    for exp in range(8, 23):
        w = winner(2 ** exp)
        if not sequence or sequence[-1] is not w:
            sequence.append(w)
    assert sequence == [k for k in KINDS if k in sequence]
