"""Figure B.1: minimum prefill latency — cost vs. latency at batch 1.

Sweeps sequence length 32..1024 (and chip count) at batch 1 for the PaLM
family, tracing the Pareto frontier of chip-seconds-per-token against
prefill latency.  Shape: latency grows sublinearly with sequence length
at small lengths (fixed overheads and comm amortize) and cost per token
*falls* with sequence length.
"""

from repro.hardware import TPU_V4
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B, PALM_8B
from repro.perf import pareto_frontier, sweep_prefill

SEQ_LENGTHS = (32, 64, 128, 256, 512, 1024)
SERIES = [
    ("PaLM 8B", PALM_8B, None, (8, 16, 32)),
    ("PaLM 62B", PALM_62B, None, (16, 32, 64)),
    ("PaLM 540B", PALM_540B_PADDED, PALM_540B.n_params, (64, 128, 256)),
]


def generate_figure() -> str:
    lines = ["Figure B.1: batch-1 prefill cost vs latency over sequence "
             "length",
             f"{'series':12s} {'S':>6s} {'chips':>6s} {'ms':>9s} "
             f"{'chip-ms/token':>14s} {'MFU':>7s}"]
    for name, config, mfu_params, chip_counts in SERIES:
        points = []
        for seq in SEQ_LENGTHS:
            pts = sweep_prefill(config, TPU_V4, input_len=seq,
                                chip_counts=chip_counts, batches=(1,),
                                weight_dtype_bytes=1,
                                mfu_params=mfu_params)
            for p in pts:
                points.append((seq, p))
        frontier = pareto_frontier(
            [p for _, p in points])
        seq_of = {id(p): seq for seq, p in points}
        for p in frontier:
            lines.append(f"{name:12s} {seq_of[id(p)]:6d} {p.n_chips:6d} "
                         f"{p.latency_s * 1e3:9.1f} "
                         f"{p.cost_chip_seconds_per_token * 1e3:14.3f} "
                         f"{p.mfu:7.1%}")
    return "\n".join(lines)


def test_figureB1(benchmark, save_result):
    table = benchmark.pedantic(generate_figure, rounds=1, iterations=1)
    save_result("figureB1_prefill_latency", table)

    # On 64 chips, 540B: latency grows sublinearly and cost/token falls
    # as the sequence length grows.
    latencies, costs = [], []
    for seq in SEQ_LENGTHS:
        p = sweep_prefill(PALM_540B_PADDED, TPU_V4, input_len=seq,
                          chip_counts=(64,), batches=(1,),
                          weight_dtype_bytes=1,
                          mfu_params=PALM_540B.n_params)[0]
        latencies.append(p.latency_s)
        costs.append(p.cost_chip_seconds_per_token)
    assert latencies == sorted(latencies)
    assert latencies[-1] / latencies[0] < 1024 / 32  # sublinear
    assert costs == sorted(costs, reverse=True)
