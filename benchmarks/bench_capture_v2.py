"""Capture v2: fused multi-step decode, prefill programs, cache hit rate.

Three serving hot paths ride the program cache beyond the single decode
step that ``bench_step_capture.py`` times:

* **Fused decode** — ``capture_fused_decode`` folds a window of decode
  steps (greedy feedback included) into one program; replaying the
  window in one call amortizes per-step dispatch and unlocks the
  whole-window tape optimizer.  Compared against stepping the v1
  single-step replay program through the same window from the same KV
  base, so the numpy work per position is identical.
* **Prefill programs** — ``capture_prefill_chunk`` traces one chunk of
  ``chunked_prefill`` and replays later same-length chunks; eager and
  replay append the same positions from the same cache base.
* **Program-cache hit rate** — a shrinking continuous batch decoded via
  ``StepCompiler.decode_step`` with batch bucketing; the bucketed
  signature keeps shrinking batches on one warm program.

All replays must be bit-identical to eager on both backends at every
shape; results land in ``BENCH_capture_v2.json`` at the repo root
(consumed by docs/mesh_backends.md and the README).
"""

import json
import pathlib

from repro.mesh.bench import (
    CAPTURE_BATCH,
    CAPTURE_V2_CHUNK,
    CAPTURE_V2_SHAPES,
    CAPTURE_V2_WINDOW,
    compare_capture_v2,
    format_capture_v2_table,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_capture_v2.json"


def run_comparison() -> dict:
    return compare_capture_v2(CAPTURE_V2_SHAPES)


def test_capture_v2(benchmark, save_result):
    sections = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = format_capture_v2_table(sections)
    save_result("capture_v2", table)
    JSON_PATH.write_text(json.dumps({
        "workload": "16-layer multiquery model, WG_XY + BATCH layout, "
                    f"batch {CAPTURE_BATCH}; fused decode window "
                    f"{CAPTURE_V2_WINDOW} vs the same window of v1 "
                    "single-step replays, prefill chunk length "
                    f"{CAPTURE_V2_CHUNK} replayed vs eager from the "
                    "same KV base, and the StepCompiler hit rate on a "
                    "shrinking continuous batch; timed windows reset "
                    "the KV fill to a common base and each mode is "
                    "timed in consecutive blocks (its serving-loop "
                    "steady state)",
        "fused": sections["fused"],
        "prefill": sections["prefill"],
        "hit_rate": sections["hit_rate"],
    }, indent=2) + "\n")
    print(f"[saved to {JSON_PATH}]")

    # Every replay mode must be bit-identical to eager on both backends.
    assert all(row["bit_identical"]
               for row in sections["fused"] + sections["prefill"])
    fused = {(r["mesh"], r["backend"]): r for r in sections["fused"]}
    prefill = {(r["mesh"], r["backend"]): r for r in sections["prefill"]}
    # Acceptance bars on the paper's 4x4x4 torus (stacked backend): the
    # fused window beats stepping the v1 replay program, and prefill
    # replay beats eager chunked prefill, both by >= 1.5x.
    assert fused[("4x4x4", "stacked")]["speedup"] >= 1.5
    assert prefill[("4x4x4", "stacked")]["speedup"] >= 1.5
    # Shape-bucketed signatures keep the shrinking batch on warm
    # programs: >= 80% hit rate everywhere.
    assert all(row["hit_rate"] >= 0.8 for row in sections["hit_rate"])
