"""Appendix A.1 validation + virtual-mesh collective micro-benchmarks.

Regenerates the collective cost table (time vs. group size at fixed
payload, showing the (K-1)/K factor approach 1) and times the functional
collectives on the virtual mesh — the substrate every equivalence test
runs on, so its throughput bounds the whole test suite.
"""

import numpy as np

from repro.collectives import (
    all_gather_time,
    all_reduce_time,
    all_to_all_time,
    reduce_scatter_time,
)
from repro.hardware import TPU_V4
from repro.mesh import (
    ShardedTensor,
    VirtualMesh,
    all_gather,
    all_to_all,
    reduce_scatter,
)


def generate_table() -> str:
    payload = 64 * 1024 * 1024  # 64 MiB per chip
    bw = TPU_V4.interconnect_bandwidth
    lines = ["Appendix A.1: collective times, 64 MiB/chip at 270 GB/s",
             f"{'K':>5s} {'all-gather':>12s} {'reduce-scat':>12s} "
             f"{'all-reduce':>12s} {'all-to-all':>12s} {'(K-1)/K':>9s}"]
    for k in (2, 4, 8, 16, 64, 256):
        lines.append(
            f"{k:>5d} "
            f"{all_gather_time(payload, k, bw) * 1e3:11.2f}m "
            f"{reduce_scatter_time(payload, k, bw) * 1e3:11.2f}m "
            f"{all_reduce_time(payload, k, bw) * 1e3:11.2f}m "
            f"{all_to_all_time(payload, k, bw) * 1e3:11.2f}m "
            f"{(k - 1) / k:9.3f}")
    return "\n".join(lines)


def test_cost_table(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("collective_costs", table)
    bw = TPU_V4.interconnect_bandwidth
    # All-reduce = reduce-scatter + all-gather, at any K.
    for k in (2, 16, 256):
        assert all_reduce_time(1e8, k, bw) == (
            all_gather_time(1e8, k, bw) + reduce_scatter_time(1e8, k, bw))


def _mesh_tensor():
    mesh = VirtualMesh((2, 2, 2))
    x = np.random.default_rng(0).normal(size=(32, 256))
    return mesh, ShardedTensor.from_global(mesh, x, "BE_xyz")


def test_virtual_mesh_all_gather(benchmark):
    mesh, t = _mesh_tensor()
    out = benchmark(lambda: all_gather(t, ("x", "y", "z"), "E"))
    assert out.spec.axes_for("E") == ()


def test_virtual_mesh_reduce_scatter(benchmark):
    mesh, _ = _mesh_tensor()
    x = np.random.default_rng(0).normal(size=(32, 256))
    from repro.sharding import parse

    spec = parse("BE").with_partial_sum(("x", "y", "z"))
    shards = mesh.map_devices(lambda c: x / 8)
    t = ShardedTensor(mesh, spec, x.shape, shards)
    out = benchmark(lambda: reduce_scatter(t, ("x", "y", "z"), "E"))
    assert out.spec.partial_sum == ()


def test_virtual_mesh_all_to_all(benchmark):
    mesh = VirtualMesh((2, 2, 2))
    x = np.random.default_rng(0).normal(size=(8, 4, 8, 16))
    t = ShardedTensor.from_global(mesh, x, "BLH_xyzQ")
    out = benchmark(lambda: all_to_all(t, ("x", "y", "z"), "H", "B"))
    assert out.spec.axes_for("B") == ("x", "y", "z")
