"""Serving-layer extension benches: packing and continuous batching.

Two efficiency mechanisms adjacent to the paper's batching story (Section
4.4 and the EffectiveTransformer reference in Section 6), measured on
executable workloads:

1. **Sequence packing** — useful-token fraction of packed vs padded
   batches over a realistic mixed-length prompt distribution.
2. **Continuous batching** — decode steps spent serving a bursty request
   mix with slot reuse, vs static (drain-the-batch) batching and batch-1,
   with the outputs verified token-identical to solo generation.
"""

import numpy as np
import pytest

from repro.model import ReferenceTransformer, init_weights, tiny_test_config
from repro.serving import ContinuousBatchingEngine, Request
from repro.serving.packing import packing_efficiency, padded_efficiency

CONFIG = tiny_test_config()
MODEL = ReferenceTransformer(init_weights(CONFIG, seed=0))


def mixed_lengths(n=64, seed=0):
    rng = np.random.default_rng(seed)
    # Mixed short prompts + a long tail, like chat traffic.
    return [int(x) for x in
            np.clip(rng.lognormal(mean=4.0, sigma=0.8, size=n), 8, 512)]


def requests(budgets):
    rng = np.random.default_rng(1)
    return [Request(i, rng.integers(0, CONFIG.vocab_size, size=4), b)
            for i, b in enumerate(budgets)]


def static_steps(reqs, batch):
    steps = 0
    for start in range(0, len(reqs), batch):
        group = reqs[start:start + batch]
        steps += max(r.max_new_tokens for r in group) - 1
    return steps


def generate_table() -> str:
    lengths = mixed_lengths()
    capacity = max(lengths)
    packed = packing_efficiency(lengths, capacity)
    padded = padded_efficiency(lengths)

    budgets = [2, 9, 3, 8, 2, 7, 3, 2, 6, 2, 2, 5, 4, 9, 2, 3]
    reqs = requests(budgets)
    engine = ContinuousBatchingEngine(MODEL, max_slots=4, max_len=16)
    engine.serve(reqs)
    batch1 = sum(b - 1 for b in budgets)
    static = static_steps(reqs, 4)

    return "\n".join([
        "Serving extensions",
        f"1) sequence packing over {len(lengths)} mixed-length prompts "
        f"(capacity {capacity}):",
        f"   padded-batch efficiency {padded:6.1%}   packed "
        f"{packed:6.1%}   ({packed / padded:.2f}x fewer wasted tokens)",
        f"2) continuous batching, {len(budgets)} requests, 4 slots:",
        f"   decode steps: batch-1 {batch1}, static {static}, "
        f"continuous {engine.steps} "
        f"({static / engine.steps:.2f}x vs static)",
    ])


def test_serving_extensions(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("serving_extensions", table)

    lengths = mixed_lengths()
    assert packing_efficiency(lengths, max(lengths)) > \
        padded_efficiency(lengths)

    budgets = [2, 9, 3, 8, 2, 7, 3, 2, 6, 2, 2, 5, 4, 9, 2, 3]
    reqs = requests(budgets)
    engine = ContinuousBatchingEngine(MODEL, max_slots=4, max_len=16)
    completions = engine.serve(reqs)
    assert engine.steps < static_steps(reqs, 4)
    # Correctness under the benchmark workload, not just speed.
    for request, completion in zip(reqs, completions):
        solo = MODEL.generate(request.prompt[None, :],
                              request.max_new_tokens)[0]
        np.testing.assert_array_equal(completion.tokens, solo)
