"""Figure 9 / Tables D.2-D.4: comparison with FasterTransformer.

For each of the three FT workloads (20/8, 60/20, 128/8 input/output
tokens) we recompute "ours" — PaLM 540B and MT-NLG 530B on 64 TPU v4 with
2D partitioning — using the analytical model, and print them alongside the
*published* FasterTransformer A100 baselines (TP16 / TP32 / PP3-TP8) and
the paper's own measured TPU numbers.

Checked shapes (Section 5): our PaLM implementation reaches higher MFU
than every FT configuration at matched batch; our PaLM beats our Megatron
(parallel layers + multiquery); FT's TP32 tops out near 33% MFU while our
64-way 2D partitioning keeps scaling.
"""

from repro.baselines import (
    FT_BASELINES,
    PAPER_MTNLG_TOTAL,
    PAPER_PALM_TOTAL,
    WORKLOADS,
)
from repro.hardware import TPU_V4, Torus3D
from repro.model import MEGATRON_530B, PALM_540B, PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator

TORUS = Torus3D(4, 4, 4)
BATCHES = (4, 8, 16, 32, 64, 128, 256)


def our_total(config, mfu_params, batch, input_len, output_len,
              attention):
    est = InferenceEstimator(config, TPU_V4, TORUS, mfu_params=mfu_params)
    prefill_plan = LayoutPlan(FfnLayoutKind.WS_2D, attention
                              if batch >= 4 else AttentionLayoutKind.HEAD)
    decode_plan = LayoutPlan(FfnLayoutKind.WS_2D, attention)
    prefill = est.prefill_cost(prefill_plan, batch, input_len)
    gen = est.generate_cost(decode_plan, batch, input_len, output_len)
    total = prefill.time_s + gen.total_s
    tokens = batch * (input_len + output_len)
    mfu = 2 * (mfu_params or config.n_params) * tokens / (
        total * TORUS.num_chips * TPU_V4.peak_flops)
    return total, mfu


def generate_table() -> str:
    lines = []
    for workload in WORKLOADS:
        lines.append(f"== {workload.name} (input {workload.input_len}, "
                     f"output {workload.output_len}) ==")
        lines.append(
            f"{'batch':>6s} | {'FT TP16':>13s} {'FT TP32':>13s} "
            f"{'FT PP3/TP8':>13s} | {'our PaLM':>13s} "
            f"{'paperPaLM':>13s} | {'our MT-NLG':>13s} "
            f"{'paperMT':>13s}")
        ft = {name: {r.batch: r for r in table[workload.name]}
              for name, table in FT_BASELINES.items()}
        paper_palm = {r.batch: r for r in PAPER_PALM_TOTAL[workload.name]}
        paper_mt = {r.batch: r for r in PAPER_MTNLG_TOTAL[workload.name]}
        for batch in BATCHES:
            palm_t, palm_mfu = our_total(
                PALM_540B_PADDED, PALM_540B.n_params, batch,
                workload.input_len, workload.output_len,
                AttentionLayoutKind.BATCH)
            mt_t, mt_mfu = our_total(
                MEGATRON_530B, None, batch, workload.input_len,
                workload.output_len, AttentionLayoutKind.HEAD)

            def cell(r):
                if r is None or r.time_ms is None:
                    return f"{'OOM':>13s}"
                return f"{r.time_ms:7.0f}ms {r.mfu_pct:3.0f}%"

            lines.append(
                f"{batch:>6d} | {cell(ft['TP16'].get(batch))} "
                f"{cell(ft['TP32'].get(batch))} "
                f"{cell(ft['PP3/TP8'].get(batch))} | "
                f"{palm_t * 1e3:7.0f}ms {palm_mfu * 100:3.0f}% "
                f"{cell(paper_palm.get(batch))} | "
                f"{mt_t * 1e3:7.0f}ms {mt_mfu * 100:3.0f}% "
                f"{cell(paper_mt.get(batch))}")
        lines.append("")
    return "\n".join(lines)


def test_fastertransformer_comparison(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("fastertransformer_comparison", table)

    workload = WORKLOADS[1]  # 60-in / 20-out, Figure 9's setting
    ft_best_mfu = {
        name: max(r.mfu_pct for r in table[workload.name]
                  if r.mfu_pct is not None)
        for name, table in FT_BASELINES.items()}
    palm_mfu_at = {}
    for batch in BATCHES:
        _, mfu = our_total(PALM_540B_PADDED, PALM_540B.n_params, batch,
                           workload.input_len, workload.output_len,
                           AttentionLayoutKind.BATCH)
        palm_mfu_at[batch] = mfu * 100

    # Our 64-way implementation reaches MFU beyond FT's 32-way ceiling.
    assert max(palm_mfu_at.values()) > ft_best_mfu["TP32"]

    # Our PaLM beats our Megatron at matched large batch (parallel
    # layers + multiquery; Section 5 reports up to ~10% MFU).  At small
    # batch the model puts them within noise of each other (MT-NLG's 105
    # layers carry less fixed overhead than PaLM's 118).
    for batch in (128, 256):
        _, palm = our_total(PALM_540B_PADDED, PALM_540B.n_params, batch,
                            workload.input_len, workload.output_len,
                            AttentionLayoutKind.BATCH)
        _, mt = our_total(MEGATRON_530B, None, batch,
                          workload.input_len, workload.output_len,
                          AttentionLayoutKind.HEAD)
        assert palm > mt * 0.995

    # Sanity vs the paper's own measured totals: within 2x across the
    # mid-batch range.
    paper_palm = {r.batch: r for r in PAPER_PALM_TOTAL[workload.name]}
    for batch in (16, 64, 256):
        ours_s, _ = our_total(PALM_540B_PADDED, PALM_540B.n_params,
                              batch, workload.input_len,
                              workload.output_len,
                              AttentionLayoutKind.BATCH)
        published_s = paper_palm[batch].time_ms / 1e3
        assert 0.5 < ours_s / published_s < 2.0
