"""Autoscale benchmark: goodput, per-class SLO latency, cost per token.

Serves every registered trace (:data:`repro.cluster.workload.TRACES`)
through a cluster control plane with the autoscaler attached, and
asserts the PR's acceptance gates:

* zero dropped in-flight requests on every trace;
* completions bit-identical to the statically over-provisioned fleet
  (capped outputs compare as greedy prefixes);
* the flash-crowd brownout ladder engages, fully reverses, and leaves
  interactive goodput at least at the no-brownout baseline;
* the whole document is re-run deterministic.

Results land in ``BENCH_autoscale.json`` at the repo root (the CI
autoscale job uploads it as an artifact and diffs the seed matrix).
"""

import json
import pathlib

from repro.cluster.bench import autoscale_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_autoscale.json"


def run_bench() -> dict:
    return autoscale_bench(backend="loop", seed=0)


def test_autoscale(benchmark, save_result):
    doc = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    lines = []
    for row in doc["traces"]:
        lines.append(
            f"{row['trace']:>14s}: goodput {row['goodput_tok_s']:.1f} "
            f"tok/s, cost {row['cost_chip_s_per_token']:.3f} chip-s/tok "
            f"(static fleet {row['static_chip_seconds']:.1f} chip-s vs "
            f"{row['chip_seconds']:.1f}), +{row['replicas_added']}/"
            f"-{row['replicas_removed']} replicas, brownout "
            f"{row['brownout_steps'] or '(never)'}")
    save_result("autoscale", "\n".join(lines))
    JSON_PATH.write_text(json.dumps({
        "workload": "registered traces served by the tiny chaos model "
                    "on 2x2x2 replicas (virtual clock, CostModel "
                    "prefill 0.05s / decode step 0.01s); autoscaled "
                    "fleet vs the statically over-provisioned "
                    "max_replicas fleet on the same seeded trace",
        **doc,
    }, indent=2) + "\n")
    print(f"[saved to {JSON_PATH}]")

    assert doc["ok"], doc["violations"]
    flash = next(r for r in doc["traces"] if r["trace"] == "flash-crowd")
    # The ladder engaged all four rungs under the spike and helped.
    assert flash["brownout_steps"] == [
        "hedge-off", "cap-output", "throughput-plan", "shed-lowest"]
    assert flash["brownout_helps"]
    # The diurnal trace actually scaled out and drained back.
    diurnal = next(r for r in doc["traces"] if r["trace"] == "diurnal")
    assert diurnal["replicas_added"] > 0
    assert diurnal["replicas_added"] == diurnal["replicas_removed"]
