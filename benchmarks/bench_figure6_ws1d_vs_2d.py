"""Figure 6: decode latency per token, 1D vs 2D weight-stationary.

PaLM 540B text generation at batch 512, sweeping the chip count.  The
paper's finding: both layouts become communication-limited as chips grow,
but 2D keeps improving (its comm scales as 1/sqrt(n)) while 1D flattens
(its comm is constant in n), so 2D wins at high chip counts.
"""

from repro.hardware import TPU_V4, default_slice_shape
from repro.model import PALM_540B, PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator

CHIP_COUNTS = (8, 16, 32, 64, 128, 256)
BATCH, CONTEXT = 512, 2048
PLANS = {
    "WS 1D": LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.BATCH),
    "WS 2D": LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
}


def step_latency(plan, n_chips):
    torus = default_slice_shape(n_chips)
    est = InferenceEstimator(PALM_540B_PADDED, TPU_V4, torus,
                             mfu_params=PALM_540B.n_params)
    return est.decode_step_cost(plan, BATCH, CONTEXT)


def generate_figure() -> str:
    lines = [f"Figure 6: decode ms/token vs chips (PaLM 540B, batch "
             f"{BATCH})",
             f"{'chips':>6s}" + "".join(f"{name:>12s}" for name in PLANS)
             + f"{'comm 1D':>12s}{'comm 2D':>12s}"]
    for n in CHIP_COUNTS:
        costs = {name: step_latency(plan, n)
                 for name, plan in PLANS.items()}
        lines.append(
            f"{n:>6d}"
            + "".join(f"{costs[name].time_s * 1e3:12.1f}"
                      for name in PLANS)
            + f"{costs['WS 1D'].comm_s * 1e3:12.2f}"
            + f"{costs['WS 2D'].comm_s * 1e3:12.2f}")
    return "\n".join(lines)


def test_figure6(benchmark, save_result):
    table = benchmark.pedantic(generate_figure, rounds=1, iterations=1)
    save_result("figure6_ws1d_vs_2d", table)

    # 2D at least matches 1D everywhere here and wins clearly at 64+.
    for n in (64, 128, 256):
        one_d = step_latency(PLANS["WS 1D"], n)
        two_d = step_latency(PLANS["WS 2D"], n)
        assert two_d.time_s < one_d.time_s
        assert two_d.comm_s < one_d.comm_s

    # 1D communication is ~constant in chips; 2D's shrinks.
    comm_1d = [step_latency(PLANS["WS 1D"], n).comm_s for n in (64, 256)]
    comm_2d = [step_latency(PLANS["WS 2D"], n).comm_s for n in (64, 256)]
    assert comm_1d[1] > 0.8 * comm_1d[0]
    assert comm_2d[1] < 0.8 * comm_2d[0]
