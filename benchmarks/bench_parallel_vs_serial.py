"""Section 4.3: parallel vs. serial attention/FFN block formulation.

The paper's setting: PaLM 540B decode, 2D weight-stationary, 64 chips,
batch 512 — "the serial formulation incurs 14% higher inference latency
per step than the parallel version because of the increased communication
time for activations", with the gap shrinking during prefill (the
weight-gathered layouts carry less activation communication).

This bench reports both the analytical latencies and the measured
communication *volumes* (from the symbolic model that the executor tests
pin down): serial doubles the per-layer all-gather/reduce-scatter pairs.
"""

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import (
    InferenceEstimator,
    comm_volume_bytes,
    forward_comm_events,
)

TORUS = Torus3D(4, 4, 4)
PLAN = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
SERIAL_540B = PALM_540B_PADDED.replace(name="palm-540b-serial",
                                       parallel_block=False)


def decode_step(config):
    est = InferenceEstimator(config, TPU_V4, TORUS,
                             mfu_params=PALM_540B.n_params)
    return est.decode_step_cost(PLAN, 512, 2048)


def prefill(config, plan):
    est = InferenceEstimator(config, TPU_V4, TORUS,
                             mfu_params=PALM_540B.n_params)
    return est.prefill_cost(plan, 512, 2048)


def generate_table() -> str:
    par = decode_step(PALM_540B_PADDED)
    ser = decode_step(SERIAL_540B)
    penalty = ser.time_s / par.time_s - 1
    comm_penalty = ser.comm_s / par.comm_s - 1

    wg = LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH)
    par_pre = prefill(PALM_540B_PADDED, wg)
    ser_pre = prefill(SERIAL_540B, wg)
    prefill_penalty = ser_pre.time_s / par_pre.time_s - 1

    volume = {
        label: comm_volume_bytes(
            forward_comm_events(config, PLAN, TORUS, 512, 1))
        for label, config in (("parallel", PALM_540B_PADDED),
                              ("serial", SERIAL_540B))}
    return "\n".join([
        "Section 4.3: serial vs parallel attention/FFN block "
        "(540B, WS 2D, 64 chips, batch 512)",
        f"  decode step: parallel {par.time_s * 1e3:.1f} ms, serial "
        f"{ser.time_s * 1e3:.1f} ms -> serial +{penalty:.1%} "
        f"(paper: +14%)",
        f"  decode communication: serial +{comm_penalty:.1%}",
        f"  per-chip comm volume per step: parallel "
        f"{volume['parallel'] / 1e6:.1f} MB, serial "
        f"{volume['serial'] / 1e6:.1f} MB",
        f"  prefill (WG XYZ): serial +{prefill_penalty:.1%} "
        f"(paper: difference shrinks)",
    ])


def test_parallel_vs_serial(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("parallel_vs_serial", table)

    par = decode_step(PALM_540B_PADDED)
    ser = decode_step(SERIAL_540B)
    penalty = ser.time_s / par.time_s - 1
    # Paper: +14%.  Our calibrated overlap hides more of the extra
    # communication than the paper's system did, so the modeled penalty
    # is smaller; assert the direction and a nontrivial magnitude.
    assert 0.02 < penalty < 0.30

    # Mechanism: serial doubles the E-side gather/scatter pairs (the
    # F-side pairs and attention smalls are unchanged), which lands the
    # total at ~1.4x communication in this configuration.
    assert 1.25 < ser.comm_s / par.comm_s < 2.2

    # The gap shrinks in prefill with weight-gathered layouts.
    wg = LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH)
    prefill_penalty = (prefill(SERIAL_540B, wg).time_s
                       / prefill(PALM_540B_PADDED, wg).time_s - 1)
    assert prefill_penalty < penalty
