"""Section 3.5 low-level optimizations: sampling and softmax kernels.

Micro-benchmarks the "faster top-k/top-p implementations for decode
sampling" (selection-based top-k vs a full sort) and the "log-base-2"
softmax/swish formulations at a realistic decode shape (batch 256, PaLM's
256k vocabulary).
"""

import numpy as np
import pytest

from repro.model.functional import (
    softmax,
    softmax_base2,
    swish,
    swish_base2,
)
from repro.model.sampling import top_k_mask, top_k_mask_sorted

BATCH, VOCAB = 256, 256_000
LOGITS = np.random.default_rng(0).normal(size=(BATCH, VOCAB)) \
    .astype(np.float32)


def test_top_k_partition(benchmark):
    out = benchmark(lambda: top_k_mask(LOGITS, 40))
    assert np.isfinite(out).sum() == BATCH * 40


def test_top_k_sorted_reference(benchmark):
    out = benchmark(lambda: top_k_mask_sorted(LOGITS, 40))
    assert np.isfinite(out).sum() == BATCH * 40


def test_softmax_base_e(benchmark):
    out = benchmark(lambda: softmax(LOGITS[:32]))
    assert out.shape == (32, VOCAB)


def test_softmax_base2(benchmark):
    out = benchmark(lambda: softmax_base2(LOGITS[:32]))
    np.testing.assert_allclose(out.sum(-1), 1.0, rtol=1e-5)


def test_swish_base2_matches(benchmark):
    x = LOGITS[:8]
    out = benchmark(lambda: swish_base2(x))
    np.testing.assert_allclose(out, swish(x), rtol=1e-5, atol=1e-6)


def test_fast_top_k_not_slower():
    """The selection-based top-k should beat (or at least match) the full
    sort at PaLM's vocabulary size."""
    import timeit

    fast = timeit.timeit(lambda: top_k_mask(LOGITS, 40), number=3)
    slow = timeit.timeit(lambda: top_k_mask_sorted(LOGITS, 40), number=3)
    assert fast < slow * 1.2
