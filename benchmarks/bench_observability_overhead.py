"""Instrumentation overhead of the observability layer, both backends.

The span tracer is opt-in: with no tracer installed, every hook in
:mod:`repro.mesh.ops` / :mod:`repro.mesh.looped` is a single ``getattr``
per op, so an uninstrumented decode step must cost the same as before
the observability layer existed (< 5% overhead is the acceptance bar;
the generous assertion bound below absorbs scheduler noise on shared
CI machines).  With a tracer installed the per-op cost is one appended
dataclass plus two clock reads — measured here, not bounded, since
tracing is a diagnostic mode.

Numerics must be bit-identical with tracing on and off — the tracer only
observes, never touches data.
"""

import numpy as np

from repro.mesh.bench import time_decode

MESH_SHAPE = (2, 2, 2)
STEPS, BATCH, REPS = 4, 64, 5


def measure(backend: str) -> dict:
    off_s, off_logits = time_decode(MESH_SHAPE, backend, steps=STEPS,
                                    batch=BATCH, reps=REPS)
    on_s, on_logits = time_decode(MESH_SHAPE, backend, steps=STEPS,
                                  batch=BATCH, reps=REPS, trace=True)
    assert np.array_equal(off_logits, on_logits), (
        f"tracing changed the numerics on the {backend} backend")
    return {"backend": backend, "off_s": off_s, "on_s": on_s,
            "tracing_overhead": on_s / off_s - 1.0}


def run_comparison() -> list[dict]:
    return [measure(backend) for backend in ("loop", "stacked")]


def format_table(rows: list[dict]) -> str:
    lines = ["Observability overhead: decode step, tracer off vs on",
             f"{'backend':>8s} {'off':>10s} {'on':>10s} {'overhead':>9s}"]
    for row in rows:
        lines.append(f"{row['backend']:>8s} {row['off_s'] * 1e3:9.2f}m "
                     f"{row['on_s'] * 1e3:9.2f}m "
                     f"{row['tracing_overhead']:8.1%}")
    return "\n".join(lines)


def test_observability_overhead(benchmark, save_result):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_result("observability_overhead", format_table(rows))
    for row in rows:
        # Tracing appends ~10^3 spans per step; anything past 2x means a
        # hook landed on a hot inner loop it shouldn't be in.
        assert row["tracing_overhead"] < 1.0, row
