"""Table 1: maximum context length per attention variant.

PaLM 540B on 64 chips with 30% of total memory reserved for the KV cache,
at batch 128 and 512.  This table reproduces essentially exactly (the
footprint arithmetic is deterministic), so the assertions are tight.
"""

import pytest

from repro.hardware import TPU_V4
from repro.model import PALM_540B, PALM_540B_MULTIHEAD
from repro.partitioning import AttentionLayoutKind
from repro.perf import table1_max_context

ROWS = [
    ("Multihead (d_head 128)", PALM_540B_MULTIHEAD,
     AttentionLayoutKind.HEAD, {128: 1320, 512: 330}),
    ("Baseline multiquery", PALM_540B, AttentionLayoutKind.HEAD,
     {128: 660, 512: 165}),
    ("Optimized multiquery", PALM_540B, AttentionLayoutKind.BATCH,
     {128: 43_000, 512: 10_700}),
]


def generate_table() -> str:
    lines = ["Table 1: max context length (30% of HBM for KV, 64 chips)",
             f"{'variant':26s} {'batch':>6s} {'ours':>10s} "
             f"{'paper':>10s}"]
    for name, config, layout, published in ROWS:
        for batch, paper_value in published.items():
            ours = table1_max_context(config, layout, TPU_V4, 64, batch)
            lines.append(f"{name:26s} {batch:6d} {ours:10,d} "
                         f"{paper_value:10,d}")
    return "\n".join(lines)


def test_table1(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("table1_max_context", table)

    for name, config, layout, published in ROWS:
        for batch, paper_value in published.items():
            ours = table1_max_context(config, layout, TPU_V4, 64, batch)
            assert ours == pytest.approx(paper_value, rel=0.02), (
                f"{name} at batch {batch}: {ours} vs paper {paper_value}")

    # The headline: optimized multiquery reaches ~32x multihead's context.
    for batch in (128, 512):
        opt = table1_max_context(PALM_540B, AttentionLayoutKind.BATCH,
                                 TPU_V4, 64, batch)
        mh = table1_max_context(PALM_540B_MULTIHEAD,
                                AttentionLayoutKind.HEAD, TPU_V4, 64,
                                batch)
        assert opt / mh == pytest.approx(32, rel=0.05)
