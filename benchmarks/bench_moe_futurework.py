"""Future-work bench: mixture-of-experts FLOPs-per-token reduction.

Not a paper table — the Conclusion's forward-looking claim, quantified:
"task-based mixture of expert architectures ... promise to reduce FLOPs
per token".  We compare a top-2-of-16 expert layer against the dense FFN
with the same *stored* parameters at PaLM-540B-like dimensions on 64 TPU
v4 chips, across the batch range.

Expected shape: at memory-bound small batch, sparsity buys nothing (both
layers stream the same bytes); as decode becomes compute-bound, the
speedup approaches the sparsity factor minus dispatch overhead.
"""

import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.moe import MoeSpec, moe_vs_dense_decode

SPEC = MoeSpec(d_model=18432, d_ff=73728, n_experts=16,
               experts_per_token=2)
TORUS = Torus3D(4, 4, 4)
BATCHES = (1, 8, 64, 256, 1024)


def generate_table() -> str:
    lines = ["Future work: MoE (top-2 of 16 experts) vs iso-memory dense "
             "FFN, 64 TPU v4",
             f"{'batch':>6s} {'moe step':>10s} {'dense step':>11s} "
             f"{'speedup':>8s} {'dispatch':>9s}"]
    for batch in BATCHES:
        cmp = moe_vs_dense_decode(SPEC, TPU_V4, TORUS, batch)
        lines.append(f"{batch:>6d} {cmp.moe.step_s * 1e3:9.2f}m "
                     f"{cmp.dense.step_s * 1e3:10.2f}m "
                     f"{cmp.speedup:8.2f} "
                     f"{cmp.moe.dispatch_s * 1e3:8.3f}m")
    lines.append(f"\nFLOPs/token reduction: {SPEC.sparsity_factor:.1f}x "
                 f"(stored params / active params)")
    return "\n".join(lines)


def test_moe_futurework(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("moe_futurework", table)

    small = moe_vs_dense_decode(SPEC, TPU_V4, TORUS, 1)
    large = moe_vs_dense_decode(SPEC, TPU_V4, TORUS, 1024)
    # Memory-bound: neutral; compute-bound: most of the sparsity realized.
    assert small.speedup == pytest.approx(1.0, abs=0.25)
    assert large.speedup > 3.0
    assert large.speedup <= SPEC.sparsity_factor + 0.01
    # Speedup is (weakly) monotone in batch across the sweep; tiny
    # dispatch overhead can nudge the memory-bound points below 1.
    speedups = [moe_vs_dense_decode(SPEC, TPU_V4, TORUS, b).speedup
                for b in BATCHES]
    for earlier, later in zip(speedups, speedups[1:]):
        assert later >= earlier - 1e-4
