"""Disaggregated prefill/decode benchmark: pools vs colocated fleet.

Serves the flash-crowd and heavy-tail traces through a disaggregated
control plane (one 2D weight-stationary prefill replica handing KV
caches to one weight-gathered decode replica) and the equal-chip
colocated fleet, and asserts the PR's acceptance gates:

* disaggregated interactive goodput >= colocated on flash-crowd, at
  equal chips (the Section 3.2 specialization payoff survives the
  A.1-priced KV handoff cost);
* zero dropped in-flight requests and zero failures on both fleets;
* completions bit-identical to the colocated fleet;
* at least one KV handoff actually happened;
* the whole document is re-run deterministic.

Results land in ``BENCH_disagg.json`` at the repo root (the CI disagg
job uploads it as an artifact and diffs the seed matrix).
"""

import json
import pathlib

from repro.cluster.bench import disagg_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_disagg.json"


def run_bench() -> dict:
    return disagg_bench(backend="loop", seed=0)


def test_disagg(benchmark, save_result):
    doc = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    lines = []
    for row in doc["traces"]:
        d, c = row["disagg"], row["colocated"]
        lines.append(
            f"{row['trace']:>14s}: interactive goodput "
            f"{d['interactive_goodput_tok_s']:.1f} vs colocated "
            f"{c['interactive_goodput_tok_s']:.1f} tok/s at "
            f"{d['chips']} chips each; {d['kv_handoffs']} handoffs "
            f"({d['kv_handoff_bytes']} B, "
            f"{d['handoff_transfer_s'] * 1e6:.1f} us on the link), "
            f"{d['handoffs_colocated']} decoded in place")
    save_result("disagg", "\n".join(lines))
    JSON_PATH.write_text(json.dumps({
        "workload": "flash-crowd (gated) and heavy-tail traces served "
                    "by the tiny chaos model; disaggregated "
                    "prefill+decode pools (1+1 replicas, pool plans at "
                    "0.6x phase cost) vs the colocated 2-replica fleet "
                    "on the same seeded trace, equal chips",
        **doc,
    }, indent=2) + "\n")
    print(f"[saved to {JSON_PATH}]")

    assert doc["ok"], doc["violations"]
    flash = next(r for r in doc["traces"] if r["trace"] == "flash-crowd")
    assert flash["goodput_gated"]
    assert flash["disagg"]["interactive_goodput_tok_s"] >= \
        flash["colocated"]["interactive_goodput_tok_s"]
    assert flash["disagg"]["kv_handoffs"] > 0
    assert flash["bit_identical_vs_colocated"]
