"""Figure 8: multiquery vs. multihead decode latency vs. context length.

The 8-layer PaLM 540B variant on 64 chips at batch 256 (the paper's
setting), comparing: multihead attention (d_head 128), baseline multiquery
sharded over heads, and optimized multiquery sharded over batch.

Paper shape: all three are close at short contexts (the FFN dominates);
as context grows, the baseline layouts degrade linearly with the KV
stream while the batch-sharded layout stays nearly flat, and at full
depth the baselines run out of memory beyond ~512 tokens (Table 1).
"""

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B_8LAYER, PALM_540B_8LAYER_MULTIHEAD
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator

TORUS = Torus3D(4, 4, 4)
BATCH = 256
CONTEXTS = (128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
VARIANTS = [
    ("multihead", PALM_540B_8LAYER_MULTIHEAD,
     LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)),
    ("multiquery-heads", PALM_540B_8LAYER,
     LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)),
    ("multiquery-batch", PALM_540B_8LAYER,
     LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)),
]


def step_ms(config, plan, context):
    est = InferenceEstimator(config, TPU_V4, TORUS)
    return est.decode_step_cost(plan, BATCH, context).time_s * 1e3


def generate_figure() -> str:
    lines = [f"Figure 8: decode ms/token vs context (8-layer PaLM 540B, "
             f"batch {BATCH}, 64 chips)",
             f"{'context':>9s}" + "".join(f"{name:>18s}"
                                          for name, _, _ in VARIANTS)]
    for context in CONTEXTS:
        lines.append(f"{context:>9,d}" + "".join(
            f"{step_ms(config, plan, context):18.2f}"
            for _, config, plan in VARIANTS))
    return "\n".join(lines)


def test_figure8(benchmark, save_result):
    table = benchmark.pedantic(generate_figure, rounds=1, iterations=1)
    save_result("figure8_attention", table)

    short = {name: step_ms(c, p, 128) for name, c, p in VARIANTS}
    long = {name: step_ms(c, p, 32768) for name, c, p in VARIANTS}

    # Short context: within ~15% of each other (FFN dominates).
    assert max(short.values()) / min(short.values()) < 1.15
    # Long context: the optimized layout wins by a wide margin.
    assert long["multiquery-batch"] * 5 < long["multiquery-heads"]
    assert long["multiquery-batch"] * 2 < long["multihead"]
    # The optimized layout is nearly flat across a 256x context range.
    flat = step_ms(PALM_540B_8LAYER, VARIANTS[2][2], 32768) \
        / step_ms(PALM_540B_8LAYER, VARIANTS[2][2], 128)
    assert flat < 1.5

    # Baseline multiquery is *worse* than multihead at long context: its
    # single KV head is replicated on every chip (Figure 4b).
    assert long["multiquery-heads"] > long["multihead"]

    # Attention share at 32k stays a minority of runtime (Section 4.2
    # reports 8-31% at 8k-32k with batch 128-512).
    est = InferenceEstimator(PALM_540B_8LAYER, TPU_V4, TORUS)
    step = est.decode_step_cost(VARIANTS[2][2], BATCH, 32768)
    attention_share = step.kv_load_s / step.time_s
    assert attention_share < 0.5
