"""Prefix-cache benchmark: paged KV reuse vs the recompute oracle.

Serves the shared-prefix ``chatbot-sessions`` trace (80% pooled system
prompts, Zipf-weighted, with multi-turn sessions) through a cluster
replica with the paged KV store on and off, and asserts the PR's
acceptance gates:

* >= 2x prefill-step compute reduction and >= 60% page hit rate on the
  shared-prefix trace (stacked backend at 4x4x4, and again on the loop
  backend at 2x2x2);
* zero regression on the no-sharing ``diurnal`` control trace — the
  cache must be invisible when nothing is shared;
* every completed token stream bit-identical to the cache-off oracle;
* the ``shared-prefix-kill`` chaos scenario (a chip dies on the replica
  holding the shared pages) recovers with the auditor certifying
  exactly-once page leases and zero lost requests;
* the whole document is re-run deterministic.

Results land in ``BENCH_prefix_cache.json`` at the repo root (the CI
kvstore job uploads it as an artifact).
"""

import json
import pathlib

from repro.cluster.bench import prefix_cache_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_prefix_cache.json"


def run_bench() -> dict:
    return prefix_cache_bench(seed=0)


def test_prefix_cache(benchmark, save_result):
    doc = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    lines = []
    for row in doc["traces"]:
        reduction = row["compute_reduction"]
        lines.append(
            f"{row['trace']:>16s} [{row['backend']:>7s} {row['shape']}]: "
            f"{reduction:.2f}x prefill compute reduction, "
            f"{row['page_hit_rate']:.1%} page hits, makespan "
            f"{row['makespan_s']:.3f}s vs {row['uncached_makespan_s']:.3f}s "
            f"uncached, bit-identical "
            f"{'yes' if row['bit_identical_vs_uncached'] else 'NO'}")
    chaos = doc["chaos"]
    lines.append(
        f"{chaos['scenario']:>16s}: {chaos['completed']} completed, "
        f"{chaos['failovers']} failovers, leases "
        f"{chaos['page_leases']}/{chaos['page_releases']}, audit "
        f"{'CERTIFIED' if chaos['audit_certified'] else 'VIOLATED'}")
    save_result("prefix_cache", "\n".join(lines))
    JSON_PATH.write_text(json.dumps({
        "workload": "shared-prefix chatbot-sessions trace (80% pooled "
                    "system prompts + sessions) and the no-sharing "
                    "diurnal control, served by one replica with the "
                    "paged KV store on vs off (virtual clock, CostModel "
                    "prefill 0.05s / decode step 0.01s); plus the "
                    "shared-prefix-kill chaos scenario",
        **doc,
    }, indent=2) + "\n")
    print(f"[saved to {JSON_PATH}]")

    assert doc["ok"], doc["violations"]
    gated = next(r for r in doc["traces"]
                 if r["trace"] == "chatbot-sessions"
                 and r["backend"] == "stacked")
    assert gated["compute_reduction"] >= 2.0
    assert gated["page_hit_rate"] >= 0.6
    control = next(r for r in doc["traces"] if r["trace"] == "diurnal")
    assert control["makespan_s"] == control["uncached_makespan_s"]
    assert doc["chaos"]["chaos_certified"]
