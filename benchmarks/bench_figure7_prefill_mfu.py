"""Figure 7: prefill MFU vs. batch size in tokens, per FFN layout.

PaLM 540B on 64 chips, sequence length 2048, batch measured in tokens
(sequences x 2048) from 2048 to ~1M.  The paper's shape: weight-gathered
layouts are inefficient at small batch but take over as tokens grow,
peaking at 76% MFU where communication is negligible.
"""

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator

TORUS = Torus3D(4, 4, 4)
SEQ_LEN = 2048
SEQUENCES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
LAYOUTS = [FfnLayoutKind.WS_2D, FfnLayoutKind.WG_X, FfnLayoutKind.WG_XY,
           FfnLayoutKind.WG_XYZ]


def mfu(kind, batch):
    plan = LayoutPlan(kind, AttentionLayoutKind.BATCH
                      if batch >= 4 else AttentionLayoutKind.HEAD)
    est = InferenceEstimator(PALM_540B_PADDED, TPU_V4, TORUS,
                             mfu_params=PALM_540B.n_params)
    return est.prefill_cost(plan, batch, SEQ_LEN).mfu


def generate_figure() -> str:
    lines = ["Figure 7: prefill MFU vs batch tokens (PaLM 540B, 64 "
             "chips, L=2048)",
             f"{'tokens':>12s}" + "".join(f"{k.value:>10s}"
                                          for k in LAYOUTS) + "   best"]
    for sequences in SEQUENCES:
        mfus = {k: mfu(k, sequences) for k in LAYOUTS}
        best = max(mfus, key=mfus.get)
        lines.append(f"{sequences * SEQ_LEN:>12,d}"
                     + "".join(f"{mfus[k]:10.1%}" for k in LAYOUTS)
                     + f"   {best.value}")
    return "\n".join(lines)


def test_figure7(benchmark, save_result):
    table = benchmark.pedantic(generate_figure, rounds=1, iterations=1)
    save_result("figure7_prefill_mfu", table)

    # WS-2D best at 1-2 sequences; weight-gathered best at 512.
    small = {k: mfu(k, 1) for k in LAYOUTS}
    assert max(small, key=small.get) is FfnLayoutKind.WS_2D
    large = {k: mfu(k, 512) for k in LAYOUTS}
    assert max(large, key=large.get).is_weight_gathered

    # Peak MFU lands near the paper's 76% (within +-8 points).
    peak = max(large.values())
    assert 0.66 < peak < 0.84

    # Weight-gathered MFU rises monotonically with batch.
    wg_curve = [mfu(FfnLayoutKind.WG_XYZ, b) for b in (1, 8, 64, 512)]
    assert wg_curve == sorted(wg_curve)
