"""Loop vs stacked mesh backend: decode-step speedup vs mesh size.

The stacked backend stores all shards of a tensor in one dense
``mesh.shape + local`` array and runs every collective as a single
reshape/transpose/reduce, so its decode-step time is nearly flat in the
number of simulated chips; the loop backend dispatches Python per device
per op and scales linearly.  This benchmark times both on the shared
decode workload of :mod:`repro.mesh.bench` from 1 to 64 chips, asserts
the two backends produce bit-identical logits at every shape, and writes
the machine-readable result to ``BENCH_mesh_backend.json`` at the repo
root (consumed by docs/mesh_backends.md and the README).
"""

import json
import pathlib

from repro.mesh.bench import MESH_SHAPES, compare_backends, format_table

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_mesh_backend.json"


def run_comparison() -> list[dict]:
    return compare_backends(MESH_SHAPES)


def test_mesh_backend_speedup(benchmark, save_result):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = format_table(rows)
    save_result("mesh_backend", table)
    JSON_PATH.write_text(json.dumps({
        "workload": "decode step, 16-layer multiquery model, WG_XY + "
                    "BATCH layout, batch 64",
        "rows": rows,
    }, indent=2) + "\n")
    print(f"[saved to {JSON_PATH}]")

    by_mesh = {row["mesh"]: row for row in rows}
    # The whole point of the stacked backend: on the paper's 4x4x4 torus
    # the vectorized collectives beat per-device Python dispatch >= 5x.
    assert by_mesh["4x4x4"]["speedup"] >= 5.0
    # Speedup grows with chip count (loop scales with devices, stacked
    # is nearly flat): the 64-chip mesh beats the 8-chip mesh.
    assert by_mesh["4x4x4"]["speedup"] > by_mesh["2x2x2"]["speedup"]
