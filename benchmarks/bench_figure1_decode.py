"""Figure 1 (left): decode cost vs. latency Pareto for the PaLM family.

Regenerates the frontier of chip-seconds-per-token against per-token
generation latency (64 generated tokens, 2048-token context) for PaLM 8B,
62B, and 540B in bfloat16 and int8, sweeping batch size and chip count.

Shape checks encoded in the paper's text (Section 4.4): the minimum
latency is ~3x below the batch-512 latency; int8 roughly halves cost at
low-latency operating points; low-batch latency grows sublinearly
(~sqrt) with model size.
"""

from repro.hardware import TPU_V4
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B, PALM_8B
from repro.perf import pareto_frontier, sweep_decode

SERIES = [
    ("PaLM 8B", PALM_8B, None, (1, 2, 4, 8, 16, 32, 64, 128, 256)),
    ("PaLM 62B", PALM_62B, None, (4, 8, 16, 32, 64, 128)),
    ("PaLM 540B", PALM_540B_PADDED, PALM_540B.n_params, (16, 32, 64, 128,
                                                         256)),
]
BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def generate_figure() -> str:
    lines = ["Figure 1 (left): decode cost vs latency Pareto "
             "(context 2048, generate 64)",
             f"{'series':22s} {'chips':>5s} {'batch':>6s} "
             f"{'ms/token':>9s} {'chip-ms/tok':>12s} {'MFU':>7s}"]
    for name, config, mfu_params, chip_counts in SERIES:
        for wbytes, dtype in ((2, "bf16"), (1, "int8")):
            points = sweep_decode(
                config, TPU_V4, context_len=2048, gen_len=64,
                chip_counts=chip_counts, batches=BATCHES,
                weight_dtype_bytes=wbytes, mfu_params=mfu_params)
            for p in pareto_frontier(points):
                lines.append(
                    f"{name + ' ' + dtype:22s} {p.n_chips:5d} "
                    f"{p.batch:6d} {p.latency_s * 1e3:9.1f} "
                    f"{p.cost_chip_seconds_per_token * 1e3:12.3f} "
                    f"{p.mfu:7.1%}")
    return "\n".join(lines)


def test_figure1_decode(benchmark, save_result):
    table = benchmark.pedantic(generate_figure, rounds=1, iterations=1)
    save_result("figure1_decode", table)

    # Shape assertions from the paper's narrative.
    points = sweep_decode(PALM_540B_PADDED, TPU_V4, context_len=2048,
                          gen_len=64, weight_dtype_bytes=1,
                          mfu_params=PALM_540B.n_params)
    frontier = pareto_frontier(points)
    # "The minimum latency for generation is 3 times lower than the
    # batch-512 latency" (on the paper's 64-chip slice) — allow 2-6x.
    on64 = [p for p in points if p.n_chips == 64]
    min64 = min(p.latency_s for p in on64)
    best512 = min(p.latency_s for p in on64 if p.batch == 512)
    assert 2.0 < best512 / min64 < 6.0

    # int8 beats bf16 at the low-latency end (Section 4.4).
    bf16 = pareto_frontier(sweep_decode(
        PALM_540B_PADDED, TPU_V4, context_len=2048, gen_len=64,
        weight_dtype_bytes=2, mfu_params=PALM_540B.n_params))
    assert min(p.latency_s for p in frontier) < \
        min(p.latency_s for p in bf16)
