"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (as a
text table), times the regeneration with pytest-benchmark, echoes the
table, and persists it under ``benchmarks/results/`` so the artifacts
behind EXPERIMENTS.md can be rebuilt with one command::

    pytest benchmarks/ --benchmark-only -q -s
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """A ``save(name, text)`` callable that persists and echoes a table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}\n[saved to {path}]")

    return save
