"""Figure C.1: MFU vs. latency Pareto for both phases.

Same sweep as Figure 1, reported as MFU.  Paper shapes: decode MFU is
much lower than prefill MFU; larger models mostly achieve higher MFU than
smaller ones (bigger matmuls) — except at long-latency decode, where
PaLM 62B on few chips overtakes 540B on 64-way parallelism.
"""

from repro.hardware import TPU_V4
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B, PALM_8B
from repro.perf import pareto_frontier, sweep_decode, sweep_prefill

SERIES = [
    ("PaLM 8B", PALM_8B, None, (8, 16, 32, 64)),
    ("PaLM 62B", PALM_62B, None, (8, 16, 32, 64)),
    ("PaLM 540B", PALM_540B_PADDED, PALM_540B.n_params, (32, 64, 128)),
]
BATCHES = (1, 4, 16, 64, 256, 512, 1024)


def frontier_by_mfu(points):
    return pareto_frontier(points, x=lambda p: p.latency_s,
                           y=lambda p: -p.mfu)


def generate_figure() -> str:
    lines = ["Figure C.1: MFU vs latency Pareto (context 2048)"]
    for phase, sweep, kwargs in (
            ("decode", sweep_decode, dict(context_len=2048, gen_len=64)),
            ("prefill", sweep_prefill, dict(input_len=2048))):
        lines.append(f"-- {phase} --")
        lines.append(f"{'series':12s} {'chips':>6s} {'batch':>6s} "
                     f"{'latency':>10s} {'MFU':>7s}")
        for name, config, mfu_params, chips in SERIES:
            points = sweep(config, TPU_V4, chip_counts=chips,
                           batches=BATCHES, mfu_params=mfu_params,
                           **kwargs)
            for p in frontier_by_mfu(points):
                unit = "ms" if phase == "decode" else "s"
                latency = (p.latency_s * 1e3 if phase == "decode"
                           else p.latency_s)
                lines.append(f"{name:12s} {p.n_chips:6d} {p.batch:6d} "
                             f"{latency:9.1f}{unit} {p.mfu:7.1%}")
    return "\n".join(lines)


def test_figureC1(benchmark, save_result):
    table = benchmark.pedantic(generate_figure, rounds=1, iterations=1)
    save_result("figureC1_mfu", table)

    # Decode MFU tops out far below prefill MFU for 540B.
    decode = sweep_decode(PALM_540B_PADDED, TPU_V4, context_len=2048,
                          gen_len=64, chip_counts=(64,), batches=BATCHES,
                          mfu_params=PALM_540B.n_params)
    prefill = sweep_prefill(PALM_540B_PADDED, TPU_V4, input_len=2048,
                            chip_counts=(64,), batches=BATCHES,
                            mfu_params=PALM_540B.n_params)
    assert max(p.mfu for p in decode) < max(p.mfu for p in prefill)

    # Long-latency decode: 62B with 8-way parallelism reaches higher MFU
    # than 540B with 64-way parallelism *at comparable latency*
    # (Appendix C).  Batch 1024 at bf16 does not fit 8 chips; 512 is the
    # feasible max.
    p62 = sweep_decode(PALM_62B, TPU_V4, context_len=2048, gen_len=64,
                       chip_counts=(8,), batches=(512,))[0]
    best_540_at_latency = max(p.mfu for p in decode
                              if p.latency_s <= p62.latency_s * 1.05)
    assert p62.mfu > best_540_at_latency

    # Prefill: the larger model achieves higher MFU than the smallest.
    best_8b = max(p.mfu for p in sweep_prefill(
        PALM_8B, TPU_V4, input_len=2048, chip_counts=(64,),
        batches=BATCHES))
    assert max(p.mfu for p in prefill) > best_8b
