"""Ablations of the design choices DESIGN.md calls out.

1. **2D weight-stationary axis split** — sweep X at fixed n=64: the
   optimum sits at X = 0.5 sqrt(n) when F = 4E (Appendix A.2.1).
2. **Looped CollectiveEinsum overlap** (Section 3.5) — simulated decode
   step with overlap on/off; the paper attributes ~1.4x to overlap plus
   scheduling.
3. **Head padding 48 -> 64** (Section 4) — the padded model pays ~3% MFU
   for parallelizability.
4. **int8 vs bf16 weights** (Sections 3.6, 4.4) — big win at small batch,
   neutral at large batch.
"""

import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.partitioning.ffn_costs import ws2d_volume
from repro.perf import InferenceEstimator
from repro.simulator import BuildSpec, build_forward_program, simulate

TORUS = Torus3D(4, 4, 4)
WS2D = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
E, F = PALM_540B_PADDED.d_model, PALM_540B_PADDED.d_ff


def split_sweep():
    return {x: ws2d_volume(1.0, E, F, x, 64 // x)
            for x in (1, 2, 4, 8, 16, 32, 64)}


def overlap_ablation():
    out = {}
    for overlap in (True, False):
        spec = BuildSpec(PALM_540B_PADDED, WS2D, TORUS, TPU_V4,
                         batch=512, l_new=1, context_before=2048,
                         overlap=overlap)
        out[overlap] = simulate(build_forward_program(spec)).makespan
    return out


def padding_ablation():
    padded = InferenceEstimator(PALM_540B_PADDED, TPU_V4, TORUS,
                                mfu_params=PALM_540B.n_params)
    return padded.prefill_cost(
        LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH),
        512, 2048)


def int8_ablation(batch):
    out = {}
    for wbytes in (1, 2):
        est = InferenceEstimator(PALM_540B_PADDED, TPU_V4, TORUS,
                                 weight_dtype_bytes=wbytes,
                                 mfu_params=PALM_540B.n_params)
        out[wbytes] = est.generate_cost(WS2D, batch, 2048,
                                        64).latency_per_token_s
    return out


def generate_table() -> str:
    lines = ["Ablations"]
    lines.append("\n1) 2D WS axis split (n=64, F=4E): per-token volume "
                 "vs X (optimum X=4)")
    for x, v in split_sweep().items():
        lines.append(f"   X={x:<3d} volume/token {v:10.0f} elements")
    overlap = overlap_ablation()
    lines.append(f"\n2) Looped CollectiveEinsum (simulated decode step, "
                 f"B=512): on {overlap[True] * 1e3:.1f} ms, off "
                 f"{overlap[False] * 1e3:.1f} ms "
                 f"({overlap[False] / overlap[True]:.2f}x; paper ~1.4x "
                 f"incl. scheduling)")
    pad = padding_ablation()
    pad_tax = 1 - PALM_540B.n_params / PALM_540B_PADDED.n_params
    lines.append(f"\n3) Head padding 48->64: +{pad_tax:.1%} FLOPs, "
                 f"prefill MFU {pad.mfu:.1%} counted on true 540B "
                 f"(paper: ~3% MFU cost, repaid by 64-way partitioning)")
    small, large = int8_ablation(8), int8_ablation(512)
    lines.append(f"\n4) int8 vs bf16 decode ms/token: "
                 f"B=8: {small[1] * 1e3:.1f} vs {small[2] * 1e3:.1f} "
                 f"({small[2] / small[1]:.2f}x), "
                 f"B=512: {large[1] * 1e3:.1f} vs {large[2] * 1e3:.1f} "
                 f"({large[2] / large[1]:.2f}x)")
    return "\n".join(lines)


def test_ablations(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("ablations", table)

    # 1) the volume-optimal X on 64 chips with F = 4E is 4.
    sweep = split_sweep()
    assert min(sweep, key=sweep.get) == 4

    # 2) overlap helps.
    overlap = overlap_ablation()
    assert overlap[False] > overlap[True]

    # 3) padding costs ~3% of MFU (the FLOPs ratio).
    tax = 1 - PALM_540B.n_params / PALM_540B_PADDED.n_params
    assert 0.02 < tax < 0.05

    # 4) int8 speedup is large at small batch, near-neutral at 512.
    small, large = int8_ablation(8), int8_ablation(512)
    assert small[2] / small[1] > 1.2
    assert large[2] / large[1] < 1.15


def activation_quant_ablation():
    """Section 3.6 future work: int8 activations halve WS comm volume."""
    out = {}
    for act_bytes in (2, 1):
        est = InferenceEstimator(PALM_540B_PADDED, TPU_V4, TORUS,
                                 act_dtype_bytes=act_bytes,
                                 mfu_params=PALM_540B.n_params)
        out[act_bytes] = est.decode_step_cost(WS2D, 512, 2048)
    return out


def alpha_beta_ablation():
    """Per-hop latency (alpha-beta model) vs the paper's pure-beta model."""
    from repro.perf import EfficiencyModel

    out = {}
    for alpha in (0.0, 1e-6, 5e-6):
        eff = EfficiencyModel(link_latency=alpha)
        est = InferenceEstimator(PALM_540B_PADDED, TPU_V4, TORUS,
                                 efficiency=eff, weight_dtype_bytes=1,
                                 mfu_params=PALM_540B.n_params)
        out[alpha] = est.decode_step_cost(WS2D, 4, 2048).time_s
    return out


def test_extension_ablations(benchmark, save_result):
    def generate():
        act = activation_quant_ablation()
        alpha = alpha_beta_ablation()
        lines = ["Extension ablations",
                 f"5) int8 activations (decode B=512): comm "
                 f"{act[2].comm_s * 1e3:.2f} -> {act[1].comm_s * 1e3:.2f}"
                 f" ms ({act[2].comm_s / act[1].comm_s:.2f}x less), step "
                 f"{act[2].time_s * 1e3:.1f} -> {act[1].time_s * 1e3:.1f}"
                 f" ms",
                 "6) alpha-beta link latency (decode B=4, int8):"]
        for a, t in alpha.items():
            lines.append(f"   alpha={a * 1e6:.0f}us/hop: "
                         f"{t * 1e3:.1f} ms/step")
        return "\n".join(lines)

    table = benchmark.pedantic(generate, rounds=1, iterations=1)
    save_result("ablations_extensions", table)

    act = activation_quant_ablation()
    assert act[1].comm_s * 2 == pytest.approx(act[2].comm_s, rel=1e-6)
    alpha = alpha_beta_ablation()
    assert alpha[0.0] < alpha[1e-6] < alpha[5e-6]
