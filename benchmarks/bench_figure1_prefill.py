"""Figure 1 (right): prefill cost vs. latency Pareto for the PaLM family.

Time to process 2048 input tokens (no generation), sweeping batch and
chip count.  Paper shape checks: the batch/latency tradeoff is milder
than decode ("even batch size 1 runs with fairly low cost"), and
batch-512 prefill is ~2x cheaper per token than batch-512 decode thanks
to the weight-gathered layouts.
"""

from repro.hardware import TPU_V4
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B, PALM_8B
from repro.perf import (
    pareto_frontier,
    sweep_decode,
    sweep_prefill,
)

SERIES = [
    ("PaLM 8B", PALM_8B, None, (8, 16, 32, 64)),
    ("PaLM 62B", PALM_62B, None, (8, 16, 32, 64, 128)),
    ("PaLM 540B", PALM_540B_PADDED, PALM_540B.n_params, (32, 64, 128,
                                                         256)),
]
BATCHES = (1, 4, 16, 64, 256, 512)


def generate_figure() -> str:
    lines = ["Figure 1 (right): prefill cost vs latency Pareto "
             "(2048 input tokens)",
             f"{'series':22s} {'chips':>5s} {'batch':>6s} "
             f"{'seconds':>9s} {'chip-ms/tok':>12s} {'MFU':>7s}"]
    for name, config, mfu_params, chip_counts in SERIES:
        points = sweep_prefill(config, TPU_V4, input_len=2048,
                               chip_counts=chip_counts, batches=BATCHES,
                               mfu_params=mfu_params)
        for p in pareto_frontier(points):
            lines.append(
                f"{name:22s} {p.n_chips:5d} {p.batch:6d} "
                f"{p.latency_s:9.2f} "
                f"{p.cost_chip_seconds_per_token * 1e3:12.4f} "
                f"{p.mfu:7.1%}")
    return "\n".join(lines)


def test_figure1_prefill(benchmark, save_result):
    table = benchmark.pedantic(generate_figure, rounds=1, iterations=1)
    save_result("figure1_prefill", table)

    prefill_points = sweep_prefill(
        PALM_540B_PADDED, TPU_V4, input_len=2048, chip_counts=(64,),
        batches=BATCHES, mfu_params=PALM_540B.n_params)
    by_batch = {p.batch: p for p in prefill_points}
    # Mild batch tradeoff: batch-1 prefill cost within ~5x of batch-512
    # (decode's ratio is orders of magnitude).
    ratio = (by_batch[1].cost_chip_seconds_per_token
             / by_batch[512].cost_chip_seconds_per_token)
    assert ratio < 6.0

    # Batch-512 prefill ~2x cheaper per token than batch-512 decode.
    decode_points = sweep_decode(
        PALM_540B_PADDED, TPU_V4, context_len=2048, gen_len=64,
        chip_counts=(64,), batches=(512,), mfu_params=PALM_540B.n_params)
    decode_cost = decode_points[0].cost_chip_seconds_per_token
    prefill_cost = by_batch[512].cost_chip_seconds_per_token
    assert 1.3 < decode_cost / prefill_cost < 5.0
