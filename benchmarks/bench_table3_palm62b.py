"""Table 3: example PaLM 62B configurations.

Same four scenarios as Table 2, but on the paper's smaller slices: 16
chips for low latency, 32 (prefill) / 8 (decode) chips for high
throughput.  Checks the cross-model claims of Section 4.4: similar
high-throughput MFU to 540B, and low-batch latency growing *sublinearly*
with model size.
"""

from dataclasses import dataclass

from repro.hardware import TPU_V4, default_slice_shape
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator

WS2D_HEAD = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
WG_XYZ = LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH)


@dataclass(frozen=True)
class Scenario:
    name: str
    phase: str
    chips: int
    batch: int
    plan: LayoutPlan
    weight_bytes: int
    paper_latency_s: float
    paper_mfu: float


SCENARIOS = [
    Scenario("low-latency prefill", "prefill", 16, 1, WS2D_HEAD, 1,
             0.16, 0.36),
    Scenario("low-latency decode", "decode", 16, 32, WS2D_BATCH, 1,
             0.73, 0.08),
    Scenario("high-throughput prefill", "prefill", 32, 512, WG_XYZ, 2,
             20.2, 0.73),
    Scenario("high-throughput decode", "decode", 8, 512, WS2D_BATCH, 2,
             5.1, 0.37),
]


def run_scenario(s: Scenario):
    est = InferenceEstimator(PALM_62B, TPU_V4,
                             default_slice_shape(s.chips),
                             weight_dtype_bytes=s.weight_bytes)
    if s.phase == "prefill":
        cost = est.prefill_cost(s.plan, s.batch, 2048)
        return cost.time_s, cost.mfu
    gen = est.generate_cost(s.plan, s.batch, 2048, 64)
    return gen.total_s, gen.per_step.mfu


def generate_table() -> str:
    lines = ["Table 3: PaLM 62B example configurations",
             f"{'scenario':26s} {'chips':>5s} {'batch':>6s} "
             f"{'ours (s)':>9s} {'paper (s)':>10s} {'ours MFU':>9s} "
             f"{'paper MFU':>10s}"]
    for s in SCENARIOS:
        time_s, mfu = run_scenario(s)
        lines.append(f"{s.name:26s} {s.chips:5d} {s.batch:6d} "
                     f"{time_s:9.2f} {s.paper_latency_s:10.2f} "
                     f"{mfu:9.1%} {s.paper_mfu:10.1%}")
    return "\n".join(lines)


def test_table3(benchmark, save_result):
    table = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    save_result("table3_palm62b", table)

    for s in SCENARIOS:
        time_s, _ = run_scenario(s)
        assert 0.5 < time_s / s.paper_latency_s < 2.0, (
            f"{s.name}: {time_s:.2f}s vs paper {s.paper_latency_s}s")

    # Cross-model claims (Section 4.4):
    # similar high-throughput prefill MFU between 62B and 540B,
    _, mfu_62 = run_scenario(SCENARIOS[2])
    est540 = InferenceEstimator(PALM_540B_PADDED, TPU_V4,
                                default_slice_shape(64),
                                mfu_params=PALM_540B.n_params)
    mfu_540 = est540.prefill_cost(WG_XYZ, 512, 2048).mfu
    assert abs(mfu_62 - mfu_540) < 0.1

    # and sublinear low-batch decode latency growth with model size:
    # 540B/62B params ~ 8.7x, latency ratio should be well below that.
    t62, _ = run_scenario(SCENARIOS[1])
    est540_int8 = InferenceEstimator(PALM_540B_PADDED, TPU_V4,
                                     default_slice_shape(64),
                                     weight_dtype_bytes=1,
                                     mfu_params=PALM_540B.n_params)
    t540 = est540_int8.generate_cost(WS2D_BATCH, 64, 2048, 64).total_s
    ratio = t540 / t62
    params_ratio = PALM_540B.n_params / PALM_62B.n_params
    assert ratio < 0.6 * params_ratio
