"""The paper's offline high-throughput scenario (Sections 1, 4.4).

"For an offline throughput-oriented application, our implementation can
process 1984 tokens of input and generate 64 tokens of output, for huge
numbers of examples, with an overall FLOPS efficiency of 73%."

The key mechanism: switch the feedforward layout between phases — a
weight-gathered layout for the huge prefill batch, 2D weight-stationary
for decode — which works without moving any weights because both layouts
store weights identically (Section 3.2.3).

Run:  python examples/offline_batch_inference.py
"""

from repro import (
    TPU_V4,
    AttentionLayoutKind,
    FfnLayoutKind,
    InferenceEstimator,
    LayoutPlan,
    Phase,
    SelectionContext,
    Torus3D,
    select_plan,
)
from repro.model import PALM_540B, PALM_540B_PADDED

INPUT_TOKENS = 1984
OUTPUT_TOKENS = 64
BATCH = 512


def main():
    torus = Torus3D(4, 4, 4)
    estimator = InferenceEstimator(PALM_540B_PADDED, TPU_V4, torus,
                                   weight_dtype_bytes=2,  # bf16: weight
                                   # load time is irrelevant at this batch
                                   mfu_params=PALM_540B.n_params)

    prefill_plan = select_plan(SelectionContext(
        PALM_540B_PADDED, torus, Phase.PREFILL, BATCH, INPUT_TOKENS))
    decode_plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
    print(f"prefill plan: {prefill_plan.describe()}")
    print(f"decode plan:  {decode_plan.describe()}  "
          f"(same weight storage — switch is free)")

    prefill, generate = estimator.end_to_end(
        prefill_plan, decode_plan, batch=BATCH, input_len=INPUT_TOKENS,
        n_steps=OUTPUT_TOKENS)

    total_s = prefill.time_s + generate.total_s
    tokens_per_example = INPUT_TOKENS + OUTPUT_TOKENS
    overall_flops = 2 * PALM_540B.n_params * BATCH * tokens_per_example
    overall_mfu = overall_flops / (total_s * 64 * TPU_V4.peak_flops)

    print(f"\nbatch of {BATCH} examples x ({INPUT_TOKENS} in + "
          f"{OUTPUT_TOKENS} out) on 64 TPU v4:")
    print(f"  prefill : {prefill.time_s:7.1f} s   MFU {prefill.mfu:5.1%}")
    print(f"  decode  : {generate.total_s:7.1f} s   "
          f"MFU {generate.per_step.mfu:5.1%}")
    print(f"  overall : {total_s:7.1f} s   MFU {overall_mfu:5.1%} "
          f"(paper: 73%)")

    throughput = BATCH * tokens_per_example / total_s
    chip_seconds = 64 * total_s / (BATCH * tokens_per_example)
    print(f"  throughput: {throughput:,.0f} tokens/s on the slice")
    print(f"  cost: {chip_seconds * 1e3:.3f} chip-ms per token "
          f"-> {chip_seconds * 1e6 / 3600:.2f} chip-hours per M tokens")

    # Why not one layout for both phases?  Quantify the penalty.
    ws2d_prefill = estimator.prefill_cost(decode_plan, BATCH, INPUT_TOKENS)
    print(f"\nablation: prefilling with the decode layout (WS 2D) would "
          f"take {ws2d_prefill.time_s:.1f} s "
          f"({ws2d_prefill.time_s / prefill.time_s:.2f}x) at "
          f"MFU {ws2d_prefill.mfu:.1%} — the Figure 7 gap.")


if __name__ == "__main__":
    main()
