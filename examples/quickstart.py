"""Quickstart: the library in five minutes.

1. Ask the analytical framework for the best partitioning plan for a
   workload (Section 4.1's recipe).
2. Estimate latency / MFU / cost at PaLM-540B scale on 64 TPU v4 chips.
3. Prove the chosen layout is a *correct program* by executing it on the
   virtual mesh at a small scale and comparing against the unsharded
   reference model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    TPU_V4,
    InferenceEstimator,
    Phase,
    SelectionContext,
    Torus3D,
    VirtualMesh,
    select_plan,
)
from repro.layouts import ShardedTransformer
from repro.model import (
    PALM_540B,
    PALM_540B_PADDED,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)


def pick_plans():
    """Step 1: the analytical selector (no search, just the formulas)."""
    torus = Torus3D(4, 4, 4)  # 64 chips
    prefill_ctx = SelectionContext(PALM_540B_PADDED, torus, Phase.PREFILL,
                                   batch=512, tokens_per_seq=2048)
    decode_ctx = SelectionContext(PALM_540B_PADDED, torus, Phase.DECODE,
                                  batch=512, tokens_per_seq=1)
    prefill_plan = select_plan(prefill_ctx)
    decode_plan = select_plan(decode_ctx)
    print("selected prefill plan:", prefill_plan.describe())
    print("selected decode plan: ", decode_plan.describe())
    return torus, prefill_plan, decode_plan


def estimate(torus, prefill_plan, decode_plan):
    """Step 2: latency / MFU / cost at full scale."""
    estimator = InferenceEstimator(PALM_540B_PADDED, TPU_V4, torus,
                                   mfu_params=PALM_540B.n_params)
    prefill, generate = estimator.end_to_end(
        prefill_plan, decode_plan, batch=512, input_len=2048, n_steps=64)
    print(f"\nPaLM 540B, batch 512, 64 TPU v4 (bf16 weights):")
    print(f"  prefill 2048 tokens : {prefill.time_s:6.1f} s  "
          f"(MFU {prefill.mfu:5.1%})")
    print(f"  generate 64 tokens  : {generate.total_s:6.1f} s  "
          f"({generate.latency_per_token_s * 1e3:.1f} ms/token, "
          f"MFU {generate.per_step.mfu:5.1%})")
    cost = generate.per_step.cost_chip_seconds_per_token
    print(f"  decode cost: {cost:.4f} chip-seconds/token")


def verify_numerically(decode_plan):
    """Step 3: the same plan, executed on a virtual 2x2x2 mesh."""
    config = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                              d_head=8, vocab_size=32)
    weights = init_weights(config, seed=0)
    reference = ReferenceTransformer(weights)
    sharded = ShardedTransformer(weights, VirtualMesh((2, 2, 2)),
                                 decode_plan)
    prompt = np.random.default_rng(0).integers(0, config.vocab_size,
                                               size=(8, 4))
    ref_out = reference.generate(prompt, n_steps=6)
    sh_out = sharded.generate(prompt, n_steps=6)
    assert np.array_equal(ref_out, sh_out)
    print(f"\nvirtual-mesh check: 8-chip partitioned generation matches "
          f"the single-device reference exactly "
          f"({ref_out.shape[1]} tokens x {ref_out.shape[0]} sequences).")


def main():
    torus, prefill_plan, decode_plan = pick_plans()
    estimate(torus, prefill_plan, decode_plan)
    verify_numerically(decode_plan)


if __name__ == "__main__":
    main()
