"""The paper's chatbot scenario (Section 1).

"For an interactive application such as a chatbot running on PaLM 540B
with int8 weights, our implementation on 64 TPU v4 chips can process 64
tokens of text from a user, consult a cached conversation history of 1920
tokens, and generate a 64-token response in a total of 1.9 seconds."

This example (a) reproduces that number with the analytical model, using
batch-1 incremental prefill plus batch-64 decode (the Section 4.4 mixture
of batch sizes), and (b) demonstrates the same two-phase scheduling
numerically with the ``TwoPhaseServer`` on a small model.

Run:  python examples/chatbot_latency.py
"""

import numpy as np

from repro import (
    TPU_V4,
    AttentionLayoutKind,
    FfnLayoutKind,
    InferenceEstimator,
    LayoutPlan,
    Torus3D,
)
from repro.model import (
    PALM_540B,
    PALM_540B_PADDED,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.serving import Request, TwoPhaseServer

HISTORY_TOKENS = 1920
USER_TOKENS = 64
REPLY_TOKENS = 64


def analytical_turn_latency():
    torus = Torus3D(4, 4, 4)
    estimator = InferenceEstimator(
        PALM_540B_PADDED, TPU_V4, torus, weight_dtype_bytes=1,
        mfu_params=PALM_540B.n_params)
    # Incremental prefill (Section 3.5 "incremental processing of
    # sequences during prefill"): only the 64 new user tokens are run,
    # attending to the 1920 cached history tokens.  Batch 1 for latency.
    prefill_plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
    prefill = estimator.phase_cost(prefill_plan, batch=1,
                                   l_new=USER_TOKENS,
                                   context_before=HISTORY_TOKENS)
    # Decode at batch 64: "we can increase the batch size up to 64 with
    # negligible latency impact" (Section 4.4) — e.g. 64 concurrent users.
    decode_plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
    generate = estimator.generate_cost(
        decode_plan, batch=64,
        context_before=HISTORY_TOKENS + USER_TOKENS, n_steps=REPLY_TOKENS)
    total = prefill.time_s + generate.total_s
    print("Chatbot turn on PaLM 540B (int8), 64 TPU v4:")
    print(f"  prefill {USER_TOKENS} new tokens against {HISTORY_TOKENS} "
          f"cached: {prefill.time_s * 1e3:6.1f} ms")
    print(f"  generate {REPLY_TOKENS}-token reply (batch 64): "
          f"{generate.total_s:5.2f} s "
          f"({generate.latency_per_token_s * 1e3:.1f} ms/token)")
    print(f"  total turn latency: {total:.2f} s   (paper: 1.9 s)")


def numerical_two_phase_demo():
    """The same serving pattern, executed for real on a tiny model."""
    config = tiny_test_config()
    model = ReferenceTransformer(init_weights(config, seed=0))
    server = TwoPhaseServer(model, decode_batch=4)
    rng = np.random.default_rng(0)
    requests = [Request(i, rng.integers(0, config.vocab_size, size=6),
                        max_new_tokens=5) for i in range(4)]
    completions = server.serve(requests)
    print(f"\nTwoPhaseServer demo (tiny model): {server.prefill_count} "
          f"batch-1 prefills merged into {server.decode_batches} "
          f"batch-{len(requests)} decode group(s)")
    for completion in completions:
        print(f"  request {completion.request_id}: generated "
              f"{[int(t) for t in completion.generated]}")
    # Each reply is identical to what the user would get served alone.
    for request, completion in zip(requests, completions):
        solo = model.generate(request.prompt[None, :],
                              request.max_new_tokens)[0]
        assert np.array_equal(completion.tokens, solo)
    print("  (verified: batching changed no one's reply)")


if __name__ == "__main__":
    analytical_turn_latency()
    numerical_two_phase_demo()
