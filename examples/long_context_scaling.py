"""Long-context scaling with multiquery attention (Sections 3.3, 4.2).

Shows the two halves of the paper's attention story on PaLM 540B / 64
TPU v4 chips:

1. **Memory** (Table 1): the maximum context length each attention
   variant supports under a 30%-of-HBM KV budget — batch-sharded
   multiquery reaches ~32x further than multihead.
2. **Speed** (Figure 8): decode latency versus context length for the
   8-layer model variant — the baseline layouts blow up with context as
   the replicated KV cache is streamed every step, the optimized layout
   stays nearly flat.

Run:  python examples/long_context_scaling.py
"""

from repro import (
    TPU_V4,
    AttentionLayoutKind,
    FfnLayoutKind,
    InferenceEstimator,
    LayoutPlan,
    Torus3D,
)
from repro.model import (
    PALM_540B,
    PALM_540B_8LAYER,
    PALM_540B_8LAYER_MULTIHEAD,
    PALM_540B_MULTIHEAD,
)
from repro.perf import table1_max_context

VARIANTS = [
    ("multihead (d_head 128)", PALM_540B_MULTIHEAD,
     AttentionLayoutKind.HEAD),
    ("baseline multiquery", PALM_540B, AttentionLayoutKind.HEAD),
    ("optimized multiquery", PALM_540B, AttentionLayoutKind.BATCH),
]


def print_table1():
    print("Max context length, 30% of HBM for KV cache (Table 1):")
    print(f"  {'variant':24s} {'batch=128':>12s} {'batch=512':>12s}")
    for name, config, layout in VARIANTS:
        row = [table1_max_context(config, layout, TPU_V4, 64, batch)
               for batch in (128, 512)]
        print(f"  {name:24s} {row[0]:12,d} {row[1]:12,d}")


def print_figure8():
    print("\nDecode latency/token vs context (8-layer variant, batch 256,"
          " Figure 8):")
    torus = Torus3D(4, 4, 4)
    models = [
        ("multihead", PALM_540B_8LAYER_MULTIHEAD,
         LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)),
        ("multiquery (heads)", PALM_540B_8LAYER,
         LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)),
        ("multiquery (batch)", PALM_540B_8LAYER,
         LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)),
    ]
    contexts = [128, 512, 2048, 8192, 32768]
    header = "  context".ljust(12) + "".join(f"{n:>20s}" for n, _, _
                                             in models)
    print(header)
    for context in contexts:
        cells = []
        for _, config, plan in models:
            est = InferenceEstimator(config, TPU_V4, torus)
            step = est.decode_step_cost(plan, batch=256,
                                        context_len=context)
            cells.append(f"{step.time_s * 1e3:17.2f} ms")
        print(f"  {context:<10,d}" + "".join(cells))
    print("\n  (the batch-sharded column stays nearly flat: its per-chip "
        "KV stream is 64x smaller)")


if __name__ == "__main__":
    print_table1()
    print_figure8()
