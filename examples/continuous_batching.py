"""Continuous batching: keeping the decoder's slots full.

The paper's Section 4.4 recipe batches sequences that start and stop
together; continuous batching (the engine behind modern LLM servers)
generalizes it — finished sequences retire from their decode slots and
queued requests are admitted mid-stream.  This example serves a bursty
mix of short and long requests three ways and counts decode steps:

1. one-at-a-time (batch 1),
2. static batching (wait for a full batch, drain it fully),
3. continuous batching (slots refill as they free up),

then verifies the continuous engine returned exactly the tokens each
request would get alone.

Run:  python examples/continuous_batching.py
"""

import numpy as np

from repro.model import ReferenceTransformer, init_weights, tiny_test_config
from repro.serving import ContinuousBatchingEngine, Request, TwoPhaseServer

CONFIG = tiny_test_config()
MODEL = ReferenceTransformer(init_weights(CONFIG, seed=0))
SLOTS = 4


def make_requests():
    rng = np.random.default_rng(7)
    budgets = [2, 9, 3, 8, 2, 7, 3, 2, 6, 2, 2, 5]
    return [Request(i, rng.integers(0, CONFIG.vocab_size, size=4), b)
            for i, b in enumerate(budgets)]


def static_batch_steps(requests, batch):
    """Static batching pads every batch to its longest budget."""
    steps = 0
    for start in range(0, len(requests), batch):
        group = requests[start:start + batch]
        steps += max(r.max_new_tokens for r in group) - 1
    return steps


def main():
    requests = make_requests()
    total_tokens = sum(r.max_new_tokens for r in requests)
    print(f"{len(requests)} requests, {total_tokens} tokens to generate, "
          f"{SLOTS} decode slots\n")

    one_at_a_time = sum(r.max_new_tokens - 1 for r in requests)
    static = static_batch_steps(requests, SLOTS)
    engine = ContinuousBatchingEngine(MODEL, max_slots=SLOTS, max_len=16)
    completions = engine.serve(requests)

    print(f"decode steps, batch 1          : {one_at_a_time:4d}")
    print(f"decode steps, static batch of {SLOTS}: {static:4d}  "
          f"(drained batches pad to the longest request)")
    print(f"decode steps, continuous       : {engine.steps:4d}  "
          f"({engine.admissions} admissions into {SLOTS} slots)")

    for request, completion in zip(requests, completions):
        expected = MODEL.generate(request.prompt[None, :],
                                  request.max_new_tokens)[0]
        assert np.array_equal(completion.tokens, expected)
    print("\nverified: every request's tokens equal solo generation —")
    print("slot sharing and mid-stream admission changed nothing.")


if __name__ == "__main__":
    main()
