"""Serving under a latency SLO: the interactive/offline tradeoff, live.

The paper's two application archetypes (Section 1) — latency-bound chat
and throughput-bound offline inference — differ only in batching policy.
This example simulates a PaLM 540B service on 64 TPU v4 chips under
Poisson traffic and shows how the decode batch cap moves the operating
point along the latency/cost curve, then sizes the cheapest configuration
that meets a p95 target.

Run:  python examples/serving_slo.py
"""

from repro import (
    TPU_V4,
    AttentionLayoutKind,
    FfnLayoutKind,
    InferenceEstimator,
    LayoutPlan,
    Torus3D,
)
from repro.model import PALM_540B, PALM_540B_PADDED
from repro.serving.simulation import (
    ServerConfig,
    WorkloadSpec,
    poisson_arrivals,
    simulate_serving,
)

WORKLOAD = WorkloadSpec(input_len=64, gen_len=64)   # one chat turn
RATE_RPS = 6.0
DURATION_S = 150.0
P95_TARGET_S = 4.0


def make_estimator():
    return InferenceEstimator(PALM_540B_PADDED, TPU_V4, Torus3D(4, 4, 4),
                              weight_dtype_bytes=1,
                              mfu_params=PALM_540B.n_params)


def run(max_batch, max_wait_s):
    config = ServerConfig(
        max_batch=max_batch, max_wait_s=max_wait_s,
        prefill_plan=LayoutPlan(FfnLayoutKind.WS_2D,
                                AttentionLayoutKind.HEAD),
        decode_plan=LayoutPlan(FfnLayoutKind.WS_2D,
                               AttentionLayoutKind.BATCH))
    arrivals = poisson_arrivals(RATE_RPS, DURATION_S, seed=0)
    return simulate_serving(make_estimator(), config, WORKLOAD, arrivals)


def main():
    print(f"PaLM 540B (int8) on 64 TPU v4 — {RATE_RPS:.0f} req/s of "
          f"{WORKLOAD.input_len}-in/{WORKLOAD.gen_len}-out turns\n")
    print(f"{'max_batch':>9s} {'wait':>6s} {'p50':>7s} {'p95':>7s} "
          f"{'mean batch':>11s} {'chip-s/req':>11s}")
    feasible = []
    for max_batch, wait in [(1, 0.0), (4, 0.1), (16, 0.1), (64, 0.2),
                            (64, 1.0)]:
        report = run(max_batch, wait)
        chip_seconds = 64 * report.busy_s / report.completed
        print(f"{max_batch:>9d} {wait:>5.1f}s "
              f"{report.latency_percentile(50):6.2f}s "
              f"{report.latency_percentile(95):6.2f}s "
              f"{report.mean_batch:11.1f} {chip_seconds:11.2f}")
        if report.latency_percentile(95) <= P95_TARGET_S:
            feasible.append((chip_seconds, max_batch, wait, report))

    print()
    if feasible:
        cost, max_batch, wait, report = min(feasible)
        print(f"cheapest config meeting p95 <= {P95_TARGET_S:.0f}s: "
              f"max_batch={max_batch}, wait={wait:.1f}s "
              f"({cost:.2f} chip-seconds/request, p95 "
              f"{report.latency_percentile(95):.2f}s)")
    else:
        print(f"no configuration met p95 <= {P95_TARGET_S:.0f}s at "
              f"{RATE_RPS:.0f} req/s — add chips or shed load")


if __name__ == "__main__":
    main()
