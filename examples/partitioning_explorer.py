"""Interactive-style partitioning explorer (the Section 3 framework).

Given a model, a latency target, and a phase, sweep chip counts / batch
sizes / layouts with the analytical model, print the Pareto frontier, and
recommend a deployment — the workflow the paper advocates over black-box
search (Section 1).

Run:  python examples/partitioning_explorer.py [--model palm-62b]
      [--target-ms 40]
"""

import argparse

from repro import TPU_V4, get_model, pareto_frontier, sweep_decode
from repro.model import PALM_540B, PALM_540B_PADDED


def explore(model_name: str, target_ms: float) -> None:
    config = get_model(model_name)
    mfu_params = None
    if config.name == "palm-540b":
        # Serve the padded variant (Section 4), charge MFU for the pad.
        config, mfu_params = PALM_540B_PADDED, PALM_540B.n_params

    points = sweep_decode(config, TPU_V4, context_len=2048, gen_len=64,
                          weight_dtype_bytes=1, mfu_params=mfu_params)
    frontier = pareto_frontier(points)

    print(f"Decode Pareto frontier for {config.name} (int8 weights, "
          f"context 2048):")
    print(f"  {'chips':>5s} {'batch':>6s} {'layout':32s} "
          f"{'ms/token':>9s} {'MFU':>6s} {'chip-ms/tok':>12s}")
    for p in frontier:
        print(f"  {p.n_chips:5d} {p.batch:6d} {p.plan.describe():32s} "
              f"{p.latency_s * 1e3:9.1f} {p.mfu:6.1%} "
              f"{p.cost_chip_seconds_per_token * 1e3:12.3f}")

    feasible = [p for p in frontier if p.latency_s * 1e3 <= target_ms]
    print()
    if not feasible:
        fastest = min(frontier, key=lambda p: p.latency_s)
        print(f"no configuration meets {target_ms:.0f} ms/token; fastest "
              f"is {fastest.latency_s * 1e3:.1f} ms with "
              f"{fastest.describe()}")
        return
    cheapest = min(feasible, key=lambda p: p.cost_chip_seconds_per_token)
    print(f"recommended for <= {target_ms:.0f} ms/token (cheapest "
          f"feasible):")
    print(f"  {cheapest.describe()}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="palm-540b",
                        help="palm-8b | palm-62b | palm-540b")
    parser.add_argument("--target-ms", type=float, default=40.0,
                        help="per-token decode latency target")
    args = parser.parse_args()
    explore(args.model, args.target_ms)
