"""Cross-phase layout switching on shared weight storage (Section 3.2.3).

The paper's Table 2 high-throughput recipe prefills with a weight-gathered
layout and decodes with 2D weight-stationary, *without moving weights*,
because both store weights as ``E_x F_yz``.  These tests run that exact
workflow end-to-end on the virtual mesh: WG prefill -> cache reshard ->
WS-2D batch-sharded decode, and check (a) the output equals the reference
and (b) the big weight shards are literally shared (same array objects).
"""

import numpy as np
import pytest

from repro.layouts import ShardedTransformer
from repro.mesh import VirtualMesh
from repro.model import (
    AttentionKind,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)
MESH = (2, 2, 2)
PROMPT = np.random.default_rng(5).integers(0, CFG.vocab_size, size=(8, 4))

WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
WS2D_HEAD = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
WG_PLANS = [LayoutPlan(k, AttentionLayoutKind.BATCH)
            for k in (FfnLayoutKind.WG_X, FfnLayoutKind.WG_XY,
                      FfnLayoutKind.WG_XYZ)]


def reference_generation(n_steps=3):
    model = ReferenceTransformer(WEIGHTS)
    return model.generate(PROMPT, n_steps)


class TestWeightSharing:
    @pytest.mark.parametrize("plan", WG_PLANS,
                             ids=lambda p: p.ffn.value)
    def test_weight_shards_shared_by_reference(self, plan):
        prefill_model = ShardedTransformer(WEIGHTS, VirtualMesh(MESH),
                                           plan)
        decode_model = prefill_model.with_plan(WS2D_BATCH)
        for before, after in zip(prefill_model.layers,
                                 decode_model.layers):
            for name in ("wq", "wk", "wv", "wo", "w_in", "w_out",
                         "w_gate"):
                assert before[name] is after[name], name
        assert decode_model.embedding is prefill_model.embedding

    def test_norm_scales_resharded_correctly(self):
        prefill_model = ShardedTransformer(WEIGHTS, VirtualMesh(MESH),
                                           WG_PLANS[1])
        decode_model = prefill_model.with_plan(WS2D_BATCH)
        np.testing.assert_array_equal(
            decode_model.layers[0]["ln"].to_global(),
            WEIGHTS.layers[0].ln_scale)

    def test_incompatible_storage_rejected(self):
        model = ShardedTransformer(
            WEIGHTS, VirtualMesh(MESH),
            LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD))
        with pytest.raises(ValueError, match="share weight storage"):
            model.with_plan(WS2D_BATCH)

    def test_switch_within_2d_family_both_directions(self):
        a = ShardedTransformer(WEIGHTS, VirtualMesh(MESH), WS2D_HEAD)
        b = a.with_plan(WG_PLANS[2])
        c = b.with_plan(WS2D_BATCH)
        assert c.layers[0]["wq"] is a.layers[0]["wq"]


class TestCrossPhaseGeneration:
    @pytest.mark.parametrize("prefill_plan", WG_PLANS + [WS2D_HEAD],
                             ids=lambda p: p.ffn.value + "/"
                             + p.attention.value)
    def test_wg_prefill_then_ws2d_decode_matches_reference(self,
                                                           prefill_plan):
        """The Table 2 high-throughput serving recipe, end to end."""
        mesh = VirtualMesh(MESH)
        prefill_model = ShardedTransformer(WEIGHTS, mesh, prefill_plan)
        decode_model = prefill_model.with_plan(WS2D_BATCH)

        n_steps = 3
        logits, caches = prefill_model.prefill(
            PROMPT, PROMPT.shape[1] + n_steps)
        caches = prefill_model.reshard_cache(caches, decode_model)
        tokens = [PROMPT]
        current = np.argmax(logits, -1)
        for _ in range(n_steps - 1):
            tokens.append(current[:, None])
            current = np.argmax(decode_model.decode_step(current, caches),
                                -1)
        tokens.append(current[:, None])
        generated = np.concatenate(tokens, axis=1)
        np.testing.assert_array_equal(generated, reference_generation())

    def test_multihead_cross_phase(self):
        config = CFG.replace(attention=AttentionKind.MULTIHEAD)
        weights = init_weights(config, seed=1)
        mesh = VirtualMesh(MESH)
        prefill_model = ShardedTransformer(
            weights, mesh,
            LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH))
        decode_model = prefill_model.with_plan(WS2D_HEAD)
        logits, caches = prefill_model.prefill(PROMPT, 6)
        caches = prefill_model.reshard_cache(caches, decode_model)
        current = np.argmax(logits, -1)
        step = decode_model.decode_step(current, caches)

        reference = ReferenceTransformer(weights)
        ref_logits, ref_caches = reference.prefill(PROMPT, 6)
        ref_step = reference.decode_step(np.argmax(ref_logits, -1),
                                         ref_caches)
        np.testing.assert_allclose(step, ref_step, rtol=1e-8, atol=1e-10)

    def test_cache_reshard_preserves_content(self):
        mesh = VirtualMesh(MESH)
        prefill_model = ShardedTransformer(WEIGHTS, mesh, WG_PLANS[1])
        decode_model = prefill_model.with_plan(WS2D_BATCH)
        _, caches = prefill_model.prefill(PROMPT, 8)
        resharded = prefill_model.reshard_cache(caches, decode_model)
        for old, new in zip(caches, resharded):
            assert new.length == old.length
            old_k, _ = old.as_sharded()
            new_k, _ = new.as_sharded()
            np.testing.assert_allclose(new_k.to_global(),
                                       old_k.to_global())
