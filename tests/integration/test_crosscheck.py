"""Estimator vs. executed-trace cross-validation (the acceptance matrix).

The crosscheck pass replays a real prefill + decode step with span
tracing on and matches the estimator's symbolic collective stream
event-for-event — op, axes, bytes — on the three Section 3.2 layout
families, under both mesh backends.  This is the automated form of
EXPERIMENTS.md's "comm term pinned to the executed program" claim.
"""

import pytest

from repro.observability import crosscheck
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)


def _plan_id(plan):
    return f"{plan.ffn.value}/{plan.attention.value}"


@pytest.mark.parametrize("backend", ["loop", "stacked"])
@pytest.mark.parametrize("plan", crosscheck.DEFAULT_PLANS, ids=_plan_id)
def test_event_for_event_match(plan, backend):
    checks = crosscheck.crosscheck_plan(plan, backend)
    assert {c.phase for c in checks} == {"prefill", "decode"}
    for check in checks:
        assert check.executed_events > 0
        assert check.ok, "\n".join(str(d) for d in check.deltas)
        assert check.matched == check.executed_events == \
            check.modeled_events


def test_default_plans_cover_the_three_layout_families():
    ffns = {plan.ffn for plan in crosscheck.DEFAULT_PLANS}
    assert FfnLayoutKind.WS_1D in ffns      # 1D weight-stationary
    assert FfnLayoutKind.WS_2D in ffns      # 2D weight-stationary
    assert any(k.is_weight_gathered for k in ffns)  # weight-gathered


def test_format_table_is_markdown_with_one_row_per_cell():
    checks = crosscheck.crosscheck_plan(
        LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD), "loop")
    table = crosscheck.format_table(checks)
    lines = table.splitlines()
    assert lines[0].startswith("| layout ")
    assert len(lines) == 2 + len(checks)
    assert all("| ok |" in line for line in lines[2:])


def test_deltas_surface_estimator_drift():
    """A deliberately wrong modeled stream must produce typed deltas."""
    from types import SimpleNamespace

    class FakeSpan(SimpleNamespace):
        pass

    executed = [FakeSpan(name="all_gather",
                         attrs={"axes": ("x",), "payload_bytes": 800})]
    modeled = [SimpleNamespace(op="all_gather", axes=("y",),
                               payload_elements=100)]
    deltas = crosscheck._compare(executed, modeled, itemsize=8)
    assert [d.what for d in deltas] == ["axes"]

    modeled_ok_axes = [SimpleNamespace(op="all_gather", axes=("x",),
                                       payload_elements=999)]
    deltas = crosscheck._compare(executed, modeled_ok_axes, itemsize=8)
    assert [d.what for d in deltas] == ["bytes"]

    deltas = crosscheck._compare(executed, [], itemsize=8)
    assert [d.what for d in deltas] == ["extra"]
    deltas = crosscheck._compare(
        [], modeled_ok_axes, itemsize=8)
    assert [d.what for d in deltas] == ["missing"]
