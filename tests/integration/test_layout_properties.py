"""Property-based layout equivalence: random meshes, shapes, and plans.

The parametrized equivalence suite pins the 2x2x2 mesh; these tests let
hypothesis draw mesh shapes (including degenerate axes), model dimensions,
attention/FFN variants, and layout plans, and assert the partitioned
program still matches the reference bit-for-bit.  This is the test that
catches divisibility and axis-ordering edge cases (e.g. X=1 tori, single
KV head sharding, F not a multiple of the hidden group).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.layouts import ShardedTransformer
from repro.mesh import VirtualMesh
from repro.model import (
    AttentionKind,
    FfnKind,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)

MESH_SHAPES = [(1, 1, 2), (1, 2, 2), (2, 2, 2), (1, 4, 2), (2, 1, 4),
               (1, 1, 4)]
FFN_KINDS = list(FfnLayoutKind)


@st.composite
def scenarios(draw):
    shape = draw(st.sampled_from(MESH_SHAPES))
    n = shape[0] * shape[1] * shape[2]
    ffn = draw(st.sampled_from(FFN_KINDS))
    attention_kind = draw(st.sampled_from(list(AttentionKind)))
    if ffn.is_weight_gathered:
        attn_layout = AttentionLayoutKind.BATCH
    elif attention_kind is AttentionKind.MULTIHEAD:
        attn_layout = AttentionLayoutKind.HEAD
    else:
        attn_layout = draw(st.sampled_from(list(AttentionLayoutKind)))
    plan = LayoutPlan(ffn, attn_layout)

    # Dimensions sized for divisibility on any candidate mesh: every
    # grouping of <= 8 chips divides 8.
    heads = draw(st.sampled_from([8, 16]))
    config = tiny_test_config(
        n_layers=draw(st.sampled_from([1, 2])),
        d_model=draw(st.sampled_from([16, 32])),
        d_ff=draw(st.sampled_from([32, 64])),
        n_heads=heads, d_head=8,
        vocab_size=32,
        attention=attention_kind,
        ffn=draw(st.sampled_from(list(FfnKind))),
        parallel_block=draw(st.booleans()),
    )
    batch = 8
    seed = draw(st.integers(0, 2**31 - 1))
    return shape, plan, config, batch, seed


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenarios())
def test_random_layouts_match_reference(scenario):
    shape, plan, config, batch, seed = scenario
    weights = init_weights(config, seed=seed % 1000)
    reference = ReferenceTransformer(weights)
    sharded = ShardedTransformer(weights, VirtualMesh(shape), plan)

    rng = np.random.default_rng(seed)
    prompt = rng.integers(0, config.vocab_size, size=(batch, 3))
    max_len = 5

    ref_logits, ref_caches = reference.prefill(prompt, max_len)
    sh_logits, sh_caches = sharded.prefill(prompt, max_len)
    np.testing.assert_allclose(sh_logits, ref_logits, rtol=1e-8,
                               atol=1e-10)

    tokens = np.argmax(ref_logits, -1)
    for _ in range(2):
        ref_step = reference.decode_step(tokens, ref_caches)
        sh_step = sharded.decode_step(tokens, sh_caches)
        np.testing.assert_allclose(sh_step, ref_step, rtol=1e-8,
                                   atol=1e-10)
        tokens = np.argmax(ref_step, -1)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenarios(), st.integers(1, 3))
def test_random_layouts_comm_model_matches(scenario, l_new):
    """The symbolic comm model tracks the executor on random scenarios."""
    from repro.mesh import enable_comm_log
    from repro.perf.comm_model import forward_comm_events

    shape, plan, config, batch, seed = scenario
    weights = init_weights(config, seed=seed % 1000)
    mesh = VirtualMesh(shape)
    log = enable_comm_log(mesh)
    sharded = ShardedTransformer(weights, mesh, plan)
    log.clear()

    prompt = np.random.default_rng(seed).integers(
        0, config.vocab_size, size=(batch, l_new))
    sharded.prefill(prompt, l_new)

    modeled = forward_comm_events(config, plan, mesh.topology, batch,
                                  l_new)
    assert len(log) == len(modeled)
    for got, want in zip(log, modeled):
        assert got.op == want.op
        assert got.axes == want.axes
        assert got.payload_bytes == want.payload_elements * 8
