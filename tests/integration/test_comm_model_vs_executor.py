"""The analytic communication model must match the executed program.

For every layout plan we run one prefill and one decode step of a tiny
model on the virtual mesh with communication logging enabled, and compare
against :func:`repro.perf.comm_model.forward_comm_events` — op by op, axes
by axes, byte by byte.  This is what licenses using the closed-form model
at PaLM-540B scale: it is the measured communication of a program whose
numerics are verified, not a hand-derived approximation.
"""

import numpy as np
import pytest

from repro.layouts import ShardedTransformer
from repro.mesh import VirtualMesh, enable_comm_log
from repro.model import (
    AttentionKind,
    FfnKind,
    init_weights,
    tiny_test_config,
)
from repro.partitioning import AttentionLayoutKind, FfnLayoutKind, LayoutPlan
from repro.perf.comm_model import forward_comm_events

MESH_SHAPE = (2, 2, 2)
CFG_KWARGS = dict(n_layers=2, d_model=16, d_ff=32, n_heads=8, d_head=8,
                  vocab_size=32)
FLOAT64_BYTES = 8

ALL_PLANS = [
    LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD),
    LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD),
    LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WG_X, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH),
]


def _plan_id(plan):
    return f"{plan.ffn.value}/{plan.attention.value}"


def executed_log(config, plan, batch, prompt_len, decode_steps):
    """(prefill events, one-decode-step events) measured on the mesh."""
    weights = init_weights(config)
    mesh = VirtualMesh(MESH_SHAPE)
    log = enable_comm_log(mesh)
    model = ShardedTransformer(weights, mesh, plan)
    log.clear()

    rng = np.random.default_rng(0)
    prompt = rng.integers(0, config.vocab_size, size=(batch, prompt_len))
    _, caches = model.prefill(prompt, prompt_len + decode_steps)
    prefill_events = list(log)

    log.clear()
    model.decode_step(prompt[:, -1], caches)
    decode_events = list(log)
    return prefill_events, decode_events


def assert_events_match(measured, modeled, mesh):
    assert len(measured) == len(modeled), (
        f"{len(measured)} executed collectives vs {len(modeled)} modeled:\n"
        f"executed: {[(r.op, r.axes) for r in measured]}\n"
        f"modeled:  {[(e.op, e.axes) for e in modeled]}")
    for i, (got, want) in enumerate(zip(measured, modeled)):
        assert got.op == want.op, f"event {i}: {got.op} != {want.op}"
        assert got.axes == want.axes, (
            f"event {i} ({got.op}): axes {got.axes} != {want.axes}")
        want_bytes = want.payload_elements * FLOAT64_BYTES
        assert got.payload_bytes == pytest.approx(want_bytes), (
            f"event {i} ({got.op} over {got.axes}): measured "
            f"{got.payload_bytes} B vs modeled {want_bytes} B")


@pytest.mark.parametrize("plan", ALL_PLANS, ids=_plan_id)
@pytest.mark.parametrize("parallel", [True, False],
                         ids=["parallel", "serial"])
def test_events_match_multiquery(plan, parallel):
    config = tiny_test_config(parallel_block=parallel, **CFG_KWARGS)
    batch, prompt_len = 8, 4
    prefill, decode = executed_log(config, plan, batch, prompt_len, 1)
    mesh = VirtualMesh(MESH_SHAPE)
    assert_events_match(
        prefill,
        forward_comm_events(config, plan, mesh.topology, batch, prompt_len),
        mesh)
    assert_events_match(
        decode,
        forward_comm_events(config, plan, mesh.topology, batch, 1),
        mesh)


@pytest.mark.parametrize("plan", [p for p in ALL_PLANS
                                  if p.attention is AttentionLayoutKind.HEAD
                                  or p.ffn.is_weight_gathered],
                         ids=_plan_id)
def test_events_match_multihead(plan):
    config = tiny_test_config(attention=AttentionKind.MULTIHEAD,
                              **CFG_KWARGS)
    batch, prompt_len = 8, 4
    prefill, decode = executed_log(config, plan, batch, prompt_len, 1)
    mesh = VirtualMesh(MESH_SHAPE)
    assert_events_match(
        prefill,
        forward_comm_events(config, plan, mesh.topology, batch, prompt_len),
        mesh)


def test_events_match_mlp_ffn():
    config = tiny_test_config(ffn=FfnKind.MLP, **CFG_KWARGS)
    plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
    prefill, _ = executed_log(config, plan, 8, 4, 1)
    mesh = VirtualMesh(MESH_SHAPE)
    assert_events_match(
        prefill, forward_comm_events(config, plan, mesh.topology, 8, 4),
        mesh)
