"""Smoke tests: every example script runs end-to-end and prints what its
docstring promises.  Keeps the examples from rotting as the API evolves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parents[2] / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}")
    return result.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 5


def test_quickstart():
    out = run_example("quickstart.py")
    assert "selected decode plan" in out
    assert "matches the single-device reference" in out


def test_chatbot_latency():
    out = run_example("chatbot_latency.py")
    assert "total turn latency" in out
    assert "(paper: 1.9 s)" in out
    assert "verified: batching changed no one's reply" in out
    # The modeled turn lands near the paper's 1.9 seconds.
    total = float(out.split("total turn latency: ")[1].split(" s")[0])
    assert 1.2 < total < 2.8


def test_offline_batch_inference():
    out = run_example("offline_batch_inference.py")
    assert "overall" in out
    mfu = float(out.split("overall :")[1].split("MFU")[1].split("%")[0])
    assert 60.0 < mfu < 85.0  # paper: 73%


def test_long_context_scaling():
    out = run_example("long_context_scaling.py")
    assert "42,653" in out  # Table 1's optimized multiquery cell
    assert "32,768" in out or "32768" in out


def test_serving_slo():
    out = run_example("serving_slo.py")
    assert "cheapest config meeting p95" in out


@pytest.mark.slow
def test_partitioning_explorer():
    out = run_example("partitioning_explorer.py", timeout=600)
    assert "recommended" in out or "no configuration" in out
