"""End-to-end two-phase serving on the partitioned model.

The capstone integration: batch-1 prefill on one plan, host-mediated
cache merge, batch-N decode on another plan with shared weight storage —
the full Section 4.4 deployment — must generate exactly what the
unsharded reference generates.
"""

import numpy as np
import pytest

from repro.layouts import ShardedTransformer
from repro.mesh import VirtualMesh
from repro.model import (
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.serving import Request, TwoPhaseServer
from repro.serving.sharded import ShardedTwoPhaseServer, merge_sharded_caches

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)
PREFILL_PLAN = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
DECODE_PLAN = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)


def make_servers(decode_batch=8):
    prefill_model = ShardedTransformer(WEIGHTS, VirtualMesh((2, 2, 2)),
                                       PREFILL_PLAN)
    decode_model = prefill_model.with_plan(DECODE_PLAN)
    sharded = ShardedTwoPhaseServer(prefill_model, decode_model,
                                    decode_batch=decode_batch)
    reference = TwoPhaseServer(ReferenceTransformer(WEIGHTS),
                               decode_batch=decode_batch)
    return sharded, reference


def make_requests(n, length=4, n_new=3):
    rng = np.random.default_rng(9)
    return [Request(i, rng.integers(0, CFG.vocab_size, size=length),
                    n_new) for i in range(n)]


class TestShardedTwoPhase:
    def test_matches_reference_server(self):
        sharded, reference = make_servers()
        requests = make_requests(8)
        got = sharded.serve(requests)
        want = reference.serve(requests)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.tokens, w.tokens)

    def test_shared_weights_enforced(self):
        a = ShardedTransformer(WEIGHTS, VirtualMesh((2, 2, 2)),
                               PREFILL_PLAN)
        other = ShardedTransformer(init_weights(CFG, seed=1),
                                   VirtualMesh((2, 2, 2)), DECODE_PLAN)
        with pytest.raises(ValueError, match="share weights"):
            ShardedTwoPhaseServer(a, other)

    def test_wg_prefill_model(self):
        """Weight-gathered prefill + WS-2D decode, as in Table 2."""
        prefill_model = ShardedTransformer(
            WEIGHTS, VirtualMesh((2, 2, 2)),
            LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH))
        decode_model = prefill_model.with_plan(DECODE_PLAN)
        # WG prefill shards batch over all 8 chips, so prefill in one
        # batch-8 group rather than batch-1 (single sequences cannot be
        # batch-sharded); decoding still matches.
        requests = make_requests(8)
        prompts = np.stack([r.prompt for r in requests])
        logits, caches = prefill_model.prefill(prompts, 7)
        caches = prefill_model.reshard_cache(caches, decode_model)
        current = np.argmax(logits, -1)
        outputs = [current[:, None]]
        for _ in range(2):
            current = np.argmax(decode_model.decode_step(current, caches),
                                -1)
            outputs.append(current[:, None])
        generated = np.concatenate(outputs, axis=1)

        reference = ReferenceTransformer(WEIGHTS)
        expected = reference.generate(prompts, 3)[:, 4:]
        np.testing.assert_array_equal(generated, expected)

    def test_mixed_request_budgets(self):
        # The decode batch must divide over the batch-sharding group (the
        # paper's minimum-torus-axis constraint), so serve groups of 8
        # with varying per-request generation budgets.
        sharded, reference = make_servers(decode_batch=8)
        base = make_requests(8)
        requests = [Request(r.request_id, r.prompt, 2 + i % 4)
                    for i, r in enumerate(base)]
        got = sharded.serve(requests)
        want = reference.serve(requests)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.tokens, w.tokens)
            assert g.n_generated == w.n_generated


class TestMergeShardedCaches:
    def test_empty_request_list_rejected(self):
        sharded, _ = make_servers()
        with pytest.raises(ValueError, match="empty"):
            merge_sharded_caches([], sharded.decode_model)

    def test_mismatched_lengths_rejected(self):
        sharded, _ = make_servers()
        _, c1 = sharded.prefill_model.prefill(np.array([[1, 2, 3]]), 8)
        _, c2 = sharded.prefill_model.prefill(np.array([[1, 2]]), 8)
        with pytest.raises(ValueError, match="group requests by length"):
            merge_sharded_caches([c1, c2], sharded.decode_model)

    def test_dtype_comes_from_cache_attribute(self):
        # The merge must not probe shard storage for the dtype (the
        # layout differs between backends); the cache records it.
        sharded, _ = make_servers()
        _, caches = sharded.prefill_model.prefill(np.array([[1, 2, 3]]), 8)
        merged = merge_sharded_caches([caches] * 8, sharded.decode_model)
        assert merged[0].dtype == caches[0].dtype
        assert merged[0].global_shape[0] == 8
