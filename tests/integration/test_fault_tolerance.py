"""End-to-end fault tolerance: the injected-fault matrix on both backends.

The acceptance bar: under any single-chip fault in the matrix (kill
during prefill, kill mid-decode, collective timeout, straggler), every
request the resilient server completes must carry tokens *bit-identical*
to a fault-free reference run — greedy decoding makes retries and
replanned meshes invisible in the output — and the event log must record
the full detect -> replan -> retry sequence.
"""

import numpy as np
import pytest

from repro.events import (
    FAULT_DETECTED,
    FAULT_INJECTED,
    REPLANNED,
    REQUEST_COMPLETED,
    REQUEST_RETRIED,
    EventLog,
)
from repro.mesh import (
    ChipKill,
    CollectiveFault,
    FaultPlan,
    StragglerFault,
    VirtualMesh,
)
from repro.mesh.virtual_mesh import BACKENDS
from repro.model import (
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.serving import (
    CostModel,
    Request,
    RequestStatus,
    ResilientContinuousServer,
    ResilientRequest,
    ResilientTwoPhaseServer,
    TwoPhaseServer,
)

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)


def make_requests(n=4, length=6, n_new=5):
    rng = np.random.default_rng(42)
    return [Request(i, rng.integers(0, CFG.vocab_size, size=length), n_new)
            for i in range(n)]


REQUESTS = make_requests()
REFERENCE = TwoPhaseServer(ReferenceTransformer(WEIGHTS),
                           decode_batch=4).serve(REQUESTS)

# The acceptance fault matrix: every scheduled single-chip fault the
# resilient lifecycle must absorb.  ``replans`` says whether recovery
# rebuilds the deployment (permanent faults) or retries in place
# (transient ones).
FAULT_MATRIX = {
    "kill-during-prefill": (
        FaultPlan(faults=(ChipKill(chip=(1, 1, 1), at_step=2,
                                   phase="prefill"),)), True),
    "kill-mid-decode": (
        FaultPlan(faults=(ChipKill(chip=(0, 1, 0), at_step=3,
                                   phase="decode"),)), True),
    "collective-timeout": (
        FaultPlan(faults=(CollectiveFault(kind="timeout", at_step=2,
                                          phase="decode"),)), False),
    "collective-corruption": (
        FaultPlan(faults=(CollectiveFault(kind="corrupt", at_step=1,
                                          phase="decode",
                                          chip=(1, 0, 1)),)), False),
}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scenario", sorted(FAULT_MATRIX))
class TestFaultMatrix:
    def test_tokens_bit_identical_to_fault_free(self, backend, scenario):
        fault_plan, replans = FAULT_MATRIX[scenario]
        log = EventLog()
        server = ResilientTwoPhaseServer(
            WEIGHTS, VirtualMesh((2, 2, 2), backend=backend),
            decode_batch=4, fault_plan=fault_plan, event_log=log)
        outcomes = server.serve(REQUESTS)

        assert all(o.status is RequestStatus.COMPLETED for o in outcomes)
        for outcome, reference in zip(outcomes, REFERENCE):
            np.testing.assert_array_equal(outcome.completion.tokens,
                                          reference.tokens)
        assert all(o.retries == 1 for o in outcomes)

        # The observable lifecycle, in order.
        if replans:
            log.assert_sequence(FAULT_INJECTED, FAULT_DETECTED, REPLANNED,
                                REQUEST_RETRIED, REQUEST_COMPLETED)
            assert server.mesh.num_chips < 8
        else:
            log.assert_sequence(FAULT_INJECTED, FAULT_DETECTED,
                                REQUEST_RETRIED, REQUEST_COMPLETED)
            assert not log.of_kind(REPLANNED)  # transient: same mesh
            assert server.mesh.num_chips == 8


@pytest.mark.parametrize("backend", BACKENDS)
class TestStragglerEviction:
    def test_straggler_evicted_with_cache_migration(self, backend):
        log = EventLog()
        fault_plan = FaultPlan(faults=(
            StragglerFault(chip=(0, 0, 1), slowdown=50.0,
                           delay_s_per_op=1e-3, at_step=1,
                           phase="decode"),))
        server = ResilientTwoPhaseServer(
            WEIGHTS, VirtualMesh((2, 2, 2), backend=backend),
            decode_batch=4, fault_plan=fault_plan, event_log=log)
        outcomes = server.serve(
            [ResilientRequest(r, deadline_s=1.2) for r in REQUESTS])

        assert all(o.status is RequestStatus.COMPLETED for o in outcomes)
        for outcome, reference in zip(outcomes, REFERENCE):
            np.testing.assert_array_equal(outcome.completion.tokens,
                                          reference.tokens)
        # Eviction replanned away from the slow chip and migrated the
        # live caches instead of re-prefilling.
        assert server.mesh.num_chips < 8
        migrations = [e for e in log.of_kind(REQUEST_RETRIED)
                      if e["mode"] == "cache-migration"]
        assert len(migrations) == len(REQUESTS)
        log.assert_sequence(FAULT_INJECTED, FAULT_DETECTED, REPLANNED,
                            REQUEST_RETRIED, REQUEST_COMPLETED)


@pytest.mark.parametrize("backend", BACKENDS)
class TestLifecyclePolicies:
    def test_sheds_when_degraded_capacity_misses_deadlines(self, backend):
        log = EventLog()
        fault_plan = FaultPlan(faults=(
            ChipKill(chip=(0, 0, 0), at_step=1, phase="decode"),))
        server = ResilientTwoPhaseServer(
            WEIGHTS, VirtualMesh((2, 2, 2), backend=backend),
            decode_batch=4, fault_plan=fault_plan,
            costs=CostModel(replan_s=5.0), event_log=log)
        outcomes = server.serve(
            [ResilientRequest(r, deadline_s=1.0) for r in REQUESTS])
        assert all(o.status is RequestStatus.SHED for o in outcomes)
        assert all(o.completion is None for o in outcomes)
        assert log.of_kind("request_shed")

    def test_retry_budget_exhaustion_fails_requests(self, backend):
        # A fresh one-shot timeout greets every attempt, so retries burn
        # out without the mesh ever shrinking.
        fault_plan = FaultPlan(faults=tuple(
            CollectiveFault(kind="timeout") for _ in range(8)))
        server = ResilientTwoPhaseServer(
            WEIGHTS, VirtualMesh((2, 2, 2), backend=backend),
            decode_batch=4, fault_plan=fault_plan)
        outcomes = server.serve(
            [ResilientRequest(r, max_retries=1) for r in REQUESTS])
        assert all(o.status is RequestStatus.FAILED for o in outcomes)

    def test_fault_free_run_matches_reference(self, backend):
        server = ResilientTwoPhaseServer(
            WEIGHTS, VirtualMesh((2, 2, 2), backend=backend),
            decode_batch=4)
        outcomes = server.serve(REQUESTS)
        assert all(o.status is RequestStatus.COMPLETED for o in outcomes)
        assert all(o.retries == 0 for o in outcomes)
        for outcome, reference in zip(outcomes, REFERENCE):
            np.testing.assert_array_equal(outcome.completion.tokens,
                                          reference.tokens)

    def test_odd_group_size_pads_decode_batch(self, backend):
        # 3 requests on an 8-chip batch-sharded decode plan only works
        # because the server pads the merged batch; outputs must still
        # match the reference exactly.
        requests = make_requests(n=3)
        reference = TwoPhaseServer(ReferenceTransformer(WEIGHTS),
                                   decode_batch=4).serve(requests)
        server = ResilientTwoPhaseServer(
            WEIGHTS, VirtualMesh((2, 2, 2), backend=backend),
            decode_batch=4)
        outcomes = server.serve(requests)
        for outcome, want in zip(outcomes, reference):
            np.testing.assert_array_equal(outcome.completion.tokens,
                                          want.tokens)


class TestResilientContinuous:
    def test_mid_stream_failure_is_invisible_in_tokens(self):
        log = EventLog()
        model = ReferenceTransformer(WEIGHTS)
        reference = ResilientContinuousServer(
            model, max_slots=3, max_len=16).serve(REQUESTS)
        assert all(o.retries == 0 for o in reference)

        server = ResilientContinuousServer(
            model, max_slots=3, max_len=16, fail_at_steps=(4,),
            event_log=log)
        outcomes = server.serve(REQUESTS)
        assert all(o.status is RequestStatus.COMPLETED for o in outcomes)
        assert all(o.retries == 1 for o in outcomes)
        for outcome, want in zip(outcomes, reference):
            np.testing.assert_array_equal(outcome.completion.tokens,
                                          want.completion.tokens)
        log.assert_sequence(FAULT_INJECTED, FAULT_DETECTED,
                            REQUEST_RETRIED, REQUEST_COMPLETED)

    def test_repeated_failures_exhaust_retries(self):
        model = ReferenceTransformer(WEIGHTS)
        server = ResilientContinuousServer(
            model, max_slots=3, max_len=16,
            fail_at_steps=tuple(range(12)))
        outcomes = server.serve(
            [ResilientRequest(r, max_retries=2) for r in REQUESTS])
        assert all(o.status is RequestStatus.FAILED for o in outcomes)

    def test_deadline_shedding(self):
        model = ReferenceTransformer(WEIGHTS)
        server = ResilientContinuousServer(model, max_slots=3, max_len=16)
        outcomes = server.serve(
            [ResilientRequest(r, deadline_s=1e-9) for r in REQUESTS])
        assert all(o.status is RequestStatus.SHED for o in outcomes)


@pytest.mark.parametrize("backend", BACKENDS)
class TestContinuousMeshSubstrate:
    """Continuous engine with a :class:`VirtualMesh` health substrate.

    Faults arrive through real heartbeat collectives on the configured
    execution backend, so kills raise typed :class:`MeshFault`\\ s and
    stragglers accumulate genuine simulated delay (satellite: straggler
    eviction covered on *both* backends).
    """

    STRAGGLER = FaultPlan(faults=(
        StragglerFault(chip=(0, 0, 1), slowdown=30.0,
                       delay_s_per_op=5e-3, at_step=1, phase="decode"),))

    def _reference(self):
        model = ReferenceTransformer(WEIGHTS)
        return ResilientContinuousServer(
            model, max_slots=3, max_len=16).serve(REQUESTS)

    def test_straggler_eviction_saves_the_deadline(self, backend):
        reference = self._reference()
        log = EventLog()
        server = ResilientContinuousServer(
            ReferenceTransformer(WEIGHTS), max_slots=3, max_len=16,
            mesh=VirtualMesh((2, 2, 2), backend=backend),
            fault_plan=self.STRAGGLER, event_log=log)
        outcomes = server.serve(
            [ResilientRequest(r, deadline_s=0.7) for r in REQUESTS])

        # Eviction replanned the health mesh off the slow chip in time.
        assert all(o.status is RequestStatus.COMPLETED for o in outcomes)
        assert server.mesh.num_chips < 8
        assert log.of_kind(REPLANNED)
        (detected,) = log.of_kind(FAULT_DETECTED)
        assert detected["error"] == "StragglerFault"
        for outcome, want in zip(outcomes, reference):
            np.testing.assert_array_equal(outcome.completion.tokens,
                                          want.completion.tokens)

    def test_no_deadline_means_no_eviction(self, backend):
        # Stragglers are pure latency: without a deadline at risk the
        # server rides them out on the full mesh and just finishes later.
        log = EventLog()
        server = ResilientContinuousServer(
            ReferenceTransformer(WEIGHTS), max_slots=3, max_len=16,
            mesh=VirtualMesh((2, 2, 2), backend=backend),
            fault_plan=self.STRAGGLER, event_log=log)
        outcomes = server.serve(REQUESTS)
        assert all(o.status is RequestStatus.COMPLETED for o in outcomes)
        assert server.mesh.num_chips == 8
        assert not log.of_kind(REPLANNED)
        # Accumulated straggler delay dwarfs the evicting run's finish.
        assert outcomes[0].finish_s > 1.0

    def test_chip_kill_raises_through_heartbeat_and_replans(self, backend):
        reference = self._reference()
        log = EventLog()
        fault_plan = FaultPlan(faults=(
            ChipKill(chip=(0, 1, 0), at_step=3, phase="decode"),))
        server = ResilientContinuousServer(
            ReferenceTransformer(WEIGHTS), max_slots=3, max_len=16,
            mesh=VirtualMesh((2, 2, 2), backend=backend),
            fault_plan=fault_plan, event_log=log)
        outcomes = server.serve(REQUESTS)

        assert all(o.status is RequestStatus.COMPLETED for o in outcomes)
        assert all(o.retries == 1 for o in outcomes)
        assert server.mesh.num_chips < 8
        for outcome, want in zip(outcomes, reference):
            np.testing.assert_array_equal(outcome.completion.tokens,
                                          want.completion.tokens)
        log.assert_sequence(FAULT_INJECTED, FAULT_DETECTED, REPLANNED,
                            REQUEST_RETRIED, REQUEST_COMPLETED)

    def test_fault_plan_requires_mesh(self, backend):
        with pytest.raises(ValueError, match="requires a mesh"):
            ResilientContinuousServer(
                ReferenceTransformer(WEIGHTS), max_slots=3, max_len=16,
                fault_plan=self.STRAGGLER)
