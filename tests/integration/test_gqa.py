"""Grouped-query attention (GQA): the space between the paper's endpoints.

The paper studies multiquery (1 KV head) vs multihead (H KV heads); modern
models ship grouped-query attention in between.  The library generalizes:
``kv_heads=k`` interpolates the KV-cache accounting, the layouts shard the
shared heads when they divide the head group (and refuse the misaligned
corner explicitly), and batch-sharded attention applies whenever heads are
shared.  Numerics are held to the same bar as everything else: equal to
the unsharded reference.
"""

import numpy as np
import pytest

from repro.hardware import TPU_V4
from repro.layouts import ShardedTransformer
from repro.mesh import VirtualMesh
from repro.model import (
    PALM_540B,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import table1_max_context

CFG_KWARGS = dict(n_layers=2, d_model=16, d_ff=32, n_heads=8, d_head=8,
                  vocab_size=32)


def gqa_config(kv_heads, **overrides):
    kwargs = dict(CFG_KWARGS)
    kwargs.update(overrides)
    return tiny_test_config(**kwargs).replace(kv_heads=kv_heads)


class TestConfig:
    def test_kv_heads_interpolate(self):
        assert gqa_config(4).n_kv_heads == 4
        assert gqa_config(None).n_kv_heads == 1  # multiquery default

    def test_param_count_between_endpoints(self):
        from repro.model import AttentionKind

        mq = tiny_test_config(**CFG_KWARGS)
        mh = tiny_test_config(attention=AttentionKind.MULTIHEAD,
                              **CFG_KWARGS)
        gqa = gqa_config(4)
        assert mq.n_params < gqa.n_params < mh.n_params

    def test_kv_cache_scales_with_kv_heads(self):
        assert gqa_config(4).kv_cache_bytes_per_token() == \
            4 * gqa_config(1).kv_cache_bytes_per_token()

    def test_validation(self):
        with pytest.raises(ValueError, match="kv_heads"):
            gqa_config(9)
        with pytest.raises(ValueError, match="not divisible"):
            gqa_config(3)


@pytest.mark.parametrize("kv_heads", [2, 4, 8])
@pytest.mark.parametrize("plan", [
    LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD),
    LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH),
], ids=lambda p: p.describe() if hasattr(p, "describe") else str(p))
def test_gqa_layout_equivalence(kv_heads, plan):
    config = gqa_config(kv_heads)
    if kv_heads == config.n_heads and \
            plan.attention is AttentionLayoutKind.BATCH and \
            not plan.ffn.is_weight_gathered:
        pytest.skip("full multihead cannot batch-shard (paper §3.3)")
    narrow = kv_heads > 1 and kv_heads % 4 != 0  # 4 = head-group size
    heads_sharded = (plan.attention is AttentionLayoutKind.HEAD
                     and not plan.ffn.is_weight_gathered) or \
        (plan.ffn.is_weight_gathered
         and plan.ffn is not FfnLayoutKind.WG_XYZ)
    if narrow and heads_sharded:
        pytest.skip("misaligned replicated GQA: rejected by design "
                    "(TestUnsupportedCorner)")
    weights = init_weights(config, seed=0)
    reference = ReferenceTransformer(weights)
    sharded = ShardedTransformer(weights, VirtualMesh((2, 2, 2)), plan)
    prompt = np.random.default_rng(1).integers(0, 32, size=(8, 3))
    ref, ref_caches = reference.prefill(prompt, 5)
    got, got_caches = sharded.prefill(prompt, 5)
    np.testing.assert_allclose(got, ref, rtol=1e-8, atol=1e-10)
    token = np.argmax(ref, -1)
    np.testing.assert_allclose(sharded.decode_step(token, got_caches),
                               reference.decode_step(token, ref_caches),
                               rtol=1e-8, atol=1e-10)


class TestUnsupportedCorner:
    def test_misaligned_replicated_gqa_rejected(self):
        """2 KV heads cannot shard over a 4-chip head group and cannot be
        replicated under head-sharded attention — reject, don't corrupt."""
        config = gqa_config(2)
        weights = init_weights(config, seed=0)
        with pytest.raises(ValueError, match="KV heads"):
            ShardedTransformer(
                weights, VirtualMesh((2, 2, 2)),
                LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD))

    def test_same_model_fine_with_batch_attention(self):
        config = gqa_config(2)
        weights = init_weights(config, seed=0)
        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
        sharded = ShardedTransformer(weights, VirtualMesh((2, 2, 2)),
                                     plan)
        reference = ReferenceTransformer(weights)
        prompt = np.random.default_rng(2).integers(0, 32, size=(8, 3))
        got, _ = sharded.prefill(prompt, 3)
        ref, _ = reference.prefill(prompt, 3)
        np.testing.assert_allclose(got, ref, rtol=1e-8, atol=1e-10)


class TestGqaAccounting:
    def test_max_context_between_endpoints(self):
        """A PaLM-540B GQA variant's memory limit interpolates Table 1."""
        gqa = PALM_540B.replace(kv_heads=8)
        mq = table1_max_context(PALM_540B, AttentionLayoutKind.BATCH,
                                TPU_V4, 64, 128)
        mid = table1_max_context(gqa, AttentionLayoutKind.BATCH, TPU_V4,
                                 64, 128)
        assert mid == pytest.approx(mq / 8, rel=0.01)

    def test_comm_model_still_matches_executor(self):
        from repro.mesh import enable_comm_log
        from repro.perf.comm_model import forward_comm_events

        config = gqa_config(4)
        weights = init_weights(config, seed=0)
        mesh = VirtualMesh((2, 2, 2))
        log = enable_comm_log(mesh)
        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
        model = ShardedTransformer(weights, mesh, plan)
        log.clear()
        model.prefill(np.zeros((8, 3), dtype=int), 3)
        modeled = forward_comm_events(config, plan, mesh.topology, 8, 3)
        assert len(log) == len(modeled)
        for got, want in zip(log, modeled):
            assert (got.op, got.axes) == (want.op, want.axes)
            assert got.payload_bytes == want.payload_elements * 8
