"""Chaos-scenario acceptance: the cluster control plane under fire.

Every scenario in :data:`repro.cluster.chaos.SCENARIOS` runs on both
mesh execution backends; the CI chaos job additionally sweeps
``REPRO_CHAOS_SEED`` over a small matrix, which these tests honor so one
test file serves both roles.  The acceptance bar mirrors ISSUE 4:

* rolling kill of 1-of-3 replicas: every admitted request completes,
  tokens bit-identical to the fault-free reference, zero drops;
* overload: load is shed with *typed* errors (never timeouts) and the
  report carries per-class goodput;
* the whole run — events, spans, report — is a pure function of
  ``(scenario, backend, seed)``.
"""

import os

import numpy as np
import pytest

from repro.cluster import (
    SCENARIOS,
    build_workload,
    format_report,
    run_scenario,
)
from repro.events import EventLog
from repro.mesh.virtual_mesh import BACKENDS

#: CI sweeps this over a seed matrix; locally it defaults to 0.
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def run(name, backend, seed=SEED, **kwargs):
    report = run_scenario(name, backend=backend, seed=seed, **kwargs)
    assert report.ok, format_report(report)
    return report


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestScenarioSuite:
    def test_invariants_hold(self, name, backend):
        report = run(name, backend)
        # Universal bookkeeping: every submission has exactly one fate.
        assert report.admitted + sum(report.rejections.values()) \
            == report.submitted
        assert report.completed + report.failed \
            + report.deadline_missed == report.admitted
        assert report.dropped_in_flight == 0
        assert report.bit_identical
        assert report.n_events > 0 and report.n_spans > 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestRollingKillAcceptance:
    def test_zero_drops_bit_identical(self, backend):
        report = run("rolling-kill", backend)
        # The ISSUE acceptance bar, verbatim: all admitted requests
        # complete bit-identically, none dropped, none shed.
        assert report.admitted == report.submitted == 12
        assert report.completed == report.admitted
        assert report.availability == 1.0
        assert report.failovers >= 1
        assert not report.rejections
        assert report.bit_identical


@pytest.mark.parametrize("backend", BACKENDS)
class TestOverloadShedding:
    def test_typed_rejections_and_per_class_goodput(self, backend):
        report = run("overload-burst", backend)
        # Both admission mechanisms fired, each with its typed error —
        # rejections are never timeouts or dropped requests.
        assert report.rejections.get("QueueFull", 0) > 0
        assert report.rejections.get("RateLimited", 0) > 0
        assert set(report.rejections) <= {"QueueFull", "RateLimited"}
        assert report.failed == 0
        # The high-priority class kept more of its goodput than batch.
        goodput = report.goodput_per_class
        assert goodput["interactive"] > goodput["batch"] > 0.0


@pytest.mark.parametrize("backend", BACKENDS)
class TestHedgedDecode:
    def test_hedge_fires_and_streams_stay_identical(self, backend):
        report = run("correlated-stragglers", backend)
        assert report.hedges >= 1
        assert report.bit_identical
        assert report.completed == report.admitted


class TestDeterminism:
    def test_same_seed_same_run(self):
        # Token streams, events and spans are a pure function of
        # (scenario, backend, seed): replay and compare everything.
        logs, spans = [], []
        for _ in range(2):
            log = EventLog()
            report = run("rolling-kill", "loop", seed=3, event_log=log)
            logs.append([(e.kind, e.data) for e in log.events])
            spans.append([(s.name, s.kind, s.start_s, s.end_s)
                          for s in report.spans])
        assert logs[0] == logs[1]
        assert spans[0] == spans[1]

    def test_different_seed_different_workload(self):
        a = build_workload(SCENARIOS["rolling-kill"], seed=0)
        b = build_workload(SCENARIOS["rolling-kill"], seed=1)
        assert not all(
            np.array_equal(x.request.prompt, y.request.prompt)
            for x, y in zip(a, b))

    def test_report_fields_stable_across_replays(self):
        first = run("overload-burst", "loop", seed=7)
        second = run("overload-burst", "loop", seed=7)
        assert first.rejections == second.rejections
        assert first.goodput_per_class == second.goodput_per_class
        assert first.p99_latency_s == second.p99_latency_s


class TestScenarioRegistry:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_scenario("does-not-exist")

    def test_all_scenarios_have_distinct_descriptions(self):
        descriptions = [s.description for s in SCENARIOS.values()]
        assert len(set(descriptions)) == len(descriptions)
