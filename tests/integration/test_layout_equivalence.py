"""Layout-equivalence suite: every partitioned layout == the reference.

This is the reproduction's core numerical claim (DESIGN.md): the paper's
partitioning strategies are *equivalent programs* — different communication
patterns computing the same function.  For each (FFN layout x attention
layout x attention kind x block formulation) combination we run prefill +
several decode steps on a 2x2x2 virtual mesh and compare logits against the
unsharded reference model, to near machine precision (float64).
"""

import numpy as np
import pytest

from repro.layouts import ShardedTransformer
from repro.mesh import BACKENDS, VirtualMesh, enable_comm_log
from repro.model import (
    AttentionKind,
    FfnKind,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)

MESH_SHAPE = (2, 2, 2)
# Sized for divisibility on a 2x2x2 mesh: E by 8 (WS residual), F/H by 4
# (2D hidden axes) and 8 (1D), B by 8 (batch sharding over all axes).
CFG_KWARGS = dict(n_layers=2, d_model=16, d_ff=32, n_heads=8, d_head=8,
                  vocab_size=32)
BATCH, PROMPT_LEN, GEN_STEPS = 8, 4, 3

WS_PLANS = [
    LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD),
    LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD),
    LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
]
WG_PLANS = [
    LayoutPlan(FfnLayoutKind.WG_X, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH),
    LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH),
]
ALL_PLANS = WS_PLANS + WG_PLANS


def _plan_id(plan):
    return plan.describe().replace(", ", "/").replace("=", ":")


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Run the equivalence suite under both mesh execution backends."""
    return request.param


def run_both(config, plan, seed=0, backend="loop"):
    """Prefill + decode the same tokens on reference and sharded models."""
    weights = init_weights(config, seed=seed)
    reference = ReferenceTransformer(weights)
    sharded = ShardedTransformer(
        weights, VirtualMesh(MESH_SHAPE, backend=backend), plan)

    rng = np.random.default_rng(seed + 1)
    prompt = rng.integers(0, config.vocab_size, size=(BATCH, PROMPT_LEN))
    max_len = PROMPT_LEN + GEN_STEPS

    ref_logits, ref_caches = reference.prefill(prompt, max_len)
    sh_logits, sh_caches = sharded.prefill(prompt, max_len)
    results = [(ref_logits, sh_logits)]
    tokens = np.argmax(ref_logits, -1)
    for _ in range(GEN_STEPS):
        ref_step = reference.decode_step(tokens, ref_caches)
        sh_step = sharded.decode_step(tokens, sh_caches)
        results.append((ref_step, sh_step))
        tokens = np.argmax(ref_step, -1)
    return results


@pytest.mark.parametrize("plan", ALL_PLANS, ids=_plan_id)
class TestEquivalenceAcrossLayouts:
    def test_multiquery_parallel_block(self, plan, backend):
        config = tiny_test_config(**CFG_KWARGS)
        for ref, sh in run_both(config, plan, backend=backend):
            np.testing.assert_allclose(sh, ref, rtol=1e-8, atol=1e-10)

    def test_multiquery_serial_block(self, plan, backend):
        config = tiny_test_config(parallel_block=False, **CFG_KWARGS)
        for ref, sh in run_both(config, plan, backend=backend):
            np.testing.assert_allclose(sh, ref, rtol=1e-8, atol=1e-10)


@pytest.mark.parametrize(
    "plan",
    [p for p in ALL_PLANS if p.attention is not AttentionLayoutKind.BATCH
     or p.ffn.is_weight_gathered],
    ids=_plan_id)
def test_multihead_equivalence(plan, backend):
    config = tiny_test_config(attention=AttentionKind.MULTIHEAD,
                              **CFG_KWARGS)
    for ref, sh in run_both(config, plan, backend=backend):
        np.testing.assert_allclose(sh, ref, rtol=1e-8, atol=1e-10)


@pytest.mark.parametrize("plan", [WS_PLANS[2], WG_PLANS[2]], ids=_plan_id)
def test_mlp_ffn_equivalence(plan, backend):
    config = tiny_test_config(ffn=FfnKind.MLP, **CFG_KWARGS)
    for ref, sh in run_both(config, plan, backend=backend):
        np.testing.assert_allclose(sh, ref, rtol=1e-8, atol=1e-10)


def test_batch_attention_with_multihead_rejected():
    config = tiny_test_config(attention=AttentionKind.MULTIHEAD,
                              **CFG_KWARGS)
    weights = init_weights(config)
    with pytest.raises(ValueError, match="shared KV heads"):
        ShardedTransformer(weights, VirtualMesh(MESH_SHAPE),
                           LayoutPlan(FfnLayoutKind.WS_2D,
                                      AttentionLayoutKind.BATCH))


def test_generate_matches_reference_greedy(backend):
    config = tiny_test_config(**CFG_KWARGS)
    weights = init_weights(config)
    reference = ReferenceTransformer(weights)
    sharded = ShardedTransformer(
        weights, VirtualMesh(MESH_SHAPE, backend=backend),
        LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH))
    prompt = np.random.default_rng(0).integers(
        0, config.vocab_size, size=(BATCH, PROMPT_LEN))
    np.testing.assert_array_equal(sharded.generate(prompt, 4),
                                  reference.generate(prompt, 4))


class TestKVCacheFootprint:
    """The Section 3.3 claim: batch sharding divides per-chip KV memory."""

    def _cache_bytes(self, plan, attention=AttentionKind.MULTIQUERY):
        config = tiny_test_config(attention=attention, **CFG_KWARGS)
        weights = init_weights(config)
        model = ShardedTransformer(weights, VirtualMesh(MESH_SHAPE), plan)
        cache = model.new_cache(BATCH, 8)[0]
        return cache.per_chip_bytes()

    def test_batch_sharding_divides_by_chip_count(self):
        baseline = self._cache_bytes(
            LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD))
        optimized = self._cache_bytes(
            LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH))
        assert baseline == 8 * optimized  # n_chips = 8

    def test_multihead_sharded_over_heads(self):
        mh = self._cache_bytes(
            LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD),
            attention=AttentionKind.MULTIHEAD)
        mq_baseline = self._cache_bytes(
            LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD))
        # Multihead has n_heads x the KV but shards it over the 4 chips of
        # the head axes: net n_heads/4 = 2x the replicated multiquery cache.
        assert mh == 2 * mq_baseline


def test_serial_block_communicates_more_than_parallel():
    """Section 3.4/4.3: the parallel block halves per-layer FFN/attention
    communication (one gather + one reduce-scatter instead of two)."""
    config = tiny_test_config(**CFG_KWARGS)
    weights_p = init_weights(config)
    weights_s = init_weights(config.replace(parallel_block=False))
    plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
    volumes = {}
    for label, weights in (("parallel", weights_p), ("serial", weights_s)):
        mesh = VirtualMesh(MESH_SHAPE)
        log = enable_comm_log(mesh)
        model = ShardedTransformer(weights, mesh, plan)
        log.clear()  # ignore weight-placement traffic
        prompt = np.zeros((BATCH, PROMPT_LEN), dtype=int)
        model.prefill(prompt, PROMPT_LEN)
        volumes[label] = sum(
            r.payload_bytes for r in log
            if r.op in ("all_gather", "reduce_scatter"))
    assert volumes["serial"] > volumes["parallel"]


@pytest.mark.slow
def test_32_device_mesh_equivalence(backend):
    """A 2x4x4 (32-device) mesh — closer to real slice shapes — still
    matches the reference bit-for-bit for the main decode plan."""
    config = tiny_test_config(n_layers=1, d_model=32, d_ff=64, n_heads=16,
                              d_head=8, vocab_size=32)
    weights = init_weights(config, seed=0)
    reference = ReferenceTransformer(weights)
    plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
    sharded = ShardedTransformer(
        weights, VirtualMesh((2, 4, 4), backend=backend), plan)
    prompt = np.random.default_rng(0).integers(0, 32, size=(32, 3))
    ref, ref_caches = reference.prefill(prompt, 5)
    got, got_caches = sharded.prefill(prompt, 5)
    np.testing.assert_allclose(got, ref, rtol=1e-8, atol=1e-10)
    token = np.argmax(ref, -1)
    np.testing.assert_allclose(sharded.decode_step(token, got_caches),
                               reference.decode_step(token, ref_caches),
                               rtol=1e-8, atol=1e-10)
