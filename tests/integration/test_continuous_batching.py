"""Continuous batching must be invisible to every individual request.

The correctness bar for slot-based serving: whatever the interleaving of
admissions, retirements, and slot reuse, each request's output equals
generating it alone (greedy).  These tests stress heterogeneous prompt
lengths, budgets, slot starvation, and slot reuse.
"""

import numpy as np
import pytest

from repro.model import (
    AttentionKind,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.serving import Request
from repro.serving.continuous import (
    ContinuousBatchingEngine,
    SlotState,
    slot_decode_step,
)

CFG = tiny_test_config()
MODEL = ReferenceTransformer(init_weights(CFG, seed=0))


def make_request(rid, length, budget, seed=None):
    rng = np.random.default_rng(rid if seed is None else seed)
    return Request(rid, rng.integers(0, CFG.vocab_size, size=length),
                   budget)


def solo(request):
    return MODEL.generate(request.prompt[None, :],
                          request.max_new_tokens)[0]


class TestSlotDecodeStep:
    def test_single_slot_matches_plain_decode(self):
        prompt = np.array([[3, 1, 4, 1]])
        logits_ref, caches = MODEL.prefill(prompt, 8)
        state = SlotState(MODEL, max_slots=1, max_len=8)
        state.load_prefill(0, caches)
        token = np.argmax(logits_ref, -1)
        step_ref = MODEL.decode_step(token, caches)
        step_slot = slot_decode_step(MODEL, token, state,
                                     np.array([True]))
        np.testing.assert_allclose(step_slot, step_ref, rtol=1e-9,
                                   atol=1e-12)
        assert state.lengths[0] == 5

    def test_heterogeneous_lengths_in_one_batch(self):
        """Slots with different context lengths decode exactly as solo."""
        prompts = [np.array([[1, 2, 3]]), np.array([[7, 6, 5, 4, 3]])]
        state = SlotState(MODEL, max_slots=2, max_len=10)
        tokens, refs = [], []
        for slot, prompt in enumerate(prompts):
            logits, caches = MODEL.prefill(prompt, 10)
            state.load_prefill(slot, caches)
            token = np.argmax(logits, -1)
            tokens.append(token[0])
            refs.append(MODEL.decode_step(token, caches)[0])
        step = slot_decode_step(MODEL, np.array(tokens), state,
                                np.array([True, True]))
        for slot in range(2):
            np.testing.assert_allclose(step[slot], refs[slot], rtol=1e-9,
                                       atol=1e-12)

    def test_inactive_slot_untouched(self):
        prompt = np.array([[1, 2, 3]])
        _, caches = MODEL.prefill(prompt, 8)
        state = SlotState(MODEL, max_slots=2, max_len=8)
        state.load_prefill(0, caches)
        before = state.k[0][0, :3].copy()
        slot_decode_step(MODEL, np.array([0, 0]), state,
                         np.array([False, False]))
        np.testing.assert_array_equal(state.lengths, [3, 0])
        np.testing.assert_array_equal(state.k[0][0, :3], before)

    def test_capacity_guard(self):
        state = SlotState(MODEL, max_slots=1, max_len=3)
        state.lengths[0] = 3
        with pytest.raises(ValueError, match="capacity"):
            slot_decode_step(MODEL, np.array([0]), state,
                             np.array([True]))


class TestEngine:
    @pytest.mark.parametrize("max_slots", [1, 2, 4])
    def test_matches_solo_generation(self, max_slots):
        requests = [make_request(0, 3, 4), make_request(1, 5, 2),
                    make_request(2, 4, 6), make_request(3, 2, 3),
                    make_request(4, 6, 1)]
        engine = ContinuousBatchingEngine(MODEL, max_slots=max_slots,
                                          max_len=16)
        completions = engine.serve(requests)
        for request, completion in zip(requests, completions):
            np.testing.assert_array_equal(completion.tokens,
                                          solo(request))

    def test_slot_reuse_does_not_leak(self):
        """A long request outlives several short ones cycling through the
        other slot; its output must be unaffected."""
        requests = [make_request(0, 4, 12)] + \
            [make_request(i, 3, 2) for i in range(1, 6)]
        engine = ContinuousBatchingEngine(MODEL, max_slots=2, max_len=20)
        completions = engine.serve(requests)
        np.testing.assert_array_equal(completions[0].tokens,
                                      solo(requests[0]))
        assert engine.admissions == 6

    def test_more_slots_fewer_steps(self):
        requests = [make_request(i, 4, 6) for i in range(8)]
        narrow = ContinuousBatchingEngine(MODEL, max_slots=1, max_len=12)
        wide = ContinuousBatchingEngine(MODEL, max_slots=8, max_len=12)
        narrow.serve(requests)
        wide.serve(requests)
        assert wide.steps < narrow.steps

    def test_matches_reference_model_multihead(self):
        config = tiny_test_config(attention=AttentionKind.MULTIHEAD)
        model = ReferenceTransformer(init_weights(config, seed=1))
        rng = np.random.default_rng(0)
        requests = [Request(i, rng.integers(0, config.vocab_size, size=4),
                            3) for i in range(3)]
        engine = ContinuousBatchingEngine(model, max_slots=2, max_len=8)
        for request, completion in zip(requests, engine.serve(requests)):
            expected = model.generate(request.prompt[None, :], 3)[0]
            np.testing.assert_array_equal(completion.tokens, expected)

    def test_serial_block_model(self):
        config = tiny_test_config(parallel_block=False)
        model = ReferenceTransformer(init_weights(config, seed=2))
        rng = np.random.default_rng(1)
        requests = [Request(i, rng.integers(0, config.vocab_size, size=3),
                            4) for i in range(3)]
        engine = ContinuousBatchingEngine(model, max_slots=2, max_len=8)
        for request, completion in zip(requests, engine.serve(requests)):
            expected = model.generate(request.prompt[None, :], 4)[0]
            np.testing.assert_array_equal(completion.tokens, expected)

    def test_budget_one_never_decodes(self):
        requests = [make_request(0, 3, 1)]
        engine = ContinuousBatchingEngine(MODEL, max_slots=1, max_len=8)
        completions = engine.serve(requests)
        assert engine.steps == 0
        np.testing.assert_array_equal(completions[0].tokens,
                                      solo(requests[0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ContinuousBatchingEngine(MODEL, max_slots=0, max_len=8)
