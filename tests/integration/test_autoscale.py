"""End-to-end autoscaling: scale out/in, brownout, and bit-identity.

These are the PR's acceptance runs, on real traffic: each test serves a
registered seeded trace (:mod:`repro.cluster.workload`) through a
:class:`~repro.cluster.control_plane.ClusterControlPlane` with the
:class:`~repro.cluster.autoscaler.Autoscaler` attached, and checks the
behavior the chaos checker and the autoscale bench gate on — never
dropping in-flight work, matching the statically over-provisioned
fleet token-for-token, and unwinding the brownout ladder completely.
"""

import pytest

from repro.cluster.bench import (
    BENCH_POLICIES,
    check_autoscale_result,
    run_autoscale,
)
from repro.cluster.chaos import run_scenario


class TestDiurnalScaleOutAndDrainBack:
    @pytest.fixture(scope="class")
    def result(self):
        return run_autoscale("diurnal", backend="loop", seed=0)

    def test_fleet_grew_during_the_peak_and_drained_back(self, result):
        assert result["replicas_added"] > 0
        assert result["replicas_removed"] == result["replicas_added"]

    def test_no_in_flight_request_was_dropped(self, result):
        assert result["dropped_in_flight"] == 0
        assert result["statuses"]["failed"] == 0
        assert result["statuses"]["completed"] == result["n_requests"]

    def test_bit_identical_to_static_overprovisioned_fleet(self, result):
        assert result["bit_identical_vs_static"]

    def test_autoscaling_costs_less_than_static(self, result):
        assert result["chip_seconds"] < result["static_chip_seconds"]

    def test_all_gates_pass(self, result):
        assert check_autoscale_result(result) == []


class TestFlashCrowdBrownout:
    @pytest.fixture(scope="class")
    def report(self):
        # The chaos scenario wraps the same trace and asserts
        # determinism; run_scenario raises on any check failure.
        return run_scenario("flash-crowd", seed=0, backend="loop")

    def test_ladder_engages_in_order_and_fully_reverses(self, report):
        assert report.brownout_steps[:4] == [
            "hedge-off", "cap-output", "throughput-plan", "shed-lowest"]
        assert report.brownout_reverted

    def test_brownout_events_are_typed_with_recovery_conditions(self):
        result = run_autoscale("flash-crowd", backend="loop", seed=0)
        # run_autoscale already called assert_reverted; the ladder also
        # recorded one typed step per rung, each naming its recovery
        # condition, and the recovered events unwind in reverse.
        assert result["brownout_steps"] == [
            "hedge-off", "cap-output", "throughput-plan", "shed-lowest"]
        assert result["brownout_helps"]
        assert result["bit_identical_vs_static"]

    def test_capped_or_shed_load_is_visible_not_dropped(self, report):
        # Rung 2 capped some batch outputs, rung 4 shed some arrivals —
        # both show up as typed accounting, not as drops or failures.
        assert report.output_capped > 0 or report.rejections
        assert report.failed == 0
        assert report.dropped_in_flight == 0


class TestDeterminismAcrossBackends:
    @pytest.mark.parametrize("backend", ["loop", "stacked"])
    def test_rerun_is_bit_identical(self, backend):
        first = run_autoscale("heavy-tail", backend=backend, seed=1)
        again = run_autoscale("heavy-tail", backend=backend, seed=1)
        assert first == again
        assert check_autoscale_result(first) == []

    def test_policies_cover_every_trace(self):
        from repro.cluster.workload import TRACES
        assert sorted(BENCH_POLICIES) == sorted(TRACES)
