"""Chrome-trace export: the simulator client and the shared builders.

Covers the previously-untested :func:`repro.simulator.trace.to_chrome_trace`
(valid JSON, metadata events, zero-duration filtering) plus the span
export in :mod:`repro.observability.chrome_trace`.
"""

import json

import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.model import get_model
from repro.observability import (
    Tracer,
    build_trace,
    complete_event,
    process_metadata,
    spans_to_chrome_trace,
    thread_metadata,
    write_span_trace,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.simulator import (
    BuildSpec,
    build_forward_program,
    simulate,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.simulator.program import RESOURCES


@pytest.fixture(scope="module")
def result():
    config = get_model("palm-8b")
    plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
    spec = BuildSpec(config, plan, Torus3D(2, 2, 2), TPU_V4, batch=32,
                     l_new=1, context_before=128)
    return simulate(build_forward_program(spec))


class TestSimulatorTrace:
    def test_valid_json_roundtrip(self, result, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(result, str(path))
        trace = json.loads(path.read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        assert trace["traceEvents"]

    def test_metadata_events_name_process_and_lanes(self, result):
        trace = to_chrome_trace(result, process_name="chip7")
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        [process] = [e for e in meta if e["name"] == "process_name"]
        assert process["args"]["name"] == "chip7"
        lanes = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert lanes == set(RESOURCES)

    def test_zero_duration_records_filtered(self, result):
        assert any(r.duration == 0 for r in result.records), (
            "fixture should contain zero-duration records")
        trace = to_chrome_trace(result)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert xs
        assert all(e["dur"] > 0 for e in xs)
        assert len(xs) == sum(1 for r in result.records if r.duration > 0)

    def test_complete_events_land_in_resource_lanes(self, result):
        trace = to_chrome_trace(result)
        tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert tids <= set(range(len(RESOURCES)))


class TestSharedBuilders:
    def test_complete_event_microseconds(self):
        event = complete_event("op", "cat", 0, 3, ts_s=1.5, dur_s=0.25)
        assert event["ts"] == pytest.approx(1.5e6)
        assert event["dur"] == pytest.approx(0.25e6)
        assert event["ph"] == "X"

    def test_category_defaults_to_op(self):
        assert complete_event("n", "", 0, 0, ts_s=0, dur_s=1)["cat"] == "op"

    def test_build_trace_shape(self):
        trace = build_trace([process_metadata(0, "p"),
                             thread_metadata(0, 1, "t")])
        json.dumps(trace)  # must be serializable
        assert len(trace["traceEvents"]) == 2


class TestSpanExport:
    def _tracer(self):
        t = Tracer()
        with t.phase("decode"):
            t.collective("all_gather", ("x", "y"), 4, 2048, elements=256)
            t.compute("ble,ef->blf", flops=128.0)
        return t

    def test_span_trace_serializes_and_carries_attrs(self, tmp_path):
        t = self._tracer()
        path = tmp_path / "spans.json"
        write_span_trace(t.spans, str(path))
        trace = json.loads(path.read_text())
        [gather] = [e for e in trace["traceEvents"]
                    if e.get("name") == "all_gather"]
        assert gather["args"]["axes"] == ["x", "y"]  # tuples -> lists
        assert gather["args"]["payload_bytes"] == 2048
        assert gather["args"]["phase"] == "decode"

    def test_one_lane_per_used_span_kind(self):
        trace = spans_to_chrome_trace(self._tracer().spans)
        meta = [e for e in trace["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in meta} \
            == {"phases", "collectives", "einsums"}

    def test_events_partition_by_kind_lane(self):
        trace = spans_to_chrome_trace(self._tracer().spans)
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["all_gather"]["tid"] != by_name["decode"]["tid"]
