"""Tests for the analytical layout selector (Section 4.1's recipe)."""

import pytest

from repro.hardware import Torus3D
from repro.model import (
    PALM_540B_MULTIHEAD,
    PALM_540B_PADDED,
    tiny_test_config,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.partitioning.selector import (
    Phase,
    SelectionContext,
    candidate_plans,
    select_attention_layout,
    select_ffn_layout,
    select_plan,
)

TORUS64 = Torus3D(4, 4, 4)


def ctx(phase, batch, tokens_per_seq, config=PALM_540B_PADDED,
        torus=TORUS64):
    return SelectionContext(config, torus, phase, batch, tokens_per_seq)


class TestFfnSelection:
    def test_decode_picks_ws2d_on_64_chips(self):
        # Section 4.1: generate phase -> 2D weight-stationary.
        assert select_ffn_layout(
            ctx(Phase.DECODE, 512, 1)) is FfnLayoutKind.WS_2D

    def test_small_mesh_prefers_1d(self):
        # Section 3.2.2: 2D only wins once sqrt(n) > F/E (= 4 here).
        small = Torus3D(2, 2, 2)
        assert select_ffn_layout(
            ctx(Phase.DECODE, 32, 1, torus=small)) is FfnLayoutKind.WS_1D

    def test_prefill_switches_to_weight_gathered_at_large_batch(self):
        # Figure 7: WS-2D at small token counts, weight-gathered at ~1M
        # tokens (XY and XYZ are within a few percent there; the paper
        # deploys XYZ, the formula argmin is XY).
        assert select_ffn_layout(
            ctx(Phase.PREFILL, 1, 2048)) is FfnLayoutKind.WS_2D
        assert select_ffn_layout(
            ctx(Phase.PREFILL, 512, 2048)).is_weight_gathered
        assert select_ffn_layout(
            ctx(Phase.PREFILL, 4096, 2048)) is FfnLayoutKind.WG_XYZ

    def test_prefill_intermediate_batch_uses_hybrid(self):
        picks = {select_ffn_layout(ctx(Phase.PREFILL, b, 2048)).value
                 for b in (1, 4, 16, 64, 512)}
        assert len(picks) >= 3  # the ladder WS2D -> WG_* is exercised

    def test_decode_never_picks_weight_gathered(self):
        for batch in (1, 64, 1024):
            kind = select_ffn_layout(ctx(Phase.DECODE, batch, 1))
            assert not kind.is_weight_gathered


class TestAttentionSelection:
    def test_decode_multiquery_batch_sharded(self):
        assert select_attention_layout(
            ctx(Phase.DECODE, 64, 1)) is AttentionLayoutKind.BATCH

    def test_tiny_batch_stays_head_sharded(self):
        # Appendix D: no speedup below the minimum torus axis of 4.
        assert select_attention_layout(
            ctx(Phase.DECODE, 2, 1)) is AttentionLayoutKind.HEAD

    def test_multihead_always_head_sharded(self):
        assert select_attention_layout(
            ctx(Phase.DECODE, 512, 1,
                config=PALM_540B_MULTIHEAD)) is AttentionLayoutKind.HEAD

    def test_prefill_small_batch_head_sharded(self):
        # Section 3.3: KV load amortizes over query tokens during prefill.
        assert select_attention_layout(
            ctx(Phase.PREFILL, 1, 2048)) is AttentionLayoutKind.HEAD


class TestPlanApi:
    def test_table2_decode_recipe(self):
        plan = select_plan(ctx(Phase.DECODE, 512, 1))
        assert plan == LayoutPlan(FfnLayoutKind.WS_2D,
                                  AttentionLayoutKind.BATCH)

    def test_table2_prefill_recipe(self):
        # Table 2 high-throughput prefill: weight-gathered FFN + batch
        # attention sharding.
        plan = select_plan(ctx(Phase.PREFILL, 512, 2048))
        assert plan.ffn.is_weight_gathered
        assert plan.attention is AttentionLayoutKind.BATCH

    def test_candidates_exclude_wg_for_decode(self):
        plans = candidate_plans(ctx(Phase.DECODE, 64, 1))
        assert all(not p.ffn.is_weight_gathered for p in plans)
        assert plans  # nonempty

    def test_candidates_validate_head_divisibility(self):
        config = tiny_test_config(n_heads=3)  # not divisible by any group
        plans = candidate_plans(
            ctx(Phase.DECODE, 64, 1, config=config, torus=Torus3D(4, 4, 4)))
        for plan in plans:
            assert plan.ffn.is_weight_gathered or plan.attention \
                is AttentionLayoutKind.BATCH or False

    def test_selected_plan_is_among_candidates(self):
        for phase, batch, seq in [(Phase.DECODE, 256, 1),
                                  (Phase.PREFILL, 16, 2048)]:
            context = ctx(phase, batch, seq)
            assert select_plan(context) in candidate_plans(context)
