"""Property-based tests of the admission controller.

Two invariants the autoscaler's brownout ladder leans on, checked over
randomized operation sequences:

* **No priority starvation** — :meth:`AdmissionController.next_batch`
  always serves the head of the highest-priority non-empty queue first,
  even when a batch key constrains the batch to homogeneous items.  A
  lower-priority item only rides along when it matches the key the
  higher-priority head defined.
* **Retuning loses nothing** — interleaving :meth:`set_limits` calls
  (tightening or loosening rate / burst / queue_limit, shedding and
  un-shedding classes) with submissions and dequeues never drops or
  duplicates an *admitted* item: every admitted item is either still
  queued or was dequeued exactly once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.admission import (
    AdmissionController,
    AdmissionError,
    PriorityClass,
)

CLASS_NAMES = ("gold", "silver", "bronze")


def make_controller(n_classes: int) -> AdmissionController:
    # Generous rate/burst so the bucket never rejects by default; the
    # limits-churn test tightens them explicitly.
    classes = [PriorityClass(name, priority=i, rate=1e9, burst=10**6,
                             queue_limit=128)
               for i, name in enumerate(CLASS_NAMES[:n_classes])]
    return AdmissionController(classes)


# One submission: (class index, key value).  Keys are small ints standing
# in for prompt-length buckets.
SUBMISSIONS = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 3)),
    min_size=0, max_size=40)


@settings(max_examples=200, deadline=None)
@given(SUBMISSIONS, st.integers(1, 8), st.booleans())
def test_next_batch_never_starves_higher_priority(subs, max_items,
                                                  use_key):
    controller = make_controller(3)
    queued: dict[str, list[tuple[int, int]]] = {n: [] for n in CLASS_NAMES}
    for rid, (cls_idx, key_val) in enumerate(subs):
        name = CLASS_NAMES[cls_idx]
        item = (rid, key_val)
        controller.submit(item, request_id=rid, now_s=0.0,
                          class_name=name)
        queued[name].append(item)

    key = (lambda item: item[1]) if use_key else None
    order = {name: i for i, name in enumerate(CLASS_NAMES)}
    while controller.backlog():
        heads = controller.heads()
        batch = controller.next_batch(max_items, key=key)
        assert batch, "non-empty backlog must yield a non-empty batch"
        assert len(batch) <= max_items

        # The head of the highest-priority non-empty queue leads the
        # batch — keyed or not, that class is never starved.
        assert batch[0] == heads[0]
        batch_key = key(batch[0]) if key else None

        for item in batch:
            cls = CLASS_NAMES[next(i for i, n in enumerate(CLASS_NAMES)
                                   if item in queued[n])]
            if key is not None:
                # Homogeneity under the head-defined key.
                assert key(item) == batch_key
            # A lower-priority item may only be taken once every
            # higher-priority item still queued fails the key match.
            for higher in CLASS_NAMES[:order[cls]]:
                for other in queued[higher]:
                    if other in batch:
                        continue
                    assert key is not None and key(other) != batch_key, (
                        f"{item} from {cls!r} dequeued while eligible "
                        f"{other} waited in higher-priority {higher!r}")
            # FIFO within class: everything ahead of item in its class
            # either left in an earlier batch or is in this one earlier.
            idx = queued[cls].index(item)
            for ahead in queued[cls][:idx]:
                if key is None:
                    assert ahead in batch and \
                        batch.index(ahead) < batch.index(item)
                else:
                    assert key(ahead) != batch_key or (
                        ahead in batch
                        and batch.index(ahead) < batch.index(item))
        for item in batch:
            for name in CLASS_NAMES:
                if item in queued[name]:
                    queued[name].remove(item)

    assert all(not rest for rest in queued.values())


# Operation stream for the limits-churn property.  Weighted toward
# submissions so queues actually fill.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(0, 2),
                  st.integers(0, 3)),
        st.tuples(st.just("drain"), st.integers(1, 6), st.booleans()),
        st.tuples(st.just("limits"), st.integers(0, 2),
                  st.sampled_from([1, 2, 4, 64, 128]),   # queue_limit
                  st.sampled_from([0.5, 2.0, 1e9]),      # rate
                  st.sampled_from([1, 4, 10**6]),        # burst
                  st.sampled_from([None, True, False])), # accept
        st.tuples(st.just("submit"), st.integers(0, 2),
                  st.integers(0, 3)),
    ),
    min_size=1, max_size=60)


@settings(max_examples=200, deadline=None)
@given(OPS)
def test_set_limits_mid_run_never_drops_admitted(ops):
    controller = make_controller(3)
    admitted: list[tuple[int, int]] = []
    dequeued: list[tuple[int, int]] = []
    now = 0.0
    for rid, op in enumerate(ops):
        now += 0.01  # strictly advancing virtual clock
        if op[0] == "submit":
            _, cls_idx, key_val = op
            item = (rid, key_val)
            try:
                controller.submit(item, request_id=rid, now_s=now,
                                  class_name=CLASS_NAMES[cls_idx])
            except AdmissionError:
                continue  # typed rejection: the item was never admitted
            admitted.append(item)
        elif op[0] == "drain":
            _, max_items, use_key = op
            key = (lambda item: item[1]) if use_key else None
            dequeued.extend(controller.next_batch(max_items, key=key))
        else:
            _, cls_idx, queue_limit, rate, burst, accept = op
            controller.set_limits(CLASS_NAMES[cls_idx], rate=rate,
                                  burst=burst, queue_limit=queue_limit,
                                  accept=accept, now_s=now,
                                  reason="property churn")

        # Conservation after every step: each admitted item is queued
        # xor dequeued, exactly once, regardless of limit churn.
        still_queued = [item for q in controller._queues.values()
                        for item in q]
        assert sorted(still_queued + dequeued) == sorted(admitted)
        assert len(set(dequeued)) == len(dequeued)

    # Drain to empty: everything admitted comes out exactly once.
    while controller.backlog():
        dequeued.extend(controller.next_batch(8))
    assert sorted(dequeued) == sorted(admitted)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 8), st.integers(0, 12))
def test_lowered_queue_limit_drains_without_eviction(new_limit, extra):
    """Tightening queue_limit below the live depth evicts nothing."""
    controller = make_controller(1)
    depth = new_limit + extra
    for rid in range(depth):
        controller.submit(("item", rid), request_id=rid, now_s=0.0,
                          class_name="gold")
    controller.set_limits("gold", queue_limit=new_limit, now_s=1.0,
                          reason="tighten")
    assert controller.backlog() == depth  # nothing evicted
    drained = []
    while controller.backlog():
        drained.extend(controller.next_batch(4))
    assert drained == [("item", rid) for rid in range(depth)]
