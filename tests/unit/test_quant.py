"""Tests for int8 weight quantization (Section 3.6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import init_weights, tiny_test_config
from repro.quant import (
    INT8_MAX,
    model_weight_bytes,
    quantization_error,
    quantize,
    quantize_model_weights,
    quantized_matmul,
)

RNG = np.random.default_rng(7)


class TestQuantize:
    def test_roundtrip_error_bounded_by_half_step(self):
        w = RNG.normal(size=(64, 32))
        q = quantize(w, axis=1)
        step = np.max(np.abs(w), axis=0) / INT8_MAX
        err = np.abs(q.dequantize() - w)
        assert (err <= step / 2 + 1e-12).all()

    def test_values_are_int8_in_range(self):
        q = quantize(RNG.normal(size=(16, 16)) * 100)
        assert q.values.dtype == np.int8
        assert q.values.min() >= -INT8_MAX
        assert q.values.max() <= INT8_MAX

    def test_zero_channel_is_exact(self):
        w = RNG.normal(size=(8, 4))
        w[:, 2] = 0.0
        q = quantize(w, axis=1)
        np.testing.assert_array_equal(q.dequantize()[:, 2], 0.0)

    def test_scale_invariance_per_channel(self):
        """Scaling one output channel only rescales that channel."""
        w = RNG.normal(size=(8, 4))
        w2 = w.copy()
        w2[:, 1] *= 1000.0
        q1, q2 = quantize(w, 1), quantize(w2, 1)
        np.testing.assert_array_equal(q1.values[:, 1], q2.values[:, 1])
        np.testing.assert_array_equal(q1.values[:, 0], q2.values[:, 0])

    def test_storage_is_quarter_of_float32(self):
        w = RNG.normal(size=(256, 256)).astype(np.float32)
        q = quantize(w)
        assert q.nbytes < w.nbytes / 4 + q.scales.nbytes + 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1_000_000))
    def test_property_error_small_relative_to_range(self, seed):
        w = np.random.default_rng(seed).normal(size=(16, 8))
        err = quantization_error(w)
        assert err <= np.abs(w).max() / INT8_MAX + 1e-12


class TestQuantizedMatmul:
    def test_matches_dequantized_matmul_output_channel_scales(self):
        x = RNG.normal(size=(4, 32))
        w = RNG.normal(size=(32, 16))
        q = quantize(w, axis=1)
        np.testing.assert_allclose(quantized_matmul(x, q),
                                   x @ q.dequantize(), rtol=1e-10)

    def test_matches_dequantized_matmul_input_channel_scales(self):
        x = RNG.normal(size=(4, 32))
        w = RNG.normal(size=(32, 16))
        q = quantize(w, axis=0)
        np.testing.assert_allclose(quantized_matmul(x, q),
                                   x @ q.dequantize(), rtol=1e-10)

    def test_accuracy_against_float(self):
        x = RNG.normal(size=(8, 64))
        w = RNG.normal(size=(64, 64)) * 0.02
        rel = (np.linalg.norm(quantized_matmul(x, quantize(w)) - x @ w)
               / np.linalg.norm(x @ w))
        assert rel < 0.01  # "no noticeable quality loss" at the macro level

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            quantized_matmul(RNG.normal(size=(2, 2)),
                             quantize(RNG.normal(size=(2, 2, 2))))


class TestModelQuantization:
    def test_quantizes_every_projection(self):
        cfg = tiny_test_config()
        weights = init_weights(cfg)
        q = quantize_model_weights(weights)
        assert set(q.keys()) == set(range(cfg.n_layers))
        for per_layer in q.values():
            assert {"wq", "wk", "wv", "wo", "w_in", "w_gate",
                    "w_out"} == set(per_layer)

    def test_mlp_model_has_no_gate(self):
        from repro.model import FfnKind

        weights = init_weights(tiny_test_config(ffn=FfnKind.MLP))
        q = quantize_model_weights(weights)
        assert "w_gate" not in q[0]

    def test_memory_roughly_one_byte_per_param(self):
        # Per-channel scale overhead shrinks with the channel length; use
        # a d_model large enough for the ~1 byte/param regime.
        cfg = tiny_test_config(d_model=128, d_ff=256, n_heads=4, d_head=32)
        weights = init_weights(cfg)
        q = quantize_model_weights(weights)
        body_params = cfg.n_layers * cfg.params_per_layer
        total = model_weight_bytes(q)
        assert body_params <= total <= 1.2 * body_params


class TestActivationQuantization:
    """Section 3.6 future work: dynamic per-token int8 activations."""

    def test_roundtrip_error_small(self):
        from repro.quant import activation_roundtrip_error

        x = RNG.normal(size=(4, 8, 64))
        assert activation_roundtrip_error(x) <= 1.0 / INT8_MAX + 1e-12

    def test_per_token_scales(self):
        from repro.quant import quantize_activations

        x = RNG.normal(size=(4, 16))
        x[2] *= 100.0  # one loud token must not degrade the others
        q = quantize_activations(x)
        deq = q.dequantize()
        for row in (0, 1, 3):
            np.testing.assert_allclose(deq[row], x[row], atol=np.abs(
                x[row]).max() / INT8_MAX + 1e-12)

    def test_rejects_1d(self):
        from repro.quant import quantize_activations

        with pytest.raises(ValueError):
            quantize_activations(np.ones(8))

    def test_halves_comm_volume_in_estimator(self):
        """act_dtype_bytes=1 halves weight-stationary activation comm —
        the paper's hoped-for benefit."""
        from repro.hardware import TPU_V4, Torus3D
        from repro.model import PALM_540B_PADDED
        from repro.partitioning import (
            AttentionLayoutKind,
            FfnLayoutKind,
            LayoutPlan,
        )
        from repro.perf import InferenceEstimator

        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
        torus = Torus3D(4, 4, 4)
        bf16 = InferenceEstimator(PALM_540B_PADDED, TPU_V4, torus,
                                  act_dtype_bytes=2)
        int8 = InferenceEstimator(PALM_540B_PADDED, TPU_V4, torus,
                                  act_dtype_bytes=1)
        c2 = bf16.decode_step_cost(plan, 512, 2048)
        c1 = int8.decode_step_cost(plan, 512, 2048)
        assert c1.comm_s == pytest.approx(c2.comm_s / 2, rel=1e-6)
        assert c1.time_s < c2.time_s


class TestNbitQuantization:
    """The cited 4-bit direction (Abdolrashidi et al., 2021)."""

    def test_int8_special_case_matches_quantize(self):
        from repro.quant import quantize_nbit

        w = RNG.normal(size=(16, 8))
        np.testing.assert_array_equal(quantize_nbit(w, 8).values,
                                      quantize(w).values)

    def test_error_grows_as_bits_shrink(self):
        from repro.quant import quantize_nbit

        w = RNG.normal(size=(64, 32))
        errors = []
        for bits in (8, 6, 4, 2):
            q = quantize_nbit(w, bits)
            errors.append(float(np.abs(q.dequantize() - w).max()))
        assert errors == sorted(errors)

    def test_int4_grid(self):
        from repro.quant import quantize_nbit

        q = quantize_nbit(RNG.normal(size=(8, 8)) * 50, 4)
        assert q.values.min() >= -7
        assert q.values.max() <= 7

    def test_pack_unpack_roundtrip(self):
        from repro.quant import pack_int4, quantize_nbit, unpack_int4

        w = RNG.normal(size=(16, 8))
        q = quantize_nbit(w, 4)
        packed = pack_int4(q.values)
        assert packed.nbytes == q.values.size // 2  # real 4-bit storage
        np.testing.assert_array_equal(unpack_int4(packed, q.values.shape),
                                      q.values)

    def test_pack_validation(self):
        from repro.quant import pack_int4

        with pytest.raises(ValueError, match="even"):
            pack_int4(np.zeros(3, dtype=np.int8))
        with pytest.raises(ValueError, match="int4 grid"):
            pack_int4(np.array([8, 0], dtype=np.int8))
        from repro.quant import quantize_nbit

        with pytest.raises(ValueError):
            quantize_nbit(np.zeros((2, 2)), 1)

    def test_int4_estimator_halves_int8_weight_time(self):
        from repro.hardware import TPU_V4, Torus3D
        from repro.model import PALM_540B_PADDED
        from repro.partitioning import (
            AttentionLayoutKind,
            FfnLayoutKind,
            LayoutPlan,
        )
        from repro.perf import InferenceEstimator

        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
        torus = Torus3D(4, 4, 4)
        int8 = InferenceEstimator(PALM_540B_PADDED, TPU_V4, torus,
                                  weight_dtype_bytes=1)
        int4 = InferenceEstimator(PALM_540B_PADDED, TPU_V4, torus,
                                  weight_dtype_bytes=0.5)
        a = int8.decode_step_cost(plan, 4, 2048)
        b = int4.decode_step_cost(plan, 4, 2048)
        assert b.weight_load_s == pytest.approx(a.weight_load_s / 2)
        assert b.time_s <= a.time_s
