"""Cross-check: the event-level comm model vs the Appendix A.2 formulas.

The symbolic event generator is verified against the *executor*; the
closed forms in ``repro.partitioning.ffn_costs`` are derived from the
*paper*.  This suite ties the two together: for an attention-free,
MLP-style configuration the summed event volumes must land on the
closed-form FFN expressions (up to the small norm/attention terms the
formulas ignore), for every layout.
"""

import pytest

from repro.hardware import Torus3D
from repro.model import AttentionKind, FfnKind, ModelConfig
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.partitioning.ffn_costs import ffn_volume
from repro.perf.comm_model import layer_comm_events

TORUS = Torus3D(4, 4, 4)
E, F = 16384, 65536

# A pure-MLP transformer with a vanishingly small attention block, so the
# per-layer communication is essentially the FFN's.
CONFIG = ModelConfig(name="mlp-probe", n_layers=1, d_model=E, d_ff=F,
                     n_heads=64, d_head=1, vocab_size=1000,
                     attention=AttentionKind.MULTIQUERY, ffn=FfnKind.MLP,
                     parallel_block=True)


def activation_event_volume(plan, batch, l_new=1):
    events = layer_comm_events(CONFIG, plan, TORUS, batch, l_new)
    total = 0.0
    for ev in events:
        payload = ev.payload_elements
        if ev.op == "all_reduce":
            pass  # already logged as 2x per-chip buffer
        total += payload if ev.kind == "act" else 0.0
    return total


def weight_event_volume(plan, batch, l_new=1):
    events = layer_comm_events(CONFIG, plan, TORUS, batch, l_new)
    return sum(ev.payload_elements for ev in events
               if ev.kind == "weight")


class TestAgainstClosedForms:
    @pytest.mark.parametrize("tokens", [256, 4096, 65536])
    def test_ws1d_matches_2ble(self, tokens):
        plan = LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD)
        got = activation_event_volume(plan, tokens)
        want = ffn_volume(FfnLayoutKind.WS_1D, TORUS, tokens, E, F)
        # Within the tiny norm/QKV overhead (d_head=1 heads).
        assert got == pytest.approx(want, rel=0.02)

    @pytest.mark.parametrize("tokens", [256, 4096, 65536])
    def test_ws2d_matches_formula(self, tokens):
        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
        got = activation_event_volume(plan, tokens)
        want = ffn_volume(FfnLayoutKind.WS_2D, TORUS, tokens, E, F)
        assert got == pytest.approx(want, rel=0.03)

    @pytest.mark.parametrize("kind", [FfnLayoutKind.WG_X,
                                      FfnLayoutKind.WG_XY,
                                      FfnLayoutKind.WG_XYZ])
    def test_weight_gathered_brackets_formula(self, kind):
        """The executed program's volume sits between the paper's fused
        single-gather formula and that formula plus the two-step gather
        overhead (the E-side gather whose output the F-side gather then
        re-forwards: an extra 1/Y of the weight volume for XY, 1/(ZY)
        for XYZ).  The paper prices the fused form; the executor performs
        the two steps — both are internally consistent, and this test
        pins the gap to exactly that mechanism."""
        tokens = 65536
        plan = LayoutPlan(kind, AttentionLayoutKind.BATCH)
        got = (activation_event_volume(plan, tokens)
               + weight_event_volume(plan, tokens))
        want = ffn_volume(kind, TORUS, tokens, E, F)
        assert got >= want * 0.99
        assert got <= want * 1.30

    def test_weight_volume_independent_of_tokens(self):
        plan = LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH)
        assert weight_event_volume(plan, 256) == pytest.approx(
            weight_event_volume(plan, 65536))

    def test_ws_layouts_move_no_weights(self):
        for kind in (FfnLayoutKind.WS_1D, FfnLayoutKind.WS_2D):
            plan = LayoutPlan(kind, AttentionLayoutKind.HEAD)
            assert weight_event_volume(plan, 4096) == 0.0

    def test_activation_volume_linear_in_tokens(self):
        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
        v1 = activation_event_volume(plan, 1024)
        v4 = activation_event_volume(plan, 4096)
        assert v4 == pytest.approx(4 * v1, rel=1e-9)
