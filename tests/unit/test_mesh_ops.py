"""Tests for the virtual mesh, sharded tensors, and functional collectives.

The central invariant: every collective preserves the *global* value of a
tensor while changing its layout, and ``to_global`` verifies replica
consistency.  These tests are what lets the layout implementations in
``repro.layouts`` claim numerical equivalence with an unsharded program.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    ShardedTensor,
    VirtualMesh,
    all_gather,
    all_reduce,
    all_to_all,
    enable_comm_log,
    reduce_scatter,
    sharded_einsum,
    split,
)
from repro.sharding import ShardingError, parse

RNG = np.random.default_rng(0)


def mesh222():
    return VirtualMesh((2, 2, 2))


def mesh142():
    return VirtualMesh((1, 4, 2))


class TestShardedTensor:
    def test_from_to_global_roundtrip(self):
        mesh = mesh222()
        x = RNG.normal(size=(4, 6, 8))
        for spec in ["BLE", "BLE_xyz", "B_xLE_yz", "BLE_z", "B_zLE_xy"]:
            t = ShardedTensor.from_global(mesh, x, spec)
            np.testing.assert_array_equal(t.to_global(), x)

    def test_local_shapes(self):
        mesh = mesh142()
        x = RNG.normal(size=(8, 2, 16))
        t = ShardedTensor.from_global(mesh, x, "B_yLE_z")
        assert t.local_shape == (2, 2, 8)
        assert t.shards[0, 0, 0].shape == (2, 2, 8)

    def test_shard_contents_match_slices(self):
        mesh = mesh222()
        x = np.arange(8.0).reshape(8, 1)
        t = ShardedTensor.from_global(mesh, x, "B_xyzL")
        # Device (i,j,k) holds row-major shard i*4 + j*2 + k.
        for i in range(2):
            for j in range(2):
                for k in range(2):
                    rank = i * 4 + j * 2 + k
                    np.testing.assert_array_equal(
                        t.shards[i, j, k], x[rank:rank + 1])

    def test_replication_inconsistency_detected(self):
        mesh = mesh222()
        x = RNG.normal(size=(4, 4))
        t = ShardedTensor.from_global(mesh, x, "BE_x")
        t.shards[0, 1, 0] = t.shards[0, 1, 0] + 1.0  # corrupt one replica
        with pytest.raises(ShardingError, match="replicas disagree"):
            t.to_global()

    def test_partial_sum_to_global_sums(self):
        mesh = mesh222()
        x = RNG.normal(size=(4, 4))
        # Build a partial-sum tensor by hand: each x-slice holds half.
        spec = parse("BE (partialsum-x)")
        shards = mesh.map_devices(lambda c: x / 2.0)
        t = ShardedTensor(mesh, spec, x.shape, shards)
        np.testing.assert_allclose(t.to_global(), x)

    def test_from_global_rejects_partial_sum_spec(self):
        with pytest.raises(ShardingError, match="partial-sum"):
            ShardedTensor.from_global(mesh222(), np.ones((2, 2)),
                                      "BE (partialsum-x)")

    def test_add_requires_matching_spec(self):
        mesh = mesh222()
        x = RNG.normal(size=(4, 4))
        a = ShardedTensor.from_global(mesh, x, "BE_x")
        b = ShardedTensor.from_global(mesh, x, "BE_y")
        with pytest.raises(ShardingError, match="cannot add"):
            _ = a + b
        c = ShardedTensor.from_global(mesh, x, "BE_x")
        np.testing.assert_allclose((a + c).to_global(), 2 * x)

    def test_wrong_shard_shape_rejected(self):
        mesh = mesh222()
        shards = mesh.map_devices(lambda c: np.ones((3, 3)))
        with pytest.raises(ShardingError, match="shape"):
            ShardedTensor(mesh, parse("BE_x"), (4, 4), shards)


class TestAllGather:
    def test_single_axis(self):
        mesh = mesh222()
        x = RNG.normal(size=(4, 8))
        t = ShardedTensor.from_global(mesh, x, "BE_xyz")
        g = all_gather(t, ("z",), "E")
        assert str(g.spec) == "BE_xy"
        np.testing.assert_array_equal(g.to_global(), x)

    def test_multi_axis_full_gather(self):
        mesh = mesh142()
        x = RNG.normal(size=(4, 8))
        t = ShardedTensor.from_global(mesh, x, "BE_yz")
        g = all_gather(t, ("y", "z"), "E")
        assert str(g.spec) == "BE"
        np.testing.assert_array_equal(g.to_global(), x)
        # Every device now holds the full tensor.
        for coord in mesh.devices():
            np.testing.assert_array_equal(g.shards[coord], x)

    def test_requires_suffix(self):
        mesh = mesh222()
        t = ShardedTensor.from_global(mesh, RNG.normal(size=(4, 8)), "BE_xy")
        with pytest.raises(ShardingError, match="suffix"):
            all_gather(t, ("x",), "E")

    def test_comm_log_payload(self):
        mesh = mesh222()
        log = enable_comm_log(mesh)
        x = RNG.normal(size=(4, 8))
        t = ShardedTensor.from_global(mesh, x, "BE_xyz")
        out = all_gather(t, ("y", "z"), "E")
        assert log[-1].op == "all_gather"
        assert log[-1].group_size == 4
        # Payload is the per-chip *output* size.
        assert log[-1].payload_bytes == out.per_chip_bytes


class TestReduceScatter:
    def _partial(self, mesh, x, axes):
        spec = parse("BE").with_partial_sum(axes)
        k = mesh.group_size(axes)
        shards = mesh.map_devices(lambda c: x / k)
        return ShardedTensor(mesh, spec, x.shape, shards)

    def test_scatter_into_dim(self):
        mesh = mesh222()
        x = RNG.normal(size=(4, 8))
        t = self._partial(mesh, x, ("x",))
        out = reduce_scatter(t, ("x",), "E")
        assert str(out.spec) == "BE_x"
        np.testing.assert_allclose(out.to_global(), x)

    def test_appends_innermost(self):
        mesh = mesh222()
        x = RNG.normal(size=(4, 8))
        spec = parse("BE_y").with_partial_sum(("x",))
        shards = mesh.map_devices(
            lambda c: x[:, c[1] * 4:(c[1] + 1) * 4] / 2)
        t = ShardedTensor(mesh, spec, x.shape, shards)
        out = reduce_scatter(t, ("x",), "E")
        assert str(out.spec) == "BE_yx"
        np.testing.assert_allclose(out.to_global(), x)

    def test_requires_partial_axes(self):
        mesh = mesh222()
        t = ShardedTensor.from_global(mesh, RNG.normal(size=(4, 8)), "BE")
        with pytest.raises(ShardingError, match="partial-sum"):
            reduce_scatter(t, ("x",), "E")


class TestAllReduce:
    def test_matches_reduce_scatter_plus_all_gather(self):
        mesh = mesh142()
        x = RNG.normal(size=(4, 8))
        spec = parse("BE").with_partial_sum(("y",))
        shards = mesh.map_devices(lambda c: x * (c[1] + 1) / 10)
        t = ShardedTensor(mesh, spec, x.shape, shards)
        direct = all_reduce(t, ("y",))
        composed = all_gather(reduce_scatter(t, ("y",), "E"), ("y",), "E")
        np.testing.assert_allclose(direct.to_global(), composed.to_global())
        assert direct.spec == composed.spec

    def test_partial_reduction_keeps_other_axes(self):
        mesh = mesh222()
        x = RNG.normal(size=(4, 8))
        spec = parse("BE").with_partial_sum(("x", "y"))
        shards = mesh.map_devices(lambda c: x / 4)
        t = ShardedTensor(mesh, spec, x.shape, shards)
        out = all_reduce(t, ("x",))
        assert out.spec.partial_sum == ("y",)
        np.testing.assert_allclose(out.to_global(), x)


class TestAllToAll:
    def test_resharding_heads_to_batch(self):
        # The Section 3.3 reshard: BLH_x Q -> B_x LHQ.
        mesh = mesh222()
        x = RNG.normal(size=(4, 2, 8, 3))
        t = ShardedTensor.from_global(mesh, x, "BLH_xQ")
        out = all_to_all(t, ("x",), "H", "B")
        assert str(out.spec) == "B_xLHQ"
        np.testing.assert_array_equal(out.to_global(), x)

    def test_multi_axis(self):
        mesh = mesh142()
        x = RNG.normal(size=(8, 2, 8, 3))
        t = ShardedTensor.from_global(mesh, x, "BLH_yzQ")
        out = all_to_all(t, ("y", "z"), "H", "B")
        assert str(out.spec) == "B_yzLHQ"
        np.testing.assert_array_equal(out.to_global(), x)

    def test_same_dim_rejected(self):
        mesh = mesh222()
        t = ShardedTensor.from_global(mesh, RNG.normal(size=(4, 8)), "BE_x")
        with pytest.raises(ShardingError, match="must differ"):
            all_to_all(t, ("x",), "E", "E")


class TestSplit:
    def test_free_reshard_of_replicated(self):
        mesh = mesh222()
        log = enable_comm_log(mesh)
        x = RNG.normal(size=(8, 4))
        t = ShardedTensor.from_global(mesh, x, "BE_x")
        out = split(t, ("y", "z"), "B")
        assert str(out.spec) == "B_yzE_x"
        np.testing.assert_array_equal(out.to_global(), x)
        assert log[-1].op == "split"
        assert log[-1].payload_bytes == 0

    def test_rejects_used_axes(self):
        mesh = mesh222()
        t = ShardedTensor.from_global(mesh, RNG.normal(size=(8, 4)), "BE_x")
        with pytest.raises(ShardingError, match="overlap"):
            split(t, ("x",), "B")


class TestShardedEinsum:
    def test_megatron_mlp_contraction(self):
        # BLE x EF_xyz -> BLF_xyz, the 1D weight-stationary first matmul.
        mesh = mesh222()
        x = RNG.normal(size=(2, 3, 8))
        w = RNG.normal(size=(8, 16))
        xt = ShardedTensor.from_global(mesh, x, "BLE")
        wt = ShardedTensor.from_global(mesh, w, "EF_xyz")
        out = sharded_einsum("ble,ef->blf", xt, wt)
        assert str(out.spec) == "BLF_xyz"
        np.testing.assert_allclose(out.to_global(), np.einsum(
            "ble,ef->blf", x, w))

    def test_contracted_sharded_dim_produces_partial_sum(self):
        mesh = mesh222()
        x = RNG.normal(size=(2, 3, 8))
        w = RNG.normal(size=(8, 16))
        xt = ShardedTensor.from_global(mesh, x, "BLE_x")
        wt = ShardedTensor.from_global(mesh, w, "E_xF_yz")
        out = sharded_einsum("ble,ef->blf", xt, wt)
        assert set(out.spec.partial_sum) == {"x"}
        assert out.spec.axes_for("F") == ("y", "z")
        np.testing.assert_allclose(out.to_global(), np.einsum(
            "ble,ef->blf", x, w))

    def test_mismatched_contraction_sharding_rejected(self):
        mesh = mesh222()
        xt = ShardedTensor.from_global(mesh, RNG.normal(size=(2, 3, 8)),
                                       "BLE_x")
        wt = ShardedTensor.from_global(mesh, RNG.normal(size=(8, 16)),
                                       "E_yF")
        with pytest.raises(ShardingError, match="mismatch"):
            sharded_einsum("ble,ef->blf", xt, wt)

    def test_subscripts_must_match_dims(self):
        mesh = mesh222()
        xt = ShardedTensor.from_global(mesh, RNG.normal(size=(2, 3, 8)),
                                       "BLE")
        wt = ShardedTensor.from_global(mesh, RNG.normal(size=(8, 16)), "EF")
        with pytest.raises(ShardingError, match="do not match"):
            sharded_einsum("xyz,ef->xyf", xt, wt)

    def test_carried_partial_sum_safe_case(self):
        mesh = mesh222()
        x = RNG.normal(size=(2, 8))
        w = RNG.normal(size=(8, 4))
        spec = parse("BE").with_partial_sum(("x",))
        shards = mesh.map_devices(lambda c: x / 2)
        xt = ShardedTensor(mesh, spec, x.shape, shards)
        wt = ShardedTensor.from_global(mesh, w, "EF_y")
        out = sharded_einsum("be,ef->bf", xt, wt)
        assert "x" in out.spec.partial_sum
        np.testing.assert_allclose(out.to_global(), x @ w)

    def test_carried_partial_sum_unsafe_case_rejected(self):
        mesh = mesh222()
        x = RNG.normal(size=(2, 8))
        w = RNG.normal(size=(8, 4))
        spec = parse("BE").with_partial_sum(("x",))
        shards = mesh.map_devices(lambda c: x / 2)
        xt = ShardedTensor(mesh, spec, x.shape, shards)
        wt = ShardedTensor.from_global(mesh, w, "EF_x")
        with pytest.raises(ShardingError, match="partial-sum"):
            sharded_einsum("be,ef->bf", xt, wt)


@st.composite
def mesh_and_tensor(draw):
    shape = draw(st.sampled_from([(1, 1, 2), (2, 2, 1), (2, 2, 2),
                                  (1, 4, 2)]))
    mesh = VirtualMesh(shape)
    b = draw(st.sampled_from([4, 8]))
    e = draw(st.sampled_from([8, 16]))
    data = draw(st.integers(0, 2**31 - 1))
    x = np.random.default_rng(data).normal(size=(b, e))
    return mesh, x


@settings(max_examples=30, deadline=None)
@given(mesh_and_tensor(), st.sampled_from(["BE", "B_xE", "BE_yz", "B_yE_z",
                                           "BE_xyz", "B_xyzE"]))
def test_property_roundtrip_any_spec(mt, spec):
    mesh, x = mt
    try:
        t = ShardedTensor.from_global(mesh, x, spec)
    except ShardingError:
        return  # indivisible combination; not the property under test
    np.testing.assert_array_equal(t.to_global(), x)


@settings(max_examples=30, deadline=None)
@given(mesh_and_tensor())
def test_property_gather_then_split_restores_layout(mt):
    mesh, x = mt
    if mesh.axis_size("y") == 1:
        return
    t = ShardedTensor.from_global(mesh, x, "BE_y")
    g = all_gather(t, ("y",), "E")
    s = split(g, ("y",), "E")
    assert s.spec == t.spec
    for coord in mesh.devices():
        np.testing.assert_array_equal(s.shards[coord], t.shards[coord])
