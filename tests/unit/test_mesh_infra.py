"""Tests for virtual-mesh infrastructure and failure detection.

Covers the group/rank machinery the collectives are built on, the
sharded KV cache's error paths, and SPMD-divergence detection: a
corrupted shard on one chip must be caught, not silently averaged away.
"""

import numpy as np
import pytest

from repro.layouts import ShardedKVCache, ShardedTransformer
from repro.mesh import ShardedTensor, VirtualMesh
from repro.model import init_weights, tiny_test_config
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.sharding import ShardingError

RNG = np.random.default_rng(6)


class TestGroups:
    def test_groups_partition_devices(self):
        mesh = VirtualMesh((2, 4, 2))
        for axes in [("x",), ("y",), ("x", "z"), ("x", "y", "z")]:
            seen = set()
            for group in mesh.groups(axes):
                assert len(group) == mesh.group_size(axes)
                for coord in group:
                    assert coord not in seen
                    seen.add(coord)
            assert len(seen) == mesh.num_chips

    def test_group_ordering_is_row_major(self):
        mesh = VirtualMesh((1, 2, 2))
        group = next(mesh.groups(("y", "z")))
        assert group == [(0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1)]
        group_zy = next(mesh.groups(("z", "y")))
        assert group_zy == [(0, 0, 0), (0, 1, 0), (0, 0, 1), (0, 1, 1)]

    def test_rank_in_group_consistent_with_groups(self):
        mesh = VirtualMesh((2, 2, 2))
        for axes in [("x",), ("z", "y"), ("x", "y", "z")]:
            for group in mesh.groups(axes):
                for rank, coord in enumerate(group):
                    assert mesh.rank_in_group(coord, axes) == rank

    def test_rank_with_empty_axes_is_zero(self):
        mesh = VirtualMesh((2, 2, 2))
        assert mesh.rank_in_group((1, 1, 1), ()) == 0

    def test_coords_projection(self):
        mesh = VirtualMesh((2, 4, 8))
        assert mesh.coords_on((1, 3, 5), ("z", "x")) == (5, 1)


class TestShardedKVCacheErrors:
    def cache(self):
        mesh = VirtualMesh((2, 2, 2))
        return mesh, ShardedKVCache(mesh, "B_xMKD", batch=4, max_len=4,
                                    n_kv_heads=1, d_head=2)

    def test_bad_dims_rejected(self):
        mesh = VirtualMesh((2, 2, 2))
        with pytest.raises(ShardingError, match="BMKD"):
            ShardedKVCache(mesh, "BLKD", 4, 4, 1, 2)
        with pytest.raises(ShardingError, match="only B and K"):
            ShardedKVCache(mesh, "BM_xKD", 4, 4, 1, 2)

    def test_append_spec_mismatch(self):
        mesh, cache = self.cache()
        wrong = ShardedTensor.from_global(
            mesh, RNG.normal(size=(4, 1, 1, 2)), "B_yLKD")
        with pytest.raises(ShardingError, match="does not match"):
            cache.append(wrong, wrong)

    def test_overflow(self):
        mesh, cache = self.cache()
        new = ShardedTensor.from_global(
            mesh, RNG.normal(size=(4, 3, 1, 2)), "B_xLKD")
        cache.append(new, new)
        with pytest.raises(ShardingError, match="overflow"):
            cache.append(new, new)

    def test_partial_sum_append_rejected(self):
        mesh, cache = self.cache()
        spec = ShardedTensor.from_global(
            mesh, RNG.normal(size=(4, 1, 1, 2)), "B_xLKD").spec
        shards = mesh.map_devices(lambda c: RNG.normal(size=(2, 1, 1, 2)))
        t = ShardedTensor(mesh, spec.with_partial_sum(("y",)),
                          (4, 1, 1, 2), shards)
        with pytest.raises(ShardingError, match="partial sums"):
            cache.append(t, t)


class TestSpmdDivergenceDetection:
    def test_corrupted_replicated_tensor_is_caught(self):
        """A bit-flip in one chip's copy of a *replicated* tensor (the
        embedding) makes the replicated logits disagree; ``to_global``'s
        replica check must refuse to return.  (A flip in a *unique* weight
        shard instead reconverges into a consistent wrong answer — the
        collectives mix it identically into every replica — which is why
        real systems need checksums, not just replica comparison.)"""
        config = tiny_test_config(n_layers=1, d_model=16, d_ff=32,
                                  n_heads=8, d_head=8, vocab_size=32)
        weights = init_weights(config, seed=0)
        mesh = VirtualMesh((2, 2, 2))
        model = ShardedTransformer(
            weights, mesh,
            LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD))
        # Corrupt one chip's copy of the (replicated) embedding table.
        model.embedding.shards[1, 0, 0] = \
            model.embedding.shards[1, 0, 0] + 100.0
        prompt = np.zeros((8, 2), dtype=int)
        with pytest.raises(ShardingError, match="replicas disagree"):
            model.prefill(prompt, 4)

    def test_corrupted_unique_shard_reconverges_consistently(self):
        """The counterpart: a unique-shard flip yields consistent (wrong)
        logits — no replica divergence, by SPMD construction."""
        config = tiny_test_config(n_layers=1, d_model=16, d_ff=32,
                                  n_heads=8, d_head=8, vocab_size=32)
        weights = init_weights(config, seed=0)
        mesh = VirtualMesh((2, 2, 2))
        model = ShardedTransformer(
            weights, mesh,
            LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD))
        clean, _ = model.prefill(np.zeros((8, 2), dtype=int), 4)
        model.layers[0]["w_in"].shards[1, 0, 0][0, 0] += 100.0
        corrupted, _ = model.prefill(np.zeros((8, 2), dtype=int), 4)
        assert not np.allclose(clean, corrupted)  # wrong ...
        # ... but it returned without a replica error: consistent.

    def test_corrupted_activation_detected_without_check_skip(self):
        mesh = VirtualMesh((1, 2, 2))
        x = RNG.normal(size=(4, 8))
        t = ShardedTensor.from_global(mesh, x, "BE_y")
        t.shards[0, 1, 1][:] += 1.0  # one replica along z diverges
        with pytest.raises(ShardingError):
            t.to_global()
        # Escape hatch for intentional per-rank float divergence.
        assert t.to_global(check_replication=False).shape == x.shape
