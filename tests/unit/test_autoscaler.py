"""Unit tests for the autoscaler control loop and brownout ladder.

The loop only touches a narrow plane surface (admission, events, fleet
management, the hedging/caps/profile levers), so these tests drive it
against a fake plane — tick-level behavior without serving anything.
The end-to-end behavior on real traffic lives in
``tests/integration/test_autoscale.py``.
"""

import pytest

from repro.cluster.admission import AdmissionController, PriorityClass
from repro.cluster.autoscaler import (
    BROWNOUT_LADDER,
    Autoscaler,
    AutoscalerPolicy,
)
from repro.events import EventLog

CLASSES = (PriorityClass("interactive", priority=0, rate=1e9,
                         burst=10**6, queue_limit=256),
           PriorityClass("batch", priority=1, rate=1e9, burst=10**6,
                         queue_limit=256))


class FakeReplica:
    def __init__(self, name):
        self.name = name


class FakeTracer:
    def __init__(self):
        self.marks = []

    def mark(self, name, **kwargs):
        self.marks.append(name)


class FakePlane:
    """Just enough control-plane surface for the loop to steer."""

    def __init__(self, n_replicas=1, classes=CLASSES):
        self.events = EventLog()
        self.tracer = FakeTracer()
        self.admission = AdmissionController(classes, self.events)
        self._active = [FakeReplica(f"seed{i}")
                        for i in range(n_replicas)]
        self._counter = 0
        self.retiring = {}
        self.hedging_enabled = True
        self.output_caps = {}
        self.target_profile = "weight-stationary"
        self.prefill_tokens = 0
        self.decode_tokens = 0

    def active_replicas(self):
        return list(self._active)

    def reap_retiring(self, now_s):
        self.retiring.clear()

    def add_replica(self, shape, now_s, spinup_s=0.0):
        replica = FakeReplica(f"scale{self._counter}")
        self._counter += 1
        self._active.append(replica)
        return replica

    def begin_scale_in(self, name, now_s):
        victim, = [r for r in self._active if r.name == name]
        self._active.remove(victim)
        self.retiring[name] = victim

    # test helpers ----------------------------------------------------------

    def queue(self, n, class_name="interactive"):
        for i in range(n):
            self.admission.submit(("item", class_name, i),
                                  request_id=1000 + i, now_s=0.0,
                                  class_name=class_name)

    def drain(self):
        while self.admission.backlog():
            self.admission.next_batch(64)


def ticks(scaler, plane, n, start=1):
    """Fire exactly ``n`` ticks (one interval each)."""
    for i in range(start, start + n):
        scaler.maybe_tick(plane, i * scaler.policy.interval_s)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(interval_s=0.0),
        dict(min_replicas=0),
        dict(min_replicas=3, max_replicas=2),
        dict(up_after=0),
        dict(down_after=0),
        dict(plan_after=0),
        dict(recover_after=0),
        dict(scale_in_pressure=9.0, scale_out_pressure=8.0),
        dict(brownout_exit_pressure=20.0, brownout_enter_pressure=16.0),
        dict(batch_output_cap=0),
    ])
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerPolicy(**kwargs)


class TestTicking:
    def test_catch_up_fires_every_missed_tick(self):
        scaler = Autoscaler(AutoscalerPolicy(interval_s=0.05))
        plane = FakePlane()
        scaler.maybe_tick(plane, 0.26)
        assert scaler.ticks == 5
        scaler.maybe_tick(plane, 0.26)  # same time: no extra tick
        assert scaler.ticks == 5
        scaler.maybe_tick(plane, 0.3001)
        assert scaler.ticks == 6


class TestScaling:
    POLICY = AutoscalerPolicy(min_replicas=1, max_replicas=3,
                              scale_out_pressure=4.0,
                              scale_in_pressure=1.0,
                              up_after=2, down_after=3,
                              brownout=False, switch_plans=False)

    def test_scale_out_needs_sustained_pressure(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        plane.queue(8)  # pressure 8 on one replica
        ticks(scaler, plane, 1)
        assert len(plane.active_replicas()) == 1  # one hot tick: hold
        ticks(scaler, plane, 1, start=2)
        assert len(plane.active_replicas()) == 2
        assert scaler.scale_outs == 1
        decisions = plane.events.of_kind("autoscale_decision")
        assert decisions[-1]["action"] == "scale-out"
        assert decisions[-1]["pressure"] == 8.0

    def test_scale_out_capped_at_max_replicas(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        plane.queue(64)
        ticks(scaler, plane, 20)
        assert len(plane.active_replicas()) == self.POLICY.max_replicas

    def test_one_hot_tick_resets_the_down_streak(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane(n_replicas=2)
        ticks(scaler, plane, 2)                 # calm, streak 2 of 3
        plane.queue(16)
        ticks(scaler, plane, 1, start=3)        # hot: streak resets
        plane.drain()
        ticks(scaler, plane, 2, start=4)        # calm again, 2 of 3
        assert len(plane.active_replicas()) == 2
        ticks(scaler, plane, 1, start=6)
        assert len(plane.active_replicas()) == 1

    def test_scale_in_is_lifo_and_floored_at_min(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        plane.queue(64)
        ticks(scaler, plane, 20)   # grow to max
        plane.drain()
        ticks(scaler, plane, 40, start=21)
        # Newest first, never below min_replicas.
        assert [r.name for r in plane.active_replicas()] == ["seed0"]
        ins = [e for e in plane.events.of_kind("autoscale_decision")
               if e["action"] == "scale-in"]
        assert [e["replica"] for e in ins] == ["scale1", "scale0"]

    def test_ttft_slo_breach_scales_without_backlog(self):
        policy = AutoscalerPolicy(up_after=2, ttft_slo_s=0.2,
                                  slo_class="interactive",
                                  brownout=False, switch_plans=False)
        scaler = Autoscaler(policy)
        plane = FakePlane()
        for i in range(4):
            plane.events.record(
                "request_completed", request_id=i, t_s=0.01 * i,
                priority_class="interactive", ttft_s=0.5)
        ticks(scaler, plane, 2)
        assert len(plane.active_replicas()) == 2
        assert plane.events.of_kind(
            "autoscale_decision")[-1]["slo_breach"] is True

    def test_slo_ignores_other_classes_and_old_completions(self):
        policy = AutoscalerPolicy(ttft_slo_s=0.2,
                                  slo_class="interactive",
                                  slo_window_s=0.5,
                                  brownout=False, switch_plans=False)
        scaler = Autoscaler(policy)
        plane = FakePlane()
        plane.events.record("request_completed", request_id=0, t_s=0.01,
                            priority_class="batch", ttft_s=9.0)
        assert scaler._slo_breach(plane, 0.05) is False
        plane.events.record("request_completed", request_id=1, t_s=0.06,
                            priority_class="interactive", ttft_s=9.0)
        assert scaler._slo_breach(plane, 0.1) is True
        # The breach ages out of the trailing window.
        assert scaler._slo_breach(plane, 1.0) is False


class TestPlanSteering:
    POLICY = AutoscalerPolicy(plan_after=2, brownout=False,
                              prefill_heavy_frac=0.65,
                              decode_heavy_frac=0.35)

    def test_decode_heavy_mix_forces_weight_gathered(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        for i in range(2):
            plane.decode_tokens += 100
            plane.prefill_tokens += 10
            ticks(scaler, plane, 1, start=i + 1)
        assert plane.target_profile == "weight-gathered"
        assert scaler.plan_switches == 1
        event = plane.events.of_kind("autoscale_decision")[-1]
        assert event["action"] == "profile"
        # And back, once the mix turns prefill-heavy.
        for i in range(2):
            plane.prefill_tokens += 100
            plane.decode_tokens += 10
            ticks(scaler, plane, 1, start=i + 3)
        assert plane.target_profile == "weight-stationary"

    def test_mixed_traffic_never_flaps(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        for i in range(6):
            plane.prefill_tokens += 50
            plane.decode_tokens += 50  # frac 0.5: between thresholds
            ticks(scaler, plane, 1, start=i + 1)
        assert plane.target_profile == "weight-stationary"
        assert scaler.plan_switches == 0

    def test_idle_window_keeps_streaks(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        plane.decode_tokens += 100
        ticks(scaler, plane, 1)
        ticks(scaler, plane, 1, start=2)  # no new tokens: no evidence
        plane.decode_tokens += 100
        ticks(scaler, plane, 1, start=3)
        assert plane.target_profile == "weight-gathered"


class TestBrownoutLadder:
    POLICY = AutoscalerPolicy(min_replicas=1, max_replicas=1,
                              scale_out_pressure=1e9,
                              brownout_enter_pressure=8.0,
                              brownout_exit_pressure=2.0,
                              recover_after=2, batch_output_cap=2,
                              switch_plans=False)

    def engaged(self, scaler, plane, n_hot_ticks):
        plane.queue(16, class_name="batch")
        ticks(scaler, plane, n_hot_ticks)

    def test_rungs_engage_in_order_one_per_tick(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        self.engaged(scaler, plane, 4)
        assert scaler.brownout_steps == list(BROWNOUT_LADDER)
        assert scaler.brownout_level == 4
        assert plane.hedging_enabled is False
        assert plane.output_caps == {"batch": 2}
        assert plane.target_profile == "weight-gathered"
        assert plane.admission._accepting["batch"] is False
        assert plane.admission._accepting["interactive"] is True
        steps = plane.events.of_kind("brownout_step")
        assert [e["step"] for e in steps] == list(BROWNOUT_LADDER)
        assert all("pressure <= 2" in e["recovery"] for e in steps)
        # Saturated: more hot ticks add no rungs.
        ticks(scaler, plane, 3, start=5)
        assert scaler.brownout_level == 4

    def test_needs_capacity_exhaustion_to_engage(self):
        scaler = Autoscaler(AutoscalerPolicy(
            min_replicas=1, max_replicas=4, scale_out_pressure=1e9,
            brownout_enter_pressure=8.0, switch_plans=False))
        plane = FakePlane()  # one replica, fleet can still grow
        plane.queue(64, class_name="batch")
        ticks(scaler, plane, 4)
        assert scaler.brownout_level == 0

    def test_release_reverses_and_restores_exactly(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        self.engaged(scaler, plane, 4)
        with pytest.raises(AssertionError, match="level 4"):
            scaler.assert_reverted(plane)
        plane.drain()
        # recover_after calm ticks arm the release; then one rung per
        # tick unwinds, newest rung first.
        ticks(scaler, plane, self.POLICY.recover_after - 1, start=5)
        assert scaler.brownout_level == 4
        ticks(scaler, plane, 4, start=6)
        assert scaler.brownout_level == 0
        recovered = plane.events.of_kind("brownout_recovered")
        assert [e["step"] for e in recovered] == \
            list(reversed(BROWNOUT_LADDER))
        assert plane.hedging_enabled is True
        assert plane.output_caps == {}
        assert plane.target_profile == "weight-stationary"
        assert plane.admission._accepting["batch"] is True
        scaler.assert_reverted(plane)  # no raise
        assert scaler.settled(plane)

    def test_pressure_between_thresholds_holds_the_ladder(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane()
        self.engaged(scaler, plane, 1)
        assert scaler.brownout_level == 1
        plane.drain()
        plane.queue(4, class_name="batch")  # 2 < pressure 4 < 8
        ticks(scaler, plane, 10, start=2)
        assert scaler.brownout_level == 1  # neither grows nor releases

    def test_no_scale_in_while_browned_out(self):
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=2, scale_out_pressure=1e9,
            down_after=1, brownout_enter_pressure=4.0,
            brownout_exit_pressure=2.0, recover_after=4,
            switch_plans=False)
        scaler = Autoscaler(policy)
        plane = FakePlane(n_replicas=2)
        plane.queue(16, class_name="batch")
        ticks(scaler, plane, 1)
        assert scaler.brownout_level == 1
        plane.drain()
        # Calm, down_after=1 — but the ladder is engaged, so the fleet
        # holds until the brownout fully releases.
        ticks(scaler, plane, 3, start=2)
        assert scaler.brownout_level == 1
        assert len(plane.active_replicas()) == 2
        ticks(scaler, plane, 3, start=5)
        assert scaler.brownout_level == 0
        assert len(plane.active_replicas()) == 1

    def test_single_class_is_never_capped_or_shed(self):
        scaler = Autoscaler(self.POLICY)
        plane = FakePlane(classes=(PriorityClass(
            "only", rate=1e9, burst=10**6, queue_limit=256),))
        plane.queue(32, class_name="only")
        ticks(scaler, plane, 4)
        assert scaler.brownout_level == 4
        assert plane.output_caps == {}
        assert plane.admission._accepting["only"] is True

    def test_explicit_cap_and_shed_classes_override(self):
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=1, scale_out_pressure=1e9,
            brownout_enter_pressure=4.0, switch_plans=False,
            cap_classes=("interactive",), shed_classes=("interactive",),
            batch_output_cap=3)
        scaler = Autoscaler(policy)
        plane = FakePlane()
        plane.queue(16, class_name="batch")
        ticks(scaler, plane, 4)
        assert plane.output_caps == {"interactive": 3}
        assert plane.admission._accepting["interactive"] is False
        assert plane.admission._accepting["batch"] is True
