"""Tests for the closed-form analysis module.

Each closed form is validated against brute-force numerical optimization
of the exact expression — the "analytical beats black-box search" claim,
checked both ways.
"""

import math

import numpy as np
import pytest
from scipy import optimize

from repro.analysis import (
    latency_scaling_exponent,
    memory_compute_crossover_tokens,
    numeric_minimum,
    weight_gathered_optimum,
    ws2d_optimum,
    ws_wg_crossover_tokens,
)
from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B, PALM_8B
from repro.partitioning import FfnLayoutKind
from repro.partitioning.ffn_costs import (
    ffn_volume,
    weight_gathered_volume,
    ws2d_volume,
)
from repro.perf import sweep_decode


class TestClosedFormOptima:
    def test_ws2d_optimum_matches_numeric(self):
        n, e, f = 64, 16384, 65536
        closed = ws2d_optimum(n, e, f)
        numeric = numeric_minimum(
            lambda x: ws2d_volume(1.0, e, f, x, n / x), 1.0, n)
        assert closed.argmin == pytest.approx(numeric.argmin, rel=0.01)
        assert closed.value == pytest.approx(numeric.value, rel=1e-4)

    def test_ws2d_optimum_matches_scipy(self):
        n, e, f = 256, 8192, 32768
        closed = ws2d_optimum(n, e, f)
        result = optimize.minimize_scalar(
            lambda x: ws2d_volume(1.0, e, f, x, n / x),
            bounds=(1.0, n), method="bounded")
        assert closed.argmin == pytest.approx(result.x, rel=1e-3)

    def test_wg_optimum_matches_scipy(self):
        tokens, n, e, f = 500_000, 64, 16384, 65536
        closed = weight_gathered_optimum(tokens, n, e, f)
        result = optimize.minimize_scalar(
            lambda m: weight_gathered_volume(tokens, e, f, n, m),
            bounds=(1.0, n), method="bounded")
        assert closed.argmin == pytest.approx(result.x, rel=1e-3)
        assert closed.value == pytest.approx(result.fun, rel=1e-6)


class TestCrossovers:
    TORUS = Torus3D(4, 4, 4)
    E, F = 16384, 65536

    @pytest.mark.parametrize("kind", [FfnLayoutKind.WG_X,
                                      FfnLayoutKind.WG_XY,
                                      FfnLayoutKind.WG_XYZ])
    def test_crossover_is_exact(self, kind):
        t_star = ws_wg_crossover_tokens(self.TORUS, self.E, self.F, kind)
        assert math.isfinite(t_star)
        ws = ffn_volume(FfnLayoutKind.WS_2D, self.TORUS, t_star, self.E,
                        self.F)
        wg = ffn_volume(kind, self.TORUS, t_star, self.E, self.F)
        assert ws == pytest.approx(wg, rel=1e-9)
        # Strictly ordered on either side of the crossover.
        assert ffn_volume(kind, self.TORUS, t_star / 2, self.E, self.F) \
            > ffn_volume(FfnLayoutKind.WS_2D, self.TORUS, t_star / 2,
                         self.E, self.F)
        assert ffn_volume(kind, self.TORUS, t_star * 2, self.E, self.F) \
            < ffn_volume(FfnLayoutKind.WS_2D, self.TORUS, t_star * 2,
                         self.E, self.F)

    def test_crossovers_ordered_by_gather_width(self):
        ts = [ws_wg_crossover_tokens(self.TORUS, self.E, self.F, k)
              for k in (FfnLayoutKind.WG_X, FfnLayoutKind.WG_XY,
                        FfnLayoutKind.WG_XYZ)]
        assert ts == sorted(ts)

    def test_non_wg_rejected(self):
        with pytest.raises(ValueError):
            ws_wg_crossover_tokens(self.TORUS, self.E, self.F,
                                   FfnLayoutKind.WS_2D)


class TestRooflineCrossover:
    def test_tpu_v4_bf16_crossover(self):
        # machine balance ~229 FLOPs/byte; bf16 -> ~229 tokens.
        t = memory_compute_crossover_tokens(PALM_540B, TPU_V4, 2)
        assert t == pytest.approx(229.2, rel=0.01)

    def test_int8_halves_the_crossover(self):
        bf16 = memory_compute_crossover_tokens(PALM_540B, TPU_V4, 2)
        int8 = memory_compute_crossover_tokens(PALM_540B, TPU_V4, 1)
        assert int8 == pytest.approx(bf16 / 2)

    def test_crossover_is_model_independent(self):
        assert memory_compute_crossover_tokens(PALM_8B, TPU_V4) == \
            memory_compute_crossover_tokens(PALM_540B, TPU_V4)


class TestScalingExponent:
    def test_fit_recovers_known_exponent(self):
        sizes = np.array([1e9, 1e10, 1e11])
        latencies = 1e-3 * (sizes / 1e9) ** 0.5
        assert latency_scaling_exponent(list(sizes), list(latencies)) == \
            pytest.approx(0.5, abs=1e-9)

    def test_paper_sublinear_claim(self):
        """Section 4.4: minimum decode latency grows ~sqrt(model size)."""
        models = [(PALM_8B, None), (PALM_62B, None),
                  (PALM_540B_PADDED, PALM_540B.n_params)]
        sizes, latencies = [], []
        for config, mfu_params in models:
            points = sweep_decode(
                config, TPU_V4, context_len=2048, gen_len=64,
                chip_counts=(8, 16, 32, 64, 128, 256),
                batches=(1, 4, 16, 64), weight_dtype_bytes=1,
                mfu_params=mfu_params)
            sizes.append(config.n_params)
            latencies.append(min(p.latency_s for p in points))
        k = latency_scaling_exponent(sizes, latencies)
        # Clearly sublinear; the paper estimates ~0.5.
        assert 0.1 < k < 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_scaling_exponent([1.0], [1.0])
