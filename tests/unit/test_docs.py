"""The docs job's checker (`tools/check_docs.py`) works and passes.

`tools/` is deliberately not a package, so the module is loaded by file
path.  Two contracts: (1) the checker finds real problems — a synthetic
broken link or failing doctest is reported; (2) the repository as
committed is clean — no broken internal links, all doctests pass.
"""

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestDocFiles:
    def test_readme_and_experiments_are_scanned(self):
        names = {f.name for f in checker.doc_files()}
        assert {"README.md", "EXPERIMENTS.md"} <= names

    def test_docs_directory_globbed(self):
        files = checker.doc_files()
        assert any(f.parent.name == "docs" for f in files)
        assert any(f.name == "observability.md" for f in files)


class TestLinkCheck:
    def test_repository_has_no_broken_links(self):
        assert checker.check_links() == []

    def test_broken_link_detected(self, tmp_path, monkeypatch):
        doc = tmp_path / "README.md"
        doc.write_text("see [missing](does/not/exist.md) and "
                       "[ok](#anchor) and [web](https://example.com)")
        monkeypatch.setattr(checker, "ROOT", tmp_path)
        monkeypatch.setattr(checker, "DOC_FILES", ("README.md",))
        monkeypatch.setattr(checker, "DOC_GLOBS", ())
        errors = checker.check_links()
        assert len(errors) == 1
        assert "does/not/exist.md" in errors[0]

    def test_anchor_suffix_stripped_before_resolving(self, tmp_path,
                                                     monkeypatch):
        (tmp_path / "other.md").write_text("target")
        doc = tmp_path / "README.md"
        doc.write_text("see [sec](other.md#some-section)")
        monkeypatch.setattr(checker, "ROOT", tmp_path)
        monkeypatch.setattr(checker, "DOC_FILES", ("README.md",))
        monkeypatch.setattr(checker, "DOC_GLOBS", ())
        assert checker.check_links() == []


class TestRequiredHeadings:
    def test_repository_has_required_headings(self):
        assert checker.check_headings() == []

    def test_missing_heading_detected(self, tmp_path, monkeypatch):
        docs = tmp_path / "docs"
        docs.mkdir()
        for rel in checker.REQUIRED_HEADINGS:
            (tmp_path / rel).write_text("# Title\n\nprose\n")
        monkeypatch.setattr(checker, "ROOT", tmp_path)
        errors = checker.check_headings()
        assert errors and all("missing required heading" in e
                              for e in errors)

    def test_missing_file_detected(self, tmp_path, monkeypatch):
        monkeypatch.setattr(checker, "ROOT", tmp_path)
        errors = checker.check_headings()
        assert any("required doc file missing" in e for e in errors)


class TestWikiLinks:
    def test_repository_has_no_dangling_wiki_links(self):
        assert checker.check_wiki_links() == []

    def test_dangling_wiki_link_detected(self, tmp_path, monkeypatch):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "real.md").write_text("exists")
        doc = tmp_path / "README.md"
        doc.write_text("see [[real]] and [[no-such-doc]]")
        monkeypatch.setattr(checker, "ROOT", tmp_path)
        monkeypatch.setattr(checker, "DOC_FILES", ("README.md",))
        monkeypatch.setattr(checker, "DOC_GLOBS", ())
        errors = checker.check_wiki_links()
        assert len(errors) == 1
        assert "no-such-doc" in errors[0]


class TestModuleDocstrings:
    def test_repository_modules_all_documented(self):
        assert checker.check_docstrings() == []

    def test_cluster_docstrings_state_invariants(self):
        # The cluster layer's contract words must stay in its module
        # docstrings — docs/architecture.md leans on them.
        import ast
        for path in (ROOT / "src" / "repro" / "cluster").glob("*.py"):
            doc = (ast.get_docstring(ast.parse(path.read_text()))
                   or "").lower()
            assert any(word in doc for word in
                       ("virtual", "bit-ident", "determin", "typed")), \
                f"{path.name}: docstring states no invariant"

    def test_missing_docstring_detected(self, tmp_path, monkeypatch):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "documented.py").write_text('"""Has a docstring."""\n')
        (pkg / "bare.py").write_text("x = 1\n")
        (pkg / "_private.py").write_text("y = 2\n")
        monkeypatch.setattr(checker, "ROOT", tmp_path)
        errors = checker.check_docstrings()
        assert len(errors) == 1
        assert "bare.py" in errors[0]


class TestCommandConsistency:
    TIER1 = "PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q"

    def test_tier1_verify_line_documented_consistently(self):
        # README quickstart and the ROADMAP verify line must advertise
        # the exact same command.
        assert self.TIER1 in (ROOT / "README.md").read_text()
        assert self.TIER1 in (ROOT / "ROADMAP.md").read_text()


class TestDoctests:
    def test_modules_with_prompts_discovered(self):
        modules = checker.doctest_modules()
        assert "repro/observability/spans".replace("/", ".") in modules
        assert "repro.events" in modules

    def test_repository_doctests_pass(self):
        assert checker.run_doctests() == []


class TestMain:
    def test_clean_repo_exits_zero(self, capsys):
        assert checker.main([]) == 0
        out = capsys.readouterr().out
        assert "link-check" in out and "doctests" in out

    def test_links_only_flag(self, capsys):
        assert checker.main(["--links"]) == 0
        assert "doctests" not in capsys.readouterr().out
