"""Capture-and-replay decode programs (``repro.mesh.capture``).

The contract under test: a :class:`CapturedProgram` traced from one eager
decode step replays later steps **bit-identically** on both mesh backends,
invalidates on any mesh/plan/batch-shape change, falls back to eager
execution whenever a scheduled fault is live, and emits one condensed
``kind="replay"`` span per step.  Alongside it, the satellites: the
``backend="auto"`` heuristic, and ``stack_shards``/``unstack_shards``
round-trips (including the no-copy contiguous unstack).
"""

import numpy as np
import pytest

from repro.layouts import ShardedTransformer
from repro.mesh import (
    AUTO_BACKEND_MIN_CHIPS,
    BACKEND_CHOICES,
    BACKENDS,
    ShardedTensor,
    VirtualMesh,
    resolve_backend,
)
from repro.mesh.capture import (
    CaptureError,
    StepCompiler,
    capture_decode_step,
    capturing,
)
from repro.mesh.faults import CollectiveFault, CollectiveTimeout, FaultPlan
from repro.mesh.looped import all_gather_einsum
from repro.mesh.stacked import stack_shards, unstack_shards
from repro.model import init_weights, tiny_test_config
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)
PROMPT = np.random.default_rng(5).integers(0, CFG.vocab_size, size=(8, 4))

WG_BATCH = LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH)
WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
WS2D_HEAD = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
PLANS = [WG_BATCH, WS2D_BATCH, WS2D_HEAD]


def build(backend="stacked", plan=WG_BATCH, mesh_shape=(2, 2, 2),
          steps=6):
    """A fresh (model, caches, next-token) triple after an eager prefill."""
    mesh = VirtualMesh(mesh_shape, backend=backend)
    model = ShardedTransformer(WEIGHTS, mesh, plan)
    logits, caches = model.prefill(PROMPT, PROMPT.shape[1] + steps)
    return model, caches, np.argmax(logits, -1)


def plan_id(plan):
    return f"{plan.ffn.value}/{plan.attention.value}"


class TestDifferentialReplay:
    """Replay must be bit-identical to eager, step after step."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("plan", PLANS, ids=plan_id)
    def test_replay_bit_identical_multi_step(self, backend, plan):
        eager_model, eager_caches, eager_tok = build(backend, plan)
        replay_model, replay_caches, replay_tok = build(backend, plan)

        eager = eager_model.decode_step(eager_tok, eager_caches)
        captured, program = replay_model.capture_decode_step(
            replay_tok, replay_caches)
        assert program is not None
        # The capture step itself ran eagerly and matches its twin.
        assert np.array_equal(captured, eager)

        tok = np.argmax(eager, -1)
        for _ in range(3):
            eager = eager_model.decode_step(tok, eager_caches)
            assert program.matches(replay_model, tok, replay_caches)
            replayed = program.replay(tok, replay_caches)
            assert replayed.dtype == eager.dtype
            assert np.array_equal(eager, replayed)
            tok = np.argmax(eager, -1)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mesh_shape", [(1, 1, 1), (1, 1, 2)])
    def test_small_meshes(self, backend, mesh_shape):
        eager_model, eager_caches, tok = build(backend,
                                               mesh_shape=mesh_shape)
        replay_model, replay_caches, _ = build(backend,
                                               mesh_shape=mesh_shape)
        eager_model.decode_step(tok, eager_caches)
        _, program = replay_model.capture_decode_step(tok, replay_caches)
        assert program is not None
        tok = np.argmax(PROMPT[:, :1], -1)  # any valid token batch
        eager = eager_model.decode_step(tok, eager_caches)
        replayed = program.replay(tok, replay_caches)
        assert np.array_equal(eager, replayed)

    def test_weight_gathers_constant_folded(self):
        """WG_XY re-gathers weights each step; folding hoists them out."""
        model, caches, tok = build("stacked", WG_BATCH)
        _, program = model.capture_decode_step(tok, caches)
        assert program.collectives_folded > 0
        assert program.collectives_live < program.collectives_captured
        assert program.n_instructions > 0

    def test_replay_output_not_arena_backed(self):
        """Logits survive the next replay (output is freshly allocated)."""
        model, caches, tok = build()
        _, program = model.capture_decode_step(tok, caches)
        first = program.replay(tok, caches)
        snapshot = first.copy()
        program.replay(tok, caches)
        assert np.array_equal(first, snapshot)


class TestInvalidation:
    def test_matches_same_deployment(self):
        model, caches, tok = build()
        _, program = model.capture_decode_step(tok, caches)
        assert program.matches(model, tok, caches)

    def test_batch_shape_change_invalidates(self):
        model, caches, tok = build()
        _, program = model.capture_decode_step(tok, caches)
        assert not program.matches(model, tok[:4], caches)
        assert not program.matches(model, tok.astype(np.int32), caches)

    def test_plan_change_invalidates(self):
        model, caches, tok = build(plan=WG_BATCH)
        _, program = model.capture_decode_step(tok, caches)
        switched = model.with_plan(WS2D_BATCH)  # same mesh, new layouts
        assert not program.matches(switched, tok, caches)

    def test_new_mesh_invalidates(self):
        """Replanning/failover build a new VirtualMesh: identity test."""
        model, caches, tok = build()
        _, program = model.capture_decode_step(tok, caches)
        other_model, other_caches, other_tok = build()
        assert not program.matches(other_model, other_tok, other_caches)
        # Caches living on a different mesh also invalidate, even when
        # the owning model matches.
        assert not program.matches(model, tok, other_caches)

    def test_cache_fill_level_is_free(self):
        """max_len and fill level are not part of the signature."""
        model, caches, tok = build()
        _, program = model.capture_decode_step(tok, caches)
        before = caches[0].length
        program.replay(tok, caches)
        assert caches[0].length == before + 1
        assert program.matches(model, tok, caches)


class TestStepCompiler:
    def test_warmup_capture_replay_lifecycle(self):
        eager_model, eager_caches, tok = build()
        model, caches, _ = build()
        compiler = StepCompiler(warmup_steps=1)
        for _ in range(4):
            eager = eager_model.decode_step(tok, eager_caches)
            compiled = compiler.decode_step(model, tok, caches)
            assert np.array_equal(eager, compiled)
            tok = np.argmax(eager, -1)
        assert compiler.eager_steps == 1
        assert compiler.captures == 1
        assert compiler.replays == 2

    def test_redeploy_invalidates_and_recaptures(self):
        model, caches, tok = build()
        compiler = StepCompiler(warmup_steps=1)
        for _ in range(3):
            tok = np.argmax(compiler.decode_step(model, tok, caches), -1)
        assert compiler.captures == 1 and compiler.replays == 1
        # A replan hands the compiler a brand-new mesh + model + caches.
        model2, caches2, tok2 = build()
        compiler.decode_step(model2, tok2, caches2)
        assert compiler.invalidations == 1
        assert compiler.captures == 2  # re-captured on the new deployment
        tok2 = PROMPT[:, -1]
        compiler.decode_step(model2, tok2, caches2)
        assert compiler.replays == 2

    def test_explicit_invalidate(self):
        model, caches, tok = build()
        compiler = StepCompiler(warmup_steps=0)
        compiler.decode_step(model, tok, caches)
        assert compiler.program is not None
        compiler.invalidate()
        assert compiler.program is None
        assert compiler.invalidations == 1

    def test_live_fault_forces_eager_then_replay_resumes(self):
        """A scheduled fault fires exactly as it would eagerly."""
        model, caches, tok = build()
        state = model.mesh.install_faults(FaultPlan((
            CollectiveFault(kind="timeout", at_step=3, phase="decode"),)))
        compiler = StepCompiler(warmup_steps=1)

        state.advance("decode")
        logits = compiler.decode_step(model, tok, caches)   # eager warmup
        state.advance("decode")
        tok = np.argmax(logits, -1)
        compiler.decode_step(model, tok, caches)            # capture
        assert compiler.captures == 1

        state.advance("decode")
        assert not state.quiescent()
        fill_before = caches[0].length
        with pytest.raises(CollectiveTimeout):
            compiler.decode_step(model, tok, caches)
        assert compiler.replays == 0  # the faulted step never replayed
        # The timeout fired on the step's first collective, before any
        # cache write, so the program can resume on the same caches.
        assert caches[0].length == fill_before

        state.advance("decode")
        assert state.quiescent()  # the one-shot fault is spent
        compiler.decode_step(model, tok, caches)
        assert compiler.replays == 1

    def test_replay_advances_fault_op_counter(self):
        model, caches, tok = build()
        state = model.mesh.install_faults(FaultPlan(()))
        _, program = capture_decode_step(model, tok, caches)
        before = state.op_counter
        program.replay(tok, caches)
        assert state.op_counter == before + program.collectives_captured


def shards_equal(mesh, a, b):
    if a.dtype == object or b.dtype == object:
        return all(np.array_equal(a[c], b[c]) for c in mesh.devices())
    return np.array_equal(a, b)


class TestTapeApi:
    """The generic ``capturing()`` tape under the looped envelopes."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_looped_envelope_captures_and_replays(self, backend):
        mesh = VirtualMesh((1, 4, 1), backend=backend)
        rng = np.random.default_rng(3)
        w = ShardedTensor.from_global(mesh, rng.normal(size=(16, 24)),
                                      "EF")
        x = ShardedTensor.from_global(mesh, rng.normal(size=(4, 2, 16)),
                                      "BLE_y")
        with capturing(mesh) as recorder:
            # Mark the activation as step-varying: it enters through the
            # replay context, so the envelope below cannot fold away.
            recorder.record(lambda ctx: ctx.tokens, (recorder.CTX,),
                            x.shards, "input")
            fused, _ = all_gather_einsum("ble,ef->blf", x, w, "y")
            assert recorder.collectives == 1  # one whole-loop envelope
            program = recorder.finalize(fused.shards)
        assert program is not None
        assert program.collectives_live == 1

        x2 = ShardedTensor.from_global(mesh, rng.normal(size=(4, 2, 16)),
                                       "BLE_y")
        expected, _ = all_gather_einsum("ble,ef->blf", x2, w, "y")
        replayed = program.replay(tokens=x2.shards)
        assert shards_equal(mesh, replayed, expected.shards)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_constant_program_folds_to_nothing(self, backend):
        """With no live inputs the envelope folds; there is nothing to
        replay and ``finalize`` says so by returning ``None``."""
        mesh = VirtualMesh((1, 4, 1), backend=backend)
        rng = np.random.default_rng(3)
        x = ShardedTensor.from_global(mesh, rng.normal(size=(4, 2, 16)),
                                      "BLE_y")
        w = ShardedTensor.from_global(mesh, rng.normal(size=(16, 24)),
                                      "EF")
        with capturing(mesh) as recorder:
            fused, _ = all_gather_einsum("ble,ef->blf", x, w, "y")
            assert recorder.collectives == 1
            program = recorder.finalize(fused.shards)
        assert program is None

    def test_nested_capture_rejected(self):
        mesh = VirtualMesh((1, 2, 1))
        with capturing(mesh):
            with pytest.raises(CaptureError, match="already active"):
                with capturing(mesh):
                    pass
        assert getattr(mesh, "capture", None) is None


class TestReplaySpan:
    def test_replay_emits_one_condensed_span(self):
        model, caches, tok = build()
        _, program = model.capture_decode_step(tok, caches)
        tracer = model.mesh.install_tracer()
        program.replay(tok, caches)
        replay_spans = [s for s in tracer.spans if s.kind == "replay"]
        assert len(replay_spans) == 1
        span = replay_spans[0]
        assert span.phase == "decode"
        assert span.attrs["instructions"] == program.n_instructions
        assert span.attrs["collectives"] == program.collectives_live
        assert span.attrs["collectives_folded"] == \
            program.collectives_folded
        # Condensed means condensed: no per-op collective spans leaked.
        assert not [s for s in tracer.spans if s.kind == "collective"]


class TestAutoBackend:
    def test_resolve_heuristic(self, monkeypatch):
        monkeypatch.delenv("REPRO_MESH_BACKEND", raising=False)
        assert resolve_backend("auto", 1) == "loop"
        assert resolve_backend("auto", AUTO_BACKEND_MIN_CHIPS - 1) == "loop"
        assert resolve_backend("auto", AUTO_BACKEND_MIN_CHIPS) == "stacked"
        assert resolve_backend("auto", 64) == "stacked"
        # Concrete choices pass through untouched.
        assert resolve_backend("loop", 64) == "loop"
        assert resolve_backend("stacked", 1) == "stacked"

    def test_mesh_resolves_auto_by_size(self, monkeypatch):
        monkeypatch.delenv("REPRO_MESH_BACKEND", raising=False)
        assert VirtualMesh((1, 1, 2), backend="auto").backend == "loop"
        assert VirtualMesh((1, 2, 2), backend="auto").backend == "stacked"
        assert VirtualMesh((2, 2, 2), backend="auto").backend == "stacked"

    def test_env_override_beats_heuristic(self, monkeypatch):
        monkeypatch.setenv("REPRO_MESH_BACKEND", "stacked")
        assert VirtualMesh((1, 1, 1), backend="auto").backend == "stacked"
        monkeypatch.setenv("REPRO_MESH_BACKEND", "loop")
        assert VirtualMesh((4, 4, 4), backend="auto").backend == "loop"

    def test_env_auto_resolves_by_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_MESH_BACKEND", "auto")
        assert VirtualMesh((1, 1, 1)).backend == "loop"
        assert VirtualMesh((2, 2, 2)).backend == "stacked"

    def test_choices_and_validation(self):
        assert "auto" in BACKEND_CHOICES
        assert set(BACKENDS) < set(BACKEND_CHOICES)
        with pytest.raises(ValueError, match="backend"):
            VirtualMesh((1, 1, 1), backend="vectorised")
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("vectorised", 8)


class TestStackUnstackShards:
    """Satellites: the no-copy contiguous unstack and round-trips."""

    def test_contiguous_unstack_is_a_view(self):
        mesh = VirtualMesh((1, 2, 2), backend="stacked")
        dense = np.empty(mesh.shape + (3, 5))
        dense[...] = np.arange(4 * 3 * 5).reshape(dense.shape)
        shards = unstack_shards(mesh, dense)
        for coord in mesh.devices():
            assert shards[coord].base is dense  # view, not a copy
            assert np.array_equal(shards[coord], dense[coord])

    def test_noncontiguous_unstack_copies_correctly(self):
        mesh = VirtualMesh((1, 2, 2), backend="stacked")
        dense = np.arange(4 * 3 * 5, dtype=np.float64).reshape(
            mesh.shape + (3, 5))
        swapped = dense.swapaxes(-1, -2)  # slices are not C-contiguous
        shards = unstack_shards(mesh, swapped)
        for coord in mesh.devices():
            assert shards[coord].flags["C_CONTIGUOUS"]
            assert np.array_equal(shards[coord], swapped[coord])

    def test_round_trip_noncontiguous_shards(self):
        mesh = VirtualMesh((1, 2, 2), backend="loop")
        rng = np.random.default_rng(0)
        shards = mesh.empty_shards()
        for coord in mesh.devices():
            shards[coord] = rng.normal(size=(5, 3)).T  # F-contiguous
        dense = stack_shards(mesh, shards)
        assert dense.shape == mesh.shape + (3, 5)
        back = unstack_shards(mesh, dense)
        for coord in mesh.devices():
            assert np.array_equal(back[coord], shards[coord])

    def test_round_trip_zero_size_shards(self):
        mesh = VirtualMesh((1, 1, 2), backend="loop")
        shards = mesh.empty_shards()
        for coord in mesh.devices():
            shards[coord] = np.zeros((0, 4))
        dense = stack_shards(mesh, shards)
        assert dense.shape == mesh.shape + (0, 4)
        back = unstack_shards(mesh, dense)
        for coord in mesh.devices():
            assert back[coord].shape == (0, 4)

    def test_stack_of_stacked_is_identity(self):
        mesh = VirtualMesh((1, 1, 2), backend="stacked")
        dense = np.ones(mesh.shape + (2, 2))
        assert stack_shards(mesh, dense) is dense
