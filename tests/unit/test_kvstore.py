"""Tests for the paged KV prefix-sharing layer (``repro.kvstore``).

Three layers of guarantees:

* **Radix index properties** (hypothesis) — longest-prefix lookup
  matches a brute-force oracle over every inserted prefix; eviction is
  LRU over unpinned leaves only and never frees a page with a live
  lease, under randomized insert/pin/evict interleavings.
* **Differential prefix caching** — a prefill served from cached pages
  is *bit-identical* (logits, KV contents, and the decode steps that
  follow) to the cold recompute path, on the reference model and on
  both mesh backends.
* **Memory accounting** — ``ShardedKVCache.per_chip_bytes`` agrees with
  the actual per-device buffer bytes on 1D/2D/3D meshes (degenerate
  torus axes) under replicated, batch-sharded and head-sharded specs,
  and the buffer arena recycles zeroed slabs without touching numerics.
"""

import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import KVBufferArena, KVStore, Page, RadixIndex
from repro.layouts import ShardedTransformer
from repro.layouts.kv_cache import ShardedKVCache
from repro.mesh import VirtualMesh
from repro.model import ReferenceTransformer, init_weights, tiny_test_config
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.serving.chunked import chunked_prefill

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)
PAGE = 2  # page_tokens used throughout (a multiple of the chunk below)


def make_page(page_id: int, span) -> Page:
    """A distinguishable fake page: contents encode the page id."""
    span = tuple(int(t) for t in span)
    k = (np.full((1, len(span), 1, 2), float(page_id)),)
    v = (np.full((1, len(span), 1, 2), float(-page_id)),)
    return Page(page_id, span, k, v)


def fresh_pages(counter, tokens, page_tokens=PAGE):
    """One fake page per whole page of ``tokens``."""
    pages = []
    for start in range(0, (len(tokens) // page_tokens) * page_tokens,
                       page_tokens):
        counter[0] += 1
        pages.append(make_page(counter[0],
                               tokens[start:start + page_tokens]))
    return pages


# Small alphabet so random sequences actually share prefixes.
token_seqs = st.lists(st.integers(min_value=0, max_value=2), min_size=0,
                      max_size=10)


class TestRadixProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(token_seqs, max_size=8), token_seqs)
    def test_lookup_is_longest_prefix_brute_force(self, inserted, query):
        idx = RadixIndex(PAGE)
        counter = [0]
        prefixes: set[tuple] = set()
        for seq in inserted:
            idx.insert(seq, fresh_pages(counter, seq))
            for n in range(1, len(seq) // PAGE + 1):
                prefixes.add(tuple(seq[:n * PAGE]))
        chain = idx.lookup(query)
        best = 0
        for n in range(len(query) // PAGE, 0, -1):
            if tuple(query[:n * PAGE]) in prefixes:
                best = n
                break
        assert len(chain) == best
        spelled = [t for page in chain for t in page.tokens]
        assert spelled == list(query[:best * PAGE])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(token_seqs, min_size=1, max_size=6),
           st.data())
    def test_evict_skips_pinned_and_interior_pages(self, inserted, data):
        idx = RadixIndex(PAGE)
        counter = [0]
        for seq in inserted:
            idx.insert(seq, fresh_pages(counter, seq))
        pages = idx.pages()
        assert idx.n_pages == len(pages)
        pinned = []
        if pages:
            for i in data.draw(st.lists(
                    st.integers(0, len(pages) - 1), max_size=4,
                    unique=True)):
                pages[i].refcount += 1
                pinned.append(pages[i])
        evicted = idx.evict(data.draw(st.integers(0, len(pages) + 2)))
        for page in evicted:
            assert page.refcount == 0, "evicted a pinned page"
        assert not (set(id(p) for p in evicted)
                    & set(id(p) for p in pinned))
        remaining = idx.pages()
        assert idx.n_pages == len(remaining)
        # Every pinned page survived and is still reachable.
        assert set(id(p) for p in pinned) <= set(id(p) for p in remaining)

    def test_evict_is_lru_over_leaves(self):
        idx = RadixIndex(PAGE)
        counter = [0]
        idx.insert([0, 0, 1, 1], fresh_pages(counter, [0, 0, 1, 1]))
        idx.insert([2, 2], fresh_pages(counter, [2, 2]))
        # Touch the [2, 2] leaf so the [0, 0, 1, 1] leaf is LRU.
        idx.lookup([2, 2], clock=5.0)
        evicted = idx.evict(1)
        assert [p.tokens for p in evicted] == [(1, 1)]
        # The interior (0, 0) page only becomes evictable once its
        # child is gone.
        assert {p.tokens for p in idx.pages()} == {(0, 0), (2, 2)}


# One interleaving step: adopt a chain, take a lease, or release one.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("adopt"), token_seqs),
        st.tuples(st.just("match"), token_seqs),
        st.tuples(st.just("release"), st.integers(0, 10**6)),
    ),
    max_size=40)


class TestStoreLeaseProperties:
    @settings(max_examples=60, deadline=None)
    @given(_ops)
    def test_interleavings_never_free_a_pinned_page(self, ops):
        store = KVStore(page_tokens=PAGE, capacity_pages=3)
        counter = [0]
        active: list[tuple] = []
        for kind, payload in ops:
            if kind == "adopt":
                pages = fresh_pages(counter, payload)
                if pages:
                    store.adopt(payload, pages)
            elif kind == "match":
                lease = store.match(payload)
                if lease is not None:
                    active.append((lease, list(payload)))
            elif active:
                lease, _ = active.pop(payload % len(active))
                assert lease.release() is True
                assert lease.release() is False  # idempotent
            for lease, tokens in active:
                assert all(p.refcount >= 1 for p in lease.pages)
                chain = store.lookup_pages(tokens)
                got = [p.page_id for p in chain[:lease.n_pages]]
                assert got == [p.page_id for p in lease.pages], \
                    "a live lease's pages left the index"
            assert store.pinned_pages == len(
                {id(p) for lease, _ in active for p in lease.pages})
        stats = store.stats()
        assert stats["releases"] + len(active) == stats["leases"]


class TestStoreSemantics:
    def test_match_caps_at_last_token(self):
        store = KVStore(page_tokens=PAGE, capacity_pages=8)
        counter = [0]
        store.adopt([1, 2, 3, 4], fresh_pages(counter, [1, 2, 3, 4]))
        # A 4-token prompt fully covered by pages still recomputes its
        # final token: only (4 - 1) // 2 == 1 page is usable.
        assert store.peek([1, 2, 3, 4]) == 2
        lease = store.match([1, 2, 3, 4])
        assert lease.n_tokens == 2
        lease.release()
        # lookup_pages (adoption path) has no cap: both pages.
        assert len(store.lookup_pages([1, 2, 3, 4])) == 2

    def test_invalidate_bumps_epoch_and_counts_stale_release(self):
        store = KVStore(page_tokens=PAGE, capacity_pages=8)
        counter = [0]
        store.adopt([1, 2, 3, 4, 5], fresh_pages(counter, [1, 2, 3, 4, 5]))
        lease = store.match([1, 2, 3, 4, 5])
        assert lease is not None
        store.invalidate("replan")
        assert store.peek([1, 2, 3, 4, 5]) == 0
        assert lease.release() is True  # first release still reports
        stats = store.stats()
        assert stats["stale_releases"] == 1
        assert stats["invalidation_reasons"] == {"replan": 1}

    def test_capacity_eviction_spares_pinned(self):
        store = KVStore(page_tokens=PAGE, capacity_pages=2)
        counter = [0]
        store.adopt([0, 0, 0, 0], fresh_pages(counter, [0, 0, 0, 0]))
        lease = store.match([0, 0, 0, 0, 9])  # pins both pages
        assert lease.n_pages == 2
        store.adopt([1, 1, 2, 2], fresh_pages(counter, [1, 1, 2, 2]))
        # Over capacity (4 > 2): both unpinned pages of the new chain
        # are evicted (the parent becomes a leaf once its child goes),
        # but the pinned chain survives even though we stay at capacity.
        assert store.stats()["pages"] == 2
        assert store.stats()["evictions"] == 2
        assert store.lookup_pages([1, 1, 2, 2]) == []
        assert [p.page_id for p in store.lookup_pages([0, 0, 0, 0])] \
            == [p.page_id for p in lease.pages]
        lease.release()


def _ref_prefill(prompt, chunk, max_len, store=None):
    model = ReferenceTransformer(WEIGHTS)
    return chunked_prefill(model, prompt, chunk, max_len, kvstore=store)


class TestDifferentialReference:
    def test_cache_hit_bit_identical_to_recompute(self):
        rng = np.random.default_rng(0)
        shared = rng.integers(0, CFG.vocab_size, size=6)
        p1 = np.concatenate([shared, rng.integers(0, CFG.vocab_size,
                                                  size=4)])[None, :]
        p2 = np.concatenate([shared, rng.integers(0, CFG.vocab_size,
                                                  size=4)])[None, :]
        store = KVStore(page_tokens=PAGE, capacity_pages=32)
        warm1, _ = _ref_prefill(p1, PAGE, 12, store)
        reuse1 = store.take_last_reuse()
        assert reuse1.lease is None and reuse1.matched_tokens == 0
        warm2, warm_caches = _ref_prefill(p2, PAGE, 12, store)
        reuse2 = store.take_last_reuse()
        assert reuse2.matched_tokens == len(shared)
        cold2, cold_caches = _ref_prefill(p2, PAGE, 12)
        assert np.array_equal(warm2, cold2), \
            "cached prefill logits diverged from recompute"
        for warm_c, cold_c in zip(warm_caches, cold_caches):
            assert warm_c.length == cold_c.length
            assert np.array_equal(warm_c.k[:, :warm_c.length],
                                  cold_c.k[:, :cold_c.length])
            assert np.array_equal(warm_c.v[:, :warm_c.length],
                                  cold_c.v[:, :cold_c.length])
        reuse2.lease.release()
        cold1, _ = _ref_prefill(p1, PAGE, 12)
        assert np.array_equal(warm1, cold1)

    def test_decode_continues_bit_identical_from_cached_prefill(self):
        rng = np.random.default_rng(1)
        shared = rng.integers(0, CFG.vocab_size, size=6)
        prompt = np.concatenate([shared, rng.integers(
            0, CFG.vocab_size, size=2)])[None, :]
        store = KVStore(page_tokens=PAGE, capacity_pages=32)
        _ref_prefill(np.concatenate([shared, rng.integers(
            0, CFG.vocab_size, size=2)])[None, :], PAGE, 12, store)
        warm_logits, warm_caches = _ref_prefill(prompt, PAGE, 12, store)
        assert store.take_last_reuse().matched_tokens == len(shared)
        cold_logits, cold_caches = _ref_prefill(prompt, PAGE, 12)
        model = ReferenceTransformer(WEIGHTS)
        token = np.argmax(warm_logits, -1)
        for _ in range(3):
            warm = model.decode_step(token, warm_caches)
            cold = model.decode_step(token, cold_caches)
            assert np.array_equal(warm, cold)
            token = np.argmax(warm, -1)

    def test_validation(self):
        store = KVStore(page_tokens=3, capacity_pages=8)
        model = ReferenceTransformer(WEIGHTS)
        prompt = np.zeros((1, 6), dtype=np.int64)
        with pytest.raises(ValueError, match="multiple"):
            chunked_prefill(model, prompt, 2, 8, kvstore=store)
        batch2 = np.zeros((2, 6), dtype=np.int64)
        with pytest.raises(ValueError, match="batch"):
            chunked_prefill(model, batch2, 3, 8,
                            kvstore=KVStore(page_tokens=3))


@pytest.mark.parametrize("backend", ["loop", "stacked"])
class TestDifferentialSharded:
    PLAN = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)

    def test_cache_hit_bit_identical_across_backend(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        model = ShardedTransformer(WEIGHTS, mesh, self.PLAN)
        rng = np.random.default_rng(2)
        shared = rng.integers(0, CFG.vocab_size, size=6)
        p1 = np.concatenate([shared, rng.integers(0, CFG.vocab_size,
                                                  size=4)])[None, :]
        p2 = np.concatenate([shared, rng.integers(0, CFG.vocab_size,
                                                  size=4)])[None, :]
        store = KVStore(page_tokens=PAGE, capacity_pages=32)
        chunked_prefill(model, p1, PAGE, 12, kvstore=store)
        warm, warm_caches = chunked_prefill(model, p2, PAGE, 12,
                                            kvstore=store)
        reuse = store.take_last_reuse()
        assert reuse.matched_tokens == len(shared)
        cold, cold_caches = chunked_prefill(model, p2, PAGE, 12)
        assert np.array_equal(warm, cold)
        for warm_c, cold_c in zip(warm_caches, cold_caches):
            wk, wv = warm_c.as_sharded()
            ck, cv = cold_c.as_sharded()
            assert np.array_equal(wk.to_global(), ck.to_global())
            assert np.array_equal(wv.to_global(), cv.to_global())
        if reuse.lease is not None:
            reuse.lease.release()

    def test_pages_install_across_meshes(self, backend):
        """A page extracted on one mesh shape installs on another.

        Bit-identity holds within a mesh shape (the replica-local serving
        path, asserted above); across shapes the page bytes reflect the
        source mesh's reduction order, so the contract is last-ulp
        closeness with identical greedy tokens — what the disaggregated
        adoption path (Section 4.4 handoff) needs."""
        rng = np.random.default_rng(3)
        prompt = rng.integers(0, CFG.vocab_size, size=(1, 8))
        store = KVStore(page_tokens=PAGE, capacity_pages=32)
        src = ShardedTransformer(WEIGHTS, VirtualMesh((2, 2, 2),
                                                      backend=backend),
                                 self.PLAN)
        chunked_prefill(src, prompt, PAGE, 12, kvstore=store)
        dst = ShardedTransformer(WEIGHTS, VirtualMesh((2, 1, 1),
                                                      backend=backend),
                                 self.PLAN)
        warm, _ = chunked_prefill(dst, prompt, PAGE, 12, kvstore=store)
        reuse = store.take_last_reuse()
        assert reuse.matched_tokens > 0
        cold, _ = chunked_prefill(dst, prompt, PAGE, 12)
        np.testing.assert_allclose(warm, cold, rtol=0, atol=1e-15)
        assert np.array_equal(warm.argmax(-1), cold.argmax(-1))
        reuse.lease.release()


@pytest.mark.parametrize("backend", ["loop", "stacked"])
@pytest.mark.parametrize("shape", [(4, 1, 1), (2, 2, 1), (2, 2, 2)])
class TestPerChipBytes:
    SPECS = ("BMKD", "B_xMKD", "BMK_xD")

    def test_matches_actual_buffer_bytes(self, backend, shape):
        mesh = VirtualMesh(shape, backend=backend)
        n_devices = int(np.prod(shape))
        for spec in self.SPECS:
            cache = ShardedKVCache(mesh, spec, batch=4, max_len=8,
                                   n_kv_heads=4, d_head=2)
            if backend == "stacked":
                actual = (cache.k.nbytes + cache.v.nbytes) // n_devices
            else:
                coord = next(iter(mesh.devices()))
                actual = cache.k[coord].nbytes + cache.v[coord].nbytes
            assert cache.per_chip_bytes() == actual, \
                f"per_chip_bytes wrong for {spec} on {shape} {backend}"

    def test_sharded_dims_divide_bytes(self, backend, shape):
        mesh = VirtualMesh(shape, backend=backend)
        replicated = ShardedKVCache(mesh, "BMKD", batch=4, max_len=8,
                                    n_kv_heads=4, d_head=2)
        sharded = ShardedKVCache(mesh, "B_xMKD", batch=4, max_len=8,
                                 n_kv_heads=4, d_head=2)
        assert replicated.per_chip_bytes() \
            == sharded.per_chip_bytes() * shape[0]


@pytest.mark.parametrize("backend", ["loop", "stacked"])
class TestBufferArena:
    def test_reclaimed_buffers_are_reused_and_zeroed(self, backend):
        mesh = VirtualMesh((2, 1, 1), backend=backend)
        arena = KVBufferArena()
        cache = ShardedKVCache(mesh, "BMKD", batch=2, max_len=4,
                               n_kv_heads=2, d_head=2, arena=arena)
        if backend == "stacked":
            cache.k[...] = 7.0
        else:
            for coord in mesh.devices():
                cache.k[coord][...] = 7.0
        del cache
        gc.collect()
        assert arena.stats()["arena_reclaims"] == 1
        again = ShardedKVCache(mesh, "BMKD", batch=2, max_len=4,
                               n_kv_heads=2, d_head=2, arena=arena)
        stats = arena.stats()
        assert stats["arena_reuses"] == 1 and stats["arena_allocs"] == 1
        if backend == "stacked":
            assert not again.k.any()
        else:
            assert all(not again.k[c].any() for c in mesh.devices())

    def test_arena_backed_model_is_bit_identical(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
        prompt = np.random.default_rng(4).integers(
            0, CFG.vocab_size, size=(1, 6))
        plain = ShardedTransformer(WEIGHTS, mesh, plan)
        base, _ = plain.prefill(prompt, max_len=8)
        pooled = ShardedTransformer(WEIGHTS, mesh, plan)
        pooled.kv_arena = KVBufferArena()
        logits, caches = pooled.prefill(prompt, max_len=8)
        assert np.array_equal(base, logits)
        del caches
        gc.collect()
        assert pooled.kv_arena.stats()["arena_reclaims"] > 0
