"""Differential tests: the stacked mesh backend vs the loop oracle.

The loop backend is the semantics oracle — one Python iteration per
device, trivially auditable.  The stacked backend reimplements every
collective as whole-mesh numpy reshape/transpose/reduce calls and is only
correct if it produces *bit-identical* shards (same values, same dtype)
for every device, spec, and collective.  These tests drive both backends
from the same global tensors — hypothesis choosing shapes, dtypes, and
data — and assert exact equality shard by shard.

Also covers the memoization added alongside the backend: the analytic
collective-cost lru_caches, and the per-mesh group/rank-grid caches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import cost
from repro.mesh import (
    BACKENDS,
    ShardedTensor,
    VirtualMesh,
    all_gather,
    all_gather_einsum,
    all_reduce,
    all_to_all,
    default_backend,
    einsum_reduce_scatter,
    reduce_scatter,
    sharded_einsum,
    split,
)

MESH_SHAPE = (2, 2, 2)
DTYPES = (np.float64, np.float32, np.int64)

# Shared hypothesis knobs: global shape (8b, 2l, 8e) is divisible under
# every axes combination used below on a 2x2x2 mesh.
shape_st = st.tuples(st.integers(1, 2), st.integers(1, 3), st.integers(1, 2))
dtype_st = st.sampled_from(DTYPES)
seed_st = st.integers(0, 2**32 - 1)

fast = settings(max_examples=25, deadline=None)


def random_array(shape, dtype, seed):
    rng = np.random.default_rng(seed)
    if np.issubdtype(dtype, np.integer):
        return rng.integers(-100, 100, size=shape).astype(dtype)
    return rng.standard_normal(shape).astype(dtype)


def make_pair(x, spec, mesh_shape=MESH_SHAPE):
    """The same global tensor sharded on a loop mesh and a stacked mesh."""
    return tuple(
        ShardedTensor.from_global(VirtualMesh(mesh_shape, backend=b), x,
                                  spec)
        for b in ("loop", "stacked"))


def assert_bit_identical(t_loop, t_stacked):
    """Every device's shard matches exactly: dtype, shape, and bits."""
    assert str(t_loop.spec) == str(t_stacked.spec)
    assert t_loop.global_shape == t_stacked.global_shape
    for coord in np.ndindex(t_loop.mesh.shape):
        a, b = t_loop.shards[coord], np.asarray(t_stacked.shards[coord])
        assert a.dtype == b.dtype, (coord, a.dtype, b.dtype)
        assert a.shape == b.shape, (coord, a.shape, b.shape)
        assert np.array_equal(a, b), f"shards differ at device {coord}"


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------

GATHER_CASES = [
    ("BLE_xyz", ("x", "y", "z"), "E"),
    ("BLE_xyz", ("y", "z"), "E"),
    ("B_zLE_xy", ("x", "y"), "E"),
    ("B_xL_yE_z", ("z",), "E"),
]


@pytest.mark.parametrize("spec,axes,dim", GATHER_CASES)
@fast
@given(dims=shape_st, dtype=dtype_st, seed=seed_st)
def test_all_gather_identical(spec, axes, dim, dims, dtype, seed):
    b, l, e = dims
    x = random_array((8 * b, 2 * l, 8 * e), dtype, seed)
    t_loop, t_stacked = make_pair(x, spec)
    assert_bit_identical(all_gather(t_loop, axes, dim),
                         all_gather(t_stacked, axes, dim))


A2A_CASES = [
    ("B_xyzLE", ("x", "y", "z"), "B", "E"),
    ("BLE_xyz", ("y", "z"), "E", "B"),
    ("B_xLE_yz", ("z",), "E", "L"),
]


@pytest.mark.parametrize("spec,axes,src,dst", A2A_CASES)
@fast
@given(dims=shape_st, dtype=dtype_st, seed=seed_st)
def test_all_to_all_identical(spec, axes, src, dst, dims, dtype, seed):
    b, l, e = dims
    x = random_array((8 * b, 2 * l, 8 * e), dtype, seed)
    t_loop, t_stacked = make_pair(x, spec)
    assert_bit_identical(all_to_all(t_loop, axes, src, dst),
                         all_to_all(t_stacked, axes, src, dst))


SPLIT_CASES = [
    ("BLE", ("x", "y", "z"), "B"),
    ("B_xLE", ("y", "z"), "E"),
    ("BL_zE_x", ("y",), "E"),
]


@pytest.mark.parametrize("spec,axes,dim", SPLIT_CASES)
@fast
@given(dims=shape_st, dtype=dtype_st, seed=seed_st)
def test_split_identical(spec, axes, dim, dims, dtype, seed):
    b, l, e = dims
    x = random_array((8 * b, 2 * l, 8 * e), dtype, seed)
    t_loop, t_stacked = make_pair(x, spec)
    assert_bit_identical(split(t_loop, axes, dim),
                         split(t_stacked, axes, dim))


# Partial-sum inputs for reduce_scatter/all_reduce are produced the way
# the model produces them: an einsum contracting a sharded dim.
REDUCE_CASES = [
    # (x spec, w spec, partial axes, scatter dim)
    ("BLE_xyz", "E_xyzF", ("x", "y", "z"), "F"),
    ("B_xLE_yz", "E_yzF", ("y", "z"), "F"),
    ("BLE_z", "E_zF", ("z",), "B"),
]


def _partial_pair(x_spec, w_spec, dims, dtype, seed):
    b, l, e = dims
    x = random_array((8 * b, 2 * l, 8 * e), dtype, seed)
    w = random_array((8 * e, 8), dtype, seed + 1)
    outs = []
    for backend in ("loop", "stacked"):
        mesh = VirtualMesh(MESH_SHAPE, backend=backend)
        xt = ShardedTensor.from_global(mesh, x, x_spec)
        wt = ShardedTensor.from_global(mesh, w, w_spec)
        outs.append(sharded_einsum("ble,ef->blf", xt, wt))
    return outs


@pytest.mark.parametrize("x_spec,w_spec,axes,dim", REDUCE_CASES)
@fast
@given(dims=shape_st, dtype=dtype_st, seed=seed_st)
def test_reduce_scatter_identical(x_spec, w_spec, axes, dim, dims, dtype,
                                  seed):
    p_loop, p_stacked = _partial_pair(x_spec, w_spec, dims, dtype, seed)
    assert_bit_identical(p_loop, p_stacked)  # the einsum itself
    assert_bit_identical(reduce_scatter(p_loop, axes, dim),
                         reduce_scatter(p_stacked, axes, dim))


@pytest.mark.parametrize("x_spec,w_spec,axes,dim", REDUCE_CASES)
@fast
@given(dims=shape_st, dtype=dtype_st, seed=seed_st)
def test_all_reduce_identical(x_spec, w_spec, axes, dim, dims, dtype, seed):
    p_loop, p_stacked = _partial_pair(x_spec, w_spec, dims, dtype, seed)
    assert_bit_identical(all_reduce(p_loop, axes),
                         all_reduce(p_stacked, axes))


# ---------------------------------------------------------------------------
# Einsum fast path + fused looped collectives
# ---------------------------------------------------------------------------

EINSUM_CASES = [
    # (subscripts, x spec, w spec): replicated-weight, sharded-weight,
    # batch-sharded activations, fully contracted.
    ("ble,ef->blf", "B_xLE", "EF_yz"),
    ("ble,ef->blf", "B_xyzLE", "EF"),
    ("ble,ef->blf", "BLE_xy", "E_xyF_z"),
]


@pytest.mark.parametrize("subscripts,x_spec,w_spec", EINSUM_CASES)
@fast
@given(dims=shape_st, dtype=dtype_st, seed=seed_st)
def test_sharded_einsum_identical(subscripts, x_spec, w_spec, dims, dtype,
                                  seed):
    b, l, e = dims
    x = random_array((8 * b, 2 * l, 8 * e), dtype, seed)
    w = random_array((8 * e, 8), dtype, seed + 1)
    outs = []
    for backend in ("loop", "stacked"):
        mesh = VirtualMesh(MESH_SHAPE, backend=backend)
        xt = ShardedTensor.from_global(mesh, x, x_spec)
        wt = ShardedTensor.from_global(mesh, w, w_spec)
        outs.append(sharded_einsum(subscripts, xt, wt))
    assert_bit_identical(*outs)


@fast
@given(dims=shape_st, seed=seed_st)
def test_looped_fused_einsums_identical(dims, seed):
    """The Section 3.5 fused forms match across backends too."""
    b, l, e = dims
    x = random_array((8 * b, 2 * l, 8 * e), np.float64, seed)
    w = random_array((8 * e, 8), np.float64, seed + 1)
    ag_outs, rs_outs = [], []
    for backend in ("loop", "stacked"):
        mesh = VirtualMesh(MESH_SHAPE, backend=backend)
        xt = ShardedTensor.from_global(mesh, x, "BLE_z")
        wt = ShardedTensor.from_global(mesh, w, "EF")
        ag_outs.append(all_gather_einsum("ble,ef->blf", xt, wt, "z")[0])
        wt2 = ShardedTensor.from_global(mesh, w, "E_zF")
        rs_outs.append(
            einsum_reduce_scatter("ble,ef->blf", xt, wt2, "z", "F")[0])
    assert_bit_identical(*ag_outs)
    assert_bit_identical(*rs_outs)


# ---------------------------------------------------------------------------
# Round trips and backend selection
# ---------------------------------------------------------------------------

@fast
@given(dims=shape_st, dtype=dtype_st, seed=seed_st,
       spec=st.sampled_from(["BLE", "BLE_xyz", "B_xL_yE_z", "B_zLE_xy"]))
def test_from_to_global_roundtrip_identical(dims, dtype, seed, spec):
    b, l, e = dims
    x = random_array((8 * b, 2 * l, 8 * e), dtype, seed)
    t_loop, t_stacked = make_pair(x, spec)
    assert_bit_identical(t_loop, t_stacked)
    np.testing.assert_array_equal(t_loop.to_global(), x)
    np.testing.assert_array_equal(t_stacked.to_global(), x)


def test_backend_selection():
    assert VirtualMesh((1, 1, 1)).backend == default_backend()
    assert VirtualMesh((1, 1, 1), backend="stacked").backend == "stacked"
    assert set(BACKENDS) == {"loop", "stacked"}
    with pytest.raises(ValueError, match="unknown mesh backend"):
        VirtualMesh((1, 1, 1), backend="cuda")


def test_env_var_selects_default_backend(monkeypatch):
    monkeypatch.setenv("REPRO_MESH_BACKEND", "stacked")
    assert default_backend() == "stacked"
    assert VirtualMesh((1, 1, 1)).backend == "stacked"
    monkeypatch.setenv("REPRO_MESH_BACKEND", "gpu")
    with pytest.raises(ValueError, match="REPRO_MESH_BACKEND"):
        default_backend()


# ---------------------------------------------------------------------------
# Memoization satellites
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fn,args", [
    (cost.all_gather_time, (1024.0, 8, 1e9)),
    (cost.reduce_scatter_time, (1024.0, 8, 1e9)),
    (cost.all_reduce_time, (1024.0, 8, 1e9)),
    (cost.all_to_all_time, (1024.0, 8, 1e9)),
])
def test_cost_functions_memoized(fn, args):
    fn.cache_clear()
    first = fn(*args)
    assert fn.cache_info().hits == 0
    assert fn(*args) == first
    assert fn.cache_info().hits == 1


def test_mesh_groups_cached_per_axes_tuple():
    mesh = VirtualMesh((2, 2, 2))
    first = list(mesh.groups(("x", "z")))
    cached = mesh._groups_cache[("x", "z")]
    assert list(mesh.groups(("x", "z"))) == first
    assert mesh._groups_cache[("x", "z")] is cached
    grid = mesh.rank_grid(("x", "z"))
    assert mesh.rank_grid(("x", "z")) is grid


# ---------------------------------------------------------------------------
# Full-size sweep (slow; runs in CI, opt-in locally via -m slow)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_collectives_identical_on_4x4x4():
    """The paper's 64-chip torus: every collective, bit for bit."""
    shape = (4, 4, 4)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((64, 4, 64))
    for spec, axes, dim in [("BLE_xyz", ("x", "y", "z"), "E"),
                            ("B_zLE_xy", ("x", "y"), "E"),
                            ("B_xL_yE_z", ("z",), "E")]:
        t_loop, t_stacked = make_pair(x, spec, shape)
        assert_bit_identical(all_gather(t_loop, axes, dim),
                             all_gather(t_stacked, axes, dim))
    t_loop, t_stacked = make_pair(x, "B_xyzLE", shape)
    assert_bit_identical(all_to_all(t_loop, ("x", "y", "z"), "B", "E"),
                         all_to_all(t_stacked, ("x", "y", "z"), "B", "E"))
    t_loop, t_stacked = make_pair(x, "B_xLE", shape)
    assert_bit_identical(split(t_loop, ("y", "z"), "E"),
                         split(t_stacked, ("y", "z"), "E"))
    w = rng.standard_normal((64, 64))
    parts = []
    for backend in ("loop", "stacked"):
        mesh = VirtualMesh(shape, backend=backend)
        xt = ShardedTensor.from_global(mesh, x, "BLE_xyz")
        wt = ShardedTensor.from_global(mesh, w, "E_xyzF")
        parts.append(sharded_einsum("ble,ef->blf", xt, wt))
    assert_bit_identical(*parts)
    assert_bit_identical(
        reduce_scatter(parts[0], ("x", "y", "z"), "F"),
        reduce_scatter(parts[1], ("x", "y", "z"), "F"))
    assert_bit_identical(all_reduce(parts[0], ("x", "y", "z")),
                         all_reduce(parts[1], ("x", "y", "z")))
