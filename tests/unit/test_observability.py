"""Unit tests for the span tracer, metrics rollups, and mesh hooks."""

import numpy as np
import pytest

from repro.collectives.cost import all_gather_time, all_reduce_time
from repro.hardware.chip import TPU_V4
from repro.mesh import ShardedTensor, VirtualMesh, all_gather, all_reduce
from repro.mesh.looped import all_gather_einsum
from repro.observability import (
    COLLECTIVE,
    COMPUTE,
    FUSED,
    PHASE,
    RING_STEP,
    Tracer,
    install_tracer,
    phase_metrics,
    layer_metrics,
    format_phase_metrics,
    format_layer_metrics,
    remove_tracer,
    tracer_of,
)


class TestTracer:
    def test_collective_span_attrs(self):
        t = Tracer()
        span = t.collective("all_gather", ("x", "y"), 4, 4096,
                            elements=512)
        assert span.kind == COLLECTIVE
        assert span.attrs["axes"] == ("x", "y")
        assert span.attrs["group_size"] == 4
        assert span.attrs["payload_bytes"] == 4096
        assert span.attrs["elements"] == 512
        assert span.attrs["modeled_s"] == pytest.approx(
            all_gather_time(4096, 4, TPU_V4.interconnect_bandwidth))

    def test_all_reduce_modeled_time_undoes_2x_convention(self):
        t = Tracer()
        span = t.collective("all_reduce", ("x",), 2, 2048)
        assert span.attrs["modeled_s"] == pytest.approx(
            all_reduce_time(1024, 2, TPU_V4.interconnect_bandwidth))

    def test_compute_span_roofline(self):
        t = Tracer()
        span = t.compute("ble,ef->blf", flops=1e9)
        assert span.kind == COMPUTE
        assert span.attrs["modeled_s"] == pytest.approx(
            1e9 / TPU_V4.peak_flops)

    def test_phase_and_layer_context_tag_leaves(self):
        t = Tracer()
        with t.phase("decode"):
            with t.layer(3):
                t.collective("all_gather", ("x",), 2, 64)
        leaf = t.collectives()[0]
        assert (leaf.phase, leaf.layer) == ("decode", 3)
        kinds = [s.kind for s in t.spans]
        assert kinds == [COLLECTIVE, "layer", PHASE]

    def test_region_parenting(self):
        t = Tracer()
        with t.region("outer") as outer_id:
            with t.region("inner") as inner_id:
                leaf = t.collective("all_gather", ("x",), 2, 64)
        assert leaf.parent_id == inner_id
        inner = [s for s in t.spans if s.span_id == inner_id][0]
        assert inner.parent_id == outer_id
        assert {s.name for s in t.children(inner_id)} == {"all_gather"}

    def test_request_tree_and_event_log_join(self):
        from repro.events import EventLog

        log = EventLog()
        t = Tracer(event_log=log)
        with t.request(7):
            with t.phase("prefill"):
                t.collective("all_gather", ("x",), 2, 64)
        tree = t.request_tree(7)
        assert {s.name for s in tree} == {"request7", "prefill",
                                          "all_gather"}
        [event] = log.of_kind("request_span")
        assert event["request_id"] == 7
        assert event["duration_s"] > 0

    def test_clear_and_len(self):
        t = Tracer()
        t.collective("all_gather", ("x",), 2, 64)
        assert len(t) == 1
        t.clear()
        assert len(t) == 0


class TestMeshHooks:
    def _tensor(self, mesh):
        return ShardedTensor.from_global(
            mesh, np.arange(32, dtype=np.float64).reshape(4, 8), "AB_x")

    @pytest.mark.parametrize("backend", ["loop", "stacked"])
    def test_collectives_recorded(self, backend):
        mesh = VirtualMesh((2, 1, 1), backend=backend)
        tracer = mesh.install_tracer()
        gathered = all_gather(self._tensor(mesh), ("x",), "B")
        [span] = tracer.collectives()
        assert span.name == "all_gather"
        assert span.attrs["axes"] == ("x",)
        assert span.attrs["payload_bytes"] == gathered.per_chip_bytes
        assert span.attrs["elements"] == 32
        assert span.duration_s >= 0

    @pytest.mark.parametrize("backend", ["loop", "stacked"])
    def test_einsum_recorded_with_flops(self, backend):
        mesh = VirtualMesh((2, 1, 1), backend=backend)
        tracer = mesh.install_tracer()
        from repro.mesh import sharded_einsum

        a = self._tensor(mesh)
        b = ShardedTensor.from_global(
            mesh, np.ones((8, 2), dtype=np.float64), "B_xC")
        sharded_einsum("ab,bc->ac", a, b)
        [span] = tracer.of_kind(COMPUTE)
        assert span.name == "ab,bc->ac"
        # Local letters: a=4, b=4 (sharded over x), c=2 -> 2*4*4*2.
        assert span.attrs["flops"] == 64.0

    @pytest.mark.parametrize("backend", ["loop", "stacked"])
    def test_looped_einsum_ring_steps(self, backend):
        mesh = VirtualMesh((2, 1, 1), backend=backend)
        tracer = mesh.install_tracer()
        x = ShardedTensor.from_global(
            mesh, np.arange(32, dtype=np.float64).reshape(1, 4, 8),
            "BLE_x")
        w = ShardedTensor.from_global(
            mesh, np.ones((8, 2), dtype=np.float64), "EF")
        all_gather_einsum("ble,ef->blf", x, w, "x")
        [envelope] = tracer.of_kind(FUSED)
        assert envelope.name == "all_gather_einsum:ble,ef->blf"
        hops = tracer.of_kind(RING_STEP)
        assert len(hops) == 1  # k - 1 hops on a ring of 2
        assert all(h.parent_id == envelope.span_id for h in hops)
        assert hops[0].attrs["payload_bytes"] == x.per_chip_bytes

    def test_no_tracer_records_nothing_and_remove(self):
        mesh = VirtualMesh((2, 1, 1))
        assert tracer_of(mesh) is None
        tracer = install_tracer(mesh)
        all_gather(self._tensor(mesh), ("x",), "B")
        assert len(tracer) == 1
        remove_tracer(mesh)
        all_gather(self._tensor(mesh), ("x",), "B")
        assert len(tracer) == 1

    @pytest.mark.parametrize("backend", ["loop", "stacked"])
    def test_tracing_does_not_change_numerics(self, backend):
        mesh_a = VirtualMesh((2, 2, 1), backend=backend)
        mesh_b = VirtualMesh((2, 2, 1), backend=backend)
        mesh_b.install_tracer()
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        out_a = all_gather(ShardedTensor.from_global(mesh_a, data, "AB_xy"),
                           ("x", "y"), "B").to_global()
        out_b = all_gather(ShardedTensor.from_global(mesh_b, data, "AB_xy"),
                           ("x", "y"), "B").to_global()
        np.testing.assert_array_equal(out_a, out_b)


class TestMetrics:
    def _traced(self):
        t = Tracer()
        with t.phase("decode"):
            with t.layer(0):
                t.collective("all_gather", ("x",), 4, 1 << 20)
                t.compute("ble,ef->blf", flops=1e9)
            with t.layer(1):
                t.collective("all_reduce", ("x",), 4, 1 << 21)
        return t

    def test_phase_metrics_rollup(self):
        metrics = phase_metrics(self._traced().spans)
        assert set(metrics) == {"decode"}
        m = metrics["decode"]
        assert m.collective_counts == {"all_gather": 1, "all_reduce": 1}
        assert m.comm_bytes == (1 << 20) + (1 << 21)
        assert m.comm_events == 2
        assert m.flops == 1e9
        assert 0 < m.compute_fraction < 1
        assert 0 < m.mfu() <= 1

    def test_phase_wall_uses_region_span(self):
        t = self._traced()
        [region] = t.of_kind(PHASE)
        assert phase_metrics(t.spans)["decode"].wall_s == pytest.approx(
            region.duration_s)

    def test_layer_metrics_keys(self):
        metrics = layer_metrics(self._traced().spans, "decode")
        assert set(metrics) == {("decode", 0), ("decode", 1)}
        assert metrics[("decode", 0)].flops == 1e9
        assert metrics[("decode", 1)].collective_counts == {"all_reduce": 1}

    def test_format_tables_are_text(self):
        spans = self._traced().spans
        phase_table = format_phase_metrics(spans)
        assert "decode" in phase_table and "MFU" in phase_table
        layer_table = format_layer_metrics(spans, "decode")
        assert "L0" in layer_table and "L1" in layer_table

    def test_zero_span_group_has_zero_mfu(self):
        from repro.observability import GroupMetrics

        empty = GroupMetrics(key="x")
        assert empty.mfu() == 0.0
        assert empty.compute_fraction == 0.0


class TestServingSpans:
    def test_two_phase_server_emits_request_trees(self):
        from repro.events import EventLog
        from repro.layouts import ShardedTransformer
        from repro.model import init_weights, tiny_test_config
        from repro.partitioning import (
            AttentionLayoutKind,
            FfnLayoutKind,
            LayoutPlan,
        )
        from repro.serving.engine import Request
        from repro.serving.sharded import ShardedTwoPhaseServer

        config = tiny_test_config(n_layers=2, d_model=16, d_ff=32,
                                  n_heads=8, d_head=8, vocab_size=32)
        mesh = VirtualMesh((2, 1, 1))
        log = EventLog()
        tracer = install_tracer(mesh, event_log=log)
        model = ShardedTransformer(
            init_weights(config), mesh,
            LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD))
        server = ShardedTwoPhaseServer(model, model, decode_batch=2)
        rng = np.random.default_rng(0)
        requests = [
            Request(request_id=i,
                    prompt=rng.integers(0, 32, size=4),
                    max_new_tokens=2)
            for i in range(2)
        ]
        completions = server.serve(requests)
        assert [c.request_id for c in completions] == [0, 1]

        for i in range(2):
            tree = tracer.request_tree(i)
            assert tree, f"no span tree for request {i}"
            phases = {s.phase for s in tree if s.kind == COLLECTIVE}
            assert phases == {"prefill"}
        assert {e["request_id"] for e in log.of_kind("request_span")} \
            == {0, 1}
        [decode_region] = [s for s in tracer.spans
                           if s.name == "decode_batch"]
        assert decode_region.attrs["request_ids"] == [0, 1]
        decode_leaves = [s for s in tracer.collectives()
                        if s.phase == "decode"]
        assert decode_leaves


class TestVirtualClockAndMarks:
    def test_default_clock_is_wall_time(self):
        t = Tracer()
        assert t.now() >= 0.0

    def test_virtual_clock_drives_timestamps(self):
        from repro.observability import MARK

        clock = {"now": 1.5}
        t = Tracer(clock=lambda: clock["now"])
        first = t.mark("breaker:open")
        clock["now"] = 2.5
        second = t.mark("breaker:closed")
        assert (first.start_s, second.start_s) == (1.5, 2.5)
        assert first.kind == MARK
        assert first.duration_s == 0.0

    def test_virtual_clock_regions_have_exact_durations(self):
        clock = {"now": 0.0}
        t = Tracer(clock=lambda: clock["now"])
        with t.region("group0"):
            clock["now"] = 0.25
        (span,) = t.spans
        assert span.start_s == 0.0 and span.duration_s == 0.25

    def test_request_span_event_uses_virtual_clock(self):
        from repro.events import EventLog

        log = EventLog()
        clock = {"now": 0.0}
        t = Tracer(event_log=log, clock=lambda: clock["now"])
        with t.request(7):
            clock["now"] = 0.125
        (event,) = log.of_kind("request_span")
        assert event["request_id"] == 7
        assert event["duration_s"] == 0.125  # exact: no wall-clock leak

    def test_mark_carries_attrs(self):
        t = Tracer()
        span = t.mark("health:r0:degraded", replica="r0", old="healthy",
                      new="degraded")
        assert span.attrs["new"] == "degraded"
        assert span.duration_s == 0.0
