"""Tests for the Appendix A.1 analytic collective cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import (
    CollectiveCost,
    all_gather_time,
    all_reduce_time,
    all_to_all_time,
    reduce_scatter_time,
)


class TestFormulas:
    def test_all_gather_exact_factor(self):
        # T = D/bw * (K-1)/K
        assert all_gather_time(1e9, 4, 1e9) == pytest.approx(0.75)

    def test_all_gather_approximate(self):
        assert all_gather_time(1e9, 4, 1e9, exact=False) == pytest.approx(1.0)

    def test_group_of_one_is_free(self):
        for fn in (all_gather_time, reduce_scatter_time, all_reduce_time,
                   all_to_all_time):
            assert fn(1e9, 1, 1e9) == 0.0

    def test_all_reduce_is_twice_all_gather(self):
        assert all_reduce_time(1e9, 8, 2e9) == pytest.approx(
            2 * all_gather_time(1e9, 8, 2e9))

    def test_reduce_scatter_matches_all_gather_symmetry(self):
        # Same D: reduce-scatter of input D costs what all-gather of
        # output D costs (Appendix A.1).
        assert reduce_scatter_time(5e8, 16, 1e9) == pytest.approx(
            all_gather_time(5e8, 16, 1e9))

    def test_all_to_all_cheaper_than_all_gather(self):
        assert all_to_all_time(1e9, 16, 1e9) < all_gather_time(1e9, 16, 1e9)

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            all_gather_time(1e9, 0, 1e9)


class TestProperties:
    @given(st.floats(1, 1e12), st.integers(2, 1024), st.floats(1e6, 1e12))
    def test_monotone_in_bytes(self, d, k, bw):
        assert all_gather_time(d, k, bw) <= all_gather_time(2 * d, k, bw)

    @given(st.floats(1, 1e12), st.integers(2, 1024), st.floats(1e6, 1e12))
    def test_exact_below_approximate(self, d, k, bw):
        assert all_gather_time(d, k, bw) <= all_gather_time(
            d, k, bw, exact=False)

    @given(st.integers(2, 4096))
    def test_factor_approaches_one(self, k):
        # (K-1)/K -> 1: exact time within 1/K of approximate time.
        exact = all_gather_time(1.0, k, 1.0)
        assert exact == pytest.approx(1.0, abs=1.0 / k + 1e-12)


class TestCollectiveCost:
    def test_addition(self):
        total = CollectiveCost(1.0, 10) + CollectiveCost(2.0, 20)
        assert total.seconds == 3.0
        assert total.bytes == 30

    def test_zero_identity(self):
        c = CollectiveCost(1.5, 7)
        assert CollectiveCost.zero() + c == c
