"""Tests for attention memory accounting (Section 3.3, Table 1)."""

import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.model import (
    PALM_540B,
    PALM_540B_MULTIHEAD,
    AttentionKind,
    tiny_test_config,
)
from repro.partitioning import AttentionLayoutKind
from repro.partitioning.attention_costs import (
    attention_all_to_all_elements,
    kv_bytes_per_chip,
    kv_load_time,
    max_context_length,
)
from repro.perf import table1_max_context


class TestKvFootprint:
    def test_batch_sharding_divides_by_chip_count(self):
        cfg = PALM_540B
        head = kv_bytes_per_chip(cfg, AttentionLayoutKind.HEAD, 64, 512,
                                 2048)
        batch = kv_bytes_per_chip(cfg, AttentionLayoutKind.BATCH, 64, 512,
                                  2048)
        assert head == pytest.approx(64 * batch)

    def test_batch_sharding_limited_by_batch(self):
        # A batch of 8 can split over at most 8 chips.
        cfg = PALM_540B
        b8 = kv_bytes_per_chip(cfg, AttentionLayoutKind.BATCH, 64, 8, 2048)
        head = kv_bytes_per_chip(cfg, AttentionLayoutKind.HEAD, 64, 8, 2048)
        assert b8 == pytest.approx(head / 8)

    def test_multihead_partial_replication(self):
        # 48 heads on 64 chips -> ceil = 1 head per chip.
        mh = PALM_540B_MULTIHEAD
        per_chip = kv_bytes_per_chip(mh, AttentionLayoutKind.HEAD, 64, 1, 1)
        one_head = 2 * mh.n_layers * mh.d_head * 2
        assert per_chip == pytest.approx(one_head)

    def test_batch_requires_shared_kv_heads(self):
        with pytest.raises(ValueError, match="shared KV heads"):
            kv_bytes_per_chip(PALM_540B_MULTIHEAD,
                              AttentionLayoutKind.BATCH, 64, 8, 128)


class TestTable1:
    """Exact reproduction of Table 1 (within rounding)."""

    @pytest.mark.parametrize("batch,published", [(128, 1320), (512, 330)])
    def test_multihead(self, batch, published):
        got = table1_max_context(PALM_540B_MULTIHEAD,
                                 AttentionLayoutKind.HEAD, TPU_V4, 64,
                                 batch)
        assert got == pytest.approx(published, rel=0.02)

    @pytest.mark.parametrize("batch,published", [(128, 660), (512, 165)])
    def test_baseline_multiquery(self, batch, published):
        got = table1_max_context(PALM_540B, AttentionLayoutKind.HEAD,
                                 TPU_V4, 64, batch)
        assert got == pytest.approx(published, rel=0.02)

    @pytest.mark.parametrize("batch,published", [(128, 43_000),
                                                 (512, 10_700)])
    def test_optimized_multiquery(self, batch, published):
        got = table1_max_context(PALM_540B, AttentionLayoutKind.BATCH,
                                 TPU_V4, 64, batch)
        assert got == pytest.approx(published, rel=0.02)

    def test_headline_32x_claim(self):
        """Optimized multiquery supports ~32x the multihead context."""
        for batch in (128, 512):
            opt = table1_max_context(PALM_540B, AttentionLayoutKind.BATCH,
                                     TPU_V4, 64, batch)
            mh = table1_max_context(PALM_540B_MULTIHEAD,
                                    AttentionLayoutKind.HEAD, TPU_V4, 64,
                                    batch)
            assert opt / mh == pytest.approx(32, rel=0.05)


class TestTimesAndSmallTensors:
    def test_kv_load_time_linear_in_context(self):
        cfg = PALM_540B
        t1 = kv_load_time(cfg, AttentionLayoutKind.BATCH, 64, 256, 1024,
                          1.2e12)
        t2 = kv_load_time(cfg, AttentionLayoutKind.BATCH, 64, 256, 2048,
                          1.2e12)
        assert t2 == pytest.approx(2 * t1)

    def test_all_to_all_tiny_versus_kv_cache(self):
        """Section 3.3: the all-to-all moves orders of magnitude fewer
        bytes than the per-step KV-cache load it eliminates."""
        cfg = PALM_540B
        torus = Torus3D(4, 4, 4)
        tokens = 256  # decode step at batch 256
        moved = attention_all_to_all_elements(cfg, torus, tokens) * 2
        kv_per_chip = kv_bytes_per_chip(cfg, AttentionLayoutKind.HEAD,
                                        64, 256, 2048)
        assert moved * 100 < kv_per_chip

    def test_max_context_scales_inversely_with_batch(self):
        cfg = tiny_test_config()
        budget = 1e9
        c1 = max_context_length(cfg, AttentionLayoutKind.HEAD, 8, 16,
                                budget)
        c2 = max_context_length(cfg, AttentionLayoutKind.HEAD, 8, 32,
                                budget)
        assert c1 == pytest.approx(2 * c2, rel=0.01)
