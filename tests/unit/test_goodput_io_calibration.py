"""Tests for cost conversions, weight checkpoints, and the calibration."""

import numpy as np
import pytest

from repro.hardware import TPU_V4
from repro.model import (
    PALM_540B,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.model.io import (
    config_from_dict,
    config_to_dict,
    load_weights,
    save_weights,
)
from repro.perf.calibrate import (
    TABLE2_ANCHORS,
    EfficiencyModel,
    calibrate,
    model_seconds,
    objective,
    report,
)
from repro.perf.goodput import (
    PricedPoint,
    fleet_tokens_per_second,
    mfu_from_cost,
    usd_per_million_tokens,
)


class TestGoodput:
    def test_unit_conversion(self):
        # 0.0036 chip-seconds/token at $1/chip-hour = $1 per M tokens.
        assert usd_per_million_tokens(0.0036, 1.0) == pytest.approx(1.0)

    def test_priced_point_identities(self):
        p = PricedPoint(chip_seconds_per_token=0.0072,
                        chip_hour_price_usd=2.0)
        assert p.usd_per_token * p.tokens_per_usd == pytest.approx(1.0)
        assert p.usd_per_million_tokens == pytest.approx(4.0)

    def test_fleet_throughput(self):
        assert fleet_tokens_per_second(64, 0.008) == pytest.approx(8000)

    def test_mfu_identity_roundtrip(self):
        """cost = n*t/(B*L) and MFU = 2N*B*L/(t*n*peak) are reciprocal
        through 2N/peak — the Section 4.4 statement."""
        cost = 0.008
        mfu = mfu_from_cost(cost, PALM_540B.n_params, TPU_V4.peak_flops)
        back = 2 * PALM_540B.n_params / (mfu * TPU_V4.peak_flops)
        assert back == pytest.approx(cost)
        assert 0 < mfu < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PricedPoint(0.0, 1.0)
        with pytest.raises(ValueError):
            fleet_tokens_per_second(0, 1.0)


class TestWeightsIO:
    def test_roundtrip_preserves_forward_pass(self, tmp_path):
        cfg = tiny_test_config()
        weights = init_weights(cfg, seed=4)
        path = tmp_path / "ckpt.npz"
        save_weights(weights, path)
        loaded = load_weights(path)
        assert loaded.config == cfg
        tokens = np.array([[1, 2, 3]])
        original = ReferenceTransformer(weights)
        restored = ReferenceTransformer(loaded)
        np.testing.assert_array_equal(
            original.forward(tokens, original.new_cache(1, 3)),
            restored.forward(tokens, restored.new_cache(1, 3)))

    def test_serial_block_roundtrip(self, tmp_path):
        cfg = tiny_test_config(parallel_block=False)
        weights = init_weights(cfg, seed=5)
        path = tmp_path / "serial.npz"
        save_weights(weights, path)
        loaded = load_weights(path)
        np.testing.assert_array_equal(loaded.layers[0].ln2_scale,
                                      weights.layers[0].ln2_scale)

    def test_config_dict_roundtrip(self):
        cfg = tiny_test_config()
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        cfg = tiny_test_config()
        weights = init_weights(cfg)
        path = tmp_path / "bad.npz"
        weights.embedding = weights.embedding[:-1]  # wrong vocab rows
        save_weights(weights, path)
        with pytest.raises(ValueError, match="embedding shape"):
            load_weights(path)


class TestCalibration:
    def test_defaults_within_band(self):
        """Every Table 2 anchor within 1.5x under the shipped defaults,
        and the two headline anchors within 5%."""
        eff = EfficiencyModel()
        for anchor in TABLE2_ANCHORS:
            ratio = model_seconds(anchor, eff) / anchor.paper_seconds
            assert 1 / 1.5 < ratio < 1.5, anchor.name
        headline = {a.name: model_seconds(a, eff) / a.paper_seconds
                    for a in TABLE2_ANCHORS}
        assert abs(headline["ll-decode"] - 1) < 0.05
        assert abs(headline["ht-prefill"] - 1) < 0.05

    def test_objective_regression_bound(self):
        # Shipped defaults: ~0.22.  Fails if a model change drifts them.
        assert objective(EfficiencyModel()) < 0.35

    def test_calibrate_improves_or_matches(self):
        best, value = calibrate(sweeps=1, points_per_axis=5)
        assert value <= objective(EfficiencyModel()) + 1e-9
        # And the optimum stays a sane efficiency model.
        assert 0 < best.flops_efficiency <= 1

    def test_report_format(self):
        text = report()
        assert "ll-decode" in text
        assert "objective" in text
