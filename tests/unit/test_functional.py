"""Tests for numerical building blocks, RoPE, and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.model.functional import (
    causal_mask,
    masked_softmax,
    rmsnorm,
    softmax,
    softmax_base2,
    swish,
    swish_base2,
)
from repro.model.rope import apply_rope, rope_frequencies
from repro.model.sampling import (
    apply_temperature,
    greedy,
    sample,
    top_k_mask,
    top_k_mask_sorted,
    top_p_mask,
)

RNG = np.random.default_rng(1)

finite_arrays = hnp.arrays(
    np.float64, hnp.array_shapes(min_dims=2, max_dims=2, min_side=2,
                                 max_side=16),
    elements=st.floats(-30, 30))


class TestFunctional:
    @given(finite_arrays)
    def test_softmax_base2_matches_softmax(self, x):
        np.testing.assert_allclose(softmax_base2(x), softmax(x),
                                   rtol=1e-10, atol=1e-12)

    @given(finite_arrays)
    def test_swish_base2_matches_swish(self, x):
        np.testing.assert_allclose(swish_base2(x), swish(x),
                                   rtol=1e-10, atol=1e-12)

    @given(finite_arrays)
    def test_softmax_rows_sum_to_one(self, x):
        np.testing.assert_allclose(softmax(x).sum(-1), 1.0)

    def test_softmax_shift_invariance(self):
        x = RNG.normal(size=(4, 8))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_rmsnorm_unit_rms(self):
        x = RNG.normal(size=(4, 64)) * 7.0
        normed = rmsnorm(x, np.ones(64))
        rms = np.sqrt(np.mean(normed**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_causal_mask_shape_and_content(self):
        mask = causal_mask(2, 5, q_offset=3)
        # Query global positions 3 and 4 can see kv positions <= themselves.
        np.testing.assert_array_equal(
            mask, [[True, True, True, True, False],
                   [True, True, True, True, True]])

    def test_masked_softmax_zeroes_disallowed(self):
        scores = RNG.normal(size=(1, 1, 2, 5))
        mask = causal_mask(2, 5, q_offset=0)
        probs = masked_softmax(scores, mask)
        assert probs[0, 0, 0, 1:].sum() == 0.0
        np.testing.assert_allclose(probs.sum(-1), 1.0)


class TestRope:
    def test_frequencies_shape(self):
        freqs = rope_frequencies(8)
        assert freqs.shape == (4,)
        assert freqs[0] == 1.0

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError, match="even"):
            rope_frequencies(7)

    def test_position_zero_is_identity(self):
        x = RNG.normal(size=(2, 1, 3, 8))
        np.testing.assert_allclose(apply_rope(x, np.array([0])), x)

    def test_preserves_norm(self):
        x = RNG.normal(size=(2, 4, 3, 8))
        rotated = apply_rope(x, np.arange(4))
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1))

    def test_relative_position_property(self):
        """q.k after RoPE depends only on the position *difference*."""
        d = 16
        q = RNG.normal(size=(1, 1, 1, d))
        k = RNG.normal(size=(1, 1, 1, d))

        def dot(pq, pk):
            qr = apply_rope(q, np.array([pq]))
            kr = apply_rope(k, np.array([pk]))
            return float(np.sum(qr * kr))

        np.testing.assert_allclose(dot(5, 3), dot(9, 7), rtol=1e-10)
        np.testing.assert_allclose(dot(12, 2), dot(20, 10), rtol=1e-10)

    def test_batch_positions_broadcast(self):
        x = RNG.normal(size=(2, 4, 1, 8))
        one = apply_rope(x, np.arange(4) + 7)
        # Same positions given per-batch explicitly.
        two = apply_rope(x, np.broadcast_to(np.arange(4) + 7, (2, 4)))
        np.testing.assert_allclose(one, two)


class TestSampling:
    def test_greedy(self):
        logits = np.array([[0.0, 2.0, 1.0], [3.0, -1.0, 0.0]])
        np.testing.assert_array_equal(greedy(logits), [1, 0])

    def test_temperature_preserves_argmax(self):
        logits = RNG.normal(size=(4, 10))
        np.testing.assert_array_equal(
            greedy(apply_temperature(logits, 0.3)), greedy(logits))
        with pytest.raises(ValueError):
            apply_temperature(logits, 0.0)

    @given(st.integers(1, 20))
    @settings(deadline=None)
    def test_top_k_fast_matches_sorted(self, k):
        logits = np.random.default_rng(k).normal(size=(5, 20))
        np.testing.assert_array_equal(top_k_mask(logits, k),
                                      top_k_mask_sorted(logits, k))

    def test_top_k_keeps_exactly_k(self):
        logits = RNG.permutation(20.0 * np.arange(16))[None, :]
        masked = top_k_mask(logits, 5)
        assert np.isfinite(masked).sum() == 5

    def test_top_p_keeps_argmax_always(self):
        logits = RNG.normal(size=(8, 32))
        masked = top_p_mask(logits, 0.01)
        np.testing.assert_array_equal(greedy(masked), greedy(logits))

    def test_top_p_mass_at_least_p(self):
        logits = RNG.normal(size=(8, 32))
        for p in (0.3, 0.7, 0.95):
            masked = top_p_mask(logits, p)
            kept = softmax(logits) * np.isfinite(masked)
            assert (kept.sum(-1) >= p - 1e-9).all()

    def test_top_p_one_keeps_everything(self):
        logits = RNG.normal(size=(2, 10))
        assert np.isfinite(top_p_mask(logits, 1.0)).all()

    def test_sample_respects_top_k_support(self):
        rng = np.random.default_rng(0)
        logits = RNG.normal(size=(64, 100))
        tokens = sample(logits, rng, top_k=3)
        allowed = np.isfinite(top_k_mask(logits, 3))
        assert all(allowed[i, t] for i, t in enumerate(tokens))

    def test_sample_distribution_roughly_matches(self):
        rng = np.random.default_rng(0)
        logits = np.log(np.array([[0.7, 0.2, 0.1]])).repeat(4000, axis=0)
        tokens = sample(logits, rng)
        freq = np.bincount(tokens, minlength=3) / len(tokens)
        np.testing.assert_allclose(freq, [0.7, 0.2, 0.1], atol=0.03)

    def test_sample_validates(self):
        logits = RNG.normal(size=(2, 10))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample(logits, rng, top_k=0)
        with pytest.raises(ValueError):
            sample(logits, rng, top_p=0.0)
