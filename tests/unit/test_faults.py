"""Mesh-level fault injection: typed failures, scheduling, both backends."""

import numpy as np
import pytest

from repro.events import FAULT_INJECTED, EventLog
from repro.mesh import (
    ChipFailure,
    ChipKill,
    CollectiveCorruption,
    CollectiveFault,
    CollectiveTimeout,
    FaultPlan,
    MeshFault,
    ShardedTensor,
    StragglerFault,
    VirtualMesh,
    all_gather,
    all_reduce,
    clear_faults,
)
from repro.mesh.virtual_mesh import BACKENDS
from repro.sharding import parse

RNG = np.random.default_rng(0)


def sharded_x(mesh, seed=0):
    rng = np.random.default_rng(seed)
    return ShardedTensor.from_global(mesh, rng.standard_normal((8,)),
                                     parse("D_x"))


@pytest.mark.parametrize("backend", BACKENDS)
class TestChipKill:
    def test_first_collective_detects(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        mesh.install_faults(FaultPlan(faults=(ChipKill(chip=(1, 0, 1)),)))
        with pytest.raises(ChipFailure) as err:
            all_gather(sharded_x(mesh), ("x",), "D")
        assert err.value.chip == (1, 0, 1)
        assert err.value.op == "all_gather"
        assert isinstance(err.value, MeshFault)

    def test_scheduled_kill_waits_for_step(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        state = mesh.install_faults(
            FaultPlan(faults=(ChipKill(chip=(0, 0, 0), at_step=2),)))
        t = sharded_x(mesh)
        all_gather(t, ("x",), "D")  # step 0: healthy
        state.advance()
        all_gather(t, ("x",), "D")  # step 1: still healthy
        state.advance()
        with pytest.raises(ChipFailure):
            all_gather(t, ("x",), "D")

    def test_phase_filter(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        state = mesh.install_faults(FaultPlan(faults=(
            ChipKill(chip=(0, 0, 0), at_step=1, phase="decode"),)))
        t = sharded_x(mesh)
        state.advance("prefill")
        all_gather(t, ("x",), "D")  # prefill steps never trigger it
        state.advance("decode")
        with pytest.raises(ChipFailure):
            all_gather(t, ("x",), "D")

    def test_clear_faults(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        mesh.install_faults(FaultPlan(faults=(ChipKill(chip=(0, 0, 0)),)))
        clear_faults(mesh)
        all_gather(sharded_x(mesh), ("x",), "D")  # healthy again


@pytest.mark.parametrize("backend", BACKENDS)
class TestCollectiveFaults:
    def test_timeout_is_one_shot(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        mesh.install_faults(FaultPlan(faults=(
            CollectiveFault(kind="timeout", axes=("x",)),)))
        t = sharded_x(mesh)
        with pytest.raises(CollectiveTimeout) as err:
            all_gather(t, ("x",), "D")
        assert err.value.axes == ("x",)
        all_gather(t, ("x",), "D")  # the fault is spent

    def test_timeout_axis_filter(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        mesh.install_faults(FaultPlan(faults=(
            CollectiveFault(kind="timeout", axes=("y",)),)))
        all_gather(sharded_x(mesh), ("x",), "D")  # wrong axes: no fault
        t_y = ShardedTensor.from_global(mesh, RNG.standard_normal((8,)),
                                        parse("D_y"))
        with pytest.raises(CollectiveTimeout):
            all_gather(t_y, ("y",), "D")

    def test_match_index_skips(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        mesh.install_faults(FaultPlan(faults=(
            CollectiveFault(kind="timeout", op="all_gather",
                            match_index=1),)))
        t = sharded_x(mesh)
        all_gather(t, ("x",), "D")  # first match skipped
        with pytest.raises(CollectiveTimeout):
            all_gather(t, ("x",), "D")

    def test_detected_corruption_raises(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        mesh.install_faults(FaultPlan(faults=(
            CollectiveFault(kind="corrupt", chip=(0, 1, 0)),)))
        with pytest.raises(CollectiveCorruption) as err:
            all_gather(sharded_x(mesh), ("x",), "D")
        assert err.value.chip == (0, 1, 0)

    def test_silent_corruption_changes_result(self, backend):
        # detected=False is the escape hatch that demonstrates *why*
        # detection matters: the answer is wrong with no error raised.
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        x = RNG.standard_normal((8,))
        replicated = ShardedTensor.from_global(mesh, x / 2, parse("D"))
        spec = parse("D").with_partial_sum(("x",))
        t = ShardedTensor(mesh, spec, x.shape, replicated.shards)
        clean = all_reduce(t, ("x",)).to_global()
        np.testing.assert_allclose(clean, x)
        mesh.install_faults(FaultPlan(faults=(
            CollectiveFault(kind="corrupt", chip=(0, 0, 0),
                            detected=False),)))
        dirty = all_reduce(t, ("x",))
        assert not np.allclose(clean, dirty.shards[0, 0, 0])

    def test_unknown_kind_rejected(self, backend):
        with pytest.raises(ValueError, match="kind"):
            CollectiveFault(kind="explode")


@pytest.mark.parametrize("backend", BACKENDS)
class TestStraggler:
    def test_accumulates_delay_without_raising(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        state = mesh.install_faults(FaultPlan(faults=(
            StragglerFault(chip=(0, 0, 1), slowdown=11.0,
                           delay_s_per_op=1e-3),)))
        t = sharded_x(mesh)
        for _ in range(4):
            all_gather(t, ("x",), "D")
        assert state.sim_delay_s == pytest.approx(4 * 1e-3 * 10.0)
        assert state.straggler_chips() == frozenset({(0, 0, 1)})

    def test_results_stay_correct(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        t = sharded_x(mesh)
        clean = all_gather(t, ("x",), "D").to_global()
        mesh.install_faults(FaultPlan(faults=(
            StragglerFault(chip=(1, 1, 1)),)))
        slow = all_gather(t, ("x",), "D").to_global()
        np.testing.assert_array_equal(clean, slow)


class TestEventsAndRemainingPlan:
    def test_injection_recorded_once(self):
        log = EventLog()
        mesh = VirtualMesh((2, 2, 2))
        mesh.install_faults(FaultPlan(faults=(
            StragglerFault(chip=(0, 0, 1)),)), event_log=log)
        t = sharded_x(mesh)
        all_gather(t, ("x",), "D")
        all_gather(t, ("x",), "D")
        injected = log.of_kind(FAULT_INJECTED)
        assert len(injected) == 1
        assert injected[0]["fault"]["type"] == "StragglerFault"
        assert injected[0]["fault"]["chip"] == (0, 0, 1)

    def test_remaining_plan_shifts_and_drops(self):
        mesh = VirtualMesh((2, 2, 2))
        state = mesh.install_faults(FaultPlan(faults=(
            ChipKill(chip=(0, 1, 0)),               # fires below
            ChipKill(chip=(1, 1, 1), at_step=99),   # outside new slice
            CollectiveFault(kind="timeout", at_step=99, chip=(0, 0, 1)),
        ), seed=7))
        with pytest.raises(ChipFailure):
            all_gather(sharded_x(mesh), ("x",), "D")
        # Replan onto the y=0 slab: origin (0,0,0), shape (2,1,2).
        remaining = state.remaining_plan((0, 0, 0), (2, 1, 2))
        assert remaining.seed == 7
        types = [type(f).__name__ for f in remaining.faults]
        assert types == ["CollectiveFault"]  # fired kill + outside dropped
        assert remaining.faults[0].chip == (0, 0, 1)

    def test_spent_faults_dropped(self):
        mesh = VirtualMesh((2, 2, 2))
        state = mesh.install_faults(FaultPlan(faults=(
            CollectiveFault(kind="timeout"),)))
        with pytest.raises(CollectiveTimeout):
            all_gather(sharded_x(mesh), ("x",), "D")
        assert state.remaining_plan((0, 0, 0), (2, 2, 2)).faults == ()


class TestFaultPlanValidation:
    def test_duplicate_chip_kill_rejected(self):
        with pytest.raises(ValueError, match="duplicate ChipKill"):
            FaultPlan(faults=(ChipKill(chip=(0, 1, 0), at_step=1),
                              ChipKill(chip=(0, 1, 0), at_step=5)))

    def test_duplicate_kill_same_step_rejected(self):
        with pytest.raises(ValueError, match="can only die once"):
            FaultPlan(faults=(ChipKill(chip=(1, 1, 1)),
                              ChipKill(chip=(1, 1, 1))))

    def test_kills_of_distinct_chips_allowed(self):
        plan = FaultPlan(faults=(ChipKill(chip=(0, 0, 0)),
                                 ChipKill(chip=(0, 0, 1), at_step=3)))
        assert len(plan.kills) == 2

    def test_inverted_straggler_window_rejected(self):
        with pytest.raises(ValueError, match="inverted straggler window"):
            FaultPlan(faults=(StragglerFault(chip=(0, 0, 1), at_step=5,
                                             until_step=3),))

    def test_empty_straggler_window_rejected(self):
        # until_step is exclusive, so until_step == at_step never fires.
        with pytest.raises(ValueError, match="inverted straggler window"):
            FaultPlan(faults=(StragglerFault(chip=(0, 0, 1), at_step=4,
                                             until_step=4),))

    def test_forward_straggler_window_allowed(self):
        plan = FaultPlan(faults=(StragglerFault(chip=(0, 0, 1), at_step=2,
                                                until_step=9),))
        assert plan.stragglers[0].until_step == 9

    @pytest.mark.parametrize("fault", [
        ChipKill(chip=(0, 0, 0), at_step=-1),
        StragglerFault(chip=(0, 0, 1), at_step=-3),
        CollectiveFault(kind="timeout", at_step=-2),
    ])
    def test_negative_at_step_rejected(self, fault):
        with pytest.raises(ValueError, match="negative at_step"):
            FaultPlan(faults=(fault,))

    def test_sub_unit_slowdown_rejected(self):
        with pytest.raises(ValueError, match="slowdown must be >= 1"):
            FaultPlan(faults=(StragglerFault(chip=(0, 0, 1),
                                             slowdown=0.5),))


@pytest.mark.parametrize("backend", BACKENDS)
class TestStragglerWindow:
    def test_straggler_heals_at_until_step(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        state = mesh.install_faults(FaultPlan(faults=(
            StragglerFault(chip=(0, 0, 1), slowdown=2.0,
                           delay_s_per_op=1e-3, at_step=1,
                           until_step=3),)))
        delays = []
        for _ in range(4):
            state.advance("decode")
            before = state.sim_delay_s
            all_gather(sharded_x(mesh), ("x",), "D")
            delays.append(state.sim_delay_s - before)
        # Active on steps 1 and 2, healed from step 3 (exclusive bound).
        assert delays[0] > 0 and delays[1] > 0
        assert delays[2] == 0 and delays[3] == 0
        assert state.straggler_chips() == frozenset()
