"""Tests for the analytical estimator, efficiency model, memory, Pareto."""

import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import (
    IDEAL,
    EfficiencyModel,
    InferenceEstimator,
    footprint,
    pareto_frontier,
    sweep_decode,
    sweep_prefill,
    weight_bytes_per_chip,
)

TORUS64 = Torus3D(4, 4, 4)
WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
WS2D_HEAD = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
WS1D_BATCH = LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.BATCH)
WG_XYZ = LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH)


def estimator(config=PALM_540B_PADDED, torus=TORUS64, **kwargs):
    kwargs.setdefault("mfu_params", PALM_540B.n_params)
    return InferenceEstimator(config, TPU_V4, torus, **kwargs)


class TestEfficiencyModel:
    def test_matmul_efficiency_monotone(self):
        eff = EfficiencyModel()
        values = [eff.matmul_efficiency(r) for r in (1, 16, 256, 65536)]
        assert values == sorted(values)
        assert values[-1] <= eff.flops_efficiency

    def test_half_peak_at_named_rows(self):
        eff = EfficiencyModel(rows_half_peak=128)
        assert eff.matmul_efficiency(128) == pytest.approx(
            eff.flops_efficiency / 2)

    def test_ideal_model_hits_roofline(self):
        est = InferenceEstimator(PALM_540B, TPU_V4, TORUS64,
                                 efficiency=IDEAL)
        cost = est.prefill_cost(WG_XYZ, 512, 2048)
        floor = (PALM_540B.matmul_flops_per_token * 512 * 2048
                 / (64 * TPU_V4.peak_flops))
        # Compute time equals the roofline floor exactly; total adds only
        # fully-exposed communication.
        assert cost.compute_s >= floor * 0.99
        assert cost.comm_exposed_s == pytest.approx(cost.comm_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            EfficiencyModel(hbm_efficiency=0.0)
        with pytest.raises(ValueError):
            EfficiencyModel(overlap_fraction=1.0)
        with pytest.raises(ValueError):
            EfficiencyModel().matmul_efficiency(0)


class TestPhaseCosts:
    def test_decode_low_batch_is_memory_bound(self):
        # Section 2.1: at small batch, weight loading dominates.
        cost = estimator(weight_dtype_bytes=1).decode_step_cost(
            WS2D_BATCH, 4, 2048)
        assert cost.memory_s > cost.compute_s

    def test_prefill_large_batch_is_compute_bound(self):
        cost = estimator().prefill_cost(WG_XYZ, 512, 2048)
        assert cost.compute_s > cost.memory_s

    def test_int8_halves_weight_load_time(self):
        bf16 = estimator(weight_dtype_bytes=2).decode_step_cost(
            WS2D_BATCH, 4, 2048)
        int8 = estimator(weight_dtype_bytes=1).decode_step_cost(
            WS2D_BATCH, 4, 2048)
        assert int8.weight_load_s == pytest.approx(bf16.weight_load_s / 2)
        assert int8.time_s < bf16.time_s

    def test_int8_neutral_at_large_batch(self):
        # Section 4.4: at large batch, cost is compute-dominated, so int8
        # weights barely move the needle (matmuls stay bf16).
        bf16 = estimator(weight_dtype_bytes=2).prefill_cost(WG_XYZ, 512,
                                                            2048)
        int8 = estimator(weight_dtype_bytes=1).prefill_cost(WG_XYZ, 512,
                                                            2048)
        assert int8.time_s == pytest.approx(bf16.time_s, rel=0.05)

    def test_batch_attention_cuts_kv_time(self):
        batch = estimator().decode_step_cost(WS2D_BATCH, 256, 2048)
        head = estimator().decode_step_cost(WS2D_HEAD, 256, 2048)
        assert head.kv_load_s == pytest.approx(64 * batch.kv_load_s)

    def test_ws2d_communicates_less_than_ws1d_on_64_chips(self):
        # Figure 6's mechanism.
        c2d = estimator().decode_step_cost(WS2D_BATCH, 512, 2048)
        c1d = estimator().decode_step_cost(WS1D_BATCH, 512, 2048)
        assert c2d.comm_s < c1d.comm_s

    def test_mfu_in_unit_interval_and_padding_charged(self):
        padded = estimator().prefill_cost(WG_XYZ, 512, 2048)
        unpadded = InferenceEstimator(
            PALM_540B, TPU_V4, TORUS64).prefill_cost(WG_XYZ, 512, 2048)
        assert 0 < padded.mfu < 1
        # Padding adds FLOPs that do not count as useful work.
        assert padded.mfu < unpadded.mfu

    def test_cost_metric_definition(self):
        cost = estimator().prefill_cost(WG_XYZ, 16, 2048)
        assert cost.cost_chip_seconds_per_token == pytest.approx(
            64 * cost.time_s / (16 * 2048))

    def test_generate_cost_aggregates_steps(self):
        est = estimator()
        gen = est.generate_cost(WS2D_BATCH, 64, 2048, 64)
        assert gen.total_s == pytest.approx(64 * gen.per_step.time_s)
        assert gen.latency_per_token_s == pytest.approx(gen.per_step.time_s)
        with pytest.raises(ValueError):
            est.generate_cost(WS2D_BATCH, 64, 2048, 0)

    def test_longer_context_costs_more(self):
        est = estimator()
        short = est.decode_step_cost(WS2D_BATCH, 256, 512)
        long = est.decode_step_cost(WS2D_BATCH, 256, 8192)
        assert long.time_s > short.time_s
        assert long.kv_load_s > short.kv_load_s


class TestMemory:
    def test_weight_bytes_per_chip(self):
        per = weight_bytes_per_chip(PALM_540B, 64, 2)
        assert per == pytest.approx(PALM_540B.n_params * 2 / 64)

    def test_540b_bf16_needs_many_chips(self):
        # 1.08 TB of weights cannot fit 8 x 32 GiB.
        small = footprint(PALM_540B, WS2D_BATCH, Torus3D(2, 2, 2), 1, 128)
        assert not small.fits(TPU_V4)
        large = footprint(PALM_540B, WS2D_BATCH, Torus3D(4, 4, 4), 1, 128)
        assert large.fits(TPU_V4)

    def test_kv_cache_can_evict_a_fitting_config(self):
        fits = footprint(PALM_540B, WS2D_BATCH, TORUS64, 64, 1024)
        assert fits.fits(TPU_V4)
        head = footprint(PALM_540B, WS2D_HEAD, TORUS64, 512, 8192)
        assert not head.fits(TPU_V4)


class TestPareto:
    def test_sweep_returns_memory_feasible_points(self):
        points = sweep_decode(PALM_62B, TPU_V4, chip_counts=(8, 16, 32),
                              batches=(1, 16, 256))
        assert points
        for p in points:
            assert footprint(PALM_62B, p.plan, p.torus, p.batch,
                             2048 + 64).fits(TPU_V4)

    def test_frontier_is_monotone(self):
        points = sweep_decode(PALM_62B, TPU_V4, chip_counts=(8, 16, 32, 64),
                              batches=(1, 4, 16, 64, 256))
        frontier = pareto_frontier(points)
        lat = [p.latency_s for p in frontier]
        cost = [p.cost_chip_seconds_per_token for p in frontier]
        assert lat == sorted(lat)
        assert cost == sorted(cost, reverse=True)

    def test_frontier_subset_and_dominance(self):
        points = sweep_prefill(PALM_62B, TPU_V4, chip_counts=(16, 32),
                               batches=(1, 16, 256))
        frontier = pareto_frontier(points, x=lambda p: p.latency_s,
                                   y=lambda p: p.cost_chip_seconds_per_token)
        assert set(id(p) for p in frontier) <= set(id(p) for p in points)
        for f in frontier:
            dominated = [p for p in points
                         if p.latency_s < f.latency_s
                         and p.cost_chip_seconds_per_token
                         < f.cost_chip_seconds_per_token]
            assert not dominated

    def test_larger_batch_improves_decode_cost(self):
        points = sweep_decode(PALM_62B, TPU_V4, chip_counts=(16,),
                              batches=(1, 256))
        by_batch = {p.batch: p for p in points}
        assert by_batch[256].cost_chip_seconds_per_token < \
            by_batch[1].cost_chip_seconds_per_token
        assert by_batch[1].latency_s < by_batch[256].latency_s
