"""Tests for the serving layer (two-phase recipe, scheduler)."""

import numpy as np
import pytest

from repro.model import ReferenceTransformer, init_weights, tiny_test_config
from repro.serving import (
    InferenceEngine,
    Request,
    TwoPhaseServer,
    group_requests,
    merge_caches,
)

CFG = tiny_test_config()


def model(seed=0):
    return ReferenceTransformer(init_weights(CFG, seed=seed))


def make_request(rid, length, n_new=4, seed=None):
    rng = np.random.default_rng(seed if seed is not None else rid)
    return Request(rid, rng.integers(0, CFG.vocab_size, size=length),
                   n_new)


class TestRequests:
    def test_validation(self):
        with pytest.raises(ValueError, match="1D"):
            Request(0, np.zeros((2, 2), dtype=int), 4)
        with pytest.raises(ValueError, match="max_new_tokens"):
            Request(0, np.zeros(3, dtype=int), 0)

    def test_rejects_non_integer_token_dtype(self):
        with pytest.raises(ValueError, match="integer token ids"):
            Request(0, np.array([1.0, 2.0]), 4)

    def test_rejects_negative_token_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            Request(0, np.array([3, -1, 2]), 4)

    def test_empty_prompt_allowed_if_integer(self):
        Request(0, np.zeros(0, dtype=np.int64), 1)


class TestScheduler:
    def test_groups_by_length(self):
        requests = [make_request(0, 4), make_request(1, 6),
                    make_request(2, 4)]
        groups = group_requests(requests, max_batch=8)
        assert [len(g) for g in groups] == [2, 1]
        assert {r.request_id for r in groups[0]} == {0, 2}

    def test_respects_max_batch(self):
        requests = [make_request(i, 4) for i in range(10)]
        groups = group_requests(requests, max_batch=4)
        assert [len(g) for g in groups] == [4, 4, 2]

    def test_preserves_order_within_group(self):
        requests = [make_request(i, 4) for i in range(5)]
        groups = group_requests(requests, max_batch=8)
        assert [r.request_id for r in groups[0]] == [0, 1, 2, 3, 4]

    def test_fifo_order_survives_length_interleaving(self):
        # Arrival order must be preserved within every length class even
        # when lengths interleave and groups split at max_batch.
        lengths = [4, 6, 4, 6, 4, 6, 4, 6]
        requests = [make_request(i, lengths[i]) for i in range(8)]
        groups = group_requests(requests, max_batch=2)
        by_length = {4: [], 6: []}
        for group in groups:
            assert len({len(r.prompt) for r in group}) == 1
            by_length[len(group[0].prompt)].extend(
                r.request_id for r in group)
        assert by_length[4] == [0, 2, 4, 6]
        assert by_length[6] == [1, 3, 5, 7]

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            group_requests([], 0)


class TestMergeCaches:
    def test_merge_concatenates_batch(self):
        m = model()
        p1 = np.array([[1, 2, 3]])
        p2 = np.array([[4, 5, 6]])
        _, c1 = m.prefill(p1, 8)
        _, c2 = m.prefill(p2, 8)
        merged = merge_caches([c1, c2])
        assert merged[0].k.shape[0] == 2
        assert merged[0].length == 3
        np.testing.assert_array_equal(merged[0].k[0], c1[0].k[0])
        np.testing.assert_array_equal(merged[0].k[1], c2[0].k[0])

    def test_mismatched_lengths_rejected(self):
        m = model()
        _, c1 = m.prefill(np.array([[1, 2, 3]]), 8)
        _, c2 = m.prefill(np.array([[1, 2]]), 8)
        with pytest.raises(ValueError, match="group requests by length"):
            merge_caches([c1, c2])

    def test_empty_request_list_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            merge_caches([])


class TestTwoPhaseServer:
    def test_matches_direct_batched_generation(self):
        """The paper's pipelined recipe is a pure scheduling change: the
        generated tokens must equal ordinary batched greedy decoding."""
        m = model()
        rng = np.random.default_rng(0)
        prompts = rng.integers(0, CFG.vocab_size, size=(3, 5))
        direct = m.generate(prompts, n_steps=4)

        server = TwoPhaseServer(m, decode_batch=8)
        requests = [Request(i, prompts[i], 4) for i in range(3)]
        completions = server.serve(requests)
        for i, completion in enumerate(completions):
            np.testing.assert_array_equal(completion.tokens, direct[i])
        assert server.prefill_count == 3
        assert server.decode_batches == 1

    def test_mixed_lengths_and_budgets(self):
        m = model()
        requests = [make_request(0, 4, n_new=3), make_request(1, 6, n_new=5),
                    make_request(2, 4, n_new=2)]
        completions = TwoPhaseServer(m, decode_batch=4).serve(requests)
        assert [c.request_id for c in completions] == [0, 1, 2]
        assert [len(c.tokens) for c in completions] == [7, 11, 6]
        assert [c.n_generated for c in completions] == [3, 5, 2]

    def test_completion_matches_solo_generation(self):
        """Sharing a decode batch must not change any request's output."""
        m = model()
        requests = [make_request(i, 5, n_new=4) for i in range(4)]
        batched = TwoPhaseServer(m, decode_batch=4).serve(requests)
        for request, completion in zip(requests, batched):
            solo = m.generate(request.prompt[None, :], 4)[0]
            np.testing.assert_array_equal(completion.tokens, solo)

    def test_generated_property(self):
        m = model()
        completion = TwoPhaseServer(m).serve([make_request(0, 4, 3)])[0]
        assert len(completion.generated) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoPhaseServer(model(), decode_batch=0)


class TestInferenceEngine:
    def test_reproducible_sampling(self):
        from repro.model import make_sampler

        prompts = np.array([[1, 2, 3, 4]])
        a = InferenceEngine(model(), make_sampler(top_k=4),
                            seed=1).generate(prompts, 5)
        b = InferenceEngine(model(), make_sampler(top_k=4),
                            seed=1).generate(prompts, 5)
        np.testing.assert_array_equal(a, b)
