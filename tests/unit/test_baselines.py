"""Tests for the FasterTransformer baseline data and the A100 model."""

import pytest

from repro.baselines import (
    FT_BASELINES,
    FT_TP16,
    FT_TP32,
    PAPER_MTNLG_TOTAL,
    PAPER_PALM_TOTAL,
    WORKLOADS,
    pareto_frontier_cells,
    run_workload,
)
from repro.model import MEGATRON_530B


class TestPublishedTables:
    def test_all_workloads_present(self):
        for table in FT_BASELINES.values():
            assert set(table) == {w.name for w in WORKLOADS}

    def test_batch_columns_ascend(self):
        for table in list(FT_BASELINES.values()) + [PAPER_PALM_TOTAL,
                                                    PAPER_MTNLG_TOTAL]:
            for rows in table.values():
                batches = [r.batch for r in rows]
                assert batches == sorted(batches)

    def test_known_anchor_cells(self):
        # Spot checks straight from Table D.3.
        row = next(r for r in FT_TP16["60in-20out"] if r.batch == 128)
        assert (row.time_ms, row.mfu_pct) == (5406, 40)
        row = next(r for r in PAPER_PALM_TOTAL["60in-20out"]
                   if r.batch == 64)
        assert (row.time_ms, row.mfu_pct) == (1218, 26)

    def test_oom_cells_are_none(self):
        row = next(r for r in FT_TP16["60in-20out"] if r.batch == 256)
        assert row.time_ms is None

    def test_paper_headline_16_vs_32_way(self):
        """Section 5: FT TP32 tops out at 33% MFU vs 46% for TP16 — the
        communication bottleneck of scaling tensor parallelism on GPUs."""
        best_tp32 = max(r.mfu_pct for rows in FT_TP32.values()
                        for r in rows if r.mfu_pct is not None)
        best_tp16 = max(r.mfu_pct for rows in FT_TP16.values()
                        for r in rows if r.mfu_pct is not None)
        assert best_tp32 == 33
        assert best_tp16 == 46

    def test_palm_beats_mtnlg_on_our_stack(self):
        """Section 5: parallel layers + multiquery give PaLM up to ~10%
        MFU over Megatron on the same hardware."""
        gains = []
        for workload in PAPER_PALM_TOTAL:
            for palm, mtnlg in zip(PAPER_PALM_TOTAL[workload],
                                   PAPER_MTNLG_TOTAL[workload]):
                assert palm.batch == mtnlg.batch
                gains.append(palm.mfu_pct - mtnlg.mfu_pct)
        assert max(gains) >= 3
        assert sum(g >= 0 for g in gains) > len(gains) * 0.7


class TestParetoCells:
    def test_frontier_not_dominated(self):
        cells = FT_TP16["20in-8out"]
        frontier = pareto_frontier_cells(list(cells))
        for f in frontier:
            for other in cells:
                if other.time_ms is None:
                    continue
                assert not (other.time_ms < f.time_ms
                            and other.mfu_pct > f.mfu_pct)

    def test_extremes_always_on_frontier(self):
        cells = [c for c in FT_TP32["60in-20out"] if c.time_ms is not None]
        frontier = pareto_frontier_cells(cells)
        fastest = min(cells, key=lambda c: c.time_ms)
        best_mfu = max(cells, key=lambda c: c.mfu_pct)
        assert fastest in frontier
        assert best_mfu in frontier


class TestA100Model:
    def test_mfu_rises_with_batch(self):
        mfus = [run_workload(MEGATRON_530B, 16, b, 60, 20).mfu
                for b in (1, 16, 256)]
        assert mfus == sorted(mfus)

    def test_tp32_mfu_below_tp16_at_equal_batch(self):
        # The communication-bound scaling FT observed (Section 5).
        r16 = run_workload(MEGATRON_530B, 16, 64, 60, 20)
        r32 = run_workload(MEGATRON_530B, 32, 64, 60, 20)
        assert r32.mfu < r16.mfu
        assert r32.time_s < r16.time_s  # but it is still faster

    def test_magnitudes_within_2x_of_published(self):
        """The analytical A100 model lands within ~2x of the published FT
        wall-clock across the mid-batch range."""
        published = {8: 1631, 32: 2361, 128: 5406}  # TP16 60/20 column
        for batch, ms in published.items():
            ours = run_workload(MEGATRON_530B, 16, batch, 60, 20)
            assert ours.time_s * 1e3 == pytest.approx(ms, rel=1.0)

    def test_pipeline_adds_bubble_at_small_batch(self):
        plain = run_workload(MEGATRON_530B, 8, 1, 20, 8,
                             pipeline_stages=1)
        piped = run_workload(MEGATRON_530B, 8, 1, 20, 8,
                             pipeline_stages=3)
        # Same per-chip work, but the pipeline holds 3x the chips and a
        # bubble: MFU must drop.
        assert piped.mfu < plain.mfu
