"""Tests for chip specs and torus topology."""

import math

import pytest

from repro.hardware import (
    A100_80GB,
    TPU_V4,
    ChipSpec,
    Mesh,
    Torus3D,
    default_slice_shape,
    enumerate_slice_shapes,
    get_chip,
)


class TestChipSpec:
    def test_tpu_v4_published_constants(self):
        assert TPU_V4.peak_flops == 275e12
        assert TPU_V4.hbm_bytes == 32 * 1024**3
        assert TPU_V4.hbm_bandwidth == 1200e9
        assert TPU_V4.interconnect_bandwidth == 270e9
        assert TPU_V4.num_torus_axes == 3

    def test_a100_is_flat_topology(self):
        assert A100_80GB.num_torus_axes == 1

    def test_machine_balance(self):
        # TPU v4: 275 TFLOP/s over 1200 GB/s ~ 229 FLOPs/byte.
        assert TPU_V4.machine_balance == pytest.approx(229.17, rel=1e-3)

    def test_lookup(self):
        assert get_chip("tpu-v4") is TPU_V4
        with pytest.raises(KeyError, match="unknown chip"):
            get_chip("h100")

    def test_with_overrides(self):
        derated = TPU_V4.with_overrides(hbm_bandwidth=600e9)
        assert derated.hbm_bandwidth == 600e9
        assert derated.peak_flops == TPU_V4.peak_flops
        assert TPU_V4.hbm_bandwidth == 1200e9  # original untouched

    @pytest.mark.parametrize("field", ["peak_flops", "hbm_bytes",
                                       "hbm_bandwidth",
                                       "interconnect_bandwidth"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError, match="must be positive"):
            TPU_V4.with_overrides(**{field: 0})


class TestTorus:
    def test_shape_and_count(self):
        t = Torus3D(4, 4, 8)
        assert t.shape == (4, 4, 8)
        assert t.num_chips == 128

    def test_axis_lookup(self):
        t = Torus3D(2, 4, 8)
        assert t.axis_size("x") == 2
        assert t.axis_size("y") == 4
        assert t.axis_size("z") == 8
        assert t.group_size(("y", "z")) == 32
        assert t.group_size(()) == 1

    def test_devices_enumeration(self):
        t = Torus3D(2, 1, 3)
        coords = list(t.devices())
        assert len(coords) == 6
        assert coords[0] == (0, 0, 0)
        assert coords[-1] == (1, 0, 2)

    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            Torus3D(0, 4, 4)

    def test_mesh_from_shape(self):
        m = Mesh.from_shape((2, 2, 2))
        assert m.num_chips == 8
        assert m.axis_names == ("x", "y", "z")
        with pytest.raises(ValueError):
            Mesh.from_shape((2, 2))


class TestSliceShapes:
    @pytest.mark.parametrize("n", [1, 4, 8, 16, 64, 256])
    def test_all_shapes_have_right_count(self, n):
        for shape in enumerate_slice_shapes(n):
            assert shape.num_chips == n

    def test_64_chips_includes_cube(self):
        shapes = {s.shape for s in enumerate_slice_shapes(64)}
        assert (4, 4, 4) in shapes

    def test_canonical_ordering(self):
        for shape in enumerate_slice_shapes(128):
            assert shape.x <= shape.y <= shape.z

    def test_min_axis_filters(self):
        shapes = enumerate_slice_shapes(64, min_axis=4)
        for s in shapes:
            for size in s.shape:
                assert size == 1 or size >= 4

    def test_default_shape_is_most_cubic(self):
        assert default_slice_shape(64).shape == (4, 4, 4)
        d = default_slice_shape(256)
        assert d.num_chips == 256
        side = 256 ** (1 / 3)
        # No enumerated shape is strictly more cubic.
        for s in enumerate_slice_shapes(256):
            assert (sum(abs(math.log(v / side)) for v in d.shape)
                    <= sum(abs(math.log(v / side)) for v in s.shape) + 1e-12)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            enumerate_slice_shapes(0)
