"""Write-ahead journal, deterministic replay, and the invariant auditor.

The journal (``repro.cluster.journal``) is the control plane's source
of truth for crash recovery: genesis snapshot + typed records must
replay to the live state bit-identically, a bounded journal must drop
records *loudly*, and the auditor (``repro.cluster.audit``) must refuse
anything it cannot fully verify.  Tests run at three levels: pure fold
units on hand-built journals, live cluster runs (crash recovery,
restart storm, overflow), and Hypothesis properties over snapshot
split points and sampled chaos scenarios.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.audit import audit_run, format_audit
from repro.cluster.chaos import (
    CHAOS_CONFIG,
    NEW_TOKENS,
    PROMPT_LEN,
    run_scenario,
)
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterSubmission,
    FleetConfigError,
    RestartSpec,
)
from repro.cluster.journal import (
    JOURNAL_KINDS,
    ControlPlaneState,
    Journal,
    JournalTruncated,
    replay_journal,
    token_crc,
)
from repro.events import EventLog
from repro.model import init_weights
from repro.serving.engine import Request

WEIGHTS = init_weights(CHAOS_CONFIG, seed=0)
SHAPE = (2, 2, 2)


def make_submissions(n, *, spacing_s=0.01, seed=0):
    rng = np.random.default_rng(seed)
    return [ClusterSubmission(
        Request(i, rng.integers(0, CHAOS_CONFIG.vocab_size,
                                size=PROMPT_LEN), NEW_TOKENS),
        arrival_s=i * spacing_s) for i in range(n)]


class TestTokenCrc:
    def test_deterministic(self):
        tokens = np.array([1, 2, 3, 4], dtype=np.int64)
        assert token_crc(tokens) == token_crc(tokens.copy())

    def test_sensitive_to_content(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([1, 2, 4], dtype=np.int64)
        assert token_crc(a) != token_crc(b)

    def test_prefix_differs_from_whole(self):
        t = np.arange(8, dtype=np.int64)
        assert token_crc(t[:4]) != token_crc(t)


class TestJournalBasics:
    def test_seqs_are_monotonic_from_zero(self):
        j = Journal()
        recs = [j.append("admit", 0.0, request_id=i) for i in range(5)]
        assert [r.seq for r in recs] == [0, 1, 2, 3, 4]
        assert j.next_seq == 5
        assert len(j) == 5

    def test_of_kind_filters(self):
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        j.append("reject", 0.0, request_id=1, reason="QueueFull")
        j.append("admit", 0.1, request_id=2)
        assert [r["request_id"] for r in j.of_kind("admit")] == [0, 2]

    def test_genesis_first_call_wins(self):
        j = Journal()
        first = ControlPlaneState(replicas=("r0",))
        j.set_genesis(first)
        j.set_genesis(ControlPlaneState(replicas=("zz",)))
        assert j.genesis is first

    def test_rejects_silly_bound(self):
        with pytest.raises(ValueError, match="max_records"):
            Journal(max_records=0)


class TestReplayFolds:
    def test_admit_reject_complete_fail(self):
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        j.append("admit", 0.0, request_id=1)
        j.append("reject", 0.0, request_id=2, reason="QueueFull")
        j.append("group_start", 0.1, group=0, requests=[0, 1])
        j.append("group_complete", 0.2, group=0, replica="r0",
                 entries=[(0, 123, 12, False)])
        j.append("group_fail", 0.2, group=0, requests=[1],
                 reason="MeshFault")
        state = replay_journal(j)
        assert state.admitted == (0, 1)
        assert state.rejected == ((2, "QueueFull"),)
        assert state.completed == ((0, 123, 12, False),)
        assert state.failed == ((1, "MeshFault"),)
        assert state.group_counter == 1
        assert state.journal_seq == j.next_seq

    def test_levers_and_quarantine(self):
        j = Journal()
        j.append("lever", 0.0, lever="hedging", value=False)
        j.append("lever", 0.0, lever="output_cap", priority_class="bulk",
                 cap=3)
        j.append("lever", 0.1, lever="output_cap", priority_class="bulk",
                 cap=None)
        j.append("lever", 0.1, lever="target_profile",
                 value="latency")
        j.append("quarantine", 0.2, pool="decode", replicas=["r1"])
        j.append("limits", 0.2, priority_class="bulk", accept=False)
        state = replay_journal(j)
        assert state.hedging_enabled is False
        assert state.output_caps == ()
        assert state.target_profile == "latency"
        assert state.quarantined == ("r1",)
        assert state.shed_classes == ("bulk",)
        j.append("pool_rejoin", 0.3, pool="decode", replicas=["r1"])
        j.append("limits", 0.3, priority_class="bulk", accept=True)
        state = replay_journal(j)
        assert state.quarantined == ()
        assert state.shed_classes == ()

    def test_starts_from_genesis(self):
        j = Journal()
        j.set_genesis(ControlPlaneState(
            journal_seq=0, replicas=("r0",), pools=(("r0", "prefill"),)))
        j.append("replica_add", 0.5, replica="r1", shape=SHAPE,
                 pool="decode")
        state = replay_journal(j)
        assert state.replicas == ("r0", "r1")
        assert dict(state.pools) == {"r0": "prefill", "r1": "decode"}

    def test_unknown_kind_is_a_hard_error(self):
        j = Journal()
        j.append("warp_core_breach", 0.0)
        with pytest.raises(ValueError, match="warp_core_breach"):
            replay_journal(j)

    def test_every_kind_has_a_fold_rule(self):
        for kind in ("admit", "group_complete", "handoff_commit",
                     "replica_rejoin", "control_recovered"):
            assert kind in JOURNAL_KINDS


class TestTruncation:
    def _filled(self, n=10, cap=4, event_log=None):
        j = Journal(max_records=cap, event_log=event_log)
        for i in range(n):
            j.append("admit", float(i), request_id=i)
        return j

    def test_ring_drops_oldest_loudly(self):
        ev = EventLog()
        j = self._filled(event_log=ev)
        assert j.truncated == 6
        assert [r.seq for r in j.records] == [6, 7, 8, 9]
        drops = ev.of_kind("journal_truncated")
        assert len(drops) == 1  # typed once, not per drop

    def test_replay_without_covering_snapshot_raises(self):
        j = self._filled()
        with pytest.raises(JournalTruncated, match="dropped"):
            replay_journal(j)

    def test_replay_from_covering_snapshot_succeeds(self):
        full = Journal()
        for i in range(10):
            full.append("admit", float(i), request_id=i)
        want = replay_journal(full)

        bounded = self._filled()
        snap_src = Journal()
        for i in range(6):
            snap_src.append("admit", float(i), request_id=i)
        snapshot = replay_journal(snap_src)
        assert snapshot.journal_seq == 6
        assert replay_journal(bounded, snapshot=snapshot) == want

    def test_auditor_refuses_a_truncated_journal(self):
        j = self._filled()
        report = audit_run(j)
        assert not report.certified
        assert any("truncated" in v for v in report.violations)


class TestAuditUnit:
    def test_clean_journal_certifies(self):
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        j.append("group_start", 0.0, group=0, requests=[0])
        j.append("group_complete", 0.1, group=0, replica="r0",
                 entries=[(0, 99, 12, False)])
        report = audit_run(j)
        assert report.certified, report.violations
        assert "CERTIFIED" in format_audit(report)

    def test_admitted_without_terminal_state(self):
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        report = audit_run(j)
        assert any("never reached a terminal state" in v
                   for v in report.violations)

    def test_double_completion_detected_from_raw_records(self):
        # The folded `completed` set dedupes by request id; the auditor
        # must scan the raw records to catch a request delivered twice.
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        for _ in range(2):
            j.append("group_complete", 0.1, group=0, replica="r0",
                     entries=[(0, 99, 12, False)])
        report = audit_run(j)
        assert any("completed 2 times" in v for v in report.violations)

    def test_commit_without_prepare(self):
        j = Journal()
        j.append("handoff_commit", 0.1, group=0, source="r0",
                 target="r1", attempt=1)
        report = audit_run(j)
        assert any("without a prepare" in v for v in report.violations)

    def test_double_commit_is_a_double_delivery(self):
        j = Journal()
        j.append("handoff_prepare", 0.0, group=0, source="r0", bytes=64)
        for attempt in (1, 2):
            j.append("handoff_commit", 0.1, group=0, source="r0",
                     target="r1", attempt=attempt)
        report = audit_run(j)
        assert any("delivered twice" in v for v in report.violations)

    def test_abort_before_budget_exhausted(self):
        j = Journal()
        j.append("handoff_prepare", 0.0, group=0, source="r0", bytes=64)
        j.append("handoff_retry", 0.1, group=0, attempt=1,
                 reason="ack-lost", backoff_s=0.01)
        j.append("handoff_abort", 0.2, group=0, reason="ack-lost",
                 budget=3)
        report = audit_run(j)
        assert any("only 1 of 3 budgeted retries" in v
                   for v in report.violations)

    def test_abort_after_budget_is_legal(self):
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        j.append("handoff_prepare", 0.0, group=0, source="r0", bytes=64)
        j.append("handoff_retry", 0.1, group=0, attempt=1,
                 reason="ack-lost", backoff_s=0.01)
        j.append("handoff_abort", 0.2, group=0, reason="ack-lost",
                 budget=1)
        j.append("group_fail", 0.2, group=0, requests=[0],
                 reason="HandoffAborted")
        report = audit_run(j)
        assert report.certified, report.violations

    def test_token_crc_checked_against_oracle(self):
        tokens = np.arange(12, dtype=np.int64)
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        j.append("group_complete", 0.1, group=0, replica="r0",
                 entries=[(0, token_crc(tokens), 12, False)])
        good = audit_run(j, reference={0: tokens})
        assert good.certified, good.violations
        bad = audit_run(j, reference={0: tokens + 1})
        assert any("diverged from the fault-free oracle" in v
                   for v in bad.violations)

    def test_capped_stream_checked_against_prefix(self):
        tokens = np.arange(12, dtype=np.int64)
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        j.append("group_complete", 0.1, group=0, replica="r0",
                 entries=[(0, token_crc(tokens[:9]), 9, True)])
        report = audit_run(j, reference={0: tokens})
        assert report.certified, report.violations

    def test_replay_mismatch_against_final_state(self):
        j = Journal()
        j.append("admit", 0.0, request_id=0)
        j.append("group_complete", 0.1, group=0, replica="r0",
                 entries=[(0, 99, 12, False)])
        lying = ControlPlaneState(journal_seq=j.next_seq,
                                  admitted=(0, 1))
        report = audit_run(j, final_state=lying)
        assert any(v.startswith("replay mismatch") for v
                   in report.violations)


@lru_cache(maxsize=None)
def _drain_run():
    """One live colocated run with a mid-flight drain, memoized."""
    plane = ClusterControlPlane(WEIGHTS, [SHAPE, SHAPE], decode_batch=4,
                                drains={"r0": 0.02})
    plane.serve(make_submissions(8))
    return plane


class TestLiveJournal:
    def test_replay_reconstructs_live_state(self):
        plane = _drain_run()
        assert replay_journal(plane.journal) == plane.control_state()

    def test_live_run_audits_clean(self):
        plane = _drain_run()
        report = audit_run(plane.journal,
                           final_state=plane.control_state())
        assert report.certified, report.violations

    def test_bounded_journal_is_loud_and_uncertifiable(self):
        ev = EventLog()
        plane = ClusterControlPlane(
            WEIGHTS, [SHAPE, SHAPE], decode_batch=4, event_log=ev,
            journal=Journal(max_records=6, event_log=ev))
        plane.serve(make_submissions(12))
        assert plane.journal.truncated > 0
        assert len(ev.of_kind("journal_truncated")) == 1
        with pytest.raises(JournalTruncated):
            replay_journal(plane.journal)
        report = audit_run(plane.journal)
        assert not report.certified
        assert any("truncated" in v for v in report.violations)

    def test_crash_recovery_scenario(self):
        report = run_scenario("control-plane-crash-mid-drain", seed=0)
        assert report.ok, report.violations
        assert report.recoveries == 1
        assert report.replay_matches
        assert report.audit_certified

    def test_restart_storm_scenario(self):
        report = run_scenario("restart-storm", seed=0)
        assert report.ok, report.violations
        assert report.restarts == 3
        assert report.failovers >= 1
        assert report.audit_certified

    @given(split=st.integers(min_value=0, max_value=200))
    @settings(max_examples=12, deadline=None)
    def test_snapshot_at_any_split_point_replays_identically(self, split):
        # Property: a snapshot folded from any journal prefix, plus the
        # suffix, reconstructs the same final state as a full replay.
        plane = _drain_run()
        full = plane.journal
        k = split % (len(full.records) + 1)
        prefix = Journal()
        if full.genesis is not None:
            prefix.set_genesis(full.genesis)
        for r in full.records[:k]:
            prefix.append(r.kind, r.t_s, **r.data)
        snapshot = replay_journal(prefix)
        assert snapshot.journal_seq == k
        assert replay_journal(full, snapshot=snapshot) \
            == plane.control_state()

    @given(name=st.sampled_from(["planned-drain", "rolling-kill"]),
           backend=st.sampled_from(["loop", "stacked"]),
           seed=st.integers(min_value=0, max_value=5))
    @settings(max_examples=8, deadline=None)
    def test_sampled_scenarios_replay_and_certify(self, name, backend,
                                                  seed):
        report = run_scenario(name, backend=backend, seed=seed)
        assert report.replay_matches
        assert report.audit_certified, report.audit_violations


class TestFleetValidation:
    def test_duplicate_replica_names_rejected(self):
        with pytest.raises(FleetConfigError, match="duplicate"):
            ClusterControlPlane(WEIGHTS, [SHAPE, SHAPE],
                                names=["a", "a"])

    def test_name_shape_arity_mismatch_rejected(self):
        with pytest.raises(FleetConfigError):
            ClusterControlPlane(WEIGHTS, [SHAPE], names=["a", "b"])

    def test_restart_for_unknown_replica_rejected(self):
        with pytest.raises(FleetConfigError, match="unknown"):
            ClusterControlPlane(WEIGHTS, [SHAPE],
                                restarts={"zz": RestartSpec(at_s=0.1)})

    def test_restart_spec_validates(self):
        with pytest.raises(ValueError):
            RestartSpec(at_s=-1.0)
        with pytest.raises(ValueError):
            RestartSpec(at_s=0.1, mode="tepid")
