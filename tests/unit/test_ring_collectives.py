"""Tests for the ring-algorithm collectives (Appendix A.1's mechanism).

These verify that the neighbor-exchange constructions (a) compute the
same results as the direct group implementations in ``repro.mesh.ops``
and (b) exhibit exactly the step counts and per-chip traffic the paper's
cost model assumes: ``K - 1`` steps moving ``D * (K-1)/K`` bytes for an
all-gather of per-chip output ``D``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.ring import (
    collective_permute,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
)
from repro.mesh import (
    ShardedTensor,
    VirtualMesh,
    all_gather,
    all_reduce,
    reduce_scatter,
)
from repro.sharding import ShardingError, parse

RNG = np.random.default_rng(0)


def partial_tensor(mesh, x, axis):
    spec = parse("BE").with_partial_sum((axis,))
    k = mesh.axis_size(axis)
    rng = np.random.default_rng(1)
    pieces = rng.dirichlet(np.ones(k))  # unequal contributions per rank

    def make(coord):
        rank = mesh.coords_on(coord, (axis,))[0]
        return x * pieces[rank]

    return ShardedTensor(mesh, spec, x.shape, mesh.map_devices(make))


class TestCollectivePermute:
    def test_shift_moves_buffers(self):
        mesh = VirtualMesh((1, 4, 1))
        shards = mesh.map_devices(lambda c: np.array([float(c[1])]))
        shifted = collective_permute(mesh, shards, "y", shift=1)
        for j in range(4):
            assert shifted[0, j, 0][0] == (j - 1) % 4

    def test_full_cycle_is_identity(self):
        mesh = VirtualMesh((1, 4, 1))
        shards = mesh.map_devices(lambda c: np.array([float(c[1])]))
        out = shards
        for _ in range(4):
            out = collective_permute(mesh, out, "y", shift=1)
        for coord in mesh.devices():
            np.testing.assert_array_equal(out[coord], shards[coord])

    def test_unknown_axis(self):
        mesh = VirtualMesh((2, 2, 2))
        with pytest.raises(ShardingError):
            collective_permute(mesh, mesh.empty_shards(), "q")


@pytest.mark.parametrize("axis,shape", [("y", (1, 4, 1)), ("z", (1, 1, 8)),
                                        ("x", (2, 2, 2))])
class TestRingAllGather:
    def test_matches_direct(self, axis, shape):
        mesh = VirtualMesh(shape)
        x = RNG.normal(size=(4, 8 * mesh.axis_size(axis)))
        t = ShardedTensor.from_global(mesh, x, f"BE_{axis}")
        direct = all_gather(t, (axis,), "E")
        ring, stats = ring_all_gather(t, axis, "E")
        assert ring.spec == direct.spec
        for coord in mesh.devices():
            np.testing.assert_allclose(ring.shards[coord],
                                       direct.shards[coord])

    def test_step_count_and_traffic(self, axis, shape):
        mesh = VirtualMesh(shape)
        k = mesh.axis_size(axis)
        x = RNG.normal(size=(4, 8 * k))
        t = ShardedTensor.from_global(mesh, x, f"BE_{axis}")
        out, stats = ring_all_gather(t, axis, "E")
        assert stats.steps == k - 1
        # Per-chip traffic = (K-1)/K x the per-chip *output* bytes.
        expected = out.per_chip_bytes * (k - 1) // k
        assert stats.bytes_sent_per_chip == expected


@pytest.mark.parametrize("axis,shape", [("y", (1, 4, 1)), ("z", (1, 1, 8)),
                                        ("x", (2, 2, 2))])
class TestRingReduceScatter:
    def test_matches_direct(self, axis, shape):
        mesh = VirtualMesh(shape)
        k = mesh.axis_size(axis)
        x = RNG.normal(size=(4, 8 * k))
        t = partial_tensor(mesh, x, axis)
        direct = reduce_scatter(t, (axis,), "E")
        ring, _ = ring_reduce_scatter(t, axis, "E")
        assert ring.spec == direct.spec
        for coord in mesh.devices():
            np.testing.assert_allclose(ring.shards[coord],
                                       direct.shards[coord])

    def test_traffic_matches_cost_model(self, axis, shape):
        mesh = VirtualMesh(shape)
        k = mesh.axis_size(axis)
        x = RNG.normal(size=(4, 8 * k))
        t = partial_tensor(mesh, x, axis)
        _, stats = ring_reduce_scatter(t, axis, "E")
        assert stats.steps == k - 1
        # Per-chip traffic = (K-1)/K x the per-chip *input* bytes.
        expected = t.per_chip_bytes * (k - 1) // k
        assert stats.bytes_sent_per_chip == expected


class TestRingAllReduce:
    def test_matches_direct(self):
        mesh = VirtualMesh((1, 4, 1))
        x = RNG.normal(size=(4, 16))
        t = partial_tensor(mesh, x, "y")
        direct = all_reduce(t, ("y",))
        ring, stats = ring_all_reduce(t, "y", "E")
        assert ring.spec == direct.spec
        for coord in mesh.devices():
            np.testing.assert_allclose(ring.shards[coord],
                                       direct.shards[coord])
        assert stats.steps == 2 * (4 - 1)

    def test_total_equals_global_sum(self):
        mesh = VirtualMesh((1, 1, 4))
        x = RNG.normal(size=(2, 8))
        t = partial_tensor(mesh, x, "z")
        ring, _ = ring_all_reduce(t, "z", "E")
        np.testing.assert_allclose(ring.to_global(), x)

    def test_requires_partial_sum(self):
        mesh = VirtualMesh((1, 4, 1))
        t = ShardedTensor.from_global(mesh, RNG.normal(size=(4, 8)), "BE")
        with pytest.raises(ShardingError, match="partial-sum"):
            ring_reduce_scatter(t, "y", "E")


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.sampled_from([2, 4, 8]))
def test_property_ring_roundtrip(seed, k):
    """reduce-scatter then all-gather over a ring == all-reduce == sum."""
    mesh = VirtualMesh((1, k, 1))
    x = np.random.default_rng(seed).normal(size=(2, 4 * k))
    t = partial_tensor(mesh, x, "y")
    out, _ = ring_all_reduce(t, "y", "E")
    np.testing.assert_allclose(out.to_global(), x, rtol=1e-9)
