"""Tests for sequence packing and segment-masked attention."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import ReferenceTransformer, init_weights, tiny_test_config
from repro.serving.packing import (
    pack_prompts,
    packing_efficiency,
    padded_efficiency,
    score_packed,
)

CFG = tiny_test_config()
MODEL = ReferenceTransformer(init_weights(CFG, seed=0))
RNG = np.random.default_rng(0)


def prompt(length, seed):
    return np.random.default_rng(seed).integers(0, CFG.vocab_size,
                                                size=length)


class TestPackPrompts:
    def test_single_prompt(self):
        rows = pack_prompts([5], 8)
        assert len(rows) == 1
        assert rows[0].prompt_ids == [0]
        assert rows[0].used == 5

    def test_two_fit_one_row(self):
        rows = pack_prompts([3, 5], 8)
        assert len(rows) == 1
        assert rows[0].used == 8

    def test_first_fit_decreasing_beats_arrival_order(self):
        # Lengths [6, 5, 3, 2] into capacity 8: FFD packs 2 rows (6+2,
        # 5+3); naive arrival order would need 3.
        rows = pack_prompts([6, 5, 3, 2], 8)
        assert len(rows) == 2

    def test_offsets_are_disjoint(self):
        lengths = [4, 4, 3, 2, 6, 1]
        for row in pack_prompts(lengths, 8):
            spans = sorted(
                (off, off + lengths[pid])
                for pid, off in zip(row.prompt_ids, row.offsets))
            for (a_start, a_end), (b_start, _) in zip(spans, spans[1:]):
                assert a_end <= b_start

    def test_too_long_rejected(self):
        with pytest.raises(ValueError, match="exceeds capacity"):
            pack_prompts([9], 8)
        with pytest.raises(ValueError):
            pack_prompts([1], 0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 16), min_size=1, max_size=20),
           st.integers(16, 32))
    def test_property_all_prompts_packed_once(self, lengths, capacity):
        rows = pack_prompts(lengths, capacity)
        packed = sorted(pid for row in rows for pid in row.prompt_ids)
        assert packed == list(range(len(lengths)))
        for row in rows:
            assert row.used <= capacity

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 16), min_size=2, max_size=20))
    def test_property_packing_at_least_as_efficient_as_padding(
            self, lengths):
        capacity = max(lengths)
        assert packing_efficiency(lengths, capacity) >= \
            padded_efficiency(lengths) - 1e-12


class TestForwardPacked:
    def test_matches_individual_forward(self):
        prompts = [prompt(4, 1), prompt(3, 2), prompt(5, 3)]
        packed_logits = score_packed(MODEL, prompts, capacity=8)
        for p, got in zip(prompts, packed_logits):
            solo = MODEL.forward(p[None, :], MODEL.new_cache(1, len(p)))[0]
            np.testing.assert_allclose(got, solo, rtol=1e-9, atol=1e-12)

    def test_padding_tokens_do_not_leak(self):
        """Scores are independent of the pad token value."""
        prompts = [prompt(3, 4), prompt(2, 5)]
        a = score_packed(MODEL, prompts, capacity=8, pad_token=0)
        b = score_packed(MODEL, prompts, capacity=8, pad_token=7)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y)

    def test_neighbours_do_not_leak(self):
        """A prompt's scores are independent of what it is packed with."""
        target = prompt(4, 6)
        alone = score_packed(MODEL, [target], capacity=8)[0]
        packed = score_packed(MODEL, [prompt(4, 7), target], capacity=8)
        np.testing.assert_allclose(packed[1], alone, rtol=1e-9)

    def test_positions_restart_per_segment(self):
        """Two copies of the same prompt in one row score identically."""
        p = prompt(3, 8)
        scores = score_packed(MODEL, [p, p], capacity=8)
        np.testing.assert_allclose(scores[0], scores[1], rtol=1e-12)

    def test_validation(self):
        tokens = np.zeros((1, 4), dtype=int)
        with pytest.raises(ValueError, match="match tokens"):
            MODEL.forward_packed(tokens, np.zeros((1, 3), dtype=int))
        with pytest.raises(ValueError, match="contiguous"):
            MODEL.forward_packed(tokens,
                                 np.array([[0, 1, 0, 1]]))

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(1, 6), min_size=1, max_size=5),
           st.integers(0, 10**6))
    def test_property_packed_equals_solo(self, lengths, seed):
        prompts = [np.random.default_rng(seed + i).integers(
            0, CFG.vocab_size, size=n) for i, n in enumerate(lengths)]
        packed = score_packed(MODEL, prompts, capacity=max(8,
                                                           max(lengths)))
        for p, got in zip(prompts, packed):
            solo = MODEL.forward(p[None, :], MODEL.new_cache(1, len(p)))[0]
            np.testing.assert_allclose(got, solo, rtol=1e-8, atol=1e-11)
