"""Tests for the mixture-of-experts extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import TPU_V4, Torus3D
from repro.mesh import ShardedTensor, VirtualMesh
from repro.model import FfnKind
from repro.moe import (
    MoeSpec,
    ShardedMoeLayer,
    init_moe_weights,
    moe_forward,
    moe_forward_dispatched,
    moe_layer_decode_cost,
    moe_vs_dense_decode,
    route,
)
from repro.sharding import ShardingError

RNG = np.random.default_rng(2)
SPEC = MoeSpec(d_model=16, d_ff=32, n_experts=4, experts_per_token=2)
WEIGHTS = init_moe_weights(SPEC, seed=0)


class TestSpecAccounting:
    def test_param_counts(self):
        assert SPEC.params_per_expert == 3 * 16 * 32
        assert SPEC.total_params == 4 * SPEC.params_per_expert + 16 * 4
        assert SPEC.active_params == 2 * SPEC.params_per_expert + 16 * 4

    def test_sparsity_factor_near_experts_over_k(self):
        assert SPEC.sparsity_factor == pytest.approx(2.0, rel=0.05)

    def test_mlp_variant_two_matrices(self):
        mlp = MoeSpec(16, 32, 4, 1, ffn=FfnKind.MLP)
        assert mlp.ffn_matrices == 2

    def test_dense_equivalent_matches_total(self):
        d_ff = SPEC.dense_equivalent_d_ff()
        dense_params = SPEC.ffn_matrices * SPEC.d_model * d_ff
        assert dense_params == pytest.approx(SPEC.total_params, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            MoeSpec(16, 32, 0, 1)
        with pytest.raises(ValueError):
            MoeSpec(16, 32, 4, 5)


class TestRouting:
    def test_gates_sum_to_one_over_top_k(self):
        y = RNG.normal(size=(8, 5, SPEC.d_model))
        gates, chosen = route(SPEC, WEIGHTS, y)
        np.testing.assert_allclose(gates.sum(-1), 1.0)
        assert (chosen.sum(-1) == SPEC.experts_per_token).all()
        assert (gates[~chosen] == 0).all()

    def test_top_1_picks_argmax(self):
        spec = MoeSpec(16, 32, 4, 1)
        weights = init_moe_weights(spec, seed=1)
        y = RNG.normal(size=(6, SPEC.d_model))
        gates, _ = route(spec, weights, y)
        logits = y @ weights.router
        np.testing.assert_array_equal(np.argmax(gates, -1),
                                      np.argmax(logits, -1))
        np.testing.assert_allclose(gates.max(-1), 1.0)

    def test_tied_logits_still_pick_exactly_k(self):
        spec = MoeSpec(4, 8, 4, 2)
        weights = init_moe_weights(spec, seed=0)
        weights.router[:] = 0.0  # all experts tie
        y = RNG.normal(size=(5, 4))
        gates, chosen = route(spec, weights, y)
        assert (chosen.sum(-1) == 2).all()
        np.testing.assert_allclose(gates.sum(-1), 1.0)


class TestForward:
    def test_dense_and_dispatched_agree(self):
        y = RNG.normal(size=(4, 3, SPEC.d_model))
        np.testing.assert_allclose(
            moe_forward(SPEC, WEIGHTS, y),
            moe_forward_dispatched(SPEC, WEIGHTS, y), rtol=1e-10)

    def test_full_routing_equals_dense_mixture(self):
        """With k = n_experts, MoE is a softmax-weighted expert mixture."""
        spec = MoeSpec(16, 32, 4, 4)
        weights = init_moe_weights(spec, seed=2)
        y = RNG.normal(size=(2, 2, 16))
        from repro.model.functional import softmax
        from repro.moe import expert_ffn

        gates = softmax(y @ weights.router, axis=-1)
        expected = sum(gates[..., i:i + 1]
                       * expert_ffn(spec, weights, y, i) for i in range(4))
        np.testing.assert_allclose(moe_forward(spec, weights, y), expected,
                                   rtol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6), st.sampled_from([1, 2, 3]))
    def test_property_dispatch_equivalence(self, seed, k):
        spec = MoeSpec(8, 16, 4, k)
        weights = init_moe_weights(spec, seed=seed % 100)
        y = np.random.default_rng(seed).normal(size=(6, 2, 8))
        np.testing.assert_allclose(
            moe_forward(spec, weights, y),
            moe_forward_dispatched(spec, weights, y),
            rtol=1e-9, atol=1e-12)


class TestShardedMoe:
    @pytest.mark.parametrize("shape,axes", [((1, 2, 2), ("y", "z")),
                                            ((1, 4, 1), ("y",)),
                                            ((2, 2, 1), ("x", "y"))])
    def test_matches_reference(self, shape, axes):
        mesh = VirtualMesh(shape)
        layer = ShardedMoeLayer(WEIGHTS, mesh, expert_axes=axes)
        y = RNG.normal(size=(4, 3, SPEC.d_model))
        got = layer.forward(
            ShardedTensor.from_global(mesh, y, "BLE")).to_global()
        np.testing.assert_allclose(got, moe_forward(SPEC, WEIGHTS, y),
                                   rtol=1e-9, atol=1e-12)

    def test_weight_memory_divided(self):
        mesh = VirtualMesh((1, 2, 2))
        layer = ShardedMoeLayer(WEIGHTS, mesh)
        assert layer.w_in.per_chip_bytes == WEIGHTS.w_in.nbytes // 4

    def test_batch_sharded_tokens(self):
        """Tokens may be sharded over non-expert axes (x here)."""
        mesh = VirtualMesh((2, 2, 1))
        layer = ShardedMoeLayer(WEIGHTS, mesh, expert_axes=("y",))
        y = RNG.normal(size=(4, 3, SPEC.d_model))
        got = layer.forward(
            ShardedTensor.from_global(mesh, y, "B_xLE")).to_global()
        np.testing.assert_allclose(got, moe_forward(SPEC, WEIGHTS, y),
                                   rtol=1e-9)

    def test_validation(self):
        mesh = VirtualMesh((1, 2, 2))
        layer = ShardedMoeLayer(WEIGHTS, mesh)
        bad = ShardedTensor.from_global(
            mesh, RNG.normal(size=(4, 2, SPEC.d_model)), "B_yLE")
        with pytest.raises(ShardingError, match="expert axes"):
            layer.forward(bad)
        with pytest.raises(ShardingError, match="not divisible"):
            ShardedMoeLayer(init_moe_weights(MoeSpec(8, 16, 3, 1)), mesh)


class TestCosts:
    BIG = MoeSpec(d_model=18432, d_ff=73728, n_experts=16,
                  experts_per_token=2)
    TORUS = Torus3D(4, 4, 4)

    def test_flops_reduction_matches_sparsity(self):
        cmp = moe_vs_dense_decode(self.BIG, TPU_V4, self.TORUS, 256)
        assert cmp.flops_reduction == pytest.approx(
            self.BIG.sparsity_factor, rel=0.02)

    def test_moe_wins_at_compute_bound_batch(self):
        cmp = moe_vs_dense_decode(self.BIG, TPU_V4, self.TORUS, 512)
        assert cmp.speedup > 1.0

    def test_memory_bound_regime_is_neutral(self):
        """At batch 1 both layers are weight-loading bound (same stored
        bytes), so sparsity buys little — FLOPs are not the bottleneck."""
        cmp = moe_vs_dense_decode(self.BIG, TPU_V4, self.TORUS, 1)
        assert cmp.speedup == pytest.approx(1.0, abs=0.2)

    def test_dispatch_scales_with_capacity(self):
        lean = moe_layer_decode_cost(self.BIG, TPU_V4, self.TORUS, 256,
                                     capacity_factor=1.0)
        padded = moe_layer_decode_cost(self.BIG, TPU_V4, self.TORUS, 256,
                                       capacity_factor=2.0)
        assert padded.dispatch_s == pytest.approx(2 * lean.dispatch_s)
