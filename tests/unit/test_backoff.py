"""The shared seeded backoff schedules (``repro.serving.backoff``).

Every retry loop in the stack — the resilient single-mesh lifecycle,
cluster failover, and the transactional KV handoff — runs on a virtual
clock, so its backoff must be a pure function of its inputs.  These
tests pin the exponential envelope, the jitter window, the seeding
contract, and the legacy ``CostModel.backoff_s`` delegation.
"""

import math

import pytest

from repro.serving.backoff import exponential_backoff_s, jittered_backoff_s
from repro.serving.resilient import CostModel


class TestExponential:
    def test_doubles_per_attempt(self):
        waits = [exponential_backoff_s(a, base_s=0.05)
                 for a in (1, 2, 3, 4)]
        assert waits == [0.05, 0.1, 0.2, 0.4]

    def test_custom_factor(self):
        assert exponential_backoff_s(3, base_s=1.0, factor=3.0) == 9.0

    def test_max_s_caps_the_schedule(self):
        assert exponential_backoff_s(10, base_s=1.0, max_s=5.0) == 5.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            exponential_backoff_s(0, base_s=0.1)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError, match="base_s"):
            exponential_backoff_s(1, base_s=-0.1)

    def test_cost_model_delegates_bit_identically(self):
        costs = CostModel(backoff_base_s=0.07)
        for attempt in range(1, 6):
            assert costs.backoff_s(attempt) == exponential_backoff_s(
                attempt, base_s=0.07)


class TestJittered:
    def test_pure_function_of_seed_key_attempt(self):
        a = jittered_backoff_s(2, base_s=0.1, seed=7, key=3)
        b = jittered_backoff_s(2, base_s=0.1, seed=7, key=3)
        assert a == b

    def test_within_the_jitter_window(self):
        for attempt in range(1, 6):
            env = exponential_backoff_s(attempt, base_s=0.1)
            wait = jittered_backoff_s(attempt, base_s=0.1, jitter=0.5,
                                      seed=11, key=attempt)
            assert (1 - 0.5) * env <= wait <= env

    def test_zero_jitter_is_the_exponential_schedule(self):
        for attempt in (1, 2, 3):
            assert jittered_backoff_s(attempt, base_s=0.1, jitter=0.0) \
                == exponential_backoff_s(attempt, base_s=0.1)

    def test_distinct_keys_desynchronize(self):
        waits = {jittered_backoff_s(2, base_s=0.1, seed=0, key=k)
                 for k in range(16)}
        assert len(waits) > 1

    def test_distinct_seeds_diverge(self):
        assert jittered_backoff_s(2, base_s=0.1, seed=0, key=5) != \
            jittered_backoff_s(2, base_s=0.1, seed=1, key=5)

    def test_max_s_caps_the_envelope(self):
        wait = jittered_backoff_s(12, base_s=1.0, max_s=2.0, seed=3)
        assert wait <= 2.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            jittered_backoff_s(0, base_s=0.1)

    def test_finite(self):
        assert math.isfinite(jittered_backoff_s(30, base_s=0.01))
