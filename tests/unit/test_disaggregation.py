"""Tests for prefill/decode disaggregation sizing (Section 4.4)."""

import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator
from repro.perf.disaggregation import size_pipeline, turn_latency

PREFILL_PLAN = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
DECODE_PLAN = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)


def estimators():
    est = InferenceEstimator(PALM_540B_PADDED, TPU_V4, Torus3D(4, 4, 4),
                             weight_dtype_bytes=1,
                             mfu_params=PALM_540B.n_params)
    return est, est


def paper_pipeline(**kwargs):
    prefill_est, decode_est = estimators()
    defaults = dict(input_len=2048, gen_len=64, decode_batch=64)
    defaults.update(kwargs)
    return size_pipeline(prefill_est, decode_est, PREFILL_PLAN,
                         DECODE_PLAN, **defaults)


class TestSizing:
    def test_paper_operating_point(self):
        """The Table 2 low-latency pair: batch-1 prefill (~0.2 s/request)
        against a batch-64 decode round (~1.8 s for 64 requests) needs a
        handful of prefill replicas per decode server."""
        plan = paper_pipeline()
        assert 4 <= plan.prefill_replicas <= 12
        assert plan.requests_per_second > 20
        assert plan.bottleneck == "decode"

    def test_utilizations_bounded(self):
        plan = paper_pipeline()
        assert 0 < plan.prefill_utilization <= 1 + 1e-9
        assert 0 < plan.decode_utilization <= 1 + 1e-9
        # Sized so the decode server never starves.
        assert plan.decode_utilization == pytest.approx(1.0)

    def test_replicas_scale_with_prompt_length(self):
        short = paper_pipeline(input_len=256)
        long = paper_pipeline(input_len=2048)
        assert long.prefill_replicas >= short.prefill_replicas

    def test_longer_generation_needs_fewer_prefills(self):
        quick = paper_pipeline(gen_len=16)
        slow = paper_pipeline(gen_len=256)
        assert slow.prefill_replicas <= quick.prefill_replicas

    def test_turn_latency_matches_chatbot_story(self):
        """Prefill + a 64-token decode round ~ the paper's ~2 s turn."""
        plan = paper_pipeline(input_len=2048)
        assert 1.0 < turn_latency(plan) < 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_pipeline(decode_batch=0)
        with pytest.raises(ValueError):
            paper_pipeline(gen_len=0)
