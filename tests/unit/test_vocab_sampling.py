"""Tests for vocab-sharded logits and distributed sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts.vocab import (
    counter_uniform,
    distributed_greedy,
    distributed_sample,
    distributed_top_k,
    gumbel_noise,
    sharded_logits,
)
from repro.mesh import ShardedTensor, VirtualMesh, all_reduce
from repro.sharding import ShardingError

RNG = np.random.default_rng(11)


def vocab_sharded(mesh, logits, spec="BV_yz"):
    return ShardedTensor.from_global(mesh, logits, spec)


class TestCounterRandomness:
    def test_deterministic(self):
        idx = np.arange(100)
        np.testing.assert_array_equal(counter_uniform(7, idx),
                                      counter_uniform(7, idx))

    def test_seed_sensitivity(self):
        idx = np.arange(100)
        assert not np.allclose(counter_uniform(7, idx),
                               counter_uniform(8, idx))

    def test_range_and_rough_uniformity(self):
        u = counter_uniform(0, np.arange(200_000))
        assert u.min() > 0.0
        assert u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(np.quantile(u, 0.25) - 0.25) < 0.01

    def test_sharding_independence(self):
        """Any slice of the index space yields the same values."""
        full = counter_uniform(3, np.arange(64))
        np.testing.assert_array_equal(full[16:32],
                                      counter_uniform(3, np.arange(16, 32)))

    def test_gumbel_statistics(self):
        g = gumbel_noise(1, np.arange(500_000))
        # Standard Gumbel: mean = Euler-Mascheroni, var = pi^2/6.
        assert abs(g.mean() - 0.5772) < 0.01
        assert abs(g.var() - np.pi**2 / 6) < 0.02


class TestShardedLogits:
    def test_matches_dense_unembedding(self):
        mesh = VirtualMesh((2, 2, 2))
        x = RNG.normal(size=(4, 1, 16))
        emb = RNG.normal(size=(32, 16))
        xt = ShardedTensor.from_global(mesh, x, "BLE_x")
        et = ShardedTensor.from_global(mesh, emb, "V_yzE_x")
        logits = sharded_logits(xt, et)
        logits = all_reduce(logits, ("x",))
        assert logits.spec.axes_for("V") == ("y", "z")
        np.testing.assert_allclose(logits.to_global(),
                                   np.einsum("ble,ve->blv", x, emb))


class TestDistributedGreedy:
    def test_matches_global_argmax(self):
        mesh = VirtualMesh((1, 2, 2))
        logits = RNG.normal(size=(8, 32))
        tokens = distributed_greedy(vocab_sharded(mesh, logits))
        np.testing.assert_array_equal(tokens, np.argmax(logits, axis=1))

    def test_replicated_vocab_axis_ok(self):
        mesh = VirtualMesh((2, 2, 1))  # x replicates, y shards V
        logits = RNG.normal(size=(4, 16))
        tokens = distributed_greedy(vocab_sharded(mesh, logits, "BV_y"))
        np.testing.assert_array_equal(tokens, np.argmax(logits, axis=1))

    def test_validation(self):
        mesh = VirtualMesh((1, 2, 1))
        with pytest.raises(ShardingError, match="BV"):
            distributed_greedy(ShardedTensor.from_global(
                mesh, RNG.normal(size=(2, 2, 4)), "BLV_y"))
        with pytest.raises(ShardingError, match="batch-replicated"):
            distributed_greedy(ShardedTensor.from_global(
                mesh, RNG.normal(size=(4, 8)), "B_yV"))


class TestDistributedTopK:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 10**6))
    def test_matches_global_top_k(self, k, seed):
        mesh = VirtualMesh((1, 2, 2))
        logits = np.random.default_rng(seed).normal(size=(4, 32))
        values, indices = distributed_top_k(vocab_sharded(mesh, logits), k)
        expected_order = np.argsort(-logits, axis=1, kind="stable")[:, :k]
        expected_values = np.take_along_axis(logits, expected_order,
                                             axis=1)
        np.testing.assert_allclose(values, expected_values)
        # Values at returned indices must be the returned values.
        np.testing.assert_allclose(
            np.take_along_axis(logits, indices, axis=1), values)

    def test_k_larger_than_shard(self):
        mesh = VirtualMesh((1, 4, 1))
        logits = RNG.normal(size=(2, 16))  # 4 tokens per shard
        values, _ = distributed_top_k(vocab_sharded(mesh, logits, "BV_y"),
                                      6)
        expected = np.sort(logits, axis=1)[:, ::-1][:, :6]
        np.testing.assert_allclose(values, expected)

    def test_validation(self):
        mesh = VirtualMesh((1, 2, 1))
        t = vocab_sharded(mesh, RNG.normal(size=(2, 8)), "BV_y")
        with pytest.raises(ValueError):
            distributed_top_k(t, 0)


class TestDistributedSample:
    def test_identical_across_shardings(self):
        """The same seed gives the same tokens no matter the sharding."""
        logits = RNG.normal(size=(16, 32))
        results = []
        for shape, spec in [((1, 1, 1), "BV"), ((1, 2, 2), "BV_yz"),
                            ((1, 4, 1), "BV_y")]:
            t = vocab_sharded(VirtualMesh(shape), logits, spec)
            results.append(distributed_sample(t, seed=42))
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_matches_manual_gumbel_max(self):
        logits = RNG.normal(size=(4, 16))
        t = vocab_sharded(VirtualMesh((1, 2, 1)), logits, "BV_y")
        got = distributed_sample(t, seed=9)
        idx = np.arange(4)[:, None] * 16 + np.arange(16)[None, :]
        noisy = logits + gumbel_noise(9, idx)
        np.testing.assert_array_equal(got, np.argmax(noisy, axis=1))

    def test_distribution_roughly_softmax(self):
        probs = np.array([0.6, 0.3, 0.1])
        logits = np.log(probs)[None, :].repeat(6000, axis=0)
        t = vocab_sharded(VirtualMesh((1, 1, 1)), logits, "BV")
        counts = np.zeros(3)
        tokens = distributed_sample(t, seed=1)
        # Each row uses distinct counter indices, so one call suffices.
        counts = np.bincount(tokens, minlength=3) / len(tokens)
        np.testing.assert_allclose(counts, probs, atol=0.03)

    def test_temperature_sharpens(self):
        logits = np.log(np.array([0.55, 0.45]))[None, :].repeat(4000,
                                                                axis=0)
        t = vocab_sharded(VirtualMesh((1, 1, 1)), logits, "BV")
        cold = distributed_sample(t, seed=2, temperature=0.05)
        hot = distributed_sample(t, seed=2, temperature=5.0)
        assert np.mean(cold == 0) > np.mean(hot == 0)
        with pytest.raises(ValueError):
            distributed_sample(t, seed=0, temperature=0.0)


class TestShardedEmbeddingLookup:
    def test_matches_dense_lookup(self):
        from repro.layouts.vocab import sharded_embedding_lookup
        from repro.mesh import all_reduce

        mesh = VirtualMesh((1, 2, 2))
        emb = RNG.normal(size=(32, 8))
        tokens = RNG.integers(0, 32, size=(3, 4))
        table = ShardedTensor.from_global(mesh, emb, "V_yzE")
        out = all_reduce(
            sharded_embedding_lookup(tokens, table), ("y", "z"))
        np.testing.assert_allclose(out.to_global(), emb[tokens])

    def test_e_sharding_carries_through(self):
        from repro.layouts.vocab import sharded_embedding_lookup
        from repro.mesh import all_reduce

        mesh = VirtualMesh((2, 2, 1))
        emb = RNG.normal(size=(16, 8))
        tokens = RNG.integers(0, 16, size=(2, 3))
        table = ShardedTensor.from_global(mesh, emb, "V_yE_x")
        out = all_reduce(sharded_embedding_lookup(tokens, table), ("y",))
        assert out.spec.axes_for("E") == ("x",)
        np.testing.assert_allclose(out.to_global(), emb[tokens])

    def test_replicated_table_needs_no_reduce(self):
        from repro.layouts.vocab import sharded_embedding_lookup

        mesh = VirtualMesh((1, 2, 1))
        emb = RNG.normal(size=(16, 8))
        tokens = RNG.integers(0, 16, size=(2, 2))
        table = ShardedTensor.from_global(mesh, emb, "VE")
        out = sharded_embedding_lookup(tokens, table)
        assert out.spec.partial_sum == ()
        np.testing.assert_allclose(out.to_global(), emb[tokens])

    def test_validation(self):
        from repro.layouts.vocab import sharded_embedding_lookup

        mesh = VirtualMesh((1, 2, 1))
        table = ShardedTensor.from_global(mesh, RNG.normal(size=(8, 4)),
                                          "VE")
        with pytest.raises(ShardingError, match="B, L"):
            sharded_embedding_lookup(np.zeros(3, dtype=int), table)
