"""Tests for the discrete-event simulator (engine, builder, trace)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED, tiny_test_config
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import IDEAL, InferenceEstimator
from repro.simulator import (
    BuildSpec,
    Program,
    build_forward_program,
    simulate,
    to_chrome_trace,
)

WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)


class TestEngine:
    def test_chain_sums_durations(self):
        prog = Program()
        a = prog.add("a", "mxu", 1.0)
        b = prog.add("b", "mxu", 2.0, (a,))
        prog.add("c", "mxu", 3.0, (b,))
        assert simulate(prog).makespan == pytest.approx(6.0)

    def test_different_resources_overlap(self):
        prog = Program()
        prog.add("comm", "ici", 5.0)
        prog.add("matmul", "mxu", 3.0)
        result = simulate(prog)
        assert result.makespan == pytest.approx(5.0)  # max, not sum

    def test_same_resource_serializes(self):
        prog = Program()
        prog.add("m1", "mxu", 3.0)
        prog.add("m2", "mxu", 4.0)
        assert simulate(prog).makespan == pytest.approx(7.0)

    def test_dependency_across_resources(self):
        prog = Program()
        comm = prog.add("comm", "ici", 5.0)
        prog.add("matmul", "mxu", 3.0, (comm,))
        assert simulate(prog).makespan == pytest.approx(8.0)

    def test_diamond(self):
        prog = Program()
        a = prog.add("a", "mxu", 1.0)
        b = prog.add("b", "ici", 4.0, (a,))
        c = prog.add("c", "hbm", 2.0, (a,))
        prog.add("d", "mxu", 1.0, (b, c))
        assert simulate(prog).makespan == pytest.approx(6.0)

    def test_busy_and_utilization(self):
        prog = Program()
        prog.add("m", "mxu", 2.0)
        prog.add("i", "ici", 8.0)
        result = simulate(prog)
        assert result.busy["mxu"] == pytest.approx(2.0)
        assert result.utilization("mxu") == pytest.approx(0.25)
        assert result.utilization("ici") == pytest.approx(1.0)

    def test_rejects_bad_inputs(self):
        prog = Program()
        with pytest.raises(ValueError, match="unknown resource"):
            prog.add("x", "gpu", 1.0)
        with pytest.raises(ValueError, match="negative"):
            prog.add("x", "mxu", -1.0)
        with pytest.raises(ValueError, match="unknown op"):
            prog.add("x", "mxu", 1.0, deps=(5,))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["mxu", "hbm", "ici"]),
                              st.floats(0, 10)), min_size=1, max_size=12),
           st.integers(0, 10**9))
    def test_property_makespan_bounds(self, ops, seed):
        """Makespan is at least the busiest resource and at most the sum."""
        import random

        rng = random.Random(seed)
        prog = Program()
        for i, (resource, duration) in enumerate(ops):
            deps = tuple(d for d in range(i) if rng.random() < 0.3)
            prog.add(f"op{i}", resource, duration, deps)
        result = simulate(prog)
        total = sum(d for _, d in ops)
        busiest = max(result.busy.values())
        assert busiest - 1e-9 <= result.makespan <= total + 1e-9


class TestBuilder:
    def spec(self, **kwargs):
        defaults = dict(config=PALM_540B_PADDED, plan=WS2D_BATCH,
                        torus=Torus3D(4, 4, 4), chip=TPU_V4, batch=256,
                        l_new=1, context_before=2048)
        defaults.update(kwargs)
        return BuildSpec(**defaults)

    def test_simulation_close_to_estimator_decode(self):
        spec = self.spec(batch=512)
        sim = simulate(build_forward_program(spec)).makespan
        est = InferenceEstimator(
            PALM_540B_PADDED, TPU_V4, spec.torus,
            mfu_params=PALM_540B.n_params).decode_step_cost(
                WS2D_BATCH, 512, 2048).time_s
        assert sim == pytest.approx(est, rel=0.15)

    def test_simulation_close_to_estimator_prefill(self):
        plan = LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH)
        spec = self.spec(plan=plan, batch=64, l_new=2048, context_before=0)
        sim = simulate(build_forward_program(spec)).makespan
        est = InferenceEstimator(
            PALM_540B_PADDED, TPU_V4, spec.torus,
            mfu_params=PALM_540B.n_params).prefill_cost(
                plan, 64, 2048).time_s
        # The simulator overlaps comm per stage (max); the estimator
        # exposes a fixed fraction — agreement within ~30% is expected.
        assert sim == pytest.approx(est, rel=0.3)

    def test_overlap_reduces_makespan(self):
        # Section 3.5: Looped CollectiveEinsum hides communication.
        on = simulate(build_forward_program(self.spec(overlap=True)))
        off = simulate(build_forward_program(self.spec(overlap=False)))
        assert on.makespan < off.makespan

    def test_overlap_gain_grows_with_comm_share(self):
        """1D weight-stationary communication is constant in chip count
        while compute shrinks (Section 3.2.1), so overlap buys more at
        higher chip counts."""
        plan_1d = LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD)

        def gain(torus):
            on = simulate(build_forward_program(self.spec(
                plan=plan_1d, torus=torus, batch=512,
                overlap=True))).makespan
            off = simulate(build_forward_program(self.spec(
                plan=plan_1d, torus=torus, batch=512,
                overlap=False))).makespan
            return off / on

        assert gain(Torus3D(4, 8, 8)) > gain(Torus3D(2, 2, 2))

    def test_int8_faster_at_small_batch(self):
        int8 = simulate(build_forward_program(
            self.spec(batch=8, weight_dtype_bytes=1))).makespan
        bf16 = simulate(build_forward_program(
            self.spec(batch=8, weight_dtype_bytes=2))).makespan
        assert int8 < bf16

    def test_op_count_scales_with_layers(self):
        small = build_forward_program(self.spec(
            config=tiny_test_config(n_layers=2, n_heads=16)))
        large = build_forward_program(self.spec(
            config=tiny_test_config(n_layers=4, n_heads=16)))
        assert len(large) > len(small)

    def test_ideal_efficiency_hits_compute_floor(self):
        spec = self.spec(batch=512, l_new=128, context_before=0,
                         efficiency=IDEAL,
                         plan=LayoutPlan(FfnLayoutKind.WG_XYZ,
                                         AttentionLayoutKind.BATCH))
        result = simulate(build_forward_program(spec))
        floor = (PALM_540B_PADDED.matmul_flops_per_token * 512 * 128
                 / (64 * TPU_V4.peak_flops))
        assert result.makespan >= floor * 0.95


class TestTrace:
    def test_chrome_trace_roundtrips_as_json(self):
        spec = TestBuilder().spec(config=tiny_test_config(n_heads=16))
        result = simulate(build_forward_program(spec))
        trace = to_chrome_trace(result)
        parsed = json.loads(json.dumps(trace))
        assert parsed["traceEvents"]
        names = {e.get("name") for e in parsed["traceEvents"]}
        assert any("in_proj" in (n or "") for n in names)

    def test_trace_spans_cover_makespan(self):
        spec = TestBuilder().spec(config=tiny_test_config(n_heads=16))
        result = simulate(build_forward_program(spec))
        trace = to_chrome_trace(result)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        last = max(e["ts"] + e["dur"] for e in spans)
        assert last == pytest.approx(result.makespan * 1e6)


class TestGenerationProgram:
    def test_prefill_plus_steps(self):
        from repro.simulator import build_generation_program

        spec = TestBuilder().spec(batch=64, l_new=128, context_before=0)
        prefill_only = simulate(build_forward_program(spec)).makespan
        full = simulate(build_generation_program(spec, 4)).makespan
        step = simulate(build_forward_program(
            TestBuilder().spec(batch=64, l_new=1,
                               context_before=128))).makespan
        assert full > prefill_only
        # Total ~ prefill + 4 steps (context grows slightly per step).
        assert full == pytest.approx(prefill_only + 4 * step, rel=0.05)

    def test_zero_steps_is_prefill(self):
        from repro.simulator import build_generation_program

        spec = TestBuilder().spec(batch=8, l_new=64)
        assert simulate(build_generation_program(spec, 0)).makespan == \
            pytest.approx(simulate(build_forward_program(spec)).makespan)

    def test_validation(self):
        from repro.simulator import build_generation_program

        with pytest.raises(ValueError):
            build_generation_program(TestBuilder().spec(), -1)
