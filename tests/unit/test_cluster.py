"""Unit tests for the cluster control-plane building blocks.

Admission control (token buckets, bounded priority queues, typed
rejections), circuit breakers, replica health/heartbeat/replanning, and
the externally-stepped :class:`GroupRun` (including live KV-cache
migration between replicas).  Cross-replica end-to-end behaviour lives
in ``tests/integration/test_chaos.py``.
"""

import numpy as np
import pytest

from repro.cluster import (
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    ClusterControlPlane,
    ClusterRequestStatus,
    ClusterSubmission,
    GroupRun,
    NoHealthyReplica,
    PriorityClass,
    QueueFull,
    RateLimited,
    Replica,
    ReplicaHealth,
    TokenBucket,
)
from repro.events import (
    ADMISSION_REJECTED,
    BREAKER_TRANSITION,
    REPLICA_HEALTH,
    REQUEST_ADMITTED,
    EventLog,
)
from repro.mesh.faults import ChipKill, FaultPlan, StragglerFault
from repro.model import ReferenceTransformer, init_weights, tiny_test_config
from repro.serving import Request, ResilientRequest, TwoPhaseServer

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)


def make_requests(n=4, length=6, n_new=5, seed=42):
    rng = np.random.default_rng(seed)
    return [Request(i, rng.integers(0, CFG.vocab_size, size=length), n_new)
            for i in range(n)]


class TestTokenBucket:
    def test_burst_then_rate(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)     # burst exhausted
        assert bucket.try_take(0.1)         # 0.1s at 10/s -> one token
        assert not bucket.try_take(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3)
        for _ in range(3):
            assert bucket.try_take(0.0)
        for _ in range(3):
            assert bucket.try_take(100.0)   # long idle refills to 3, not 10k
        assert not bucket.try_take(100.0)


class TestAdmissionController:
    def test_unknown_class_is_programming_error(self):
        controller = AdmissionController()
        with pytest.raises(ValueError, match="unknown priority class"):
            controller.submit("item", 0, 0.0, class_name="nope")

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate priority class"):
            AdmissionController((PriorityClass("a"), PriorityClass("a")))

    def test_rate_limit_raises_typed_error(self):
        log = EventLog()
        controller = AdmissionController(
            (PriorityClass("default", rate=1.0, burst=1),), event_log=log)
        controller.submit("a", 0, 0.0)
        with pytest.raises(RateLimited) as err:
            controller.submit("b", 1, 0.0)
        assert err.value.request_id == 1
        assert err.value.priority_class == "default"
        (event,) = log.of_kind(ADMISSION_REJECTED)
        assert event["error"] == "RateLimited"
        assert controller.rejected == {"RateLimited": 1}

    def test_queue_bound_raises_typed_error(self):
        controller = AdmissionController(
            (PriorityClass("default", rate=1e6, burst=1000,
                           queue_limit=2),))
        controller.submit("a", 0, 0.0)
        controller.submit("b", 1, 0.0)
        with pytest.raises(QueueFull):
            controller.submit("c", 2, 0.0)
        assert controller.backlog() == 2

    def test_admission_recorded(self):
        log = EventLog()
        controller = AdmissionController(event_log=log)
        controller.submit("a", 9, 0.5)
        (event,) = log.of_kind(REQUEST_ADMITTED)
        assert event["request_id"] == 9 and event["t_s"] == 0.5

    def test_strict_priority_dequeue_fifo_within_class(self):
        controller = AdmissionController((
            PriorityClass("batch", priority=1, rate=1e6, burst=1000),
            PriorityClass("interactive", priority=0, rate=1e6,
                          burst=1000),
        ))
        controller.submit("b1", 0, 0.0, class_name="batch")
        controller.submit("i1", 1, 0.0, class_name="interactive")
        controller.submit("b2", 2, 0.0, class_name="batch")
        controller.submit("i2", 3, 0.0, class_name="interactive")
        assert controller.next_batch(3) == ["i1", "i2", "b1"]
        assert controller.next_batch(3) == ["b2"]
        assert controller.backlog() == 0

    @pytest.mark.parametrize("kwargs", [
        dict(rate=0.0), dict(rate=-1.0), dict(burst=0),
        dict(queue_limit=0),
    ])
    def test_invalid_class_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PriorityClass("c", **kwargs)


class TestCircuitBreaker:
    def test_opens_on_consecutive_failures_only(self):
        breaker = CircuitBreaker("r0", failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)         # resets the streak
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.5)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(0.6)

    def test_half_open_probe_success_closes(self):
        log = EventLog()
        breaker = CircuitBreaker("r0", failure_threshold=1,
                                 cooldown_s=1.0, event_log=log)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.5)
        assert breaker.allow(1.0)           # cooldown elapsed -> probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(1.1)
        assert breaker.state is BreakerState.CLOSED
        assert [e["new"] for e in log.of_kind(BREAKER_TRANSITION)] == \
            ["open", "half_open", "closed"]

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker("r0", failure_threshold=3, cooldown_s=1.0)
        for i in range(3):
            breaker.record_failure(0.1 * i)
        assert breaker.allow(2.0)
        breaker.record_failure(2.1)         # probe failed: reopen at once
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(2.5)
        assert breaker.allow(3.2)           # new cooldown from reopen time

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker("r0", failure_threshold=0)


class TestReplica:
    def test_healthy_until_fault_clock_reaches_kill(self):
        log = EventLog()
        plan = FaultPlan(faults=(ChipKill(chip=(0, 1, 0), at_step=2,
                                          phase="decode"),))
        replica = Replica("r0", WEIGHTS, (2, 2, 2), fault_plan=plan,
                          event_log=log)
        assert replica.heartbeat(0.0) is ReplicaHealth.HEALTHY
        for _ in range(2):
            replica.advance("decode")
        assert replica.heartbeat(1.0) is ReplicaHealth.DEGRADED
        assert replica.mesh.num_chips == 4
        assert replica.scale == 2.0
        (event,) = log.of_kind(REPLICA_HEALTH)
        assert (event["old"], event["new"]) == ("healthy", "degraded")

    def test_straggler_degrades_then_heals(self):
        plan = FaultPlan(faults=(StragglerFault(
            chip=(0, 0, 1), at_step=1, until_step=3, phase="decode"),))
        replica = Replica("r0", WEIGHTS, (2, 2, 2), fault_plan=plan)
        replica.advance("decode")
        assert replica.heartbeat(0.0) is ReplicaHealth.DEGRADED
        assert replica.dispatchable
        for _ in range(2):
            replica.advance("decode")
        assert replica.heartbeat(1.0) is ReplicaHealth.HEALTHY

    def test_draining_not_dispatchable(self):
        replica = Replica("r0", WEIGHTS, (2, 2, 2))
        replica.set_health(ReplicaHealth.DRAINING, 0.0, "maintenance")
        assert not replica.dispatchable


class TestGroupRun:
    def _reference(self, requests):
        return {c.request_id: c for c in TwoPhaseServer(
            ReferenceTransformer(WEIGHTS), decode_batch=4).serve(requests)}

    def test_stepped_decode_matches_reference(self):
        requests = make_requests()
        replica = Replica("r0", WEIGHTS, (2, 2, 2), prompt_len_hint=6)
        run = GroupRun(replica, [ResilientRequest(r) for r in requests])
        elapsed = run.run_prefill()
        assert elapsed > 0
        while not run.done:
            run.decode_step()
        reference = self._reference(requests)
        for completion in run.completions():
            np.testing.assert_array_equal(
                completion.tokens,
                reference[completion.request_id].tokens)

    def test_migrate_mid_decode_preserves_tokens(self):
        requests = make_requests()
        source = Replica("r0", WEIGHTS, (2, 2, 2), prompt_len_hint=6)
        target = Replica("r1", WEIGHTS, (2, 2, 2), prompt_len_hint=6)
        run = GroupRun(source, [ResilientRequest(r) for r in requests])
        run.run_prefill()
        run.decode_step()
        moved = run.migrate_to(target)
        assert moved.replica is target
        assert moved.steps_done == run.steps_done
        while not moved.done:
            moved.decode_step()
        reference = self._reference(requests)
        for completion in moved.completions():
            np.testing.assert_array_equal(
                completion.tokens,
                reference[completion.request_id].tokens)

    def test_migrate_before_prefill_rejected(self):
        requests = make_requests()
        source = Replica("r0", WEIGHTS, (2, 2, 2))
        target = Replica("r1", WEIGHTS, (2, 2, 2))
        run = GroupRun(source, [ResilientRequest(r) for r in requests])
        with pytest.raises(ValueError, match="nothing to migrate"):
            run.migrate_to(target)

    def test_empty_group_rejected(self):
        replica = Replica("r0", WEIGHTS, (2, 2, 2))
        with pytest.raises(ValueError, match="empty request group"):
            GroupRun(replica, [])


class TestControlPlaneBasics:
    def test_needs_a_replica(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ClusterControlPlane(WEIGHTS, [])

    def test_duplicate_request_ids_rejected(self):
        plane = ClusterControlPlane(WEIGHTS, [(2, 2, 2)],
                                    prompt_len_hint=6)
        request = make_requests(1)[0]
        subs = [ClusterSubmission(request), ClusterSubmission(request)]
        with pytest.raises(ValueError, match="duplicate request id"):
            plane.serve(subs)

    def test_no_healthy_replica_fails_dispatch(self):
        plane = ClusterControlPlane(WEIGHTS, [(2, 2, 2)],
                                    prompt_len_hint=6)
        plane.replicas[0].set_health(ReplicaHealth.DEAD, 0.0, "test")
        with pytest.raises(NoHealthyReplica):
            plane._pick_replica(0.0, 0, "default")
        outcomes = plane.serve([ClusterSubmission(r)
                                for r in make_requests()])
        assert all(o.status is ClusterRequestStatus.FAILED
                   for o in outcomes)
        assert all(o.rejection == "NoHealthyReplica" for o in outcomes)

    def test_fault_free_serving_matches_reference(self):
        requests = make_requests(8)
        plane = ClusterControlPlane(WEIGHTS, [(2, 2, 2), (2, 2, 2)],
                                    prompt_len_hint=6)
        outcomes = plane.serve([ClusterSubmission(r, arrival_s=0.05 * i)
                                for i, r in enumerate(requests)])
        reference = {c.request_id: c for c in TwoPhaseServer(
            ReferenceTransformer(WEIGHTS), decode_batch=4).serve(requests)}
        assert all(o.ok for o in outcomes)
        for outcome in outcomes:
            np.testing.assert_array_equal(
                outcome.completion.tokens,
                reference[outcome.request_id].tokens)
        # Both replicas served work (least-busy dispatch spreads load).
        assert len({o.replica for o in outcomes}) == 2
