"""Tests for the pipeline-parallelism model."""

import pytest

from repro.hardware import A100_80GB, TPU_V4, Torus3D
from repro.model import MEGATRON_530B, PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator
from repro.perf.pipeline import (
    pipeline_decode_step_cost,
    pipeline_prefill_cost,
)

TP_PLAN = LayoutPlan(FfnLayoutKind.WS_1D, AttentionLayoutKind.HEAD)
STAGE_TORUS = Torus3D(1, 1, 8)


def prefill(stages, batch=32, microbatches=None, **kwargs):
    return pipeline_prefill_cost(
        MEGATRON_530B, A100_80GB, STAGE_TORUS, stages, batch, 128,
        TP_PLAN, microbatches=microbatches, **kwargs)


class TestPrefill:
    def test_single_stage_matches_plain_estimator(self):
        cost = pipeline_prefill_cost(MEGATRON_530B, A100_80GB,
                                     STAGE_TORUS, 1, 8, 128, TP_PLAN,
                                     microbatches=1)
        plain = InferenceEstimator(MEGATRON_530B, A100_80GB,
                                   STAGE_TORUS).prefill_cost(TP_PLAN, 8,
                                                             128)
        assert cost.total_s == pytest.approx(plain.time_s)
        assert cost.bubble_fraction == 0.0

    def test_bubble_fraction_formula(self):
        cost = prefill(stages=3, batch=16, microbatches=16)
        assert cost.bubble_fraction == pytest.approx(2 / 18)

    def test_more_microbatches_shrink_the_bubble(self):
        few = prefill(stages=3, batch=32, microbatches=2)
        many = prefill(stages=3, batch=32, microbatches=32)
        assert many.bubble_fraction < few.bubble_fraction

    def test_deep_pipeline_at_batch_one_is_mostly_bubble(self):
        cost = prefill(stages=5, batch=1, microbatches=1)
        assert cost.bubble_fraction == pytest.approx(4 / 5)

    def test_layer_divisibility_enforced(self):
        with pytest.raises(ValueError, match="not divisible"):
            prefill(stages=4)  # 105 layers % 4 != 0

    def test_validation(self):
        with pytest.raises(ValueError):
            prefill(stages=0)
        with pytest.raises(ValueError):
            prefill(stages=3, batch=4, microbatches=8)


class TestDecode:
    def test_stages_serialize(self):
        one = pipeline_decode_step_cost(MEGATRON_530B, A100_80GB,
                                        STAGE_TORUS, 1, 8, 128, TP_PLAN)
        three = pipeline_decode_step_cost(MEGATRON_530B, A100_80GB,
                                          STAGE_TORUS, 3, 8, 128, TP_PLAN)
        # Per-stage work shrinks ~3x but three stages run in series plus
        # transfers: decode latency cannot improve much.
        assert three.total_s > one.total_s * 0.9
        assert three.stage_time_s < one.stage_time_s

    def test_no_bubble_in_decode(self):
        cost = pipeline_decode_step_cost(MEGATRON_530B, A100_80GB,
                                         STAGE_TORUS, 3, 8, 128, TP_PLAN)
        assert cost.bubble_fraction == 0.0


class TestPaperNarrative:
    def test_ft_pp3_tp8_slower_than_tp32_at_small_batch(self):
        """Appendix D: at small batch PP3/TP8 (24 GPUs) trails TP32 —
        the pipeline's serial decode and bubble waste its extra chips."""
        tp32 = InferenceEstimator(MEGATRON_530B, A100_80GB,
                                  Torus3D(1, 1, 32))
        tp32_total = (tp32.prefill_cost(TP_PLAN, 2, 20).time_s
                      + tp32.generate_cost(TP_PLAN, 2, 20, 8).total_s)
        pp_pre = pipeline_prefill_cost(MEGATRON_530B, A100_80GB,
                                       STAGE_TORUS, 3, 2, 20, TP_PLAN,
                                       microbatches=2)
        pp_dec = pipeline_decode_step_cost(MEGATRON_530B, A100_80GB,
                                           STAGE_TORUS, 3, 2, 20, TP_PLAN)
        pp_total = pp_pre.total_s + 8 * pp_dec.total_s
        assert pp_total > tp32_total

    def test_tpu_2d_needs_no_pipeline(self):
        """The paper's 64-way 2D layout outperforms adding a pipeline
        dimension on the same chip count for decode latency."""
        flat = InferenceEstimator(
            PALM_540B_PADDED, TPU_V4, Torus3D(4, 4, 4)).decode_step_cost(
                LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
                64, 2048)
        piped = pipeline_decode_step_cost(
            PALM_540B_PADDED.replace(n_layers=118), TPU_V4,
            Torus3D(4, 4, 2), 2, 64, 2048,
            LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH))
        assert flat.time_s < piped.total_s
