"""Tests for the Section 3.1 partitioning notation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware import Mesh
from repro.sharding import ShardingError, ShardSpec, parse


MESH = Mesh(2, 4, 8)


class TestParse:
    def test_fully_sharded_last_dim(self):
        spec = parse("BLE_xyz")
        assert spec.dims == ("B", "L", "E")
        assert spec.axes == ((), (), ("x", "y", "z"))
        assert spec.partial_sum == ()

    def test_2d_weight_layout(self):
        spec = parse("E_x F_yz")
        assert spec.dims == ("E", "F")
        assert spec.axes == (("x",), ("y", "z"))

    def test_whitespace_is_optional(self):
        assert parse("E_xF_yz") == parse("E_x F_yz")

    def test_partial_sum_suffix(self):
        spec = parse("BLE_yz (partialsum-x)")
        assert spec.axes == ((), (), ("y", "z"))
        assert spec.partial_sum == ("x",)

    def test_partial_sum_multiple_axes(self):
        spec = parse("BLE (partialsum-yz)")
        assert spec.partial_sum == ("y", "z")

    def test_roundtrip_through_str(self):
        for text in ["BLE_xyz", "E_xF_yz", "BLE_yz (partialsum-x)",
                     "B_xLHQ", "BLHQ"]:
            spec = parse(text)
            assert parse(str(spec)) == spec

    def test_rejects_garbage(self):
        with pytest.raises(ShardingError):
            parse("lower")
        with pytest.raises(ShardingError):
            parse("")

    def test_rejects_duplicate_axis(self):
        with pytest.raises(ShardingError, match="more than once"):
            parse("B_xL_xE")

    def test_rejects_duplicate_dim(self):
        with pytest.raises(ShardingError, match="duplicate dim"):
            parse("BB")

    def test_rejects_axis_in_both_shard_and_partialsum(self):
        with pytest.raises(ShardingError, match="more than once"):
            parse("BLE_x (partialsum-x)")


class TestLocalShapes:
    def test_basic_division(self):
        spec = parse("BLE_xyz")
        assert spec.local_shape((8, 16, 64), MESH) == (8, 16, 1)

    def test_2d_split(self):
        spec = parse("E_x F_yz")
        assert spec.local_shape((32, 64), MESH) == (16, 2)

    def test_indivisible_raises(self):
        spec = parse("E_x F_yz")
        with pytest.raises(ShardingError, match="not divisible"):
            spec.local_shape((32, 33), MESH)

    def test_wrong_rank_raises(self):
        with pytest.raises(ShardingError, match="dims"):
            parse("BLE").local_shape((2, 3), MESH)

    def test_sharding_factor(self):
        spec = parse("E_x F_yz")
        assert spec.sharding_factor("E", MESH) == 2
        assert spec.sharding_factor("F", MESH) == 32

    def test_replication_factor(self):
        assert parse("BLE").replication_factor(MESH) == 64
        assert parse("BLE_xyz").replication_factor(MESH) == 1
        assert parse("BLE_x").replication_factor(MESH) == 32
        assert parse("BLE_yz (partialsum-x)").replication_factor(MESH) == 1

    def test_num_shards(self):
        assert parse("BLE_yz").num_shards(MESH) == 32


class TestAlgebra:
    def test_with_dim_axes(self):
        spec = parse("BLE_xyz").with_dim_axes("E", ("x",))
        assert spec == parse("BLE_x")

    def test_with_partial_sum(self):
        spec = parse("BLE").with_partial_sum(("x",))
        assert spec == parse("BLE (partialsum-x)")

    def test_validate_unknown_axis(self):
        spec = ShardSpec(("B",), (("q",),))
        with pytest.raises(ShardingError, match="not in mesh axes"):
            spec.validate(MESH)

    def test_axes_for_unknown_dim(self):
        with pytest.raises(ShardingError, match="not in"):
            parse("BLE").axes_for("Q")

    def test_replicated_constructor(self):
        spec = ShardSpec.replicated("BLE")
        assert spec == parse("BLE")


@st.composite
def specs(draw):
    n_dims = draw(st.integers(1, 4))
    dims = draw(st.permutations("BLEFHQD"))[:n_dims]
    axes_pool = list("xyz")
    assignment = [[] for _ in range(n_dims + 1)]  # last bucket = partial sum
    for axis in axes_pool:
        if draw(st.booleans()):
            assignment[draw(st.integers(0, n_dims))].append(axis)
    return ShardSpec(tuple(dims),
                     tuple(tuple(a) for a in assignment[:n_dims]),
                     tuple(assignment[n_dims]))


class TestProperties:
    @given(specs())
    def test_str_parse_roundtrip(self, spec):
        assert parse(str(spec)) == spec

    @given(specs())
    def test_shard_count_times_replication_is_mesh(self, spec):
        mesh = Mesh(2, 2, 2)
        total = (spec.num_shards(mesh) * spec.replication_factor(mesh)
                 * mesh.group_size(spec.partial_sum))
        assert total == mesh.num_chips

    @given(specs())
    def test_local_shape_covers_global(self, spec):
        mesh = Mesh(2, 2, 2)
        global_shape = tuple(8 for _ in spec.dims)
        local = spec.local_shape(global_shape, mesh)
        assert _prod(local) * spec.num_shards(mesh) == _prod(global_shape)


def _prod(values):
    result = 1
    for v in values:
        result *= v
    return result
