"""Capture v2: prefill programs, bucketed replay, fused windows, threads.

The v2 contract on top of ``test_step_capture.py``'s single-step replay:

* :meth:`StepCompiler.prefill_chunk` replays every chunk-length bucket
  of :func:`~repro.serving.chunked.chunked_prefill` bit-identically —
  logits *and* KV contents — on both backends, across prompts;
* the bucketed program cache pads shrinking batches onto one warm
  program (live rows bit-identical), bounds itself by LRU eviction, and
  counts hits/misses/evictions/explicit invalidations;
* :meth:`StepCompiler.decode_window` fuses a window of greedy decode
  steps, matches the eager loop token-for-token, clamps at the cache
  boundary, and falls back to single-step whenever a scheduled fault
  could fire inside the window (``REPRO_CAPTURE_FUSE`` sizes it);
* parallel replica stepping (``step_threads >= 1``) is an execution
  detail: a seeded chaos run produces the same report, event log and
  span stream as the serial path.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import ClusterControlPlane, run_scenario
from repro.events import EventLog
from repro.layouts import ShardedTransformer
from repro.mesh import BACKENDS, VirtualMesh
from repro.mesh.capture import (
    FUSE_ENV,
    StepCompiler,
    fuse_window_from_env,
)
from repro.mesh.faults import CollectiveFault, CollectiveTimeout, FaultPlan
from repro.model import init_weights, tiny_test_config
from repro.model.sampling import greedy
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.serving.chunked import chunked_prefill

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)
PROMPT = np.random.default_rng(5).integers(0, CFG.vocab_size, size=(8, 4))

WG_BATCH = LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH)


def fresh_model(backend="stacked", mesh_shape=(2, 2, 2)):
    mesh = VirtualMesh(mesh_shape, backend=backend)
    return ShardedTransformer(WEIGHTS, mesh, WG_BATCH)


def build(backend="stacked", steps=6):
    """A fresh (model, caches, next-token) triple after an eager prefill."""
    model = fresh_model(backend)
    logits, caches = model.prefill(PROMPT, PROMPT.shape[1] + steps)
    return model, caches, np.argmax(logits, -1)


def caches_equal(mesh, a_caches, b_caches):
    """KV fill and contents bit-identical, shard by shard."""
    for a, b in zip(a_caches, b_caches):
        if a.length != b.length:
            return False
        for x, y in ((a.k, b.k), (a.v, b.v)):
            if x.dtype == object or y.dtype == object:
                if not all(np.array_equal(x[c], y[c])
                           for c in mesh.devices()):
                    return False
            elif not np.array_equal(x, y):
                return False
    return True


class TestPrefillReplay:
    """Differential prefill replay, every chunk-length bucket."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_bucket_bit_identical(self, backend):
        # 10 tokens in chunks of 4 -> lengths (4, 4, 2): two buckets,
        # and the second length-4 chunk replays within the prompt.
        prompt = np.random.default_rng(11).integers(
            0, CFG.vocab_size, size=(4, 10))
        compiler = StepCompiler()
        eager_logits, eager_caches = chunked_prefill(
            fresh_model(backend), prompt, 4, 16)
        model = fresh_model(backend)
        logits, caches = chunked_prefill(model, prompt, 4, 16,
                                         compiler=compiler)
        assert logits.dtype == eager_logits.dtype
        assert np.array_equal(logits, eager_logits)
        assert caches_equal(model.mesh, eager_caches, caches)
        assert compiler.misses == 2 and compiler.captures == 2
        assert compiler.hits == 1 and compiler.replays == 1

    def test_second_prompt_replays_every_chunk(self):
        first = np.random.default_rng(3).integers(
            0, CFG.vocab_size, size=(4, 8))
        second = np.random.default_rng(4).integers(
            0, CFG.vocab_size, size=(4, 8))
        model = fresh_model()
        compiler = StepCompiler()
        chunked_prefill(model, first, 4, 12, compiler=compiler)
        assert compiler.captures == 1  # one length bucket
        hits_before = compiler.hits

        eager_logits, eager_caches = chunked_prefill(
            fresh_model(), second, 4, 12)
        logits, caches = chunked_prefill(model, second, 4, 12,
                                         compiler=compiler)
        # Both chunks of the new prompt hit the warm program: programs
        # survive across prompts on the same deployment.
        assert compiler.hits - hits_before == 2
        assert compiler.captures == 1
        assert np.array_equal(logits, eager_logits)
        assert caches_equal(model.mesh, eager_caches, caches)


class TestBucketedProgramCache:
    """Shape-bucketed signatures: hits, misses, eviction, padding."""

    def test_lru_eviction_bounds_the_cache(self):
        model = fresh_model()
        caches = model.new_cache(4, 16)
        compiler = StepCompiler(max_programs=2)
        rng = np.random.default_rng(9)
        for length in (2, 3, 4):  # three distinct chunk-length buckets
            chunk = rng.integers(0, CFG.vocab_size, size=(4, length))
            compiler.prefill_chunk(model, chunk, caches)
        assert compiler.captures == 3
        assert compiler.n_programs == 2
        assert compiler.evictions == 1
        # The evicted length-2 bucket is cold again: miss + re-capture.
        chunk = rng.integers(0, CFG.vocab_size, size=(4, 2))
        compiler.prefill_chunk(model, chunk, caches)
        assert compiler.misses == 4
        assert compiler.evictions == 2
        assert compiler.n_programs == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_padding_bit_identical(self, backend):
        """A shrunk batch pads up to the cache capacity and slices back."""
        eager_model, eager_caches, eager_tok = build(backend)
        model, caches, tok = build(backend)
        compiler = StepCompiler(warmup_steps=0, batch_bucket=8)
        live = 5
        # The compiler pads by repeating the last live row; the eager
        # twin decodes the full batch with the same repetition, so the
        # live rows see identical inputs and KV history.
        full = eager_tok.copy()
        full[live:] = full[live - 1]
        for _ in range(3):
            eager = eager_model.decode_step(full, eager_caches)
            got = compiler.decode_step(model, full[:live], caches)
            assert got.shape[0] == live
            assert np.array_equal(got, eager[:live])
            full = np.argmax(eager, -1)
            full[live:] = full[live - 1]
        # One program serves every step of the shrunk batch.
        assert compiler.captures == 1
        assert compiler.hits >= 1
        assert caches_equal(model.mesh, eager_caches, caches)

    def test_explicit_invalidate_counts(self):
        model, caches, tok = build()
        compiler = StepCompiler(warmup_steps=0)
        compiler.decode_step(model, tok, caches)
        assert compiler.n_programs == 1
        compiler.invalidate()
        assert compiler.n_programs == 0
        assert compiler.invalidations == 1
        assert compiler.stats()["invalidations"] == 1


class TestFusedWindow:
    """Fused multi-step decode: boundary, fault gate, env knob."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_window_matches_eager_greedy_loop(self, backend):
        eager_model, eager_caches, tok = build(backend, steps=6)
        model, caches, tok2 = build(backend, steps=6)
        assert np.array_equal(tok, tok2)
        compiler = StepCompiler(warmup_steps=0, fuse_window=4)

        expect, cur = [], tok
        for _ in range(6):
            cur = greedy(eager_model.decode_step(cur, eager_caches))
            expect.append(cur)

        first = compiler.decode_window(model, tok, caches)
        assert first.shape == (4, tok.shape[0])
        # Window boundary: only 2 positions of room remain, so the
        # window clamps rather than overflowing the cache.
        second = compiler.decode_window(model, first[-1], caches)
        assert second.shape == (2, tok.shape[0])
        for got, want in zip(list(first) + list(second), expect):
            assert np.array_equal(got, want)
        assert caches_equal(model.mesh, eager_caches, caches)
        assert compiler.captures == 2  # one program per window length

    def test_window_replay_hits_after_fill_reset(self):
        model, caches, tok = build(steps=8)
        compiler = StepCompiler(warmup_steps=0, fuse_window=4)
        base = caches[0].length
        first = compiler.decode_window(model, tok, caches)  # capture
        for cache in caches:
            cache.length = base
        again = compiler.decode_window(model, tok, caches)  # replay
        assert compiler.hits == 1 and compiler.replays == 1
        assert np.array_equal(first, again)

    def test_fault_inside_window_falls_to_single_step(self):
        model, caches, tok = build(steps=8)
        state = model.mesh.install_faults(FaultPlan((
            CollectiveFault(kind="timeout", at_step=2, phase="decode"),)))
        compiler = StepCompiler(warmup_steps=0, fuse_window=4)

        # The fault lands inside the first window: exactly one single
        # step runs (the caller loops), with the clock advanced once.
        out = compiler.decode_window(model, tok, caches,
                                     advance=lambda: state.advance("decode"))
        assert out.shape[0] == 1
        # The next single step hits the scheduled clock: the timeout
        # fires on the eager path exactly as without the compiler.
        with pytest.raises(CollectiveTimeout):
            compiler.decode_window(model, out[-1], caches,
                                   advance=lambda: state.advance("decode"))
        # The one-shot fault is spent; the fused path resumes whole.
        fused = compiler.decode_window(model, out[-1], caches,
                                       advance=lambda: state.advance("decode"))
        assert fused.shape[0] == 4
        assert state.quiescent()

    def test_fuse_window_env_knob(self, monkeypatch):
        monkeypatch.setenv(FUSE_ENV, "6")
        assert fuse_window_from_env() == 6
        assert StepCompiler().fuse_window == 6
        monkeypatch.setenv(FUSE_ENV, "not-a-number")
        assert fuse_window_from_env(default=3) == 3
        monkeypatch.delenv(FUSE_ENV)
        assert StepCompiler().fuse_window == 1  # default: no fusion
        assert StepCompiler(fuse_window=0).fuse_window == 1  # clamped


class TestParallelReplicaStepping:
    """Threaded stepping is an execution detail, not a behavior."""

    @pytest.mark.parametrize("scenario",
                             ["rolling-kill", "correlated-stragglers"])
    def test_threaded_run_identical_to_serial(self, scenario):
        logs, spans, reports = {}, {}, {}
        for threads in (0, 2):
            log = EventLog()
            report = run_scenario(scenario, backend="loop", seed=0,
                                  event_log=log, step_threads=threads)
            logs[threads] = [(e.kind, dict(e.data)) for e in log]
            spans[threads] = [(s.name, s.kind, s.start_s, s.end_s)
                              for s in report.spans]
            reports[threads] = dataclasses.replace(report, spans=[])
        assert logs[0] == logs[2]
        assert spans[0] == spans[2]
        assert reports[0] == reports[2]

    def test_negative_step_threads_rejected(self):
        with pytest.raises(ValueError, match="step_threads"):
            ClusterControlPlane(WEIGHTS, [(1, 1, 1)], step_threads=-1)
