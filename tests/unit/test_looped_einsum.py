"""Tests for Looped CollectiveEinsum (Section 3.5).

The fused forms must equal the unfused (collective, then einsum)
compositions exactly, take K-1 ring steps, and move the same per-chip
traffic the Appendix A.1 model assumes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    ShardedTensor,
    VirtualMesh,
    all_gather,
    reduce_scatter,
    sharded_einsum,
)
from repro.mesh.looped import all_gather_einsum, einsum_reduce_scatter
from repro.sharding import ShardingError

RNG = np.random.default_rng(3)


def megatron_inputs(mesh, b=4, l=2, e=16, f=24):
    """x: BLE sharded over (y); w_in: EF — the WS block's first matmul."""
    x = RNG.normal(size=(b, l, e))
    w = RNG.normal(size=(e, f))
    xt = ShardedTensor.from_global(mesh, x, "BLE_y")
    wt = ShardedTensor.from_global(mesh, w, "EF")
    return x, w, xt, wt


class TestAllGatherEinsum:
    @pytest.mark.parametrize("shape", [(1, 4, 1), (1, 2, 1), (2, 4, 2)])
    def test_matches_unfused(self, shape):
        mesh = VirtualMesh(shape)
        _, _, xt, wt = megatron_inputs(mesh)
        fused, _ = all_gather_einsum("ble,ef->blf", xt, wt, "y")
        unfused = sharded_einsum("ble,ef->blf",
                                 all_gather(xt, ("y",), "E"), wt)
        assert fused.spec == unfused.spec
        for coord in mesh.devices():
            # Per-rank accumulation order differs, so compare with a
            # float tolerance rather than bit equality.
            np.testing.assert_allclose(fused.shards[coord],
                                       unfused.shards[coord], rtol=1e-10)

    def test_matches_dense_math(self):
        mesh = VirtualMesh((1, 4, 1))
        x, w, xt, wt = megatron_inputs(mesh)
        fused, _ = all_gather_einsum("ble,ef->blf", xt, wt, "y")
        # Ring ranks accumulate chunks in different orders, so replicas
        # differ by float rounding (as on real hardware); skip the exact
        # replica check and compare values instead.
        np.testing.assert_allclose(
            fused.to_global(check_replication=False),
            np.einsum("ble,ef->blf", x, w), rtol=1e-10)

    def test_sharded_weight_output_dim(self):
        """Weights may stay sharded on their output dims (WS-2D style)."""
        mesh = VirtualMesh((1, 4, 2))
        x = RNG.normal(size=(4, 2, 16))
        w = RNG.normal(size=(16, 32))
        xt = ShardedTensor.from_global(mesh, x, "BLE_y")
        wt = ShardedTensor.from_global(mesh, w, "EF_z")
        fused, _ = all_gather_einsum("ble,ef->blf", xt, wt, "y")
        assert fused.spec.axes_for("F") == ("z",)
        np.testing.assert_allclose(
            fused.to_global(check_replication=False),
            np.einsum("ble,ef->blf", x, w))

    def test_multi_axis_sharded_contraction(self):
        """E sharded over (z, y): the loop gathers y, z stays sharded...
        which is illegal for the fused form — the weight would need its E
        sharded over z too.  Assert the clean error."""
        mesh = VirtualMesh((1, 2, 2))
        x = RNG.normal(size=(2, 2, 16))
        xt = ShardedTensor.from_global(mesh, x, "BLE_zy")
        wt = ShardedTensor.from_global(mesh, RNG.normal(size=(16, 8)),
                                       "EF")
        with pytest.raises(ShardingError):
            all_gather_einsum("ble,ef->blf", xt, wt, "z")

    def test_step_count_and_traffic(self):
        mesh = VirtualMesh((1, 4, 1))
        _, _, xt, wt = megatron_inputs(mesh)
        _, stats = all_gather_einsum("ble,ef->blf", xt, wt, "y")
        assert stats.steps == 3
        assert stats.bytes_sent_per_chip == 3 * xt.per_chip_bytes

    def test_requires_innermost_axis(self):
        mesh = VirtualMesh((2, 2, 1))
        x = RNG.normal(size=(2, 2, 16))
        xt = ShardedTensor.from_global(mesh, x, "BLE_xy")
        wt = ShardedTensor.from_global(mesh, RNG.normal(size=(16, 8)),
                                       "EF")
        with pytest.raises(ShardingError, match="innermost"):
            all_gather_einsum("ble,ef->blf", xt, wt, "x")

    def test_requires_single_contraction(self):
        mesh = VirtualMesh((1, 2, 1))
        xt = ShardedTensor.from_global(mesh, RNG.normal(size=(2, 4)),
                                       "BE_y")
        wt = ShardedTensor.from_global(mesh, RNG.normal(size=(2, 4)),
                                       "BE")
        with pytest.raises(ShardingError, match="exactly one"):
            all_gather_einsum("be,be->", xt, wt, "y")


class TestEinsumReduceScatter:
    def setup_tensors(self, mesh, scatter_from_weight=True):
        # Second WS matmul: h(BLF) x w_out(FE) -> BLE with F contracted.
        b, l, f, e = 4, 2, 16, 24
        h = RNG.normal(size=(b, l, f))
        w = RNG.normal(size=(f, e))
        ht = ShardedTensor.from_global(mesh, h, "BLF_y")
        wt = ShardedTensor.from_global(mesh, w, "F_yE")
        return h, w, ht, wt

    @pytest.mark.parametrize("shape", [(1, 4, 1), (1, 2, 1), (2, 4, 1)])
    def test_matches_unfused(self, shape):
        mesh = VirtualMesh(shape)
        _, _, ht, wt = self.setup_tensors(mesh)
        fused, _ = einsum_reduce_scatter("blf,fe->ble", ht, wt, "y", "E")
        unfused = reduce_scatter(sharded_einsum("blf,fe->ble", ht, wt),
                                 ("y",), "E")
        assert fused.spec == unfused.spec
        for coord in mesh.devices():
            np.testing.assert_allclose(fused.shards[coord],
                                       unfused.shards[coord], rtol=1e-10)

    def test_matches_dense_math(self):
        mesh = VirtualMesh((1, 4, 1))
        h, w, ht, wt = self.setup_tensors(mesh)
        fused, _ = einsum_reduce_scatter("blf,fe->ble", ht, wt, "y", "E")
        np.testing.assert_allclose(fused.to_global(),
                                   np.einsum("blf,fe->ble", h, w),
                                   rtol=1e-10)

    def test_scatter_into_lhs_dim(self):
        """Scattering into a dim owned by the activations (e.g. batch)."""
        mesh = VirtualMesh((1, 4, 1))
        h = RNG.normal(size=(8, 2, 16))
        w = RNG.normal(size=(16, 8))
        ht = ShardedTensor.from_global(mesh, h, "BLF_y")
        wt = ShardedTensor.from_global(mesh, w, "F_yE")
        fused, _ = einsum_reduce_scatter("blf,fe->ble", ht, wt, "y", "B")
        unfused = reduce_scatter(sharded_einsum("blf,fe->ble", ht, wt),
                                 ("y",), "B")
        assert fused.spec == unfused.spec
        np.testing.assert_allclose(fused.to_global(),
                                   unfused.to_global(), rtol=1e-10)

    def test_step_count_and_traffic(self):
        mesh = VirtualMesh((1, 4, 1))
        _, _, ht, wt = self.setup_tensors(mesh)
        fused, stats = einsum_reduce_scatter("blf,fe->ble", ht, wt, "y",
                                             "E")
        assert stats.steps == 3
        # Each step moves one output chunk = the final shard size.
        assert stats.bytes_sent_per_chip == 3 * fused.per_chip_bytes

    def test_validation(self):
        mesh = VirtualMesh((1, 4, 1))
        _, _, ht, wt = self.setup_tensors(mesh)
        with pytest.raises(ShardingError, match="not an output dim"):
            einsum_reduce_scatter("blf,fe->ble", ht, wt, "y", "F")
        unsharded = ShardedTensor.from_global(
            mesh, RNG.normal(size=(4, 2, 16)), "BLF")
        with pytest.raises(ShardingError, match="sharded over"):
            einsum_reduce_scatter("blf,fe->ble", unsharded, wt, "y", "E")


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.sampled_from([2, 4, 8]))
def test_property_fused_pipeline_matches_dense(seed, k):
    """AG-einsum -> nonlinearity -> einsum-RS == the dense computation
    (the full fused Megatron block dataflow)."""
    mesh = VirtualMesh((1, k, 1))
    rng = np.random.default_rng(seed)
    b, l, e, f = 2, 2, 8 * k, 8 * k
    x = rng.normal(size=(b, l, e))
    w_in = rng.normal(size=(e, f))
    w_out = rng.normal(size=(f, e))

    xt = ShardedTensor.from_global(mesh, x, "BLE_y")
    w_in_t = ShardedTensor.from_global(mesh, w_in, "EF_y")
    w_out_t = ShardedTensor.from_global(mesh, w_out, "F_yE")

    hidden, _ = all_gather_einsum("ble,ef->blf", xt, w_in_t, "y")
    hidden = hidden.map_shards(np.tanh)
    out, _ = einsum_reduce_scatter("blf,fe->ble", hidden, w_out_t, "y",
                                   "E")
    dense = np.tanh(np.einsum("ble,ef->blf", x, w_in)) @ w_out
    np.testing.assert_allclose(out.to_global(), dense, rtol=1e-9)
