"""Tests for model configs: published parameter counts and accounting rules."""

import pytest

from repro.model import (
    MEGATRON_530B,
    PALM_540B,
    PALM_540B_MULTIHEAD,
    PALM_540B_PADDED,
    PALM_62B,
    PALM_8B,
    AttentionKind,
    FfnKind,
    ModelConfig,
    get_model,
    tiny_test_config,
)


class TestPublishedParameterCounts:
    """The presets must reproduce the published model sizes."""

    def test_palm_540b(self):
        assert PALM_540B.n_params == pytest.approx(540e9, rel=0.01)

    def test_palm_62b(self):
        assert PALM_62B.n_params == pytest.approx(62.5e9, rel=0.01)

    def test_palm_8b(self):
        assert PALM_8B.n_params == pytest.approx(8.6e9, rel=0.05)

    def test_megatron_530b(self):
        assert MEGATRON_530B.n_params == pytest.approx(530e9, rel=0.01)

    def test_padding_adds_18b(self):
        # Section 4: padding 48 -> 64 heads adds ~18B parameters.
        added = PALM_540B_PADDED.n_params - PALM_540B.n_params
        assert added == pytest.approx(18e9, rel=0.05)

    def test_multihead_variant_attention_params_roughly_constant(self):
        # Section 4.2: d_head 256 -> 128 keeps attention params constant.
        mq = PALM_540B.attn_params_per_layer
        mh = PALM_540B_MULTIHEAD.attn_params_per_layer
        assert mh == pytest.approx(mq, rel=0.1)


class TestAccounting:
    def test_2n_flops_rule(self):
        cfg = tiny_test_config()
        assert cfg.matmul_flops_per_token == 2 * cfg.n_params

    def test_kv_cache_multiquery_vs_multihead(self):
        # Multiquery shrinks the KV cache by n_heads (Section 3.3).
        mq = tiny_test_config(attention=AttentionKind.MULTIQUERY)
        mh = tiny_test_config(attention=AttentionKind.MULTIHEAD)
        ratio = (mh.kv_cache_bytes_per_token()
                 / mq.kv_cache_bytes_per_token())
        assert ratio == mh.n_heads

    def test_paper_3tb_kv_cache_example(self):
        # Section 2.1: a 500B+ multihead model at batch 512, context 2048
        # has a ~3TB KV cache, ~3x its parameter bytes (the paper's
        # multihead variant uses d_head 128, Section 4.2).
        mh = PALM_540B_MULTIHEAD
        kv = mh.kv_cache_bytes(batch=512, context_len=2048)
        assert kv == pytest.approx(3e12, rel=0.3)
        assert kv / mh.weight_bytes(2) == pytest.approx(3.0, rel=0.3)

    def test_attention_flops_linear_in_context(self):
        cfg = tiny_test_config()
        assert cfg.attention_flops_per_token(
            2048) == 2 * cfg.attention_flops_per_token(1024)

    def test_weight_bytes_scale_with_dtype(self):
        cfg = tiny_test_config()
        assert cfg.weight_bytes(1) * 2 == cfg.weight_bytes(2)

    def test_ffn_matrix_count(self):
        assert tiny_test_config(ffn=FfnKind.SWIGLU).ffn_matrices == 3
        assert tiny_test_config(ffn=FfnKind.MLP).ffn_matrices == 2

    def test_n_kv_heads(self):
        assert tiny_test_config(
            attention=AttentionKind.MULTIQUERY).n_kv_heads == 1
        mh = tiny_test_config(attention=AttentionKind.MULTIHEAD)
        assert mh.n_kv_heads == mh.n_heads


class TestConfigApi:
    def test_get_model(self):
        assert get_model("palm-540b") is PALM_540B
        with pytest.raises(KeyError, match="unknown model"):
            get_model("gpt-5")

    def test_replace_makes_variant(self):
        eight = PALM_540B.replace(n_layers=8)
        assert eight.n_layers == 8
        assert PALM_540B.n_layers == 118

    def test_padding_cannot_shrink(self):
        with pytest.raises(ValueError, match="cannot reduce"):
            PALM_540B.with_padded_heads(32)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", n_layers=0, d_model=8, d_ff=8,
                        n_heads=1, d_head=8, vocab_size=10)

    def test_str_mentions_size(self):
        text = str(PALM_540B)
        assert "540" in text
        assert "multiquery" in text
