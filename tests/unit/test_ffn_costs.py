"""Tests for the closed-form FFN communication costs (Appendix A.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Torus3D
from repro.partitioning import FfnLayoutKind
from repro.partitioning.ffn_costs import (
    best_ws2d_split,
    ffn_volume,
    optimal_weight_gathered_n,
    optimal_ws2d_x,
    weight_gathered_min_volume,
    weight_gathered_volume,
    ws1d_volume,
    ws2d_min_volume,
    ws2d_volume,
)


class TestClosedForms:
    def test_ws1d_constant_in_chip_count(self):
        # Section 3.2.1: 1D comm is independent of n_chips.
        assert ws1d_volume(1000, 8192) == ws1d_volume(1000, 8192)
        assert ws1d_volume(1000, 8192) == 2 * 1000 * 8192

    def test_ws2d_paper_optimum_f_equals_4e(self):
        # With F = 4E: X* = 0.5 sqrt(n) and V = 8 tokens E / sqrt(n).
        n, e = 64, 1024
        f = 4 * e
        x = optimal_ws2d_x(n, e, f)
        assert x == pytest.approx(0.5 * math.sqrt(n))
        v = ws2d_volume(1.0, e, f, x, n / x)
        assert v == pytest.approx(8 * e / math.sqrt(n))
        assert v == pytest.approx(ws2d_min_volume(1.0, e, f, n))

    def test_ws2d_beats_ws1d_beyond_16_chips(self):
        # Section 3.2.2: 2D wins when sqrt(n) > F/E = 4, i.e. n > 16.
        e, f = 1024, 4096
        for n in (4, 16):
            assert ws2d_min_volume(1, e, f, n) >= ws1d_volume(1, e) * 0.99
        for n in (64, 256):
            assert ws2d_min_volume(1, e, f, n) < ws1d_volume(1, e)

    def test_weight_gathered_optimum(self):
        tokens, n, e, f = 1_000_000, 64, 1024, 4096
        n_star = optimal_weight_gathered_n(tokens, n, f)
        v_star = weight_gathered_volume(tokens, e, f, n, n_star)
        assert v_star == pytest.approx(
            weight_gathered_min_volume(tokens, e, f, n))
        # Perturbing N increases the volume.
        for other in (n_star / 2, n_star * 2):
            assert weight_gathered_volume(tokens, e, f, n, other) > v_star

    def test_weight_gathered_scales_with_sqrt_tokens(self):
        e, f, n = 1024, 4096, 64
        v1 = weight_gathered_min_volume(10_000, e, f, n)
        v4 = weight_gathered_min_volume(40_000, e, f, n)
        assert v4 == pytest.approx(2 * v1)

    def test_ws_scales_linearly_with_tokens(self):
        e, f, n = 1024, 4096, 64
        assert ws2d_min_volume(4000, e, f, n) == pytest.approx(
            4 * ws2d_min_volume(1000, e, f, n))


class TestTorusConstrained:
    def test_best_split_on_cube(self):
        # On 4x4x4 with F = 4E, the optimum X = 4 is achievable.
        split = best_ws2d_split(Torus3D(4, 4, 4), 16384, 65536)
        assert split.x_size == 4
        assert split.yz_size == 16

    def test_best_split_covers_chips(self):
        for shape in [(2, 2, 2), (1, 4, 8), (4, 4, 16)]:
            torus = Torus3D(*shape)
            split = best_ws2d_split(torus, 8192, 32768)
            assert split.n_chips == torus.num_chips

    def test_ffn_volume_crossover_with_batch(self):
        """Figure 3's qualitative shape: WS-2D wins at small token counts,
        progressively larger weight-gathered layouts win as tokens grow."""
        torus = Torus3D(4, 4, 4)
        e, f = 16384, 65536

        def winner(tokens):
            kinds = [FfnLayoutKind.WS_2D, FfnLayoutKind.WG_X,
                     FfnLayoutKind.WG_XY, FfnLayoutKind.WG_XYZ]
            return min(kinds, key=lambda k: ffn_volume(k, torus, tokens,
                                                       e, f))

        assert winner(1_000) is FfnLayoutKind.WS_2D
        assert winner(5_000_000) is FfnLayoutKind.WG_XYZ
        # The sequence of winners as tokens grows is monotone in N.
        order = [FfnLayoutKind.WS_2D, FfnLayoutKind.WG_X,
                 FfnLayoutKind.WG_XY, FfnLayoutKind.WG_XYZ]
        seen = []
        for tokens in [2 ** k for k in range(8, 24)]:
            w = winner(tokens)
            if not seen or seen[-1] != w:
                seen.append(w)
        assert seen == [k for k in order if k in seen]

    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from([(2, 2, 2), (4, 4, 4), (1, 4, 4)]),
           st.integers(6, 22))
    def test_volumes_positive_and_finite(self, shape, log_tokens):
        torus = Torus3D(*shape)
        for kind in FfnLayoutKind:
            v = ffn_volume(kind, torus, 2.0 ** log_tokens, 4096, 16384)
            assert v > 0
            assert math.isfinite(v)
