"""Unit tests for the trace-driven load generator."""

import numpy as np
import pytest

from repro.cluster.workload import (
    TRACES,
    BurstWindow,
    ClassMix,
    TraceSpec,
    generate_trace,
    peak_rate,
    rate_at,
)

BURSTY = TraceSpec(
    name="bursty-test",
    duration_s=2.0,
    base_rate_rps=10.0,
    diurnal_amplitude=0.5,
    diurnal_period_s=2.0,
    bursts=(BurstWindow(start_s=0.5, duration_s=0.5, multiplier=4.0),),
)


class TestRateCurve:
    def test_diurnal_sinusoid(self):
        spec = TraceSpec(name="t", base_rate_rps=10.0,
                         diurnal_amplitude=0.5, diurnal_period_s=4.0)
        assert rate_at(spec, 0.0) == pytest.approx(10.0)
        assert rate_at(spec, 1.0) == pytest.approx(15.0)  # peak
        assert rate_at(spec, 3.0) == pytest.approx(5.0)   # trough

    def test_burst_multiplies_inside_window_only(self):
        assert rate_at(BURSTY, 0.49) < rate_at(BURSTY, 0.51)
        inside = rate_at(BURSTY, 0.75)
        base = BURSTY.base_rate_rps * (
            1.0 + BURSTY.diurnal_amplitude
            * np.sin(2 * np.pi * 0.75 / BURSTY.diurnal_period_s))
        assert inside == pytest.approx(4.0 * base)
        # Window is half-open: [start, start + duration).
        assert BURSTY.bursts[0].covers(0.5)
        assert not BURSTY.bursts[0].covers(1.0)

    def test_peak_rate_bounds_rate_at(self):
        for spec in (BURSTY, *TRACES.values()):
            peak = peak_rate(spec)
            for t in np.linspace(0, spec.duration_s, 101):
                assert rate_at(spec, float(t)) <= peak + 1e-9


class TestGenerate:
    def test_pure_function_of_spec_and_seed(self):
        a = generate_trace(BURSTY, seed=3, vocab_size=64)
        b = generate_trace(BURSTY, seed=3, vocab_size=64)
        assert len(a) == len(b) > 0
        for x, y in zip(a, b):
            assert x.arrival_s == y.arrival_s
            assert x.priority_class == y.priority_class
            assert x.deadline_s == y.deadline_s
            assert x.request.max_new_tokens == y.request.max_new_tokens
            assert np.array_equal(x.request.prompt, y.request.prompt)

    def test_seed_changes_the_trace(self):
        a = generate_trace(BURSTY, seed=0, vocab_size=64)
        b = generate_trace(BURSTY, seed=1, vocab_size=64)
        assert [s.arrival_s for s in a] != [s.arrival_s for s in b]

    def test_arrivals_ordered_ids_sequential(self):
        subs = generate_trace(BURSTY, seed=0, vocab_size=64)
        arrivals = [s.arrival_s for s in subs]
        assert arrivals == sorted(arrivals)
        assert all(0 < t < BURSTY.duration_s for t in arrivals)
        assert [s.request.request_id for s in subs] == \
            list(range(len(subs)))

    def test_lengths_and_classes_respect_the_spec(self):
        subs = generate_trace(BURSTY, seed=7, vocab_size=32)
        class_by_name = {c.name: c for c in BURSTY.classes}
        for sub in subs:
            assert len(sub.request.prompt) in BURSTY.prompt_len_buckets
            assert BURSTY.output_min <= sub.request.max_new_tokens \
                <= BURSTY.output_max
            assert sub.request.prompt.min() >= 0
            assert sub.request.prompt.max() < 32
            cls = class_by_name[sub.priority_class]
            if cls.deadline_s is None:
                assert sub.deadline_s is None
            else:
                assert sub.deadline_s == pytest.approx(
                    sub.arrival_s + cls.deadline_s)

    def test_burst_densifies_arrivals(self):
        spec = TraceSpec(
            name="spike", duration_s=2.0, base_rate_rps=8.0,
            bursts=(BurstWindow(start_s=1.0, duration_s=0.5,
                                multiplier=8.0),))
        subs = generate_trace(spec, seed=0, vocab_size=64)
        in_burst = sum(1.0 <= s.arrival_s < 1.5 for s in subs)
        before = sum(0.0 <= s.arrival_s < 0.5 for s in subs)
        assert in_burst > 2 * before

    def test_class_mix_follows_weights(self):
        spec = TraceSpec(
            name="mix", duration_s=20.0, base_rate_rps=20.0,
            classes=(ClassMix("a", priority=0, weight=0.9),
                     ClassMix("b", priority=1, weight=0.1)))
        subs = generate_trace(spec, seed=0, vocab_size=64)
        frac_a = sum(s.priority_class == "a" for s in subs) / len(subs)
        assert 0.8 < frac_a < 0.97


class TestValidation:
    def test_registered_traces_are_well_formed(self):
        for name, spec in TRACES.items():
            assert spec.name == name
            assert spec.priority_classes()  # constructible

    @pytest.mark.parametrize("kwargs", [
        dict(duration_s=0.0),
        dict(base_rate_rps=-1.0),
        dict(diurnal_amplitude=1.0),
        dict(diurnal_period_s=0.0),
        dict(prompt_len_buckets=()),
        dict(prompt_len_buckets=(8, 4)),       # not sorted
        dict(prompt_len_buckets=(4, 4, 8)),    # not unique
        dict(output_min=0),
        dict(output_min=9, output_max=8),
        dict(output_zipf_a=1.0),
        dict(classes=()),
        dict(classes=(ClassMix("x"), ClassMix("x"))),
    ])
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TraceSpec(name="bad", **kwargs)

    def test_bad_burst_and_class(self):
        with pytest.raises(ValueError):
            BurstWindow(start_s=0.0, duration_s=0.0, multiplier=2.0)
        with pytest.raises(ValueError):
            BurstWindow(start_s=0.0, duration_s=1.0, multiplier=0.0)
        with pytest.raises(ValueError):
            ClassMix("x", weight=0.0)
        with pytest.raises(ValueError):
            generate_trace(BURSTY, seed=0, vocab_size=0)


SHARED = TraceSpec(
    name="shared-test",
    duration_s=3.0,
    base_rate_rps=12.0,
    prompt_len_buckets=(4, 8),
    system_prompt_pool=3,
    system_prompt_len=10,
    shared_prefix_fraction=0.8,
    prefix_zipf_a=1.5,
    session_fraction=0.3,
)


class TestSharedPrefix:
    def test_pure_function_of_spec_and_seed(self):
        a = generate_trace(SHARED, seed=7, vocab_size=32)
        b = generate_trace(SHARED, seed=7, vocab_size=32)
        assert len(a) == len(b) > 0
        for x, y in zip(a, b):
            assert x.arrival_s == y.arrival_s
            assert np.array_equal(x.request.prompt, y.request.prompt)

    def test_shared_arrivals_extend_pool_or_session_prompts(self):
        subs = generate_trace(SHARED, seed=0, vocab_size=32)
        buckets = set(SHARED.prompt_len_buckets)
        seen_prompts: list[np.ndarray] = []
        shared = 0
        for sub in subs:
            prompt = sub.request.prompt
            if len(prompt) in buckets:
                seen_prompts.append(prompt)
                continue  # fresh prompt, no prefix attached
            # Extended prompts are (base + bucket) long and repeat an
            # earlier prompt's span (a pool prompt or a session prefix).
            assert len(prompt) - SHARED.system_prompt_len in buckets \
                or any(len(prompt) - len(p) in buckets
                       and np.array_equal(prompt[:len(p)], p)
                       for p in seen_prompts)
            shared += 1
            seen_prompts.append(prompt)
        # The 0.8 share is per-arrival Bernoulli; demand a healthy lower
        # bound rather than the exact mean.
        assert shared >= len(subs) // 2

    def test_prefix_reuse_is_substantial(self):
        subs = generate_trace(SHARED, seed=1, vocab_size=32)
        prompts = [s.request.prompt for s in subs]
        with_prefix = sum(
            1 for p in prompts
            if len(p) not in SHARED.prompt_len_buckets)
        assert with_prefix / len(prompts) > 0.5

    def test_pool_disabled_is_unchanged_legacy_shape(self):
        spec = TraceSpec(name="plain", duration_s=2.0, base_rate_rps=10.0,
                         prompt_len_buckets=(4, 8))
        for sub in generate_trace(spec, seed=3, vocab_size=32):
            assert len(sub.request.prompt) in (4, 8)

    def test_chatbot_sessions_trace_registered(self):
        spec = TRACES["chatbot-sessions"]
        assert spec.system_prompt_pool > 0
        assert spec.shared_prefix_fraction > 0.5
        subs = generate_trace(spec, seed=0, vocab_size=32)
        assert len(subs) > 10

    @pytest.mark.parametrize("kwargs", [
        dict(system_prompt_pool=-1),
        dict(system_prompt_pool=2, system_prompt_len=0),
        dict(shared_prefix_fraction=1.5),
        dict(shared_prefix_fraction=-0.1),
        dict(session_fraction=2.0),
        dict(prefix_zipf_a=0.0),
    ])
    def test_bad_shared_prefix_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TraceSpec(name="bad", **kwargs)
