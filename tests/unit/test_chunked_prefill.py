"""Tests for incremental (chunked) prefill on both model backends."""

import numpy as np
import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.layouts import ShardedTransformer
from repro.mesh import VirtualMesh
from repro.model import (
    PALM_540B,
    PALM_540B_PADDED,
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator
from repro.serving.chunked import chunked_prefill, chunked_prefill_cost

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)
PROMPT = np.random.default_rng(0).integers(0, CFG.vocab_size, size=(8, 6))


class TestNumericalEquivalence:
    def test_reference_chunked_equals_single_pass(self):
        model = ReferenceTransformer(WEIGHTS)
        whole, _ = model.prefill(PROMPT, max_len=8)
        for chunk in (1, 2, 3, 4, 6, 7):
            chunked, _ = chunked_prefill(model, PROMPT, chunk, max_len=8)
            np.testing.assert_allclose(chunked, whole, rtol=1e-9,
                                       atol=1e-12)

    def test_sharded_chunked_equals_single_pass(self):
        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
        model = ShardedTransformer(WEIGHTS, VirtualMesh((2, 2, 2)), plan)
        whole, _ = model.prefill(PROMPT, max_len=8)
        chunked, _ = chunked_prefill(model, PROMPT, 2, max_len=8)
        np.testing.assert_allclose(chunked, whole, rtol=1e-9, atol=1e-12)

    def test_decode_continues_from_chunked_cache(self):
        model = ReferenceTransformer(WEIGHTS)
        whole_logits, whole_caches = model.prefill(PROMPT, max_len=8)
        chunk_logits, chunk_caches = chunked_prefill(model, PROMPT, 2, 8)
        token = np.argmax(whole_logits, -1)
        np.testing.assert_allclose(
            model.decode_step(token, chunk_caches),
            model.decode_step(token, whole_caches), rtol=1e-9)

    def test_validation(self):
        model = ReferenceTransformer(WEIGHTS)
        with pytest.raises(ValueError, match="chunk_size"):
            chunked_prefill(model, PROMPT, 0, 8)
        with pytest.raises(ValueError, match="max_len"):
            chunked_prefill(model, PROMPT, 2, 4)


class TestAnalyticalCost:
    def estimator(self):
        return InferenceEstimator(PALM_540B_PADDED, TPU_V4,
                                  Torus3D(4, 4, 4),
                                  mfu_params=PALM_540B.n_params)

    PLAN = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)

    def test_whole_prompt_is_one_chunk(self):
        est = self.estimator()
        total, costs = chunked_prefill_cost(est, self.PLAN, 4, 2048, 2048)
        assert len(costs) == 1
        assert total == pytest.approx(
            est.prefill_cost(self.PLAN, 4, 2048).time_s)

    def test_chunking_adds_overhead(self):
        est = self.estimator()
        one, _ = chunked_prefill_cost(est, self.PLAN, 4, 2048, 2048)
        many, costs = chunked_prefill_cost(est, self.PLAN, 4, 2048, 128)
        assert len(costs) == 16
        assert many > one

    def test_covers_all_tokens(self):
        est = self.estimator()
        _, costs = chunked_prefill_cost(est, self.PLAN, 4, 1000, 256)
        assert sum(c.tokens for c in costs) == 4 * 1000
        assert [c.tokens // 4 for c in costs] == [256, 256, 256, 232]

    def test_later_chunks_cost_more_attention(self):
        est = self.estimator()
        _, costs = chunked_prefill_cost(est, self.PLAN, 64, 2048, 512)
        kv_loads = [c.kv_load_s for c in costs]
        assert kv_loads == sorted(kv_loads)
        assert kv_loads[-1] > kv_loads[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunked_prefill_cost(self.estimator(), self.PLAN, 4, 100, 0)
