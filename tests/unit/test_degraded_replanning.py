"""Degraded-mesh replanning: sub-slices, plan re-selection, rebuilds."""

import numpy as np
import pytest

from repro.events import REPLANNED, EventLog
from repro.hardware.topology import Torus3D
from repro.mesh import VirtualMesh
from repro.mesh.virtual_mesh import BACKENDS
from repro.model import (
    ReferenceTransformer,
    init_weights,
    tiny_test_config,
)
from repro.partitioning import (
    SubSlice,
    healthy_subslices,
    largest_healthy_subslice,
    migrate_caches,
    plan_batch_group,
    replan_after_failure,
    select_degraded_plan,
)
from repro.partitioning.selector import Phase

CFG = tiny_test_config(n_layers=2, d_model=16, d_ff=32, n_heads=8,
                       d_head=8, vocab_size=32)
WEIGHTS = init_weights(CFG, seed=0)


class TestSubSlices:
    def test_single_dead_chip_cuts_slabs(self):
        boxes = healthy_subslices((2, 2, 2), [(0, 1, 0)])
        assert all(not b.contains((0, 1, 0)) for b in boxes)
        best = boxes[0]
        assert best.num_chips == 4  # half the mesh survives

    def test_largest_is_deterministic(self):
        a = largest_healthy_subslice((4, 4, 4), [(1, 2, 0)])
        b = largest_healthy_subslice((4, 4, 4), [(1, 2, 0)])
        assert a == b
        assert a.num_chips == 48  # cut the z=0 layer holding the chip

    def test_corner_chip_keeps_most(self):
        best = largest_healthy_subslice((4, 4, 4), [(0, 0, 0)])
        assert best.num_chips == 48  # cut one layer off one axis

    def test_dead_chip_outside_mesh_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            healthy_subslices((2, 2, 2), [(2, 0, 0)])

    def test_all_dead_gives_nothing(self):
        dead = [(x, y, z) for x in range(2) for y in range(2)
                for z in range(2)]
        with pytest.raises(ValueError, match="no healthy"):
            largest_healthy_subslice((2, 2, 2), dead)

    def test_to_local_translation(self):
        box = SubSlice(origin=(1, 0, 2), shape=(2, 2, 2))
        assert box.to_local((1, 0, 2)) == (0, 0, 0)
        assert box.to_local((2, 1, 3)) == (1, 1, 1)


class TestDegradedPlanSelection:
    def test_plans_validate_on_shrunken_torus(self):
        for shape in [(2, 1, 2), (1, 1, 2), (2, 2, 1), (1, 1, 1)]:
            torus = Torus3D(*shape)
            plan = select_degraded_plan(CFG, torus, Phase.DECODE,
                                        batch=4, tokens_per_seq=1)
            assert 4 % max(plan_batch_group(plan, torus), 1) == 0

    def test_batch_divisibility_is_enforced(self):
        torus = Torus3D(2, 2, 2)
        plan = select_degraded_plan(CFG, torus, Phase.DECODE, batch=4,
                                    tokens_per_seq=1)
        # batch 4 on 8 chips cannot use the 8-way batch-sharded layout.
        assert plan_batch_group(plan, torus) <= 4


@pytest.mark.parametrize("backend", BACKENDS)
class TestReplanAfterFailure:
    def test_rebuild_generates_identically(self, backend):
        log = EventLog()
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        deploy = replan_after_failure(WEIGHTS, mesh, [(0, 1, 0)],
                                      decode_batch=4, event_log=log)
        assert deploy.mesh.num_chips < mesh.num_chips
        assert not deploy.subslice.contains((0, 1, 0))
        assert deploy.prefill_model.weights is deploy.decode_model.weights

        rng = np.random.default_rng(3)
        prompts = rng.integers(0, CFG.vocab_size, size=(4, 5))
        want = ReferenceTransformer(WEIGHTS).generate(prompts, 4)
        got = deploy.decode_model.generate(prompts, 4)
        np.testing.assert_array_equal(got, want)

        replans = log.of_kind(REPLANNED)
        assert len(replans) == 1
        assert replans[0]["dead_chips"] == [(0, 1, 0)]
        assert replans[0]["new_shape"] == deploy.subslice.shape

    def test_cache_migration_continues_decode(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        healthy = replan_after_failure(WEIGHTS, mesh, [(1, 1, 1)],
                                       decode_batch=8)
        # Build caches on the full mesh, then move them to the sub-slice.
        from repro.layouts import ShardedTransformer
        from repro.partitioning import AttentionLayoutKind, FfnLayoutKind
        from repro.partitioning.plan import LayoutPlan

        full = ShardedTransformer(
            WEIGHTS, mesh,
            LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH))
        rng = np.random.default_rng(5)
        prompts = rng.integers(0, CFG.vocab_size, size=(8, 5))
        logits, caches = full.prefill(prompts, max_len=12)
        moved = migrate_caches(caches, full, healthy.decode_model)

        from repro.model.sampling import greedy
        current = greedy(logits)
        want_logits, _ = _reference_next(prompts, current)
        got_logits = healthy.decode_model.decode_step(current, moved)
        np.testing.assert_allclose(got_logits, want_logits, atol=1e-10)

    def test_no_dead_chips_rejected(self, backend):
        mesh = VirtualMesh((2, 2, 2), backend=backend)
        with pytest.raises(ValueError, match="at least one"):
            replan_after_failure(WEIGHTS, mesh, [], decode_batch=4)


def _reference_next(prompts, current):
    """Reference logits for the token after ``prompts + current``."""
    model = ReferenceTransformer(WEIGHTS)
    _, caches = model.prefill(prompts, max_len=12)
    return model.decode_step(current, caches), caches
