"""Tests for the request-level serving simulation."""

import numpy as np
import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator
from repro.serving.simulation import (
    ServerConfig,
    WorkloadSpec,
    batch_service_time,
    poisson_arrivals,
    simulate_serving,
)

WS2D_HEAD = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
WORKLOAD = WorkloadSpec(input_len=128, gen_len=16)


def estimator():
    return InferenceEstimator(PALM_62B, TPU_V4, Torus3D(2, 2, 4),
                              weight_dtype_bytes=1)


def config(max_batch=8, max_wait_s=0.0):
    return ServerConfig(max_batch=max_batch, max_wait_s=max_wait_s,
                        prefill_plan=WS2D_HEAD, decode_plan=WS2D_BATCH)


class TestArrivals:
    def test_seeded_and_sorted(self):
        a = poisson_arrivals(10, 100, seed=1)
        b = poisson_arrivals(10, 100, seed=1)
        assert a == b
        assert a == sorted(a)
        assert all(0 <= t < 100 for t in a)

    def test_rate_roughly_respected(self):
        arrivals = poisson_arrivals(20, 500, seed=0)
        assert len(arrivals) == pytest.approx(10_000, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 10)


class TestSimulation:
    def test_all_requests_served_in_order(self):
        arrivals = poisson_arrivals(2, 50, seed=3)
        report = simulate_serving(estimator(), config(), WORKLOAD,
                                  arrivals)
        assert report.completed == len(arrivals)
        finishes = [r.finish_s for r in report.records]
        assert finishes == sorted(finishes)
        for r in report.records:
            assert r.finish_s > r.start_s >= r.arrival_s

    def test_low_load_latency_near_service_time(self):
        solo = batch_service_time(estimator(), config(), WORKLOAD, 1)
        report = simulate_serving(estimator(), config(), WORKLOAD,
                                  [0.0, 100.0, 200.0])
        assert report.mean_latency_s == pytest.approx(solo, rel=0.05)

    def test_latency_grows_with_load(self):
        est = estimator()
        low = simulate_serving(est, config(), WORKLOAD,
                               poisson_arrivals(0.5, 200, seed=5))
        high = simulate_serving(est, config(), WORKLOAD,
                                poisson_arrivals(8, 200, seed=5))
        assert high.latency_percentile(95) > low.latency_percentile(95)
        assert high.mean_batch > low.mean_batch

    def test_larger_batches_raise_capacity(self):
        """Throughput capacity (requests per busy-second) improves with
        batch size — the paper's core batching economics."""
        est = estimator()
        per_request_time = {
            b: batch_service_time(est, config(), WORKLOAD, b) / b
            for b in (1, 8, 64)}
        assert per_request_time[64] < per_request_time[8] \
            < per_request_time[1]

    def test_deadline_policy_trades_latency_for_batching(self):
        est = estimator()
        arrivals = poisson_arrivals(4, 100, seed=7)
        eager = simulate_serving(est, config(max_wait_s=0.0), WORKLOAD,
                                 arrivals)
        patient = simulate_serving(est, config(max_wait_s=2.0), WORKLOAD,
                                   arrivals)
        assert patient.mean_batch >= eager.mean_batch
        assert patient.utilization <= eager.utilization + 1e-9

    def test_overload_queues_grow(self):
        """Offered load beyond capacity shows up as unbounded queueing."""
        est = estimator()
        solo = batch_service_time(est, config(max_batch=1), WORKLOAD, 1)
        overload_rate = 3.0 / solo  # 3x a batch-1 server's capacity
        report = simulate_serving(
            est, config(max_batch=1), WORKLOAD,
            poisson_arrivals(overload_rate, solo * 60, seed=9))
        early = report.records[: report.completed // 4]
        late = report.records[-report.completed // 4:]
        assert np.mean([r.queueing_s for r in late]) > \
            np.mean([r.queueing_s for r in early])

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_serving(estimator(), config(max_batch=0), WORKLOAD,
                             [0.0])

    def test_empty_arrivals(self):
        report = simulate_serving(estimator(), config(), WORKLOAD, [])
        assert report.completed == 0
        assert report.utilization == 0.0


class TestPaperScenario:
    def test_chatbot_fleet_meets_interactive_latency(self):
        """A 64-chip PaLM 540B server at moderate load keeps p95 within a
        few seconds per turn — the Section 1 chatbot scenario."""
        est = InferenceEstimator(PALM_540B_PADDED, TPU_V4,
                                 Torus3D(4, 4, 4), weight_dtype_bytes=1,
                                 mfu_params=PALM_540B.n_params)
        workload = WorkloadSpec(input_len=64, gen_len=64)
        cfg = ServerConfig(max_batch=64, max_wait_s=0.2,
                           prefill_plan=WS2D_HEAD,
                           decode_plan=WS2D_BATCH)
        report = simulate_serving(est, cfg, workload,
                                  poisson_arrivals(5, 120, seed=0))
        assert report.latency_percentile(95) < 8.0
        assert report.completed > 500
