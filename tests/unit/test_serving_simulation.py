"""Tests for the request-level serving simulation."""

import numpy as np
import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B, PALM_540B_PADDED, PALM_62B
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import InferenceEstimator
from repro.serving.simulation import (
    FaultModel,
    ServerConfig,
    WorkloadSpec,
    batch_service_time,
    poisson_arrivals,
    simulate_serving,
    simulate_serving_under_faults,
)

WS2D_HEAD = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
WORKLOAD = WorkloadSpec(input_len=128, gen_len=16)


def estimator():
    return InferenceEstimator(PALM_62B, TPU_V4, Torus3D(2, 2, 4),
                              weight_dtype_bytes=1)


def config(max_batch=8, max_wait_s=0.0):
    return ServerConfig(max_batch=max_batch, max_wait_s=max_wait_s,
                        prefill_plan=WS2D_HEAD, decode_plan=WS2D_BATCH)


class TestArrivals:
    def test_seeded_and_sorted(self):
        a = poisson_arrivals(10, 100, seed=1)
        b = poisson_arrivals(10, 100, seed=1)
        assert a == b
        assert a == sorted(a)
        assert all(0 <= t < 100 for t in a)

    def test_rate_roughly_respected(self):
        arrivals = poisson_arrivals(20, 500, seed=0)
        assert len(arrivals) == pytest.approx(10_000, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 10)


class TestSimulation:
    def test_all_requests_served_in_order(self):
        arrivals = poisson_arrivals(2, 50, seed=3)
        report = simulate_serving(estimator(), config(), WORKLOAD,
                                  arrivals)
        assert report.completed == len(arrivals)
        finishes = [r.finish_s for r in report.records]
        assert finishes == sorted(finishes)
        for r in report.records:
            assert r.finish_s > r.start_s >= r.arrival_s

    def test_low_load_latency_near_service_time(self):
        solo = batch_service_time(estimator(), config(), WORKLOAD, 1)
        report = simulate_serving(estimator(), config(), WORKLOAD,
                                  [0.0, 100.0, 200.0])
        assert report.mean_latency_s == pytest.approx(solo, rel=0.05)

    def test_latency_grows_with_load(self):
        est = estimator()
        low = simulate_serving(est, config(), WORKLOAD,
                               poisson_arrivals(0.5, 200, seed=5))
        high = simulate_serving(est, config(), WORKLOAD,
                                poisson_arrivals(8, 200, seed=5))
        assert high.latency_percentile(95) > low.latency_percentile(95)
        assert high.mean_batch > low.mean_batch

    def test_larger_batches_raise_capacity(self):
        """Throughput capacity (requests per busy-second) improves with
        batch size — the paper's core batching economics."""
        est = estimator()
        per_request_time = {
            b: batch_service_time(est, config(), WORKLOAD, b) / b
            for b in (1, 8, 64)}
        assert per_request_time[64] < per_request_time[8] \
            < per_request_time[1]

    def test_deadline_policy_trades_latency_for_batching(self):
        est = estimator()
        arrivals = poisson_arrivals(4, 100, seed=7)
        eager = simulate_serving(est, config(max_wait_s=0.0), WORKLOAD,
                                 arrivals)
        patient = simulate_serving(est, config(max_wait_s=2.0), WORKLOAD,
                                   arrivals)
        assert patient.mean_batch >= eager.mean_batch
        assert patient.utilization <= eager.utilization + 1e-9

    def test_overload_queues_grow(self):
        """Offered load beyond capacity shows up as unbounded queueing."""
        est = estimator()
        solo = batch_service_time(est, config(max_batch=1), WORKLOAD, 1)
        overload_rate = 3.0 / solo  # 3x a batch-1 server's capacity
        report = simulate_serving(
            est, config(max_batch=1), WORKLOAD,
            poisson_arrivals(overload_rate, solo * 60, seed=9))
        early = report.records[: report.completed // 4]
        late = report.records[-report.completed // 4:]
        assert np.mean([r.queueing_s for r in late]) > \
            np.mean([r.queueing_s for r in early])

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_serving(estimator(), config(max_batch=0), WORKLOAD,
                             [0.0])

    def test_empty_arrivals(self):
        report = simulate_serving(estimator(), config(), WORKLOAD, [])
        assert report.completed == 0
        assert report.utilization == 0.0


class TestPaperScenario:
    def test_chatbot_fleet_meets_interactive_latency(self):
        """A 64-chip PaLM 540B server at moderate load keeps p95 within a
        few seconds per turn — the Section 1 chatbot scenario."""
        est = InferenceEstimator(PALM_540B_PADDED, TPU_V4,
                                 Torus3D(4, 4, 4), weight_dtype_bytes=1,
                                 mfu_params=PALM_540B.n_params)
        workload = WorkloadSpec(input_len=64, gen_len=64)
        cfg = ServerConfig(max_batch=64, max_wait_s=0.2,
                           prefill_plan=WS2D_HEAD,
                           decode_plan=WS2D_BATCH)
        report = simulate_serving(est, cfg, workload,
                                  poisson_arrivals(5, 120, seed=0))
        assert report.latency_percentile(95) < 8.0
        assert report.completed > 500


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="mtbf"):
            FaultModel(mtbf_s=0.0)
        with pytest.raises(ValueError, match="degraded_factor"):
            FaultModel(mtbf_s=10.0, degraded_factor=0.5)


class TestFaultSimulation:
    def test_no_failures_matches_fault_free_baseline(self):
        arrivals = poisson_arrivals(2, 50, seed=3)
        report = simulate_serving_under_faults(
            estimator(), config(), WORKLOAD, arrivals,
            FaultModel(mtbf_s=1e12))
        baseline = simulate_serving(estimator(), config(), WORKLOAD,
                                    arrivals)
        assert report.failures == 0
        assert report.downtime_s == 0.0
        assert report.availability == 1.0
        assert report.completed == baseline.completed
        assert report.mean_latency_s == \
            pytest.approx(baseline.mean_latency_s)

    def test_failures_cost_availability_and_goodput(self):
        arrivals = poisson_arrivals(2, 100, seed=3)
        clean = simulate_serving_under_faults(
            estimator(), config(), WORKLOAD, arrivals,
            FaultModel(mtbf_s=1e12), deadline_s=10.0)
        faulty = simulate_serving_under_faults(
            estimator(), config(), WORKLOAD, arrivals,
            FaultModel(mtbf_s=15.0), deadline_s=10.0)
        assert faulty.failures > 0
        assert faulty.downtime_s > 0.0
        assert faulty.availability < 1.0
        assert faulty.retried_requests > 0
        assert faulty.goodput_rps < clean.goodput_rps

    def test_deadline_sheds_unservable_requests(self):
        arrivals = poisson_arrivals(4, 100, seed=7)
        report = simulate_serving_under_faults(
            estimator(), config(), WORKLOAD, arrivals,
            FaultModel(mtbf_s=10.0, replan_s=5.0, degraded_factor=3.0),
            deadline_s=3.0)
        assert report.shed_requests > 0
        assert report.completed + report.shed_requests + \
            report.dropped_requests == len(arrivals)
        assert report.met_deadline <= report.completed

    def test_retry_cap_drops_batches(self):
        # An MTBF far below the batch service time means every attempt
        # dies mid-flight until the retry budget runs out.
        solo = batch_service_time(estimator(), config(), WORKLOAD, 8)
        report = simulate_serving_under_faults(
            estimator(), config(), WORKLOAD,
            poisson_arrivals(2, 20, seed=1),
            FaultModel(mtbf_s=solo / 100, replan_s=0.01,
                       max_batch_retries=2))
        assert report.dropped_requests > 0

    def test_seeded_determinism(self):
        arrivals = poisson_arrivals(2, 60, seed=3)
        a = simulate_serving_under_faults(
            estimator(), config(), WORKLOAD, arrivals,
            FaultModel(mtbf_s=20.0, seed=4))
        b = simulate_serving_under_faults(
            estimator(), config(), WORKLOAD, arrivals,
            FaultModel(mtbf_s=20.0, seed=4))
        assert a.failures == b.failures
        assert a.downtime_s == b.downtime_s
        assert [r.finish_s for r in a.records] == \
            [r.finish_s for r in b.records]
