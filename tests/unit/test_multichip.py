"""Tests for the multi-chip SPMD simulation and straggler analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B_PADDED
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.simulator import (
    BuildSpec,
    Program,
    build_forward_program,
    simulate,
)
from repro.simulator.multichip import (
    simulate_spmd,
    straggler_slowdown,
)


def decode_program(n_layers=4):
    config = PALM_540B_PADDED.replace(n_layers=n_layers)
    spec = BuildSpec(config,
                     LayoutPlan(FfnLayoutKind.WS_2D,
                                AttentionLayoutKind.BATCH),
                     Torus3D(4, 4, 4), TPU_V4, batch=256, l_new=1,
                     context_before=2048)
    return build_forward_program(spec)


class TestSpmdSemantics:
    def test_homogeneous_matches_single_chip(self):
        prog = decode_program()
        single = simulate(prog).makespan
        spmd = simulate_spmd(prog, [1.0] * 8)
        assert spmd.makespan == pytest.approx(single, rel=1e-9)
        assert all(w == 0.0 for w in spmd.barrier_wait_s)

    def test_barriers_synchronize(self):
        prog = Program()
        a = prog.add("local", "mxu", 1.0)
        prog.add("collective", "ici", 0.5, (a,))
        result = simulate_spmd(prog, [1.0, 3.0])
        # The collective starts when the slow chip (3s) arrives.
        assert result.makespan == pytest.approx(3.5)
        assert result.barrier_wait_s[0] == pytest.approx(2.0)
        assert result.barrier_wait_s[1] == 0.0

    def test_local_only_program_no_coupling(self):
        prog = Program()
        prog.add("m", "mxu", 2.0)
        result = simulate_spmd(prog, [1.0, 2.0])
        assert result.per_chip_finish == (2.0, 4.0)

    def test_validation(self):
        prog = Program()
        prog.add("m", "mxu", 1.0)
        with pytest.raises(ValueError):
            simulate_spmd(prog, [])
        with pytest.raises(ValueError):
            simulate_spmd(prog, [1.0, 0.0])


class TestStragglers:
    def test_one_slow_chip_slows_everyone(self):
        prog = decode_program()
        slowdown = straggler_slowdown(prog, 8, 1.5)
        # Local work dominates this program, so the slice tracks the
        # straggler closely.
        assert 1.2 < slowdown <= 1.5 + 1e-9

    def test_slowdown_bounded_by_factor(self):
        prog = decode_program()
        for factor in (1.1, 2.0, 4.0):
            assert straggler_slowdown(prog, 8, factor) <= factor + 1e-9

    def test_no_straggler_no_slowdown(self):
        prog = decode_program()
        assert straggler_slowdown(prog, 8, 1.0) == pytest.approx(1.0)

    def test_monotone_in_factor(self):
        prog = decode_program(n_layers=2)
        values = [straggler_slowdown(prog, 4, f)
                  for f in (1.0, 1.3, 2.0, 3.0)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            straggler_slowdown(decode_program(2), 4, 0.5)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(1.0, 4.0), st.integers(2, 8))
    def test_property_bounds(self, factor, n_chips):
        prog = decode_program(n_layers=1)
        slowdown = straggler_slowdown(prog, n_chips, factor)
        assert 1.0 - 1e-9 <= slowdown <= factor + 1e-9
