"""Tests for the transient (peak activation/weight-buffer) memory model."""

import pytest

from repro.hardware import TPU_V4, Torus3D
from repro.model import PALM_540B_PADDED, tiny_test_config
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf.memory import (
    fits_with_transients,
    peak_activation_bytes,
)

TORUS = Torus3D(4, 4, 4)
WG_XYZ = LayoutPlan(FfnLayoutKind.WG_XYZ, AttentionLayoutKind.BATCH)
WS2D = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)


class TestSection35MemoryClaim:
    """'Some of the weight-gathered layouts would exhaust memory without
    these optimizations' — the looped-collective ablation on memory."""

    def test_wg_xyz_prefill_fits_only_with_looping(self):
        kwargs = dict(config=PALM_540B_PADDED, plan=WG_XYZ, torus=TORUS,
                      batch=512, context_len=2048, l_new=2048,
                      chip=TPU_V4)
        assert fits_with_transients(**kwargs, looped_collectives=True)
        assert not fits_with_transients(**kwargs,
                                        looped_collectives=False)

    def test_unlooped_buffer_is_full_layer_weights(self):
        peak = peak_activation_bytes(PALM_540B_PADDED, WG_XYZ, TORUS,
                                     512, 2048, looped_collectives=False)
        expected = PALM_540B_PADDED.params_per_layer * 2  # bf16, N = n
        assert peak.gathered_weights == pytest.approx(expected, rel=0.01)

    def test_looping_shrinks_buffer_by_gather_width(self):
        looped = peak_activation_bytes(PALM_540B_PADDED, WG_XYZ, TORUS,
                                       512, 2048,
                                       looped_collectives=True)
        unlooped = peak_activation_bytes(PALM_540B_PADDED, WG_XYZ, TORUS,
                                         512, 2048,
                                         looped_collectives=False)
        assert unlooped.gathered_weights == pytest.approx(
            looped.gathered_weights * 64 / 2)  # N=64, double-buffered


class TestGeneralProperties:
    def test_weight_stationary_has_no_weight_buffers(self):
        peak = peak_activation_bytes(PALM_540B_PADDED, WS2D, TORUS,
                                     512, 1)
        assert peak.gathered_weights == 0.0

    def test_scales_with_tokens(self):
        small = peak_activation_bytes(PALM_540B_PADDED, WS2D, TORUS,
                                      64, 1)
        large = peak_activation_bytes(PALM_540B_PADDED, WS2D, TORUS,
                                      512, 1)
        assert large.activations == pytest.approx(8 * small.activations)
        assert large.hidden == pytest.approx(8 * small.hidden)

    def test_narrower_gather_means_smaller_buffer(self):
        wg_x = LayoutPlan(FfnLayoutKind.WG_X, AttentionLayoutKind.BATCH)
        narrow = peak_activation_bytes(PALM_540B_PADDED, wg_x, TORUS,
                                       512, 2048,
                                       looped_collectives=False)
        wide = peak_activation_bytes(PALM_540B_PADDED, WG_XYZ, TORUS,
                                     512, 2048, looped_collectives=False)
        assert narrow.gathered_weights < wide.gathered_weights

    def test_decode_transients_are_tiny(self):
        peak = peak_activation_bytes(PALM_540B_PADDED, WS2D, TORUS,
                                     512, 1)
        assert peak.total < 0.5e9  # well under a gigabyte

    def test_tiny_config_fits_everywhere(self):
        cfg = tiny_test_config()
        assert fits_with_transients(cfg, WS2D, Torus3D(2, 2, 2), 8, 16,
                                    16, TPU_V4)
