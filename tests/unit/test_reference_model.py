"""Tests for the single-device reference Transformer.

The central invariant: incremental decoding with a KV cache produces the
same logits as one full forward pass over the whole sequence — this is what
makes prefill/decode a valid split of inference (Section 2.2).
"""

import numpy as np
import pytest

from repro.model import (
    AttentionKind,
    FfnKind,
    KVCache,
    ReferenceTransformer,
    attention,
    init_weights,
    make_sampler,
    tiny_test_config,
)


def build(attention_kind=AttentionKind.MULTIQUERY, ffn=FfnKind.SWIGLU,
          parallel=True, seed=0):
    cfg = tiny_test_config(attention=attention_kind, ffn=ffn,
                           parallel_block=parallel)
    return ReferenceTransformer(init_weights(cfg, seed=seed))


class TestKVCache:
    def test_append_and_view(self):
        cache = KVCache.empty(2, 8, 1, 4)
        k = np.ones((2, 3, 1, 4))
        cache.append(k, 2 * k)
        assert cache.length == 3
        kv, vv = cache.view()
        assert kv.shape == (2, 3, 1, 4)
        np.testing.assert_array_equal(vv, 2.0)

    def test_overflow_raises(self):
        cache = KVCache.empty(1, 2, 1, 4)
        with pytest.raises(ValueError, match="overflow"):
            cache.append(np.zeros((1, 3, 1, 4)), np.zeros((1, 3, 1, 4)))


class TestAttention:
    def test_causality(self):
        """Changing a later token never affects an earlier position."""
        rng = np.random.default_rng(0)
        q = rng.normal(size=(1, 4, 2, 8))
        k = rng.normal(size=(1, 4, 1, 8))
        v = rng.normal(size=(1, 4, 1, 8))
        base = attention(q, k, v, q_offset=0)
        k2, v2 = k.copy(), v.copy()
        k2[:, 3], v2[:, 3] = 99.0, 99.0
        pert = attention(q, k2, v2, q_offset=0)
        np.testing.assert_allclose(base[:, :3], pert[:, :3])

    def test_grouped_heads_match_explicit_repeat(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(2, 3, 4, 8))
        k = rng.normal(size=(2, 3, 1, 8))
        v = rng.normal(size=(2, 3, 1, 8))
        grouped = attention(q, k, v, 0)
        expanded = attention(q, np.repeat(k, 4, 2), np.repeat(v, 4, 2), 0)
        np.testing.assert_allclose(grouped, expanded)

    def test_indivisible_heads_rejected(self):
        q = np.zeros((1, 1, 3, 4))
        kv = np.zeros((1, 1, 2, 4))
        with pytest.raises(ValueError, match="divisible"):
            attention(q, kv, kv, 0)

    def test_uniform_values_passthrough(self):
        """If V is constant, output equals that constant (probs sum to 1)."""
        rng = np.random.default_rng(0)
        q = rng.normal(size=(1, 2, 2, 4))
        k = rng.normal(size=(1, 2, 1, 4))
        v = np.full((1, 2, 1, 4), 3.0)
        np.testing.assert_allclose(attention(q, k, v, 0), 3.0)


@pytest.mark.parametrize("attn_kind", list(AttentionKind))
@pytest.mark.parametrize("parallel", [True, False])
class TestDecodeEquivalence:
    def test_incremental_decode_matches_full_forward(self, attn_kind,
                                                     parallel):
        model = build(attn_kind, parallel=parallel)
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, model.config.vocab_size, size=(2, 6))

        full = model.forward(tokens, model.new_cache(2, 6))

        caches = model.new_cache(2, 6)
        model.forward(tokens[:, :3], caches)  # prefill 3 tokens
        for i in range(3, 6):                 # decode the rest one by one
            step_logits = model.forward(tokens[:, i:i + 1], caches)
        np.testing.assert_allclose(step_logits[:, 0], full[:, -1],
                                   rtol=1e-9, atol=1e-12)

    def test_prefill_plus_decode_api(self, attn_kind, parallel):
        model = build(attn_kind, parallel=parallel)
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, model.config.vocab_size, size=(1, 5))
        last, caches = model.prefill(tokens[:, :4], max_len=5)
        step = model.decode_step(tokens[:, 4], caches)
        full = model.forward(tokens, model.new_cache(1, 5))
        np.testing.assert_allclose(last, full[:, 3], rtol=1e-9)
        np.testing.assert_allclose(step, full[:, 4], rtol=1e-9)


class TestGenerate:
    def test_greedy_generation_deterministic(self):
        model = build()
        prompt = np.array([[1, 2, 3]])
        out1 = model.generate(prompt, n_steps=4)
        out2 = model.generate(prompt, n_steps=4)
        assert out1.shape == (1, 7)
        np.testing.assert_array_equal(out1, out2)
        np.testing.assert_array_equal(out1[:, :3], prompt)

    def test_sampled_generation_reproducible_with_seed(self):
        model = build()
        prompt = np.array([[5, 6]])
        sampler = make_sampler(temperature=1.0, top_k=8)
        a = model.generate(prompt, 5, sampler, np.random.default_rng(7))
        b = model.generate(prompt, 5, sampler, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_generation_matches_manual_loop(self):
        model = build()
        prompt = np.array([[1, 2, 3, 4]])
        generated = model.generate(prompt, n_steps=3)

        logits, caches = model.prefill(prompt, max_len=7)
        t1 = np.argmax(logits, -1)
        t2 = np.argmax(model.decode_step(t1, caches), -1)
        t3 = np.argmax(model.decode_step(t2, caches), -1)
        np.testing.assert_array_equal(generated[0, 4:], [t1[0], t2[0], t3[0]])

    def test_serial_and_parallel_blocks_differ(self):
        # Sanity: the two formulations are different functions.
        par = build(parallel=True)
        ser = build(parallel=False)
        tokens = np.array([[1, 2, 3]])
        a = par.forward(tokens, par.new_cache(1, 3))
        b = ser.forward(tokens, ser.new_cache(1, 3))
        assert not np.allclose(a, b)

    def test_weight_count_matches_config(self):
        for attn in AttentionKind:
            for ffn in FfnKind:
                cfg = tiny_test_config(attention=attn, ffn=ffn)
                weights = init_weights(cfg)
                assert weights.n_params == cfg.n_params
