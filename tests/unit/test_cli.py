"""Tests for the ``repro-inference`` command-line interface."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestEstimate:
    def test_decode_breakdown(self, capsys):
        out = run(capsys, "estimate", "--model", "palm-540b", "--chips",
                  "64", "--batch", "64", "--int8")
        assert "ms/token" in out
        assert "MFU" in out
        assert "int8 weights" in out
        assert "ffn=ws-2d" in out

    def test_prefill(self, capsys):
        out = run(capsys, "estimate", "--model", "palm-62b", "--phase",
                  "prefill", "--chips", "16", "--batch", "1",
                  "--seq-len", "512")
        assert "prefill of 512 tokens" in out

    def test_headline_number(self, capsys):
        """The CLI reproduces the paper's 28.5 ms/token headline."""
        out = run(capsys, "estimate", "--model", "palm-540b", "--chips",
                  "64", "--batch", "64", "--context", "2048", "--int8")
        ms = float(out.split("decode step at context 2048: ")[1]
                   .split(" ms/token")[0])
        assert 25 < ms < 33  # paper: 28.5


class TestPlan:
    def test_decode_recipe(self, capsys):
        out = run(capsys, "plan", "--model", "palm-540b", "--chips", "64",
                  "--batch", "512")
        assert "ffn=ws-2d, attention=batch" in out

    def test_prefill_large_batch_weight_gathered(self, capsys):
        out = run(capsys, "plan", "--model", "palm-540b", "--chips", "64",
                  "--batch", "512", "--phase", "prefill")
        assert "wg-" in out


class TestSweep:
    def test_frontier_table(self, capsys):
        out = run(capsys, "sweep", "--model", "palm-8b", "--phase",
                  "decode")
        assert "Pareto frontier" in out
        assert "chip-ms/tok" in out
        assert out.count("\n") > 5


class TestMaxContext:
    def test_table1_values(self, capsys):
        out = run(capsys, "max-context", "--model", "palm-540b",
                  "--batch", "128")
        assert "42,653" in out
        assert "666" in out

    def test_multihead_model_has_no_batch_layout(self, capsys):
        out = run(capsys, "max-context", "--model", "megatron-530b",
                  "--batch", "128")
        assert "n/a" in out


class TestSimulate:
    def test_simulation_and_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        out = run(capsys, "simulate", "--model", "palm-540b", "--batch",
                  "64", "--trace", str(trace))
        assert "simulated decode step" in out
        assert "mxu utilization" in out
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_no_overlap_is_slower(self, capsys):
        def makespan(*extra):
            out = run(capsys, "simulate", "--model", "palm-540b",
                      "--batch", "512", *extra)
            return float(out.split(": ")[1].split(" ms")[0])

        assert makespan("--no-overlap") > makespan()


class TestTrace:
    def test_palm540b_emits_perfetto_acceptable_trace(self, capsys,
                                                      tmp_path):
        """The acceptance-criteria invocation, validated structurally."""
        path = tmp_path / "palm.json"
        out = run(capsys, "trace", "--preset", "palm-540b", "--topology",
                  "4x4x4", "--out", str(path))
        assert "written to" in out
        trace = json.loads(path.read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X"}
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)
        xs = [e for e in events if e["ph"] == "X"]
        assert xs
        for event in xs:  # the complete-event fields Perfetto requires
            assert {"name", "ph", "pid", "tid", "ts", "dur"} <= set(event)
            assert event["dur"] > 0

    def test_executed_trace_of_tiny_preset(self, capsys, tmp_path):
        path = tmp_path / "tiny.json"
        out = run(capsys, "trace", "--preset", "tiny", "--topology",
                  "2x2x2", "--steps", "1", "--out", str(path))
        assert "executed" in out
        trace = json.loads(path.read_text())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert any(e.get("args", {}).get("phase") == "decode" for e in xs)
        assert any(e["cat"] == "collective" for e in xs)

    def test_trace_to_stdout(self, capsys):
        out = run(capsys, "trace", "--preset", "palm-8b", "--topology",
                  "2x2x2", "--batch", "32")
        assert json.loads(out)["traceEvents"]

    def test_tiny_has_no_analytical_model(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "--preset", "tiny", "--mode", "simulated"])

    def test_bad_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "--topology", "4x4"])


class TestMetrics:
    def test_phase_and_layer_tables(self, capsys):
        out = run(capsys, "metrics", "--topology", "2x2x2", "--steps",
                  "1")
        assert "Per-phase mesh metrics" in out
        assert "prefill" in out and "decode" in out
        assert "Per-layer mesh metrics" in out
        assert "all_gather" in out

    def test_crosscheck_table(self, capsys):
        out = run(capsys, "metrics", "--topology", "2x2x2", "--steps",
                  "1", "--crosscheck")
        assert "| layout | backend | phase |" in out
        assert "ws-1d/head" in out and "wg-xy/batch" in out
        assert "stacked" in out
        assert "| ok |" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


class TestServe:
    def test_queueing_report(self, capsys):
        out = run(capsys, "serve", "--model", "palm-62b", "--chips", "16",
                  "--rate", "2", "--duration", "40")
        assert "p95 latency" in out
        assert "utilization" in out


class TestCalibrate:
    def test_report(self, capsys):
        out = run(capsys, "calibrate")
        assert "ll-decode" in out
        assert "objective" in out


class TestDisaggregate:
    def test_pipeline_sizing(self, capsys):
        out = run(capsys, "disaggregate", "--model", "palm-540b",
                  "--int8")
        assert "prefill replicas per decode server" in out
        assert "pipeline throughput" in out


class TestChaos:
    def test_single_scenario_report(self, capsys):
        out = run(capsys, "chaos", "--scenario", "rolling-kill")
        assert "scenario rolling-kill" in out
        assert "OK" in out
        assert "availability" in out
        assert "bit-identical to reference: yes" in out

    def test_all_scenarios_both_backends(self, capsys):
        out = run(capsys, "chaos", "--backend", "both")
        for name in ("rolling-kill", "planned-drain", "overload-burst",
                     "correlated-stragglers", "breaker-flap"):
            assert f"scenario {name}" in out
        assert "backend=loop" in out and "backend=stacked" in out
        assert "VIOLATED" not in out

    def test_trace_export(self, capsys, tmp_path):
        path = tmp_path / "chaos.json"
        out = run(capsys, "chaos", "--scenario", "rolling-kill",
                  "--trace", str(path))
        assert "written to" in out
        trace = json.loads(path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert any(n.startswith("group") for n in names)

    def test_cluster_trace_mode(self, capsys):
        out = run(capsys, "trace", "--mode", "cluster", "--scenario",
                  "breaker-flap", "--topology", "2x2x2")
        trace = json.loads(out)
        assert trace["traceEvents"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--scenario", "nope"])


class TestFaultSim:
    def test_availability_report(self, capsys):
        out = run(capsys, "fault-sim", "--model", "palm-62b", "--chips",
                  "16", "--rate", "2", "--duration", "60", "--mtbf",
                  "30")
        assert "failures" in out
        assert "availability" in out
        assert "goodput" in out

    def test_huge_mtbf_is_fault_free(self, capsys):
        out = run(capsys, "fault-sim", "--model", "palm-62b", "--chips",
                  "16", "--rate", "2", "--duration", "40", "--mtbf",
                  "1e12")
        assert int(out.split("failures")[1].split()[0]) == 0
        assert "availability 100.0%" in out
