"""Query-helper coverage for :class:`repro.events.EventLog`."""

import pytest

from repro.events import (
    FAULT_DETECTED,
    REPLANNED,
    REQUEST_RETRIED,
    Event,
    EventLog,
)


@pytest.fixture
def log():
    log = EventLog()
    log.record(FAULT_DETECTED, chip=(0, 1, 0), op="all_gather")
    log.record(REPLANNED, plan="2x1x2")
    log.record(REQUEST_RETRIED, request_id=3)
    log.record(REQUEST_RETRIED, request_id=5)
    return log


class TestEvent:
    def test_getitem_and_get(self):
        event = Event(kind="k", seq=0, data={"a": 1})
        assert event["a"] == 1
        assert event.get("a") == 1
        assert event.get("missing", "fallback") == "fallback"
        with pytest.raises(KeyError):
            event["missing"]

    def test_seq_is_append_order(self, log):
        assert [e.seq for e in log] == [0, 1, 2, 3]


class TestQueries:
    def test_of_kind(self, log):
        retried = log.of_kind(REQUEST_RETRIED)
        assert [e["request_id"] for e in retried] == [3, 5]
        assert log.of_kind("nonexistent") == []

    def test_query_by_kind_and_predicate(self, log):
        out = log.query(REQUEST_RETRIED,
                        where=lambda e: e["request_id"] > 4)
        assert [e["request_id"] for e in out] == [5]

    def test_query_predicate_only(self, log):
        out = log.query(where=lambda e: "chip" in e.data)
        assert [e.kind for e in out] == [FAULT_DETECTED]

    def test_query_no_filters_copies(self, log):
        out = log.query()
        assert out == log.events
        out.append("sentinel")
        assert len(log) == 4  # the returned list is a copy

    def test_kinds_timeline(self, log):
        assert log.kinds() == [FAULT_DETECTED, REPLANNED,
                               REQUEST_RETRIED, REQUEST_RETRIED]

    def test_assert_sequence_in_order(self, log):
        log.assert_sequence(FAULT_DETECTED, REPLANNED, REQUEST_RETRIED)
        log.assert_sequence(FAULT_DETECTED, REQUEST_RETRIED)

    def test_assert_sequence_rejects_wrong_order(self, log):
        with pytest.raises(AssertionError, match="not found in order"):
            log.assert_sequence(REPLANNED, FAULT_DETECTED)

    def test_assert_sequence_counts_repeats(self, log):
        log.assert_sequence(REQUEST_RETRIED, REQUEST_RETRIED)
        with pytest.raises(AssertionError):
            log.assert_sequence(REQUEST_RETRIED, REQUEST_RETRIED,
                                REQUEST_RETRIED)

    def test_len_and_record_returns_event(self):
        log = EventLog()
        event = log.record("custom", value=1)
        assert len(log) == 1
        assert event.kind == "custom" and event["value"] == 1
