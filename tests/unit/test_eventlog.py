"""Query-helper coverage for :class:`repro.events.EventLog`."""

import pytest

from repro.events import (
    FAULT_DETECTED,
    REPLANNED,
    REQUEST_RETRIED,
    Event,
    EventLog,
)


@pytest.fixture
def log():
    log = EventLog()
    log.record(FAULT_DETECTED, chip=(0, 1, 0), op="all_gather")
    log.record(REPLANNED, plan="2x1x2")
    log.record(REQUEST_RETRIED, request_id=3)
    log.record(REQUEST_RETRIED, request_id=5)
    return log


class TestEvent:
    def test_getitem_and_get(self):
        event = Event(kind="k", seq=0, data={"a": 1})
        assert event["a"] == 1
        assert event.get("a") == 1
        assert event.get("missing", "fallback") == "fallback"
        with pytest.raises(KeyError):
            event["missing"]

    def test_seq_is_append_order(self, log):
        assert [e.seq for e in log] == [0, 1, 2, 3]


class TestQueries:
    def test_of_kind(self, log):
        retried = log.of_kind(REQUEST_RETRIED)
        assert [e["request_id"] for e in retried] == [3, 5]
        assert log.of_kind("nonexistent") == []

    def test_query_by_kind_and_predicate(self, log):
        out = log.query(REQUEST_RETRIED,
                        where=lambda e: e["request_id"] > 4)
        assert [e["request_id"] for e in out] == [5]

    def test_query_predicate_only(self, log):
        out = log.query(where=lambda e: "chip" in e.data)
        assert [e.kind for e in out] == [FAULT_DETECTED]

    def test_query_no_filters_copies(self, log):
        out = log.query()
        assert out == log.events
        out.append("sentinel")
        assert len(log) == 4  # the returned list is a copy

    def test_kinds_timeline(self, log):
        assert log.kinds() == [FAULT_DETECTED, REPLANNED,
                               REQUEST_RETRIED, REQUEST_RETRIED]

    def test_assert_sequence_in_order(self, log):
        log.assert_sequence(FAULT_DETECTED, REPLANNED, REQUEST_RETRIED)
        log.assert_sequence(FAULT_DETECTED, REQUEST_RETRIED)

    def test_assert_sequence_rejects_wrong_order(self, log):
        with pytest.raises(AssertionError, match="not found in order"):
            log.assert_sequence(REPLANNED, FAULT_DETECTED)

    def test_assert_sequence_counts_repeats(self, log):
        log.assert_sequence(REQUEST_RETRIED, REQUEST_RETRIED)
        with pytest.raises(AssertionError):
            log.assert_sequence(REQUEST_RETRIED, REQUEST_RETRIED,
                                REQUEST_RETRIED)

    def test_len_and_record_returns_event(self):
        log = EventLog()
        event = log.record("custom", value=1)
        assert len(log) == 1
        assert event.kind == "custom" and event["value"] == 1


class TestRingBuffer:
    def test_unbounded_by_default(self):
        log = EventLog()
        for i in range(100):
            log.record("k", i=i)
        assert len(log) == 100 and log.dropped == 0

    def test_bound_drops_oldest(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.record("k", i=i)
        assert len(log) == 3
        assert [e["i"] for e in log] == [2, 3, 4]
        assert log.dropped == 2

    def test_seq_keeps_counting_past_drops(self):
        log = EventLog(max_events=2)
        for i in range(5):
            log.record("k", i=i)
        # The surviving events carry their true lifetime emission index.
        assert [e.seq for e in log] == [3, 4]

    def test_queries_see_only_retained_events(self):
        log = EventLog(max_events=2)
        log.record(FAULT_DETECTED)
        log.record(REPLANNED)
        log.record(REQUEST_RETRIED, request_id=1)
        assert log.kinds() == [REPLANNED, REQUEST_RETRIED]
        assert log.of_kind(FAULT_DETECTED) == []
        with pytest.raises(AssertionError):
            log.assert_sequence(FAULT_DETECTED, REPLANNED)

    def test_bound_of_one(self):
        log = EventLog(max_events=1)
        log.record("a")
        log.record("b")
        assert log.kinds() == ["b"] and log.dropped == 1

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_invalid_bound_rejected(self, bad):
        with pytest.raises(ValueError, match="max_events must be >= 1"):
            EventLog(max_events=bad)
