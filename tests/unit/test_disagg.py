"""Disaggregated prefill/decode serving: pools, KV handoff, autoscaler.

Covers the cross-pool handoff contract (typed events, A.1-priced
transfer, overlap scheduling), the degrade paths (no decode target,
migration refused, draining target, mid-handoff chip kill), the
collapse-to-colocated brownout rung, pool-aware scaling, and the
invariants everything in ``repro.cluster`` promises: bit-identical
completions, zero drops, capture programs surviving handoffs, and
seed determinism.
"""

import numpy as np
import pytest

from repro.cluster.chaos import (
    CHAOS_CONFIG,
    NEW_TOKENS,
    PROMPT_LEN,
    SCENARIOS,
    reference_completions,
    run_scenario,
)
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterPolicy,
    ClusterRequestStatus,
    ClusterSubmission,
    FleetConfigError,
)
from repro.cluster.disagg import (
    DISAGG_BROWNOUT_LADDER,
    DisaggAutoscaler,
    DisaggAutoscalerPolicy,
    DisaggControlPlane,
    DisaggPolicy,
    PoolPartition,
    PoolSpec,
    default_pools,
    handoff_transfer_s,
)
from repro.cluster.replica import ReplicaHealth
from repro.mesh.faults import CollectiveFault, FaultPlan
from repro.model import init_weights
from repro.serving.engine import Request

WEIGHTS = init_weights(CHAOS_CONFIG, seed=0)
SHAPE = (2, 2, 2)


def make_submissions(n, *, prompt_len=PROMPT_LEN, spacing_s=0.01,
                     start_s=0.0, first_id=0, seed=0):
    rng = np.random.default_rng(seed)
    subs = []
    for i in range(n):
        prompt = rng.integers(0, CHAOS_CONFIG.vocab_size, size=prompt_len)
        subs.append(ClusterSubmission(
            Request(first_id + i, prompt, NEW_TOKENS),
            arrival_s=start_s + i * spacing_s))
    return subs


def make_plane(*, prefill=1, decode=1, policy=None, **kwargs):
    pools = default_pools([SHAPE] * prefill, [SHAPE] * decode)
    return DisaggControlPlane(WEIGHTS, pools, decode_batch=4,
                              policy=policy, **kwargs)


def completed(outcomes):
    return [o for o in outcomes
            if o.status is ClusterRequestStatus.COMPLETED]


class TestHandoffTransfer:
    def test_a1_link_formula(self):
        policy = DisaggPolicy(link_bandwidth=1e9, link_alpha_s=1e-6)
        assert handoff_transfer_s(1e9, policy) == \
            pytest.approx(1.0 + 1e-6)

    def test_alpha_floor_for_tiny_transfers(self):
        policy = DisaggPolicy()
        assert handoff_transfer_s(0, policy) == \
            pytest.approx(policy.link_alpha_s)

    def test_monotone_in_bytes(self):
        policy = DisaggPolicy()
        assert handoff_transfer_s(2048, policy) > \
            handoff_transfer_s(1024, policy)


class TestPoolSpec:
    def test_default_pools_pick_paper_profiles(self):
        prefill, decode = default_pools([SHAPE], [SHAPE, SHAPE])
        assert prefill.prefill_profile == "weight-stationary"
        assert decode.decode_profile == "weight-gathered"
        assert len(decode.shapes) == 2

    def test_rejects_unknown_pool_name(self):
        with pytest.raises(ValueError, match="pool name"):
            PoolSpec("both", (SHAPE,))

    def test_rejects_empty_shapes(self):
        with pytest.raises(ValueError, match="at least one"):
            PoolSpec("prefill", ())

    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="profile"):
            PoolSpec("decode", (SHAPE,), decode_profile="fastest")

    def test_plane_requires_both_pools(self):
        with pytest.raises(ValueError, match="exactly one"):
            DisaggControlPlane(WEIGHTS, [PoolSpec("prefill", (SHAPE,))])

    def test_plain_cluster_policy_promoted(self):
        plane = make_plane(policy=ClusterPolicy(max_batch_wait_s=0.07))
        assert isinstance(plane.policy, DisaggPolicy)
        assert plane.policy.max_batch_wait_s == 0.07

    def test_pool_profiles_applied_at_construction(self):
        plane = make_plane()
        prefill, = plane.active_replicas(pool="prefill")
        decode, = plane.active_replicas(pool="decode")
        assert prefill.prefill_profile == "weight-stationary"
        assert decode.profile == "weight-gathered"


class TestHandoff:
    def test_routes_prefill_pool_to_decode_pool(self):
        plane = make_plane()
        outcomes = plane.serve(make_submissions(8))
        assert len(completed(outcomes)) == 8
        events = plane.events.of_kind("kv_handoff")
        assert len(events) == plane.kv_handoffs == 2
        for event in events:
            assert plane.pool_of[event["source"]] == "prefill"
            assert plane.pool_of[event["target"]] == "decode"

    def test_event_payload_prices_the_link(self):
        plane = make_plane()
        plane.serve(make_submissions(8))
        for event in plane.events.of_kind("kv_handoff"):
            assert event["bytes"] > 0
            assert event["transfer_s"] == pytest.approx(
                handoff_transfer_s(event["bytes"], plane.policy))
            # Decode never starts before the transfer lands; anything
            # later is overlap with the target's committed work.
            assert event["decode_start_s"] >= \
                event["t_s"] + event["transfer_s"] - 1e-12
            assert event["overlapped_s"] >= 0.0

    def test_bit_identical_to_colocated_fleet(self):
        subs = make_submissions(12)
        plane = make_plane()
        outcomes = plane.serve([s for s in subs])
        colocated = ClusterControlPlane(WEIGHTS, [SHAPE, SHAPE],
                                        decode_batch=4)
        reference = {o.request_id: o
                     for o in colocated.serve([s for s in subs])}
        assert len(completed(outcomes)) == 12
        for outcome in completed(outcomes):
            ref = reference[outcome.request_id]
            assert np.array_equal(outcome.completion.tokens,
                                  ref.completion.tokens)

    def test_handoff_invalidates_no_decode_programs(self):
        plane = make_plane()
        plane.serve(make_submissions(12))
        decode, = plane.active_replicas(pool="decode")
        stats = decode.step_compiler.stats()
        assert stats["replays"] > 0
        assert stats["invalidations"] == 0

    def test_deterministic_across_reruns(self):
        def run():
            plane = make_plane()
            outcomes = plane.serve(make_submissions(8))
            tokens = [tuple(o.completion.tokens)
                      for o in completed(outcomes)]
            kinds = sorted(e.kind for e in plane.events.events)
            return tokens, kinds, plane.kv_handoffs

        assert run() == run()


class TestDegradePaths:
    def test_single_request_group_decodes_in_place(self):
        # A batch-1 group cannot enter the weight-gathered decode plan
        # (batch-group divisibility), so migration is refused and the
        # prefill replica decodes it — correctly.
        plane = make_plane()
        subs = make_submissions(1)
        outcomes = plane.serve(subs)
        assert len(completed(outcomes)) == 1
        assert plane.handoffs_colocated >= 1
        reference = reference_completions(subs, WEIGHTS, 4)
        out = outcomes[0]
        assert np.array_equal(out.completion.tokens,
                              reference[out.request_id].tokens)

    def test_dead_decode_pool_falls_back_colocated(self):
        plane = make_plane()
        decode, = plane.active_replicas(pool="decode")
        decode.set_health(ReplicaHealth.DEAD, 0.0, "test")
        outcomes = plane.serve(make_submissions(8))
        assert len(completed(outcomes)) == 8
        assert plane.kv_handoffs == 0

    def test_strict_pools_still_complete_without_decode_pool(self):
        plane = make_plane(policy=DisaggPolicy(strict_pools=True))
        decode, = plane.active_replicas(pool="decode")
        decode.set_health(ReplicaHealth.DEAD, 0.0, "test")
        outcomes = plane.serve(make_submissions(8))
        assert len(completed(outcomes)) == 8
        assert plane.kv_handoffs == 0
        assert plane.handoffs_colocated >= 1

    def test_handoff_to_draining_decode_replica(self):
        # The only decode replica is being drained; in-flight handoffs
        # land on it anyway and every stream completes bit-identically.
        pools = default_pools([SHAPE], [SHAPE])
        plane = DisaggControlPlane(WEIGHTS, pools, decode_batch=4,
                                   drains={"r1": 0.05})
        assert plane.pool_of["r1"] == "decode"
        subs = make_submissions(8)
        outcomes = plane.serve(subs)
        assert len(completed(outcomes)) == 8
        reference = reference_completions(subs, WEIGHTS, 4)
        for out in completed(outcomes):
            assert np.array_equal(out.completion.tokens,
                                  reference[out.request_id].tokens)

    def test_long_prompt_spans_prefill_chunks(self):
        # Prompts longer than the default prefill chunk (4 tokens)
        # prefill in several captured chunks before the handoff.
        subs = make_submissions(4, prompt_len=13)
        plane = make_plane()
        outcomes = plane.serve(subs)
        assert len(completed(outcomes)) == 4
        assert plane.kv_handoffs >= 1
        reference = reference_completions(subs, WEIGHTS, 4)
        for out in completed(outcomes):
            assert np.array_equal(out.completion.tokens,
                                  reference[out.request_id].tokens)


class TestMidHandoffKill:
    def test_handoff_commits_after_retry_on_degraded_source(self):
        # The transactional handoff absorbs the chip kill: staged pages
        # survive the source's replan onto its healthy sub-slice and the
        # retry commits -- no failover, no abort.  (The pre-transactional
        # one-shot path aborted here; see the zero-budget test below.)
        scenario = SCENARIOS["prefill-kill-mid-handoff"]
        plane = DisaggControlPlane(
            WEIGHTS, scenario.pools, decode_batch=4,
            fault_plans=dict(scenario.fault_plans))
        subs = make_submissions(12, spacing_s=0.05)
        outcomes = plane.serve(subs)
        assert len(completed(outcomes)) == 12
        assert plane.handoff_retries >= 1
        assert plane.handoff_aborts == 0
        assert plane.failovers == 0
        assert plane.kv_handoffs >= 1
        commits = plane.journal.of_kind("handoff_commit")
        assert any(c["attempt"] > 1 for c in commits)

    def test_zero_retry_budget_reproduces_the_one_shot_abort(self):
        # With no retry budget the same fault aborts the handoff, and
        # the group takes the legacy failover re-prefill path instead.
        scenario = SCENARIOS["prefill-kill-mid-handoff"]
        plane = DisaggControlPlane(
            WEIGHTS, scenario.pools, decode_batch=4,
            policy=DisaggPolicy(handoff_retries=0),
            fault_plans=dict(scenario.fault_plans))
        subs = make_submissions(12, spacing_s=0.05)
        outcomes = plane.serve(subs)
        assert len(completed(outcomes)) == 12
        assert plane.handoff_aborts >= 1
        assert plane.failovers >= 1
        abort, = plane.journal.of_kind("handoff_abort")
        assert abort["budget"] == 0

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_chaos_scenario_is_clean(self, seed):
        report = run_scenario("prefill-kill-mid-handoff", seed=seed)
        assert report.ok, report.violations
        assert report.handoff_retries >= 1
        assert report.handoff_aborts == 0
        assert report.kv_handoffs >= 1
        assert report.bit_identical
        assert report.replay_matches
        assert report.audit_certified


class TestHandoffDedup:
    def test_lost_ack_retransmit_is_deduped(self):
        # A handoff-phase CollectiveFault models a lost transfer ack:
        # the pages landed but the source never heard.  The retry
        # retransmits, the decode side drops the duplicate, and the
        # journal shows exactly one commit per group.
        plan = FaultPlan(faults=(CollectiveFault(
            kind="timeout", at_step=1, phase="handoff"),))
        plane = make_plane(fault_plans={0: plan})
        subs = make_submissions(8)
        outcomes = plane.serve(subs)
        assert len(completed(outcomes)) == 8
        assert plane.handoff_retries >= 1
        assert plane.handoff_dups_dropped >= 1
        commits = plane.journal.of_kind("handoff_commit")
        committed = [c["group"] for c in commits]
        assert len(committed) == len(set(committed))
        dup_groups = {d["group"] for d
                      in plane.journal.of_kind("handoff_dup")}
        assert dup_groups <= set(committed)
        reference = reference_completions(subs, WEIGHTS, 4)
        for out in completed(outcomes):
            assert np.array_equal(out.completion.tokens,
                                  reference[out.request_id].tokens)


class TestPoolPartitionSpec:
    def test_validates_window_and_pool(self):
        with pytest.raises(ValueError, match="until_s"):
            PoolPartition("decode", 0.5, 0.2)
        with pytest.raises(ValueError, match="pool"):
            PoolPartition("gpu", 0.0, 1.0)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_partition_scenario_quarantines_then_commits(self, seed):
        report = run_scenario("pool-partition", seed=seed)
        assert report.ok, report.violations
        assert report.quarantines >= 1
        assert report.handoff_retries >= 1
        assert report.handoff_aborts == 0
        assert report.bit_identical
        assert report.audit_certified


class TestFleetValidation:
    def test_fleet_config_error_is_a_value_error(self):
        assert issubclass(FleetConfigError, ValueError)

    def test_pool_names_must_match_shapes(self):
        with pytest.raises(FleetConfigError):
            PoolSpec("prefill", (SHAPE,), names=("a", "b"))

    def test_duplicate_names_within_a_pool_rejected(self):
        with pytest.raises(FleetConfigError):
            PoolSpec("prefill", (SHAPE, SHAPE), names=("a", "a"))

    def test_overlapping_pool_membership_rejected(self):
        pools = (PoolSpec("prefill", (SHAPE,), names=("a",)),
                 PoolSpec("decode", (SHAPE,), names=("a",)))
        with pytest.raises(FleetConfigError):
            DisaggControlPlane(WEIGHTS, pools)

    def test_partially_named_fleet_rejected(self):
        pools = (PoolSpec("prefill", (SHAPE,), names=("a",)),
                 PoolSpec("decode", (SHAPE,)))
        with pytest.raises(FleetConfigError):
            DisaggControlPlane(WEIGHTS, pools)

    def test_named_pools_apply_to_the_fleet(self):
        pools = (PoolSpec("prefill", (SHAPE,), names=("pf0",)),
                 PoolSpec("decode", (SHAPE,), names=("dc0",)))
        plane = DisaggControlPlane(WEIGHTS, pools, decode_batch=4)
        assert plane.pool_of == {"pf0": "prefill", "dc0": "decode"}
        outcomes = plane.serve(make_submissions(8))
        assert len(completed(outcomes)) == 8


class TestCollapseRestore:
    def test_collapse_suspends_handoffs_and_restore_resumes(self):
        plane = make_plane()
        assert plane.collapse_pools(0.0)
        assert not plane.collapse_pools(0.0)  # idempotent
        outcomes = plane.serve(make_submissions(8))
        assert len(completed(outcomes)) == 8
        assert plane.kv_handoffs == 0

        assert plane.restore_pools(plane.now_s)
        assert not plane.restore_pools(plane.now_s)
        more = make_submissions(8, start_s=plane.now_s + 0.01,
                                first_id=100)
        outcomes = plane.serve(more)
        assert len(completed(outcomes)) == 8
        assert plane.kv_handoffs > 0
        assert len(plane.events.of_kind("pools_collapsed")) == 1
        assert len(plane.events.of_kind("pools_restored")) == 1

    def test_handoff_racing_collapse_is_clean(self):
        # Collapse engaging between a group's admission and its prefill
        # must not strand the group: pools merge, the group decodes in
        # place, and streams stay bit-identical.
        subs = make_submissions(8)
        plane = make_plane()
        plane.collapse_pools(0.02)  # mid-arrival-window
        outcomes = plane.serve(subs)
        assert len(completed(outcomes)) == 8
        reference = reference_completions(subs, WEIGHTS, 4)
        for out in completed(outcomes):
            assert np.array_equal(out.completion.tokens,
                                  reference[out.request_id].tokens)


class TestDisaggAutoscaler:
    def test_ladder_has_collapse_rung_before_shed(self):
        ladder = DisaggAutoscaler().ladder
        assert ladder == DISAGG_BROWNOUT_LADDER
        assert ladder.index("collapse-pools") == len(ladder) - 2
        assert ladder[-1] == "shed-lowest"

    def test_scale_out_follows_the_token_mix(self):
        plane = make_plane()
        scaler = DisaggAutoscaler(DisaggAutoscalerPolicy(max_replicas=6))
        plane.prefill_tokens = 900
        plane.decode_tokens = 100
        scaler._scale_out(plane, 1.0, 2.0, False, 2)
        assert len(plane.active_replicas(pool="prefill")) == 2

        plane.decode_tokens += 1000
        scaler._scale_out(plane, 2.0, 2.0, False, 3)
        assert len(plane.active_replicas(pool="decode")) == 2
        decisions = plane.events.of_kind("autoscale_decision")
        assert [d["pool"] for d in decisions] == ["prefill", "decode"]

    def test_scale_out_without_evidence_grows_smaller_pool(self):
        pools = default_pools([SHAPE, SHAPE], [SHAPE])
        plane = DisaggControlPlane(WEIGHTS, pools, decode_batch=4)
        scaler = DisaggAutoscaler(DisaggAutoscalerPolicy(max_replicas=6))
        scaler._scale_out(plane, 0.0, 1.0, False, 3)
        assert len(plane.active_replicas(pool="decode")) == 2

    def test_scale_in_respects_pool_floors(self):
        plane = make_plane()
        scaler = DisaggAutoscaler()
        assert not scaler._scale_in(plane, 0.0, 0.1, 2)
        assert not plane.retiring

    def test_scale_in_retires_from_larger_pool(self):
        pools = default_pools([SHAPE], [SHAPE])
        plane = DisaggControlPlane(WEIGHTS, pools, decode_batch=4)
        added = plane.add_replica(SHAPE, 0.0, pool="decode")
        scaler = DisaggAutoscaler()
        assert scaler._scale_in(plane, 1.0, 0.1, 3)
        assert added.name in plane.retiring

    def test_flash_crowd_collapse_engages_and_reverts(self):
        report = run_scenario("flash-crowd-disagg", seed=0)
        assert report.ok, report.violations
        assert "collapse-pools" in report.brownout_steps
        assert report.brownout_reverted
        assert report.kv_handoffs >= 1
