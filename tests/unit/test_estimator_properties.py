"""Property-based tests of the analytical estimator.

These encode the qualitative physics the paper reasons with — if a model
change breaks one of them, the Pareto sweeps cannot be trusted no matter
how well the anchors fit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import TPU_V4, default_slice_shape
from repro.model import PALM_540B_PADDED, PALM_62B
from repro.partitioning import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.perf import EfficiencyModel, InferenceEstimator

WS2D_BATCH = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)
WS2D_HEAD = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)

BATCHES = st.sampled_from([1, 4, 16, 64, 256, 1024])
CHIPS = st.sampled_from([8, 16, 32, 64, 128, 256])


def estimator(chips=64, **kwargs):
    return InferenceEstimator(PALM_62B, TPU_V4,
                              default_slice_shape(chips), **kwargs)


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(BATCHES)
    def test_more_chips_never_slow_prefill(self, batch):
        times = [estimator(c).prefill_cost(WS2D_HEAD, batch, 2048).time_s
                 for c in (8, 32, 128)]
        # Weakly decreasing up to the comm/overhead floor.
        assert times[0] >= times[1] * 0.95
        assert times[1] >= times[2] * 0.95

    @settings(max_examples=20, deadline=None)
    @given(CHIPS)
    def test_step_time_weakly_increases_with_batch(self, chips):
        est = estimator(chips)
        times = [est.decode_step_cost(WS2D_BATCH, b, 2048).time_s
                 for b in (4, 64, 1024)]
        assert times == sorted(times)

    @settings(max_examples=20, deadline=None)
    @given(BATCHES, CHIPS)
    def test_cost_times_tokens_is_chip_seconds(self, batch, chips):
        est = estimator(chips)
        cost = est.decode_step_cost(WS2D_BATCH, batch, 2048)
        assert cost.cost_chip_seconds_per_token * cost.tokens == \
            pytest.approx(chips * cost.time_s)

    @settings(max_examples=20, deadline=None)
    @given(BATCHES)
    def test_throughput_per_chip_improves_with_batch(self, batch):
        est = estimator()
        small = est.decode_step_cost(WS2D_BATCH, batch, 2048)
        large = est.decode_step_cost(WS2D_BATCH, batch * 2, 2048)
        assert large.cost_chip_seconds_per_token <= \
            small.cost_chip_seconds_per_token * 1.001


class TestCompositionInvariants:
    @settings(max_examples=15, deadline=None)
    @given(BATCHES, st.sampled_from([256, 1024, 4096]))
    def test_time_decomposes(self, batch, context):
        cost = estimator().decode_step_cost(WS2D_BATCH, batch, context)
        assert cost.time_s == pytest.approx(
            max(cost.compute_s, cost.memory_s) + cost.comm_exposed_s
            + cost.overhead_s)
        assert 0 <= cost.comm_exposed_s <= cost.comm_s
        assert 0 < cost.mfu < 1

    @settings(max_examples=15, deadline=None)
    @given(BATCHES)
    def test_efficiency_knobs_direction(self, batch):
        base = estimator().decode_step_cost(WS2D_BATCH, batch, 2048)
        derated = InferenceEstimator(
            PALM_62B, TPU_V4, default_slice_shape(64),
            efficiency=EfficiencyModel(hbm_efficiency=0.4,
                                       network_efficiency=0.4)
        ).decode_step_cost(WS2D_BATCH, batch, 2048)
        assert derated.time_s >= base.time_s

    def test_generate_equals_sum_of_steps_affine(self):
        """The mean-context shortcut is exact because step time is affine
        in context length."""
        est = estimator()
        total = est.generate_cost(WS2D_BATCH, 64, 1000, 11).total_s
        explicit = sum(
            est.decode_step_cost(WS2D_BATCH, 64, 1000 + i).time_s
            for i in range(11))
        assert total == pytest.approx(explicit, rel=1e-6)

    def test_padded_model_slower_but_same_useful_flops(self):
        from repro.model import PALM_540B

        padded = InferenceEstimator(PALM_540B_PADDED, TPU_V4,
                                    default_slice_shape(64),
                                    mfu_params=PALM_540B.n_params)
        plain = InferenceEstimator(PALM_540B, TPU_V4,
                                   default_slice_shape(64))
        a = padded.prefill_cost(WS2D_HEAD, 16, 2048)
        b = plain.prefill_cost(WS2D_HEAD, 16, 2048)
        assert a.time_s > b.time_s  # extra padded-head FLOPs
