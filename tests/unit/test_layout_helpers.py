"""Tests for the layout building blocks (norm, rope, zip, local attn)."""

import numpy as np
import pytest

from repro.layouts import (
    local_attention,
    sharded_rmsnorm,
    sharded_rope,
    zip_shards,
)
from repro.mesh import ShardedTensor, VirtualMesh
from repro.model.functional import rmsnorm
from repro.model.rope import apply_rope
from repro.sharding import parse

RNG = np.random.default_rng(4)


class TestShardedRmsnorm:
    @pytest.mark.parametrize("spec", ["BLE", "BLE_y", "BLE_xyz",
                                      "B_xLE_yz"])
    def test_matches_dense_for_any_sharding(self, spec):
        mesh = VirtualMesh((2, 2, 2))
        x = RNG.normal(size=(4, 2, 16))
        scale = RNG.normal(size=16) + 2.0
        xt = ShardedTensor.from_global(mesh, x, spec)
        e_axes = xt.spec.axes_for("E")
        st = ShardedTensor.from_global(
            mesh, scale, parse("E").with_dim_axes("E", e_axes))
        out = sharded_rmsnorm(xt, st)
        assert out.spec == xt.spec
        np.testing.assert_allclose(out.to_global(), rmsnorm(x, scale),
                                   rtol=1e-10)

    def test_rejects_partial_sum_input(self):
        mesh = VirtualMesh((1, 2, 1))
        spec = parse("BLE").with_partial_sum(("y",))
        shards = mesh.map_devices(lambda c: RNG.normal(size=(2, 2, 8)))
        t = ShardedTensor(mesh, spec, (2, 2, 8), shards)
        st = ShardedTensor.from_global(mesh, np.ones(8), "E")
        with pytest.raises(ValueError, match="partial-sum"):
            sharded_rmsnorm(t, st)

    def test_rejects_mismatched_scale_sharding(self):
        mesh = VirtualMesh((1, 2, 1))
        xt = ShardedTensor.from_global(mesh, RNG.normal(size=(2, 2, 8)),
                                       "BLE_y")
        st = ShardedTensor.from_global(mesh, np.ones(8), "E")
        with pytest.raises(ValueError, match="does not match"):
            sharded_rmsnorm(xt, st)


class TestShardedRope:
    def test_matches_dense(self):
        mesh = VirtualMesh((1, 2, 2))
        x = RNG.normal(size=(4, 3, 8, 4))
        xt = ShardedTensor.from_global(mesh, x, "BLH_yzD")
        positions = np.arange(3) + 5
        out = sharded_rope(xt, positions, theta=10_000.0)
        np.testing.assert_allclose(out.to_global(),
                                   apply_rope(x, positions, 10_000.0))

    def test_rejects_sharded_d(self):
        mesh = VirtualMesh((1, 2, 1))
        xt = ShardedTensor.from_global(mesh, RNG.normal(size=(2, 2, 2, 8)),
                                       "BLHD_y")
        with pytest.raises(ValueError, match="unsharded D"):
            sharded_rope(xt, np.arange(2), 10_000.0)


class TestZipShards:
    def test_broadcast_combine(self):
        mesh = VirtualMesh((1, 2, 1))
        a = RNG.normal(size=(4, 8))
        b = RNG.normal(size=(4,))
        at = ShardedTensor.from_global(mesh, a, "BE_y")
        bt = ShardedTensor.from_global(mesh, b, "B")
        out = zip_shards(at.spec, at.global_shape,
                         lambda x, y: x * y[:, None], at, bt)
        np.testing.assert_allclose(out.to_global(), a * b[:, None])


class TestLocalAttention:
    def test_delegates_to_reference(self):
        from repro.model.reference import attention

        mesh = VirtualMesh((1, 2, 1))
        q = RNG.normal(size=(4, 1, 4, 8))
        k = RNG.normal(size=(4, 3, 1, 8))
        v = RNG.normal(size=(4, 3, 1, 8))
        qt = ShardedTensor.from_global(mesh, q, "BLH_yD")
        k_shards = mesh.map_devices(lambda c: k)
        v_shards = mesh.map_devices(lambda c: v)
        out = local_attention(mesh, qt.spec, q.shape, qt, k_shards,
                              v_shards, q_offset=2)
        np.testing.assert_allclose(out.to_global(),
                                   attention(q, k, v, 2), rtol=1e-10)
