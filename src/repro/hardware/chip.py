"""Accelerator chip specifications.

The paper's cost model (Section 2) needs only a handful of published
hardware constants per chip: peak matmul throughput, HBM capacity and
bandwidth, and interconnect bandwidth.  ``ChipSpec`` captures those, and the
module provides presets for the chips that appear in the paper: Google TPU
v4 (the platform all "ours" numbers are measured on) and NVIDIA A100-80GB
(the platform of the FasterTransformer baselines in Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

GiB = 1024**3
GB = 1e9
TFLOPS = 1e12


@dataclass(frozen=True)
class ChipSpec:
    """Static description of one accelerator chip.

    Attributes:
        name: Human-readable identifier.
        peak_flops: Peak dense-matmul throughput in FLOP/s for the chip's
            native matmul dtype (bfloat16 on TPU v4, per the paper).
        hbm_bytes: High-bandwidth-memory capacity in bytes.
        hbm_bandwidth: HBM read bandwidth in bytes/second.
        interconnect_bandwidth: Per-chip chip-to-chip bandwidth in
            bytes/second.  This is the "network bandwidth" constant of the
            paper's communication formulas (Appendix A.1); for TPU v4 it is
            the aggregate 3D-torus bandwidth of 270 GB/s.
        num_torus_axes: Number of torus axes this chip's network exposes
            (3 for TPU v4, treated as 1 flat axis group for NVLink systems).
    """

    name: str
    peak_flops: float
    hbm_bytes: float
    hbm_bandwidth: float
    interconnect_bandwidth: float
    num_torus_axes: int = 3

    def __post_init__(self) -> None:
        for field in ("peak_flops", "hbm_bytes", "hbm_bandwidth",
                      "interconnect_bandwidth"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive, got "
                                 f"{getattr(self, field)!r}")
        if self.num_torus_axes < 1:
            raise ValueError("num_torus_axes must be >= 1")

    @property
    def machine_balance(self) -> float:
        """Peak FLOPs per HBM byte (the roofline ridge point)."""
        return self.peak_flops / self.hbm_bandwidth

    def with_overrides(self, **kwargs) -> "ChipSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Google TPU v4 (Section 4 "Methodology"): 275 TFLOP/s bfloat16,
#: 32 GiB HBM at 1200 GB/s, 270 GB/s interconnect in a 3D torus.
TPU_V4 = ChipSpec(
    name="tpu-v4",
    peak_flops=275 * TFLOPS,
    hbm_bytes=32 * GiB,
    hbm_bandwidth=1200 * GB,
    interconnect_bandwidth=270 * GB,
    num_torus_axes=3,
)

#: NVIDIA A100 80GB SXM, the FasterTransformer baseline platform
#: (Section 5): 312 TFLOP/s bf16 dense, 80 GiB HBM2e at ~2039 GB/s,
#: 600 GB/s NVLink.  Modelled as a single flat all-to-all axis.
A100_80GB = ChipSpec(
    name="a100-80gb",
    peak_flops=312 * TFLOPS,
    hbm_bytes=80 * GiB,
    hbm_bandwidth=2039 * GB,
    interconnect_bandwidth=600 * GB,
    num_torus_axes=1,
)

CHIP_PRESETS = {spec.name: spec for spec in (TPU_V4, A100_80GB)}


def get_chip(name: str) -> ChipSpec:
    """Look up a chip preset by name (``"tpu-v4"`` or ``"a100-80gb"``)."""
    try:
        return CHIP_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(CHIP_PRESETS))
        raise KeyError(f"unknown chip {name!r}; known chips: {known}") from None
