"""Hardware substrate: chip specs and torus topologies (paper Section 3.1)."""

from repro.hardware.chip import (
    A100_80GB,
    CHIP_PRESETS,
    TPU_V4,
    ChipSpec,
    get_chip,
)
from repro.hardware.topology import (
    AXIS_NAMES,
    Mesh,
    Torus3D,
    default_slice_shape,
    enumerate_slice_shapes,
)

__all__ = [
    "A100_80GB",
    "AXIS_NAMES",
    "CHIP_PRESETS",
    "ChipSpec",
    "Mesh",
    "TPU_V4",
    "Torus3D",
    "default_slice_shape",
    "enumerate_slice_shapes",
    "get_chip",
]
