"""3D torus topologies and logical meshes.

The paper partitions tensors over a TPU v4 slice with a 3D torus topology
``X x Y x Z`` (Section 3.1).  A :class:`Torus3D` records the physical shape;
a :class:`Mesh` binds the physical axes to the logical axis names
``('x', 'y', 'z')`` used throughout the partitioning notation.

``enumerate_slice_shapes`` lists the factorizations of a chip count into
torus axes, which the Pareto sweep (Figure 1) searches over.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

AXIS_NAMES = ("x", "y", "z")


@dataclass(frozen=True)
class Torus3D:
    """A 3D torus of chips, shape ``X x Y x Z``.

    Degenerate axes (size 1) are allowed, so a 1D ring or a single chip are
    both representable.  Axis order matters: the partitioning notation
    refers to the physical axes by name.
    """

    x: int
    y: int
    z: int

    def __post_init__(self) -> None:
        for name, size in zip(AXIS_NAMES, self.shape):
            if size < 1:
                raise ValueError(f"torus axis {name} must be >= 1, got {size}")

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.x, self.y, self.z)

    @property
    def num_chips(self) -> int:
        return self.x * self.y * self.z

    def axis_size(self, axis: str) -> int:
        """Size of one named axis, e.g. ``axis_size('y')``."""
        return self.shape[AXIS_NAMES.index(axis)]

    def group_size(self, axes: Sequence[str]) -> int:
        """Product of the sizes of the given axes."""
        size = 1
        for axis in axes:
            size *= self.axis_size(axis)
        return size

    def devices(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over all device coordinates in row-major order."""
        return itertools.product(range(self.x), range(self.y), range(self.z))

    def __str__(self) -> str:
        return f"{self.x}x{self.y}x{self.z}"


# Logical mesh == physical torus with named axes; kept as an alias with a
# constructor that accepts either a shape tuple or a chip count.
class Mesh(Torus3D):
    """A named-axis mesh over a 3D torus (axes ``x``, ``y``, ``z``)."""

    @classmethod
    def from_shape(cls, shape: Sequence[int]) -> "Mesh":
        if len(shape) != 3:
            raise ValueError(f"mesh shape must have 3 axes, got {shape!r}")
        return cls(*shape)

    @property
    def axis_names(self) -> tuple[str, str, str]:
        return AXIS_NAMES


def _axis_candidates(limit: int, *, min_axis: int) -> list[int]:
    """Axis sizes TPU v4 slices use: 1, 2, or any multiple of 4."""
    sizes = [s for s in range(1, limit + 1)
             if s in (1, 2) or s % 4 == 0]
    return [s for s in sizes if s >= min_axis or s == 1]


def enumerate_slice_shapes(num_chips: int, *, min_axis: int = 1,
                           canonical: bool = True) -> list[Torus3D]:
    """Enumerate 3D torus shapes with ``num_chips`` chips.

    Axis sizes follow TPU v4 slice granularity (1, 2, or a multiple of 4).
    With ``canonical=True`` only shapes with ``x <= y <= z`` are returned,
    since the communication cost model is symmetric under axis relabelling.

    Args:
        num_chips: Total chip count to factorize.
        min_axis: Require every non-degenerate axis to be at least this
            large (the paper notes TPU v4's minimum torus axis is 4).
        canonical: Deduplicate axis permutations.
    """
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    shapes = []
    candidates = _axis_candidates(num_chips, min_axis=min_axis)
    for x in candidates:
        if num_chips % x:
            continue
        for y in candidates:
            if (num_chips // x) % y:
                continue
            z = num_chips // (x * y)
            if z not in candidates:
                continue
            if canonical and not (x <= y <= z):
                continue
            shapes.append(Torus3D(x, y, z))
    return shapes


def default_slice_shape(num_chips: int) -> Torus3D:
    """A reasonable default torus for a chip count: as cubic as possible.

    The 2D weight-stationary analysis (Appendix A.2.1) wants the freedom to
    split ``sqrt(n)`` by ``sqrt(n)``; the most cubic torus maximizes that
    freedom.  Ties are broken toward larger ``z``.
    """
    shapes = enumerate_slice_shapes(num_chips)
    if not shapes:
        raise ValueError(f"no valid TPU v4 slice shape for {num_chips} chips")

    def skew(t: Torus3D) -> float:
        side = num_chips ** (1.0 / 3.0)
        return sum(abs(math.log(s / side)) for s in t.shape)

    return min(shapes, key=skew)
