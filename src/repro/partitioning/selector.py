"""The analytical layout selector (Sections 3.2-3.3, 4.1).

The paper's strategy, quoted from Section 4.1: "during the prefill phase,
we select from weight-stationary and weight-gathered layouts based on the
current number of tokens in the batch.  During the generate phase, we
select the 2D weight-stationary layout because the batch size in tokens is
always small" — with the caveat from Section 3.2.2 that 2D only beats 1D
once ``sqrt(n_chips) > d_ff / d_model`` (i.e. beyond ~16 chips for the
typical F = 4E).

Attention: batch-sharded for multiquery decode (Section 3.3) when the
batch is large enough to split (the paper notes no speedup below the
minimum torus axis of 4); head-sharded otherwise and for prefill at small
batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.hardware.topology import Torus3D
from repro.model.config import AttentionKind, ModelConfig
from repro.partitioning.ffn_costs import ffn_volume
from repro.partitioning.plan import (
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)


class Phase(str, Enum):
    PREFILL = "prefill"
    DECODE = "decode"


@dataclass(frozen=True)
class SelectionContext:
    """Everything the analytical selector conditions on."""

    config: ModelConfig
    torus: Torus3D
    phase: Phase
    batch: int
    tokens_per_seq: int  # L_input for prefill, 1 for a decode step

    @property
    def tokens(self) -> int:
        return self.batch * self.tokens_per_seq


def select_ffn_layout(ctx: SelectionContext) -> FfnLayoutKind:
    """Minimum-communication FFN layout for the phase (Figures 3, 6, 7)."""
    cfg, torus = ctx.config, ctx.torus
    candidates = [FfnLayoutKind.WS_1D, FfnLayoutKind.WS_2D]
    if ctx.phase is Phase.PREFILL:
        candidates += [FfnLayoutKind.WG_X, FfnLayoutKind.WG_XY,
                       FfnLayoutKind.WG_XYZ]
    return min(candidates,
               key=lambda kind: ffn_volume(kind, torus, ctx.tokens,
                                           cfg.d_model, cfg.d_ff))


def select_attention_layout(ctx: SelectionContext,
                            min_split: int = 4) -> AttentionLayoutKind:
    """Batch-sharded when multiquery and the batch can actually split."""
    if ctx.config.attention is not AttentionKind.MULTIQUERY:
        return AttentionLayoutKind.HEAD
    if ctx.batch < min_split:
        return AttentionLayoutKind.HEAD
    if ctx.phase is Phase.PREFILL and ctx.batch < ctx.torus.num_chips:
        # Section 3.3: during prefill the KV load amortizes over all query
        # tokens, so resharding is typically not profitable at small batch.
        return AttentionLayoutKind.HEAD
    return AttentionLayoutKind.BATCH


def select_plan(ctx: SelectionContext) -> LayoutPlan:
    """The paper's combined recipe for one phase."""
    return LayoutPlan(ffn=select_ffn_layout(ctx),
                      attention=select_attention_layout(ctx))


def candidate_plans(ctx: SelectionContext) -> list[LayoutPlan]:
    """All plans valid for this context (for exhaustive Pareto sweeps).

    The sweep engine evaluates these and keeps the best, which lets tests
    confirm that :func:`select_plan`'s analytical choice matches the
    empirical argmin (the paper's claim that the closed-form reasoning
    replaces black-box search).
    """
    cfg = ctx.config
    ffns = [FfnLayoutKind.WS_1D, FfnLayoutKind.WS_2D]
    if ctx.phase is Phase.PREFILL:
        ffns += [FfnLayoutKind.WG_X, FfnLayoutKind.WG_XY,
                 FfnLayoutKind.WG_XYZ]
    attns = [AttentionLayoutKind.HEAD]
    if cfg.attention is AttentionKind.MULTIQUERY and ctx.batch >= 4:
        attns.append(AttentionLayoutKind.BATCH)
    plans = []
    for ffn in ffns:
        for attn in attns:
            plan = LayoutPlan(ffn, attn)
            try:
                plan.validate(cfg, _as_mesh(ctx.torus))
            except ValueError:
                continue
            plans.append(plan)
    return plans


def _as_mesh(torus: Torus3D):
    from repro.hardware.topology import Mesh

    return Mesh(*torus.shape)
