"""The paper's analytical partitioning framework (Section 3)."""

from repro.partitioning.plan import (
    DECODE_PLAN_540B,
    PREFILL_PLAN_LARGE_BATCH,
    PREFILL_PLAN_SMALL_BATCH,
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)
from repro.partitioning.degraded import (
    DegradedDeployment,
    SubSlice,
    healthy_subslices,
    largest_healthy_subslice,
    migrate_caches,
    plan_batch_group,
    replan_after_failure,
    select_degraded_plan,
)

__all__ = [
    "AttentionLayoutKind",
    "DECODE_PLAN_540B",
    "DegradedDeployment",
    "FfnLayoutKind",
    "LayoutPlan",
    "PREFILL_PLAN_LARGE_BATCH",
    "PREFILL_PLAN_SMALL_BATCH",
    "SubSlice",
    "healthy_subslices",
    "largest_healthy_subslice",
    "migrate_caches",
    "plan_batch_group",
    "replan_after_failure",
    "select_degraded_plan",
]
