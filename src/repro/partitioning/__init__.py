"""The paper's analytical partitioning framework (Section 3)."""

from repro.partitioning.plan import (
    DECODE_PLAN_540B,
    PREFILL_PLAN_LARGE_BATCH,
    PREFILL_PLAN_SMALL_BATCH,
    AttentionLayoutKind,
    FfnLayoutKind,
    LayoutPlan,
)

__all__ = [
    "AttentionLayoutKind",
    "DECODE_PLAN_540B",
    "FfnLayoutKind",
    "LayoutPlan",
    "PREFILL_PLAN_LARGE_BATCH",
    "PREFILL_PLAN_SMALL_BATCH",
]
