"""Replanning onto a degraded mesh after a chip failure.

The paper's layout recipes (Sections 3.2-3.3) take the torus shape as a
given; this module makes device availability an explicit input, in the
spirit of partitioning work that plans around failed devices.  Given one
or more dead chips, we

1. compute the **largest healthy sub-slice** — the biggest axis-aligned
   sub-box of the torus containing no dead chip (TPU slices are
   re-provisioned as contiguous sub-slices, so arbitrary hole-punching is
   not available);
2. **re-run the layout selector** for the shrunken torus (the optimal
   layout genuinely changes with the chip count — e.g. 2D weight-
   stationary only beats 1D past ``sqrt(n) > F/E``, Section 3.2.2); and
3. **rebuild the sharded models** on the new mesh from the same host
   weights, and optionally migrate live KV caches via the
   ``as_sharded``/``load_prefix`` machinery — the same host-mediated
   transfer as the Section 4.4 prefill->decode hand-off.

Everything here is deterministic, so a replanned service produces
bit-identical tokens to a fault-free run (greedy decoding does not depend
on the mesh shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.events import REPLANNED, EventLog
from repro.hardware.topology import Torus3D
from repro.mesh import VirtualMesh
from repro.model.config import ModelConfig
from repro.partitioning.ffn_costs import ffn_volume
from repro.partitioning.plan import AttentionLayoutKind, LayoutPlan
from repro.partitioning.selector import (
    Phase,
    SelectionContext,
    candidate_plans,
)

if TYPE_CHECKING:  # avoid a layouts <-> partitioning import cycle
    from repro.layouts.kv_cache import ShardedKVCache
    from repro.layouts.model import ShardedTransformer
    from repro.model.reference import TransformerWeights

Coord = tuple[int, int, int]


@dataclass(frozen=True)
class SubSlice:
    """An axis-aligned sub-box of a torus: ``origin`` + ``shape``."""

    origin: Coord
    shape: Coord

    @property
    def num_chips(self) -> int:
        x, y, z = self.shape
        return x * y * z

    def contains(self, chip: Coord) -> bool:
        return all(o <= c < o + s
                   for c, o, s in zip(chip, self.origin, self.shape))

    def to_local(self, chip: Coord) -> Coord:
        """Translate a full-mesh coordinate into sub-slice coordinates."""
        return tuple(c - o for c, o in zip(chip, self.origin))


def healthy_subslices(shape: Coord,
                      dead_chips: Iterable[Coord]) -> list[SubSlice]:
    """All maximal single-cut sub-slices avoiding the dead chips.

    For each dead chip and each axis, the slab strictly below and the slab
    strictly above the chip are candidates (recursively re-cut while any
    dead chip remains inside).  Returned sorted by chip count, largest
    first; degenerate (empty) slabs are dropped.
    """
    dead = [tuple(c) for c in dead_chips]
    for chip in dead:
        if not all(0 <= c < s for c, s in zip(chip, shape)):
            raise ValueError(f"dead chip {chip} outside mesh {shape}")

    def cut(box: SubSlice) -> list[SubSlice]:
        inside = [c for c in dead if box.contains(c)]
        if not inside:
            return [box]
        chip = inside[0]
        out: list[SubSlice] = []
        for axis in range(3):
            lo_size = chip[axis] - box.origin[axis]
            hi_size = box.origin[axis] + box.shape[axis] - chip[axis] - 1
            if lo_size > 0:
                origin = box.origin
                new_shape = tuple(lo_size if i == axis else s
                                  for i, s in enumerate(box.shape))
                out.extend(cut(SubSlice(origin, new_shape)))
            if hi_size > 0:
                origin = tuple(chip[axis] + 1 if i == axis else o
                               for i, o in enumerate(box.origin))
                new_shape = tuple(hi_size if i == axis else s
                                  for i, s in enumerate(box.shape))
                out.extend(cut(SubSlice(origin, new_shape)))
        return out

    boxes = cut(SubSlice((0, 0, 0), tuple(shape)))
    unique = sorted(set(boxes), key=lambda b: (-b.num_chips, b.origin))
    return unique


def largest_healthy_subslice(shape: Coord,
                             dead_chips: Iterable[Coord]) -> SubSlice:
    """The biggest healthy sub-slice (ties broken deterministically)."""
    boxes = healthy_subslices(shape, dead_chips)
    if not boxes:
        raise ValueError(
            f"no healthy sub-slice of mesh {shape} avoids {dead_chips}")
    return boxes[0]


# ---------------------------------------------------------------------------
# Plan re-selection for the shrunken torus
# ---------------------------------------------------------------------------

def plan_batch_group(plan: LayoutPlan, torus: Torus3D) -> int:
    """How many ways a plan shards the batch dim (divisibility bound)."""
    if plan.ffn.is_weight_gathered:
        return torus.group_size(plan.ffn.batch_axes)
    if plan.attention is AttentionLayoutKind.BATCH:
        # WS + batch-sharded attention reshards B over every mesh axis
        # (the x reduce-scatter plus the hidden-axes all-to-all).
        return torus.num_chips
    return 1


def select_profile_plan(config: ModelConfig, torus: Torus3D, batch: int,
                        *, weight_gathered: bool) -> LayoutPlan:
    """The best valid *decode* plan on one side of the Pareto frontier.

    The Section 3.2 result is that weight-stationary layouts win the
    latency end and weight-gathered layouts the throughput end; the
    autoscaler switches a replica between the two as the load mix
    shifts.  :func:`~repro.partitioning.selector.candidate_plans` only
    offers weight-gathered FFN layouts for prefill (where the selector
    would pick them), so this enumerates the full layout space directly,
    keeps the plans that validate and whose batch sharding divides
    ``batch``, restricts to the requested side, and takes the cheapest
    by FFN communication volume.
    """
    from repro.hardware.topology import Mesh
    from repro.partitioning.plan import FfnLayoutKind

    mesh = Mesh(*torus.shape)
    plans = []
    for ffn in FfnLayoutKind:
        if ffn.is_weight_gathered != weight_gathered:
            continue
        for attn in AttentionLayoutKind:
            plan = LayoutPlan(ffn, attn)
            try:
                plan.validate(config, mesh)
            except ValueError:
                continue
            if batch % max(plan_batch_group(plan, torus), 1) == 0:
                plans.append(plan)
    if not plans:
        raise ValueError(
            f"no valid {'weight-gathered' if weight_gathered else 'weight-stationary'} "
            f"decode layout for {config.name} on torus {torus} at batch "
            f"{batch}")
    return min(plans, key=lambda p: (
        ffn_volume(p.ffn, torus, batch, config.d_model, config.d_ff),
        p.attention is not AttentionLayoutKind.BATCH))


def select_prefill_profile_plan(config: ModelConfig, torus: Torus3D,
                                tokens_per_seq: int, *,
                                weight_gathered: bool) -> LayoutPlan:
    """The best valid *prefill* plan on one side of the Pareto frontier.

    The disaggregated prefill pool (see :mod:`repro.cluster.disagg`)
    wants the paper's prefill-side frontier end: token-rich prefill
    favors the 2D weight-stationary FFN (Section 3.2.2, communication
    ``O(sqrt(n))`` per token) with head-sharded attention (prefill's KV
    writes stay head-sharded, Section 3.3).  Prefill runs one request at
    a time here, so only plans whose batch group divides 1 qualify —
    which is exactly the head-sharded weight-stationary family; asking
    for the weight-gathered side raises ``ValueError`` (those plans
    shard over batch and cannot host a single-sequence prefill).
    """
    from repro.hardware.topology import Mesh
    from repro.partitioning.plan import FfnLayoutKind

    mesh = Mesh(*torus.shape)
    plans = []
    for ffn in FfnLayoutKind:
        if ffn.is_weight_gathered != weight_gathered:
            continue
        for attn in AttentionLayoutKind:
            plan = LayoutPlan(ffn, attn)
            try:
                plan.validate(config, mesh)
            except ValueError:
                continue
            if plan_batch_group(plan, torus) <= 1:
                plans.append(plan)
    if not plans:
        raise ValueError(
            f"no valid "
            f"{'weight-gathered' if weight_gathered else 'weight-stationary'} "
            f"prefill layout for {config.name} on torus {torus}")
    return min(plans, key=lambda p: (
        p.ffn is not FfnLayoutKind.WS_2D,
        ffn_volume(p.ffn, torus, tokens_per_seq, config.d_model,
                   config.d_ff)))


def select_degraded_plan(config: ModelConfig, torus: Torus3D, phase: Phase,
                         batch: int, tokens_per_seq: int) -> LayoutPlan:
    """Re-run the analytical selector for a (possibly shrunken) torus.

    Unlike :func:`~repro.partitioning.selector.select_plan` this always
    returns a plan that *validates* for the model on this torus and whose
    batch sharding divides ``batch`` — on a degraded mesh, serving a
    suboptimal-but-valid layout beats crashing on the optimal one.
    """
    ctx = SelectionContext(config, torus, phase, batch, tokens_per_seq)
    plans = [p for p in candidate_plans(ctx)
             if batch % max(plan_batch_group(p, torus), 1) == 0]
    if not plans:
        raise ValueError(
            f"no valid {phase.value} layout for {config.name} on torus "
            f"{torus} at batch {batch}")
    return min(plans, key=lambda p: (
        ffn_volume(p.ffn, torus, ctx.tokens, config.d_model, config.d_ff),
        p.attention is not AttentionLayoutKind.BATCH))


# ---------------------------------------------------------------------------
# Deployment rebuild
# ---------------------------------------------------------------------------

@dataclass
class DegradedDeployment:
    """The serving stack rebuilt on the surviving sub-slice."""

    subslice: SubSlice
    mesh: VirtualMesh
    prefill_model: ShardedTransformer
    decode_model: ShardedTransformer

    @property
    def prefill_plan(self) -> LayoutPlan:
        return self.prefill_model.plan

    @property
    def decode_plan(self) -> LayoutPlan:
        return self.decode_model.plan


def replan_after_failure(weights: TransformerWeights, mesh: VirtualMesh,
                         dead_chips: Iterable[Coord], *,
                         decode_batch: int, prompt_len: int = 64,
                         backend: str | None = None,
                         event_log: EventLog | None = None
                         ) -> DegradedDeployment:
    """Rebuild prefill + decode models on the largest healthy sub-slice.

    Tries the healthy sub-slices largest-first; a sub-slice is skipped if
    no valid layout exists for it (e.g. the model's head count does not
    divide the shrunken head group).  Weight resharding is a host-side
    re-scatter of the same ``TransformerWeights``; prefill and decode
    share weight storage via :meth:`ShardedTransformer.with_plan`
    whenever their storage layouts match, exactly as in the healthy
    deployment.
    """
    from repro.layouts.model import ShardedTransformer

    dead = sorted(set(tuple(c) for c in dead_chips))
    if not dead:
        raise ValueError("replan_after_failure needs at least one dead chip")
    backend = backend or mesh.backend
    config = weights.config
    last_error: Exception | None = None
    for subslice in healthy_subslices(mesh.shape, dead):
        torus = Torus3D(*subslice.shape)
        try:
            prefill_plan = select_degraded_plan(
                config, torus, Phase.PREFILL, batch=1,
                tokens_per_seq=prompt_len)
            decode_plan = select_degraded_plan(
                config, torus, Phase.DECODE, batch=decode_batch,
                tokens_per_seq=1)
            new_mesh = VirtualMesh(subslice.shape, backend=backend)
            decode_model = ShardedTransformer(weights, new_mesh,
                                              decode_plan)
            try:
                prefill_model = decode_model.with_plan(prefill_plan)
            except ValueError:
                prefill_model = ShardedTransformer(weights, new_mesh,
                                                   prefill_plan)
        except ValueError as exc:  # includes ShardingError — try next slab
            last_error = exc
            continue
        if event_log is not None:
            event_log.record(
                REPLANNED, dead_chips=dead, old_shape=mesh.shape,
                new_shape=subslice.shape, origin=subslice.origin,
                prefill_plan=prefill_plan.describe(),
                decode_plan=decode_plan.describe())
        return DegradedDeployment(subslice, new_mesh, prefill_model,
                                  decode_model)
    raise ValueError(
        f"no healthy sub-slice of {mesh.shape} supports {config.name} "
        f"(dead: {dead})") from last_error


def migrate_caches(caches: Sequence[ShardedKVCache],
                   source_model: ShardedTransformer,
                   target_model: ShardedTransformer
                   ) -> list[ShardedKVCache]:
    """Move live KV caches from one deployment's mesh/plan to another's.

    Host-mediated (one KV-sized copy), reusing the ``as_sharded`` ->
    ``from_global`` -> ``load_prefix`` machinery of
    :meth:`ShardedTransformer.reshard_cache`.  Only valid while the
    source mesh's data is still readable (straggler eviction, planned
    drain) — after a chip *death* the in-flight caches are lost and
    requests must re-prefill instead.
    """
    return source_model.reshard_cache(list(caches), target_model)
