"""Layout plans: which partitioning strategy runs each phase.

The paper's strategies (Section 3):

Feedforward / fused projections:

* ``WS_1D`` — 1D weight-stationary (Megatron-style): weights sharded over
  d_ff on all chips; activations all-gathered/reduce-scattered in full.
* ``WS_2D`` — 2D weight-stationary: weights sharded ``E_x F_yz``;
  activation communication scales as 1/sqrt(n_chips).
* ``WG_X`` / ``WG_XY`` / ``WG_XYZ`` — weight-gathered: weights stored as
  in WS_2D but all-gathered over 1, 2, or all 3 torus axes before use;
  activations are batch-sharded over the gathered axes.

Attention:

* ``HEAD`` — shard the KV cache and attention over heads (classic).
* ``BATCH`` — shard over batch (the optimized multiquery layout of
  Section 3.3, reducing per-chip KV-cache memory by n_chips at the price
  of an all-to-all on the small Q/K/V tensors).

A :class:`LayoutPlan` pairs one of each and is consumed by *both* the
numerical executor (:mod:`repro.layouts`) and the analytical cost model
(:mod:`repro.perf`), so what we measure is what we model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.hardware.topology import Mesh
from repro.model.config import AttentionKind, ModelConfig


class FfnLayoutKind(str, Enum):
    WS_1D = "ws-1d"
    WS_2D = "ws-2d"
    WG_X = "wg-x"
    WG_XY = "wg-xy"
    WG_XYZ = "wg-xyz"

    @property
    def is_weight_gathered(self) -> bool:
        return self in (FfnLayoutKind.WG_X, FfnLayoutKind.WG_XY,
                        FfnLayoutKind.WG_XYZ)

    @property
    def gather_axes(self) -> tuple[str, ...]:
        """Axes the weights are all-gathered over (empty for WS layouts)."""
        return {
            FfnLayoutKind.WS_1D: (),
            FfnLayoutKind.WS_2D: (),
            FfnLayoutKind.WG_X: ("x",),
            FfnLayoutKind.WG_XY: ("x", "y"),
            FfnLayoutKind.WG_XYZ: ("x", "y", "z"),
        }[self]

    @property
    def batch_axes(self) -> tuple[str, ...]:
        """Axes the activations' batch dim is sharded over."""
        return self.gather_axes

    @property
    def residual_e_axes(self) -> tuple[str, ...]:
        """Axes the residual stream's E dim is sharded over."""
        return {
            FfnLayoutKind.WS_1D: ("x", "y", "z"),
            FfnLayoutKind.WS_2D: ("x", "y", "z"),
            FfnLayoutKind.WG_X: ("y", "z"),
            FfnLayoutKind.WG_XY: ("z",),
            FfnLayoutKind.WG_XYZ: (),
        }[self]


class AttentionLayoutKind(str, Enum):
    HEAD = "head"
    BATCH = "batch"


@dataclass(frozen=True)
class LayoutPlan:
    """One phase's partitioning choice."""

    ffn: FfnLayoutKind
    attention: AttentionLayoutKind

    def validate(self, config: ModelConfig, mesh: Mesh) -> None:
        """Check the plan is expressible for this model on this mesh.

        Raises ``ValueError`` with an explanation otherwise.  Mirrors the
        constraints the paper states: batch-sharded attention is the
        *multiquery* optimization (Section 3.3); weight-gathered layouts
        shard batch over the gathered axes, so they attend locally over
        batch and ignore the attention kind.
        """
        if (self.attention is AttentionLayoutKind.BATCH
                and config.n_kv_heads == config.n_heads
                and not self.ffn.is_weight_gathered):
            # Weight-gathered layouts attend locally on their batch shard
            # regardless of the attention kind, so BATCH is fine there.
            # Models with *shared* KV heads (multiquery or grouped-query)
            # are the ones the optimization serves (Section 3.3).
            raise ValueError(
                "batch-sharded attention is defined for models with "
                "shared KV heads (Section 3.3); use HEAD for multihead "
                "attention")
        if self.ffn.is_weight_gathered:
            batch_parts = mesh.group_size(self.ffn.batch_axes)
            if batch_parts < 1:
                raise ValueError("degenerate mesh")
        else:
            head_axes = {"ws-1d": ("x", "y", "z"),
                         "ws-2d": ("y", "z")}[self.ffn.value]
            parts = mesh.group_size(head_axes)
            if config.n_heads % parts:
                raise ValueError(
                    f"{config.n_heads} heads not divisible by {parts} "
                    f"partitions for {self.ffn.value}; pad the head count "
                    f"(Section 4 pads PaLM 48 -> 64 heads)")

    def describe(self) -> str:
        return f"ffn={self.ffn.value}, attention={self.attention.value}"


#: The paper's decode-phase workhorse (Section 4.1: "During the generate
#: phase, we select the 2D weight-stationary layout").
DECODE_PLAN_540B = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH)

#: The high-throughput prefill layout (Table 2: WG XYZ + batch attention).
PREFILL_PLAN_LARGE_BATCH = LayoutPlan(FfnLayoutKind.WG_XYZ,
                                      AttentionLayoutKind.BATCH)

#: The low-latency prefill layout (Table 2: WS 2D + head attention).
PREFILL_PLAN_SMALL_BATCH = LayoutPlan(FfnLayoutKind.WS_2D,
                                      AttentionLayoutKind.HEAD)
