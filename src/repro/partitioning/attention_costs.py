"""Attention memory/cost accounting (Section 3.3, Table 1).

The decisive quantity is the *per-chip* KV-cache footprint, which the
partitioning layout determines:

* **Baseline multiquery, sharded over heads** (Figure 4b): the single KV
  head must be replicated on every chip — per-chip cost is the *full*
  ``B * M * 2 * d_head``.
* **Multihead, sharded over heads** (Figure 4a): heads spread over all
  chips, partially replicated when ``n_chips > n_heads`` — per-chip cost
  ``B * M * 2 * ceil(H / n) * d_head``.
* **Optimized multiquery, sharded over batch** (Figure 4c): per-chip cost
  divided by the full chip count.

Table 1 (max context length) follows directly: the largest M such that the
per-chip KV bytes fit the per-chip KV budget.
"""

from __future__ import annotations

import math

from repro.hardware.topology import Torus3D
from repro.model.config import AttentionKind, ModelConfig
from repro.partitioning.plan import AttentionLayoutKind


def kv_elements_per_chip_per_token(config: ModelConfig,
                                   attention_layout: AttentionLayoutKind,
                                   n_chips: int, batch: int) -> float:
    """Per-chip KV-cache elements per (sequence-)token of context.

    Multiply by ``batch * context_len * dtype_bytes`` /batch... —
    precisely: returns elements stored per chip per (batch-token) of
    context, i.e. per-chip KV bytes = result * batch * M * dtype_bytes.
    """
    per_token = 2 * config.n_layers * config.d_head  # K and V, one head
    if attention_layout is AttentionLayoutKind.BATCH:
        if config.n_kv_heads == config.n_heads:
            raise ValueError(
                "batch-sharded attention requires shared KV heads")
        shards = min(n_chips, batch)
        return per_token * config.n_kv_heads / shards
    # Sharded over heads: KV heads spread over the chips, partially
    # replicated once chips outnumber them (multiquery's single head is
    # fully replicated — Figure 4b; grouped-query sits in between).
    heads_per_chip = math.ceil(config.n_kv_heads / n_chips)
    return per_token * heads_per_chip


def kv_bytes_per_chip(config: ModelConfig,
                      attention_layout: AttentionLayoutKind,
                      n_chips: int, batch: int, context_len: int,
                      dtype_bytes: int = 2) -> float:
    """Total per-chip KV-cache bytes at a batch and context length."""
    per = kv_elements_per_chip_per_token(config, attention_layout, n_chips,
                                         batch)
    return per * batch * context_len * dtype_bytes


def max_context_length(config: ModelConfig,
                       attention_layout: AttentionLayoutKind,
                       n_chips: int, batch: int,
                       kv_budget_per_chip_bytes: float,
                       dtype_bytes: int = 2) -> int:
    """Largest context length whose KV cache fits the per-chip budget.

    Table 1 uses a budget of 30% of per-chip HBM.
    """
    per = kv_elements_per_chip_per_token(config, attention_layout, n_chips,
                                         batch)
    return int(kv_budget_per_chip_bytes // (per * batch * dtype_bytes))


def kv_load_time(config: ModelConfig,
                 attention_layout: AttentionLayoutKind,
                 n_chips: int, batch: int, context_len: int,
                 hbm_bandwidth: float, dtype_bytes: int = 2) -> float:
    """Seconds per decode step spent streaming the KV cache from HBM.

    This is the memory time the batch-sharded layout divides by n_chips —
    the mechanism behind Figure 8's separation at long contexts.
    """
    return kv_bytes_per_chip(config, attention_layout, n_chips, batch,
                             context_len, dtype_bytes) / hbm_bandwidth


def attention_all_to_all_elements(config: ModelConfig, torus: Torus3D,
                                  tokens: float) -> float:
    """Per-chip elements moved by the Q/O all-to-alls of the batch layout.

    Q and the attention output each carry ``tokens * H * D`` elements,
    sharded over all chips during the exchange — orders of magnitude
    smaller than the KV cache they save loading (Section 3.3).
    """
    per_tensor = tokens * config.n_heads * config.d_head / torus.num_chips
    return 2.0 * per_tensor
