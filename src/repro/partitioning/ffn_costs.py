"""Closed-form feedforward communication costs (Section 3.2, Appendix A.2).

All volumes are *per-chip* element counts (multiply by the activation or
weight byte-width to get bytes), matching the Appendix A.1 convention where
an all-gather costs its per-chip output and a reduce-scatter its per-chip
input.  ``tokens`` always means batch-in-tokens, ``B * L``.

The headline results encoded here:

* 1D weight-stationary: ``V = 2 * tokens * E`` — constant in chip count.
* 2D weight-stationary: ``V = 2 * tokens * (E/X + F/YZ)``, minimized by
  ``X = sqrt(n * E / F)``; with F = 4E this gives ``X = 0.5 * sqrt(n)`` and
  ``V = 8 * tokens * E / sqrt(n)``.
* Weight-gathered over N chips: ``V = 2*E*F*N/n + 2*tokens*E/N`` (weights
  + activations), minimized by ``N = sqrt(tokens * n / F)``.

Figure 3 plots exactly these expressions; the layout selector picks the
argmin; and tests cross-check them against the measured communication log
of the virtual-mesh executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.topology import Torus3D
from repro.partitioning.plan import FfnLayoutKind


def ws1d_volume(tokens: float, d_model: int) -> float:
    """Per-chip comm volume (elements) for 1D weight-stationary."""
    return 2.0 * tokens * d_model


def ws2d_volume(tokens: float, d_model: int, d_ff: int,
                x: int, yz: int) -> float:
    """Per-chip comm volume for 2D weight-stationary with a given split."""
    return 2.0 * tokens * (d_model / x + d_ff / yz)


def weight_gathered_volume(tokens: float, d_model: int, d_ff: int,
                           n_chips: int, n_gathered: int) -> float:
    """Per-chip comm volume for a weight-gathered layout.

    ``n_gathered`` is N: the number of chips weights are all-gathered over
    (X, XY, or XYZ).  Both weight matrices (E x F and F x E) are gathered,
    and the activations see one reduce-scatter/all-gather pair at volume
    ``tokens * E / N`` each (Appendix A.2.2).
    """
    weights = 2.0 * d_model * d_ff * n_gathered / n_chips
    activations = 2.0 * tokens * d_model / n_gathered
    return weights + activations


def optimal_ws2d_x(n_chips: int, d_model: int, d_ff: int) -> float:
    """The continuous optimum ``X = sqrt(n * E / F)`` (Appendix A.2.1)."""
    return math.sqrt(n_chips * d_model / d_ff)


def optimal_weight_gathered_n(tokens: float, n_chips: int,
                              d_ff: int) -> float:
    """The continuous optimum ``N = sqrt(tokens * n / F)`` (A.2.2)."""
    return math.sqrt(tokens * n_chips / d_ff)


def ws2d_min_volume(tokens: float, d_model: int, d_ff: int,
                    n_chips: int) -> float:
    """Volume at the continuous optimum: ``4 * tokens * sqrt(E*F/n)``.

    With F = 4E this is the paper's ``8 * tokens * E / sqrt(n)``.
    """
    return 4.0 * tokens * math.sqrt(d_model * d_ff / n_chips)


def weight_gathered_min_volume(tokens: float, d_model: int, d_ff: int,
                               n_chips: int) -> float:
    """Volume at optimal N: ``4 * E * sqrt(tokens * F / n)`` (A.2.2)."""
    return 4.0 * d_model * math.sqrt(tokens * d_ff / n_chips)


# ---------------------------------------------------------------------------
# Torus-constrained concrete layouts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Ws2dSplit:
    """A concrete assignment of torus axes to the weight grid.

    ``x_size`` chips partition d_model and ``yz_size`` chips partition
    d_ff; by convention (and matching the executor) the physical ``x``
    axis carries d_model and ``y*z`` carry d_ff, but for cost purposes any
    axis regrouping with the same sizes is equivalent.
    """

    x_size: int
    yz_size: int

    @property
    def n_chips(self) -> int:
        return self.x_size * self.yz_size


def best_ws2d_split(torus: Torus3D, d_model: int, d_ff: int) -> Ws2dSplit:
    """The volume-minimizing split of a torus into (E-group, F-group).

    Enumerates the 2^3 partitions of the torus axes into the group that
    shards d_model and the group that shards d_ff.
    """
    sizes = {"x": torus.x, "y": torus.y, "z": torus.z}
    best = None
    for e_group in _subsets(("x", "y", "z")):
        x_size = _prod(sizes[a] for a in e_group)
        yz_size = torus.num_chips // x_size
        volume = ws2d_volume(1.0, d_model, d_ff, x_size, yz_size)
        if best is None or volume < best[0]:
            best = (volume, Ws2dSplit(x_size, yz_size))
    return best[1]


def weight_gathered_n(torus: Torus3D, kind: FfnLayoutKind) -> int:
    """The N (chips gathered over) of a weight-gathered layout variant."""
    return torus.group_size(kind.gather_axes)


def ffn_volume(kind: FfnLayoutKind, torus: Torus3D, tokens: float,
               d_model: int, d_ff: int) -> float:
    """Per-chip FFN comm volume (elements) for any layout on a torus."""
    if kind is FfnLayoutKind.WS_1D:
        return ws1d_volume(tokens, d_model)
    if kind is FfnLayoutKind.WS_2D:
        split = best_ws2d_split(torus, d_model, d_ff)
        return ws2d_volume(tokens, d_model, d_ff, split.x_size,
                           split.yz_size)
    n = weight_gathered_n(torus, kind)
    return weight_gathered_volume(tokens, d_model, d_ff, torus.num_chips, n)


def _subsets(items):
    for mask in range(2 ** len(items)):
        yield tuple(items[i] for i in range(len(items)) if mask >> i & 1)


def _prod(values) -> int:
    result = 1
    for v in values:
        result *= v
    return result
