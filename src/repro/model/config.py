"""Transformer model configurations and cost accounting (Section 2.2).

:class:`ModelConfig` captures the architecture hyperparameters the paper's
analysis depends on (Table D.1 naming): ``n_layers``, ``d_model`` (E),
``d_ff`` (F), ``n_heads`` (H), ``d_head``, attention variant (multiquery =
one KV head), block formulation (parallel vs. serial), and FFN style
(PaLM's SwiGLU has three weight matrices; Megatron's MLP has two).

The derived properties implement the paper's accounting rules:

* an N-parameter decoder-only model costs ``2N`` matmul FLOPs per token
  (Kaplan et al., 2020; Section 2 "Compute costs");
* the KV cache costs ``2 * n_layers * n_kv_heads * d_head`` elements per
  token (Section 2.1 / Section 3.3);
* attention score/value matmuls add ``4 * n_layers * n_heads * d_head``
  FLOPs per token per token of context (small for large models, but
  included where the paper includes them).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum


class AttentionKind(str, Enum):
    """Multihead vs. multiquery attention (Section 3.3)."""

    MULTIHEAD = "multihead"
    MULTIQUERY = "multiquery"


class FfnKind(str, Enum):
    """FFN style: PaLM's 3-matrix SwiGLU or the classic 2-matrix MLP."""

    SWIGLU = "swiglu"
    MLP = "mlp"


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters of a decoder-only Transformer."""

    name: str
    n_layers: int
    d_model: int
    d_ff: int
    n_heads: int
    d_head: int
    vocab_size: int
    attention: AttentionKind = AttentionKind.MULTIQUERY
    ffn: FfnKind = FfnKind.SWIGLU
    parallel_block: bool = True
    rope_theta: float = 10_000.0
    #: Optional grouped-query attention (GQA): number of shared KV heads,
    #: strictly between the paper's endpoints of 1 (multiquery) and
    #: ``n_heads`` (multihead).  ``None`` derives from ``attention``.
    kv_heads: int | None = None

    def __post_init__(self) -> None:
        for field in ("n_layers", "d_model", "d_ff", "n_heads", "d_head",
                      "vocab_size"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")
        if self.kv_heads is not None:
            if not 1 <= self.kv_heads <= self.n_heads:
                raise ValueError(
                    f"kv_heads must be in [1, {self.n_heads}]")
            if self.n_heads % self.kv_heads:
                raise ValueError(
                    f"{self.n_heads} query heads not divisible by "
                    f"{self.kv_heads} KV heads")

    # -- attention shape ----------------------------------------------------

    @property
    def n_kv_heads(self) -> int:
        """KV heads: 1 (multiquery), ``n_heads`` (multihead), or the GQA
        override in between."""
        if self.kv_heads is not None:
            return self.kv_heads
        if self.attention is AttentionKind.MULTIQUERY:
            return 1
        return self.n_heads

    @property
    def ffn_matrices(self) -> int:
        return 3 if self.ffn is FfnKind.SWIGLU else 2

    # -- parameter counts ---------------------------------------------------

    @property
    def attn_params_per_layer(self) -> int:
        qo = 2 * self.d_model * self.n_heads * self.d_head
        kv = 2 * self.d_model * self.n_kv_heads * self.d_head
        return qo + kv

    @property
    def ffn_params_per_layer(self) -> int:
        return self.ffn_matrices * self.d_model * self.d_ff

    @property
    def params_per_layer(self) -> int:
        return self.attn_params_per_layer + self.ffn_params_per_layer

    @property
    def embedding_params(self) -> int:
        """Token embedding table (tied with the output projection)."""
        return self.vocab_size * self.d_model

    @property
    def n_params(self) -> int:
        return self.n_layers * self.params_per_layer + self.embedding_params

    # -- FLOPs ---------------------------------------------------------------

    @property
    def matmul_flops_per_token(self) -> float:
        """The paper's ``2N`` rule: matmul FLOPs per token seen."""
        return 2.0 * self.n_params

    def attention_flops_per_token(self, context_len: int) -> float:
        """QK^T and attention-weighted-V FLOPs per token at a context length.

        Excluded from the 2N rule (Section 2 notes they are typically small
        for large models) but needed for long-context accounting.
        """
        per_layer = 4.0 * self.n_heads * self.d_head * context_len
        return self.n_layers * per_layer

    # -- memory ---------------------------------------------------------------

    def weight_bytes(self, dtype_bytes: int = 2) -> int:
        """Total bytes of model weights at the given storage width."""
        return self.n_params * dtype_bytes

    def kv_cache_bytes_per_token(self, dtype_bytes: int = 2) -> int:
        """KV cache bytes per cached token (Section 3.3 accounting)."""
        return 2 * self.n_layers * self.n_kv_heads * self.d_head * dtype_bytes

    def kv_cache_bytes(self, batch: int, context_len: int,
                       dtype_bytes: int = 2) -> int:
        return batch * context_len * self.kv_cache_bytes_per_token(dtype_bytes)

    # -- variants --------------------------------------------------------------

    def replace(self, **kwargs) -> "ModelConfig":
        """Derive a modified config (e.g. the 8-layer Figure 8 variant)."""
        return dataclasses.replace(self, **kwargs)

    def with_padded_heads(self, n_heads: int) -> "ModelConfig":
        """Pad the head count for divisibility (Section 4 "Methodology").

        PaLM 540B pads 48 -> 64 heads to partition on 64+ chips; this adds
        parameters (the paper reports +18B) and is a pure layout decision.
        """
        if n_heads < self.n_heads:
            raise ValueError("padding cannot reduce the head count")
        return self.replace(name=f"{self.name}-pad{n_heads}",
                            n_heads=n_heads)

    def __str__(self) -> str:
        return (f"{self.name}: {self.n_layers}L x (E={self.d_model}, "
                f"F={self.d_ff}, H={self.n_heads}x{self.d_head}) "
                f"{self.attention.value}, "
                f"{'parallel' if self.parallel_block else 'serial'} block, "
                f"{self.n_params / 1e9:.1f}B params")
