"""Rotary position embeddings (RoPE), as used by PaLM.

RoPE acts elementwise per (position, head-dim-pair), so it commutes with
sharding over batch or heads — which is what lets the partitioned attention
layouts of Section 3.3 apply it locally on each chip.
"""

from __future__ import annotations

import numpy as np


def rope_frequencies(d_head: int, theta: float = 10_000.0) -> np.ndarray:
    """Inverse frequencies for each rotated pair, shape ``[d_head // 2]``."""
    if d_head % 2:
        raise ValueError(f"d_head must be even for RoPE, got {d_head}")
    exponents = np.arange(0, d_head, 2, dtype=np.float64) / d_head
    return theta ** -exponents


def rope_tables(positions: np.ndarray, d_head: int,
                theta: float = 10_000.0) -> tuple[np.ndarray, np.ndarray]:
    """The ``(cos, sin)`` rotation tables for ``positions``.

    Shared by every query/key rotation at the same positions — the
    capture-replay optimizer computes them once per step and feeds
    :func:`apply_rope_cached`, which is bit-identical to
    :func:`apply_rope` because the tables here are byte-for-byte the
    arrays the direct path builds internally.
    """
    freqs = rope_frequencies(d_head, theta)
    angles = np.asarray(positions, dtype=np.float64)[..., None] * freqs
    cos = np.cos(angles)[..., None, :]  # broadcast over the heads axis
    sin = np.sin(angles)[..., None, :]
    return cos, sin


def apply_rope_cached(x: np.ndarray,
                      tables: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Rotate with precomputed tables; same ops as :func:`apply_rope`."""
    cos, sin = tables
    x1, x2 = x[..., 0::2], x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def apply_rope(x: np.ndarray, positions: np.ndarray,
               theta: float = 10_000.0) -> np.ndarray:
    """Rotate query/key vectors by position-dependent angles.

    Args:
        x: Array of shape ``[..., L, n_heads, d_head]`` (heads axis may be 1).
        positions: Integer positions of shape ``[L]`` or broadcastable to
            ``x.shape[:-2]`` + ``(L,)``.
        theta: RoPE base.

    Returns:
        Array of the same shape and dtype as ``x``.
    """
    return apply_rope_cached(x, rope_tables(positions, x.shape[-1], theta))
