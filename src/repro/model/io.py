"""Weight checkpoint save/load (single ``.npz`` file).

Deterministic random weights make checkpoints reproducible from a seed,
but a credible library still round-trips weights to disk: quantized
deployments, regression fixtures, and cross-process serving all need it.
The format is a flat ``.npz`` with ``layer{i}/{name}`` keys plus a small
JSON header carrying the :class:`~repro.model.config.ModelConfig`.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.model.config import AttentionKind, FfnKind, ModelConfig
from repro.model.reference import LayerWeights, TransformerWeights

_HEADER_KEY = "__config_json__"
_LAYER_TENSORS = ("ln_scale", "wq", "wk", "wv", "wo", "w_in", "w_out",
                  "w_gate", "ln2_scale")


def config_to_dict(config: ModelConfig) -> dict:
    return {
        "name": config.name,
        "n_layers": config.n_layers,
        "d_model": config.d_model,
        "d_ff": config.d_ff,
        "n_heads": config.n_heads,
        "d_head": config.d_head,
        "vocab_size": config.vocab_size,
        "attention": config.attention.value,
        "ffn": config.ffn.value,
        "parallel_block": config.parallel_block,
        "rope_theta": config.rope_theta,
    }


def config_from_dict(payload: dict) -> ModelConfig:
    payload = dict(payload)
    payload["attention"] = AttentionKind(payload["attention"])
    payload["ffn"] = FfnKind(payload["ffn"])
    return ModelConfig(**payload)


def save_weights(weights: TransformerWeights, path) -> None:
    """Write a checkpoint; the suffix should be ``.npz``."""
    arrays: dict[str, np.ndarray] = {
        _HEADER_KEY: np.frombuffer(
            json.dumps(config_to_dict(weights.config)).encode(),
            dtype=np.uint8),
        "embedding": weights.embedding,
        "final_ln_scale": weights.final_ln_scale,
    }
    for i, layer in enumerate(weights.layers):
        for name in _LAYER_TENSORS:
            tensor = getattr(layer, name)
            if tensor is not None:
                arrays[f"layer{i}/{name}"] = tensor
    np.savez(path, **arrays)


def load_weights(path) -> TransformerWeights:
    """Read a checkpoint written by :func:`save_weights`.

    Validates layer count and tensor shapes against the embedded config.
    """
    path = pathlib.Path(path)
    with np.load(path) as data:
        header = bytes(data[_HEADER_KEY]).decode()
        config = config_from_dict(json.loads(header))
        layers = []
        for i in range(config.n_layers):
            fields = {}
            for name in _LAYER_TENSORS:
                key = f"layer{i}/{name}"
                fields[name] = data[key] if key in data.files else None
            if fields["ln_scale"] is None or fields["wq"] is None:
                raise ValueError(
                    f"checkpoint {path} is missing layer {i} tensors")
            layers.append(LayerWeights(**fields))
        weights = TransformerWeights(
            config=config,
            embedding=data["embedding"],
            layers=layers,
            final_ln_scale=data["final_ln_scale"],
        )
    if weights.embedding.shape != (config.vocab_size, config.d_model):
        raise ValueError(
            f"embedding shape {weights.embedding.shape} does not match "
            f"config {config.vocab_size}x{config.d_model}")
    if weights.n_params != config.n_params:
        raise ValueError(
            f"checkpoint holds {weights.n_params} parameters, config "
            f"expects {config.n_params}")
    return weights
