"""Transformer model substrate: configs, reference numerics, sampling."""

from repro.model.config import AttentionKind, FfnKind, ModelConfig
from repro.model.presets import (
    MEGATRON_530B,
    MODEL_PRESETS,
    PALM_8B,
    PALM_62B,
    PALM_540B,
    PALM_540B_8LAYER,
    PALM_540B_8LAYER_MULTIHEAD,
    PALM_540B_MULTIHEAD,
    PALM_540B_PADDED,
    PALM_FAMILY,
    get_model,
    tiny_test_config,
)
from repro.model.io import load_weights, save_weights
from repro.model.reference import (
    KVCache,
    LayerWeights,
    ReferenceTransformer,
    TransformerWeights,
    attention,
    init_weights,
)
from repro.model.sampling import greedy, make_sampler, sample

__all__ = [
    "AttentionKind",
    "FfnKind",
    "KVCache",
    "LayerWeights",
    "MEGATRON_530B",
    "MODEL_PRESETS",
    "ModelConfig",
    "PALM_540B",
    "PALM_540B_8LAYER",
    "PALM_540B_8LAYER_MULTIHEAD",
    "PALM_540B_MULTIHEAD",
    "PALM_540B_PADDED",
    "PALM_62B",
    "PALM_8B",
    "PALM_FAMILY",
    "ReferenceTransformer",
    "TransformerWeights",
    "attention",
    "get_model",
    "greedy",
    "init_weights",
    "load_weights",
    "make_sampler",
    "save_weights",
    "sample",
    "tiny_test_config",
]
