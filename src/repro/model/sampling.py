"""Decode-time sampling: greedy, temperature, top-k, top-p.

Section 3.5 lists "faster top-k/top-p implementations" among the low-level
optimizations.  The fast paths here use ``np.partition`` (O(V) selection)
instead of a full sort (O(V log V)); the naive sorted implementations are
kept as gold references for tests and for the sampling micro-benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.model.functional import softmax


def greedy(logits: np.ndarray) -> np.ndarray:
    """Argmax sampling: ``[B, V] -> [B]``."""
    return np.argmax(logits, axis=-1)


def apply_temperature(logits: np.ndarray, temperature: float) -> np.ndarray:
    if temperature <= 0:
        raise ValueError("temperature must be > 0; use greedy() for argmax")
    return logits / temperature


def top_k_mask(logits: np.ndarray, k: int) -> np.ndarray:
    """Mask all but the top-k logits per row to ``-inf`` (selection-based)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k >= logits.shape[-1]:
        return logits
    # kth largest per row via partition: O(V) instead of a sort.
    thresholds = np.partition(logits, -k, axis=-1)[..., -k, None]
    return np.where(logits >= thresholds, logits, -np.inf)


def top_k_mask_sorted(logits: np.ndarray, k: int) -> np.ndarray:
    """Reference top-k via full sort (slow path, for verification)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k >= logits.shape[-1]:
        return logits
    order = np.sort(logits, axis=-1)
    thresholds = order[..., -k, None]
    return np.where(logits >= thresholds, logits, -np.inf)


def top_p_mask(logits: np.ndarray, p: float) -> np.ndarray:
    """Nucleus filtering: keep the smallest set of tokens with mass >= p.

    The most probable token is always kept.  Ties are resolved by keeping
    everything with probability equal to the last admitted token's.
    """
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    probs = softmax(logits)
    order = np.argsort(probs, axis=-1)[..., ::-1]
    sorted_probs = np.take_along_axis(probs, order, axis=-1)
    cumulative = np.cumsum(sorted_probs, axis=-1)
    # Positions strictly after the p-threshold are dropped.
    keep_sorted = (cumulative - sorted_probs) < p
    keep = np.zeros_like(keep_sorted)
    np.put_along_axis(keep, order, keep_sorted, axis=-1)
    return np.where(keep, logits, -np.inf)


def sample(logits: np.ndarray, rng: np.random.Generator, *,
           temperature: float = 1.0, top_k: int | None = None,
           top_p: float | None = None) -> np.ndarray:
    """Sample next tokens ``[B]`` from logits ``[B, V]``.

    Filters compose in the conventional order: temperature, then top-k,
    then top-p.
    """
    logits = apply_temperature(logits, temperature)
    if top_k is not None:
        logits = top_k_mask(logits, top_k)
    if top_p is not None:
        logits = top_p_mask(logits, top_p)
    probs = softmax(logits)
    # Vectorized categorical sampling via inverse-CDF.
    cumulative = np.cumsum(probs, axis=-1)
    draws = rng.random(size=(logits.shape[0], 1))
    return np.argmax(cumulative > draws, axis=-1)


def make_sampler(*, temperature: float = 1.0, top_k: int | None = None,
                 top_p: float | None = None):
    """A ``(logits, rng) -> tokens`` callable for ``generate()``."""
    def sampler(logits, rng):
        return sample(logits, rng, temperature=temperature, top_k=top_k,
                      top_p=top_p)
    return sampler
