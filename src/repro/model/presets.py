"""Model presets used in the paper's evaluation.

PaLM family hyperparameters from Chowdhery et al. (2022); Megatron-Turing
NLG 530B from Table D.1.  Parameter counts are validated by tests against
the published totals (8.6B / 62.5B / 540.35B / ~530B).
"""

from __future__ import annotations

from repro.model.config import AttentionKind, FfnKind, ModelConfig

#: PaLM 8B: 32 layers, d_model 4096, 16 heads of 256.
PALM_8B = ModelConfig(
    name="palm-8b",
    n_layers=32,
    d_model=4096,
    d_ff=16384,
    n_heads=16,
    d_head=256,
    vocab_size=256_000,
    attention=AttentionKind.MULTIQUERY,
    ffn=FfnKind.SWIGLU,
    parallel_block=True,
)

#: PaLM 62B: 64 layers, d_model 8192, 32 heads of 256.
PALM_62B = ModelConfig(
    name="palm-62b",
    n_layers=64,
    d_model=8192,
    d_ff=32768,
    n_heads=32,
    d_head=256,
    vocab_size=256_000,
    attention=AttentionKind.MULTIQUERY,
    ffn=FfnKind.SWIGLU,
    parallel_block=True,
)

#: PaLM 540B: 118 layers, d_model 18432, 48 heads of 256 (Table D.1).
PALM_540B = ModelConfig(
    name="palm-540b",
    n_layers=118,
    d_model=18432,
    d_ff=73728,
    n_heads=48,
    d_head=256,
    vocab_size=256_000,
    attention=AttentionKind.MULTIQUERY,
    ffn=FfnKind.SWIGLU,
    parallel_block=True,
)

#: The serving variant with heads padded 48 -> 64 for 64-way partitioning
#: (Section 4 "Methodology"; adds ~18B parameters at a ~3% MFU cost).
PALM_540B_PADDED = PALM_540B.with_padded_heads(64)

#: The multihead control variant of Section 4.2 / Table 1: d_head halved
#: 256 -> 128 to keep attention parameter count roughly constant.
PALM_540B_MULTIHEAD = PALM_540B.replace(
    name="palm-540b-multihead",
    attention=AttentionKind.MULTIHEAD,
    d_head=128,
)

#: The 8-layer PaLM 540B variant used in Figure 8's attention study.
PALM_540B_8LAYER = PALM_540B_PADDED.replace(
    name="palm-540b-8layer", n_layers=8)
PALM_540B_8LAYER_MULTIHEAD = PALM_540B_MULTIHEAD.replace(
    name="palm-540b-8layer-multihead", n_layers=8)

#: Megatron-Turing NLG 530B (Table D.1): multihead, serial block, 2-matrix
#: MLP.  Vocab is GPT-2 BPE padded to 51200 (Smith et al., 2022).
MEGATRON_530B = ModelConfig(
    name="megatron-530b",
    n_layers=105,
    d_model=20480,
    d_ff=81920,
    n_heads=128,
    d_head=160,
    vocab_size=51_200,
    attention=AttentionKind.MULTIHEAD,
    ffn=FfnKind.MLP,
    parallel_block=False,
)

PALM_FAMILY = (PALM_8B, PALM_62B, PALM_540B)

MODEL_PRESETS = {m.name: m for m in (
    PALM_8B, PALM_62B, PALM_540B, PALM_540B_PADDED, PALM_540B_MULTIHEAD,
    PALM_540B_8LAYER, PALM_540B_8LAYER_MULTIHEAD, MEGATRON_530B)}


def get_model(name: str) -> ModelConfig:
    """Look up a model preset by name (e.g. ``"palm-540b"``)."""
    try:
        return MODEL_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_PRESETS))
        raise KeyError(
            f"unknown model {name!r}; known models: {known}") from None


def tiny_test_config(*, n_layers: int = 2, d_model: int = 16, d_ff: int = 32,
                     n_heads: int = 4, d_head: int = 8,
                     vocab_size: int = 64,
                     attention: AttentionKind = AttentionKind.MULTIQUERY,
                     ffn: FfnKind = FfnKind.SWIGLU,
                     parallel_block: bool = True) -> ModelConfig:
    """A small config for numerics tests on the virtual mesh."""
    return ModelConfig(
        name="tiny", n_layers=n_layers, d_model=d_model, d_ff=d_ff,
        n_heads=n_heads, d_head=d_head, vocab_size=vocab_size,
        attention=attention, ffn=ffn, parallel_block=parallel_block)
