"""Single-device reference Transformer (the numerical gold standard).

This is a straightforward numpy implementation of the PaLM-style
decoder-only architecture (multiquery or multihead attention, parallel or
serial block, SwiGLU or MLP feedforward, RoPE positions, tied embeddings).
Every partitioned layout in :mod:`repro.layouts` is validated to produce
the same logits as this module, which is the reproduction's substitute for
"runs the real PaLM weights correctly".

Weight tensor shapes (per layer):

==============  =======================  =========================
tensor          shape                    role
==============  =======================  =========================
``ln_scale``    ``[E]``                  pre-block RMSNorm scale
``ln2_scale``   ``[E]``                  serial-block FFN norm
``wq``          ``[E, H, D]``            query projection
``wk``, ``wv``  ``[E, K, D]``            key/value (K=1 multiquery)
``wo``          ``[H, D, E]``            attention output
``w_in``        ``[E, F]``               FFN in
``w_gate``      ``[E, F]``               SwiGLU gate (SwiGLU only)
``w_out``       ``[F, E]``               FFN out
==============  =======================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.config import AttentionKind, FfnKind, ModelConfig
from repro.model.functional import (
    causal_mask,
    masked_softmax,
    rmsnorm,
    swish,
)
from repro.model.rope import apply_rope


@dataclass
class LayerWeights:
    ln_scale: np.ndarray
    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_in: np.ndarray
    w_out: np.ndarray
    w_gate: np.ndarray | None = None
    ln2_scale: np.ndarray | None = None


@dataclass
class TransformerWeights:
    config: ModelConfig
    embedding: np.ndarray            # [V, E], tied with the output head
    layers: list[LayerWeights]
    final_ln_scale: np.ndarray       # [E]

    @property
    def n_params(self) -> int:
        total = self.embedding.size
        for layer in self.layers:
            for name in ("wq", "wk", "wv", "wo", "w_in", "w_out", "w_gate"):
                tensor = getattr(layer, name)
                if tensor is not None:
                    total += tensor.size
        return total


def init_weights(config: ModelConfig, seed: int = 0,
                 dtype=np.float64, scale: float = 0.02
                 ) -> TransformerWeights:
    """Deterministic random weights at the config's shapes.

    Performance depends only on shapes, so random weights exercise exactly
    the tensor program that trained weights would (DESIGN.md, Section 2).
    """
    rng = np.random.default_rng(seed)
    e, f = config.d_model, config.d_ff
    h, k, d = config.n_heads, config.n_kv_heads, config.d_head

    def w(*shape):
        return (rng.standard_normal(shape) * scale).astype(dtype)

    layers = []
    for _ in range(config.n_layers):
        layers.append(LayerWeights(
            ln_scale=np.ones(e, dtype=dtype),
            wq=w(e, h, d),
            wk=w(e, k, d),
            wv=w(e, k, d),
            wo=w(h, d, e),
            w_in=w(e, f),
            w_out=w(f, e),
            w_gate=w(e, f) if config.ffn is FfnKind.SWIGLU else None,
            ln2_scale=(None if config.parallel_block
                       else np.ones(e, dtype=dtype)),
        ))
    return TransformerWeights(
        config=config,
        embedding=w(config.vocab_size, e),
        layers=layers,
        final_ln_scale=np.ones(e, dtype=dtype),
    )


@dataclass
class KVCache:
    """Per-sequence attention history: ``k``/``v`` of ``[B, T, K, D]``."""

    k: np.ndarray
    v: np.ndarray
    length: int = 0

    @classmethod
    def empty(cls, batch: int, max_len: int, n_kv_heads: int, d_head: int,
              dtype=np.float64) -> "KVCache":
        shape = (batch, max_len, n_kv_heads, d_head)
        return cls(k=np.zeros(shape, dtype=dtype),
                   v=np.zeros(shape, dtype=dtype))

    @property
    def max_len(self) -> int:
        return self.k.shape[1]

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        n = k_new.shape[1]
        if self.length + n > self.max_len:
            raise ValueError(
                f"KV cache overflow: {self.length} + {n} > {self.max_len}")
        self.k[:, self.length:self.length + n] = k_new
        self.v[:, self.length:self.length + n] = v_new
        self.length += n

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        return self.k[:, :self.length], self.v[:, :self.length]


def attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
              q_offset: int, mask: np.ndarray | None = None) -> np.ndarray:
    """Causal scaled-dot-product attention with grouped KV heads.

    Args:
        q: ``[B, L, H, D]`` queries.
        k, v: ``[B, M, K, D]`` full key/value history (K divides H).
        q_offset: Global position of the first query (for the causal mask).
        mask: Optional override of the attention mask, ``[L, M]`` or
            ``[B, 1, L, M]`` broadcastable, True where attention is
            allowed.  Used for packed sequences (segment masking); when
            omitted, the plain causal mask applies.

    Returns:
        ``[B, L, H, D]`` attention outputs.
    """
    h, kv = q.shape[2], k.shape[2]
    if h % kv:
        raise ValueError(f"{h} query heads not divisible by {kv} KV heads")
    if kv != h:  # broadcast shared KV heads across the query-head groups
        b, m, d = k.shape[0], k.shape[1], k.shape[3]
        k = np.broadcast_to(k[:, :, :, None, :],
                            (b, m, kv, h // kv, d)).reshape(b, m, h, d)
        v = np.broadcast_to(v[:, :, :, None, :],
                            (b, m, kv, h // kv, d)).reshape(b, m, h, d)
    scale = 1.0 / np.sqrt(q.shape[-1])
    scores = np.einsum("blhd,bmhd->bhlm", q, k) * scale
    if mask is None:
        mask = causal_mask(q.shape[1], k.shape[1], q_offset)
    probs = masked_softmax(scores, mask)
    return np.einsum("bhlm,bmhd->blhd", probs, v)


class ReferenceTransformer:
    """Unsharded forward pass; prefill + autoregressive decode."""

    def __init__(self, weights: TransformerWeights):
        self.weights = weights
        self.config = weights.config

    # -- layer pieces -------------------------------------------------------

    def _attn(self, y: np.ndarray, layer: LayerWeights, cache: KVCache,
              positions: np.ndarray,
              mask: np.ndarray | None = None) -> np.ndarray:
        q = np.einsum("ble,ehd->blhd", y, layer.wq)
        k = np.einsum("ble,ekd->blkd", y, layer.wk)
        v = np.einsum("ble,ekd->blkd", y, layer.wv)
        theta = self.config.rope_theta
        q = apply_rope(q, positions, theta)
        k = apply_rope(k, positions, theta)
        q_offset = cache.length
        cache.append(k, v)
        k_all, v_all = cache.view()
        out = attention(q, k_all, v_all, q_offset, mask=mask)
        return np.einsum("blhd,hde->ble", out, layer.wo)

    def _ffn(self, y: np.ndarray, layer: LayerWeights) -> np.ndarray:
        hidden = swish(y @ layer.w_in)
        if self.config.ffn is FfnKind.SWIGLU:
            hidden = hidden * (y @ layer.w_gate)
        return hidden @ layer.w_out

    def _block(self, x: np.ndarray, layer: LayerWeights, cache: KVCache,
               positions: np.ndarray,
               mask: np.ndarray | None = None) -> np.ndarray:
        if self.config.parallel_block:
            # One shared norm; attention and FFN applied in parallel and
            # summed (Section 3.4).
            y = rmsnorm(x, layer.ln_scale)
            return x + self._attn(y, layer, cache, positions, mask) + \
                self._ffn(y, layer)
        x = x + self._attn(rmsnorm(x, layer.ln_scale), layer, cache,
                           positions, mask)
        return x + self._ffn(rmsnorm(x, layer.ln2_scale), layer)

    # -- public API -----------------------------------------------------------

    def new_cache(self, batch: int, max_len: int) -> list[KVCache]:
        cfg = self.config
        return [KVCache.empty(batch, max_len, cfg.n_kv_heads, cfg.d_head,
                              dtype=self.weights.embedding.dtype)
                for _ in range(cfg.n_layers)]

    def forward(self, tokens: np.ndarray, caches: list[KVCache]
                ) -> np.ndarray:
        """Run one forward pass over ``tokens`` ``[B, L]``, appending to the
        caches, and return logits ``[B, L, V]``.

        Used for both phases: prefill passes the whole prompt (L = prompt
        length), decode passes one token per sequence (L = 1).
        """
        w = self.weights
        offset = caches[0].length
        positions = np.arange(tokens.shape[1]) + offset
        x = w.embedding[tokens]
        for layer, cache in zip(w.layers, caches):
            x = self._block(x, layer, cache, positions)
        x = rmsnorm(x, w.final_ln_scale)
        return np.einsum("ble,ve->blv", x, w.embedding)

    def forward_packed(self, tokens: np.ndarray,
                       segment_ids: np.ndarray) -> np.ndarray:
        """One forward pass over *packed* sequences (EffectiveTransformer).

        Multiple prompts are concatenated along the length axis;
        ``segment_ids`` ``[B, T]`` (non-decreasing per row) mark prompt
        boundaries.  Positions restart at each segment and attention is
        masked to (causal AND same-segment), so the logits for every
        packed prompt equal those of running it alone — tested in
        ``tests/unit/test_packing.py``.

        Returns logits ``[B, T, V]``.  Packed passes are for scoring /
        prefill-style workloads; they do not populate a reusable KV cache.
        """
        if segment_ids.shape != tokens.shape:
            raise ValueError("segment_ids must match tokens shape")
        if (np.diff(segment_ids, axis=1) < 0).any():
            raise ValueError("segments must be contiguous (non-decreasing)")
        b, t = tokens.shape
        idx = np.arange(t)
        is_start = np.ones_like(segment_ids, dtype=bool)
        is_start[:, 1:] = segment_ids[:, 1:] != segment_ids[:, :-1]
        start_index = np.maximum.accumulate(
            np.where(is_start, idx, 0), axis=1)
        positions = idx[None, :] - start_index

        same_segment = segment_ids[:, :, None] == segment_ids[:, None, :]
        causal = idx[None, :, None] >= idx[None, None, :]
        mask = (same_segment & causal)[:, None, :, :]  # [B, 1, T, T]

        w = self.weights
        caches = self.new_cache(b, t)
        x = w.embedding[tokens]
        for layer, cache in zip(w.layers, caches):
            x = self._block(x, layer, cache, positions, mask)
        x = rmsnorm(x, w.final_ln_scale)
        return np.einsum("ble,ve->blv", x, w.embedding)

    def prefill(self, tokens: np.ndarray, max_len: int
                ) -> tuple[np.ndarray, list[KVCache]]:
        """Process the prompt; returns last-position logits and the caches."""
        caches = self.new_cache(tokens.shape[0], max_len)
        logits = self.forward(tokens, caches)
        return logits[:, -1], caches

    def decode_step(self, tokens: np.ndarray, caches: list[KVCache]
                    ) -> np.ndarray:
        """One generation step: ``tokens`` ``[B]`` -> next logits ``[B, V]``."""
        logits = self.forward(tokens[:, None], caches)
        return logits[:, -1]

    def generate(self, prompt: np.ndarray, n_steps: int,
                 sampler=None, rng: np.random.Generator | None = None
                 ) -> np.ndarray:
        """Greedy (or sampled) generation of ``n_steps`` tokens.

        Returns ``[B, prompt_len + n_steps]`` including the prompt.
        """
        from repro.model.sampling import greedy

        sampler = sampler or (lambda logits, rng: greedy(logits))
        rng = rng or np.random.default_rng(0)
        max_len = prompt.shape[1] + n_steps
        logits, caches = self.prefill(prompt, max_len)
        tokens = [prompt]
        current = sampler(logits, rng)
        for _ in range(n_steps - 1):
            tokens.append(current[:, None])
            logits = self.decode_step(current, caches)
            current = sampler(logits, rng)
        tokens.append(current[:, None])
        return np.concatenate(tokens, axis=1)
