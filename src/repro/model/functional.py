"""Numerical building blocks for the reference and sharded transformers.

Includes the paper's "log-base-2" softmax/swish trick (Section 3.5): on
real hardware ``exp2`` is cheaper than ``exp``, so softmax is computed as
``exp2(x * log2(e) - max2)``.  Numerically both forms are identical up to
float rounding; tests assert agreement so either can back the models.
"""

from __future__ import annotations

import numpy as np

LOG2_E = float(np.log2(np.e))


def rmsnorm(x: np.ndarray, scale: np.ndarray, eps: float = 1e-6
            ) -> np.ndarray:
    """Root-mean-square layer norm over the last axis."""
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return x * scale / np.sqrt(variance + eps)


def swish(x: np.ndarray) -> np.ndarray:
    """Swish / SiLU: ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


def swish_base2(x: np.ndarray) -> np.ndarray:
    """Swish via ``exp2`` (the paper's faster hardware formulation)."""
    return x / (1.0 + np.exp2(-x * LOG2_E))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def softmax_base2(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax computed with base-2 exponentials (Section 3.5)."""
    scaled = x * LOG2_E
    shifted = scaled - np.max(scaled, axis=axis, keepdims=True)
    exps = np.exp2(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def causal_mask(q_len: int, kv_len: int, q_offset: int = 0) -> np.ndarray:
    """Boolean mask [q_len, kv_len]: True where attention is allowed.

    Query position ``i`` (global position ``q_offset + i``) may attend to
    kv positions ``<= q_offset + i``.
    """
    q_pos = np.arange(q_len)[:, None] + q_offset
    kv_pos = np.arange(kv_len)[None, :]
    return kv_pos <= q_pos


def masked_softmax(scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Softmax over the last axis with disallowed positions masked out."""
    neg = np.finfo(scores.dtype).min if scores.dtype.kind == "f" else -1e30
    return softmax(np.where(mask, scores, neg), axis=-1)
