"""SLO-aware autoscaling and the graceful-degradation (brownout) ladder.

The paper's Section 3.2 frontier means there is no single right serving
configuration: the latency-optimal fleet under light interactive load is
not the throughput-optimal fleet under a batch backlog.  The
:class:`Autoscaler` is the control loop that moves the cluster along
that frontier as the offered load (see :mod:`repro.cluster.workload`)
shifts.  It runs on the control plane's virtual clock — a *tick* fires
every ``interval_s`` of simulated time — and only uses machinery the
cluster already has:

* **Scale out** — sustained backlog pressure (queued requests per
  dispatchable replica) or a TTFT SLO breach provisions a new replica
  via :meth:`~repro.cluster.control_plane.ClusterControlPlane.
  add_replica`; it becomes dispatchable after a simulated spin-up.
* **Scale in** — sustained idleness drains the newest replica through
  the live KV-migration drain path (nothing in flight is dropped) and
  retires it once idle.
* **Plan steering** — a prefill-heavy token mix steers replicas'
  decode models to the weight-stationary plan, a decode-dominated mix
  to the weight-gathered (throughput-Pareto) plan; switches happen at
  group boundaries only, with hysteresis so the fleet never flaps.

Both directions carry hysteresis (``up_after`` / ``down_after``
consecutive ticks) — reacting to one bad tick is how autoscalers flap.

**The brownout ladder.**  When the fleet is already at
``max_replicas`` and pressure keeps building, scaling cannot help; the
ladder degrades service *explicitly, reversibly and in order*:

1. ``hedge-off`` — stop duplicating slow groups (hedges burn a second
   replica per laggard exactly when capacity is scarcest);
2. ``cap-output`` — cap the batch class's output lengths (long
   generations hold decode slots the interactive class needs);
3. ``throughput-plan`` — force the weight-gathered decode plan
   (throughput over per-token latency);
4. ``shed-lowest`` — stop admitting the lowest-priority class (typed
   :class:`~repro.cluster.admission.ClassShed` rejections, queued
   requests still drain).

Each engagement and release is a typed event
(:data:`~repro.events.BROWNOUT_STEP` /
:data:`~repro.events.BROWNOUT_RECOVERED`) carrying its explicit
recovery condition, and the whole ladder unwinds in reverse order once
pressure stays below the exit threshold — :meth:`Autoscaler.
assert_reverted` checks the plane is bit-identical in behavior to one
that never browned out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events import (
    AUTOSCALE_DECISION,
    BROWNOUT_RECOVERED,
    BROWNOUT_STEP,
)

Coord = tuple[int, int, int]

#: The ordered degradation rungs (engaged first-to-last, released
#: last-to-first).
BROWNOUT_LADDER = ("hedge-off", "cap-output", "throughput-plan",
                   "shed-lowest")


@dataclass(frozen=True)
class AutoscalerPolicy:
    """All control-loop knobs (pure data, so scenarios stay frozen)."""

    interval_s: float = 0.05           # virtual seconds between ticks
    min_replicas: int = 1
    max_replicas: int = 4
    replica_shape: Coord = (2, 2, 2)   # shape scale-out provisions
    spinup_s: float = 0.1              # provisioning time for a new replica
    #: Backlog pressure = queued requests per dispatchable replica.
    scale_out_pressure: float = 8.0
    scale_in_pressure: float = 1.0
    up_after: int = 2                  # consecutive ticks over threshold
    down_after: int = 4                # consecutive ticks under threshold
    #: Optional TTFT SLO signal: a p99 above this (for ``slo_class``
    #: completions in the trailing ``slo_window_s``) counts as scale-out
    #: pressure even when the backlog alone does not.
    ttft_slo_s: float | None = None
    slo_class: str | None = None       # None = all classes
    slo_window_s: float = 1.0
    #: Plan steering thresholds on the prefill share of recent tokens.
    switch_plans: bool = True
    prefill_heavy_frac: float = 0.65   # above -> weight-stationary
    decode_heavy_frac: float = 0.35    # below -> weight-gathered
    plan_after: int = 3                # hysteresis ticks for a switch
    #: Brownout thresholds (same pressure metric) and shaping knobs.
    brownout: bool = True
    brownout_enter_pressure: float = 16.0
    brownout_exit_pressure: float = 2.0
    recover_after: int = 3             # calm ticks before releasing a rung
    batch_output_cap: int = 2          # rung 2's max_new_tokens cap
    #: Classes rungs 2 and 4 act on; ``None`` derives the lowest-priority
    #: class from the plane's admission controller at tick time.
    cap_classes: tuple[str, ...] | None = None
    shed_classes: tuple[str, ...] | None = None
    #: Prefix-cache capacity as a scheduling input: mean fleet page-store
    #: occupancy (0..1+) weighted into the pressure metric.  A full
    #: store means new shared prefixes evict old ones — recompute load
    #: the backlog alone does not see.  0 keeps the legacy metric.
    cache_pressure_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.cache_pressure_weight < 0:
            raise ValueError("cache_pressure_weight must be >= 0")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.up_after < 1 or self.down_after < 1 or \
                self.plan_after < 1 or self.recover_after < 1:
            raise ValueError("hysteresis counts must be >= 1")
        if self.scale_in_pressure > self.scale_out_pressure:
            raise ValueError("scale_in_pressure must not exceed "
                             "scale_out_pressure")
        if self.brownout_exit_pressure > self.brownout_enter_pressure:
            raise ValueError("brownout_exit_pressure must not exceed "
                             "brownout_enter_pressure")
        if self.batch_output_cap < 1:
            raise ValueError("batch_output_cap must be >= 1")


@dataclass
class _BrownoutState:
    """What the ladder changed, so release restores it exactly."""

    level: int = 0                       # rungs currently engaged
    saved_profile: str | None = None     # target_profile before rung 3
    capped: tuple[str, ...] = ()         # classes rung 2 capped
    shed: tuple[str, ...] = ()           # classes rung 4 shed
    engaged: list[str] = field(default_factory=list)  # history, in order


class Autoscaler:
    """The control loop; one instance drives one control plane run.

    Attach via ``ClusterControlPlane(..., autoscaler=...)``; the plane
    calls :meth:`maybe_tick` at every virtual-clock advance (arrivals,
    dispatch rounds, each decode step).  Ticks fire at fixed multiples
    of ``interval_s``, with catch-up when the clock jumps — so the whole
    trajectory is a pure function of the workload, never of call sites'
    wall time.
    """

    #: The brownout rung sequence this controller walks.  Subclasses may
    #: extend it (the disaggregated fleet appends ``collapse-pools``);
    #: rungs the base :meth:`_engage`/:meth:`_release` do not recognize
    #: are routed to :meth:`_engage_custom`/:meth:`_release_custom`.
    ladder: tuple[str, ...] = BROWNOUT_LADDER

    def __init__(self, policy: AutoscalerPolicy | None = None):
        self.policy = policy or AutoscalerPolicy()
        self.ticks = 0
        self.scale_outs = 0
        self.scale_ins = 0
        self.plan_switches = 0
        self._next_tick_s = self.policy.interval_s
        self._up_streak = 0
        self._down_streak = 0
        self._calm_streak = 0
        self._ws_streak = 0
        self._wg_streak = 0
        self._last_prefill = 0
        self._last_decode = 0
        self._event_cursor = 0
        self._completions: list[tuple[float, str, float]] = []
        self._brownout = _BrownoutState()

    # -- ticking ------------------------------------------------------------

    def maybe_tick(self, plane, now_s: float) -> None:
        """Fire every tick whose scheduled time has passed (catch-up)."""
        while now_s >= self._next_tick_s:
            tick_s = self._next_tick_s
            self._next_tick_s += self.policy.interval_s
            self._tick(plane, tick_s)

    def _tick(self, plane, t: float) -> None:
        self.ticks += 1
        plane.reap_retiring(t)
        pressure = self._pressure(plane)
        slo_breach = self._slo_breach(plane, t)
        self._scale(plane, t, pressure, slo_breach)
        # Plan steering yields once the throughput-plan rung owns the
        # profile lever (engaging rung i leaves the ladder at level i+1).
        steer_cap = (self.ladder.index("throughput-plan")
                     if "throughput-plan" in self.ladder
                     else len(self.ladder))
        if self.policy.switch_plans and self._brownout.level <= steer_cap:
            self._steer_plans(plane, t)
        if self.policy.brownout:
            self._brownout_tick(plane, t, pressure)

    # -- signals ------------------------------------------------------------

    def _pressure(self, plane) -> float:
        """Queued requests per dispatchable (non-retiring) replica.

        With ``cache_pressure_weight > 0``, the fleet's mean prefix-
        cache occupancy adds in: a saturated page store is latent
        recompute load (shared prefixes start evicting each other), so
        it counts toward scaling out before the backlog shows it.
        """
        replicas = plane.active_replicas()
        active = max(len(replicas), 1)
        pressure = plane.admission.backlog() / active
        weight = self.policy.cache_pressure_weight
        if weight > 0 and replicas:
            occupancy = [r.kvstore.occupancy() for r in replicas
                         if r.kvstore is not None]
            if occupancy:
                pressure += weight * (sum(occupancy) / len(occupancy))
        return pressure

    def _slo_breach(self, plane, t: float) -> bool:
        """p99 TTFT of recent completions against the policy's SLO."""
        policy = self.policy
        events = plane.events.events
        for event in events[self._event_cursor:]:
            if event.kind == "request_completed" and \
                    event.get("ttft_s") is not None:
                self._completions.append((event.get("t_s", t),
                                          event.get("priority_class", ""),
                                          event["ttft_s"]))
        self._event_cursor = len(events)
        if policy.ttft_slo_s is None:
            return False
        cutoff = t - policy.slo_window_s
        self._completions = [c for c in self._completions
                             if c[0] >= cutoff]
        ttfts = sorted(ttft for (_, cls, ttft) in self._completions
                       if policy.slo_class is None
                       or cls == policy.slo_class)
        if not ttfts:
            return False
        p99 = ttfts[min(int(0.99 * len(ttfts)), len(ttfts) - 1)]
        return p99 > policy.ttft_slo_s

    # -- scaling ------------------------------------------------------------

    def _scale(self, plane, t: float, pressure: float,
               slo_breach: bool) -> None:
        policy = self.policy
        n_active = len(plane.active_replicas())
        if pressure >= policy.scale_out_pressure or slo_breach:
            self._up_streak += 1
            self._down_streak = 0
        elif pressure <= policy.scale_in_pressure:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0

        if self._up_streak >= policy.up_after and \
                n_active < policy.max_replicas:
            self._scale_out(plane, t, pressure, slo_breach, n_active)
            self.scale_outs += 1
            self._up_streak = 0
        elif self._down_streak >= policy.down_after and \
                n_active > policy.min_replicas and \
                self._brownout.level == 0:
            if self._scale_in(plane, t, pressure, n_active):
                self.scale_ins += 1
                self._down_streak = 0

    def _scale_out(self, plane, t: float, pressure: float,
                   slo_breach: bool, n_active: int) -> None:
        """Provision one replica (subclasses pick pool/shape)."""
        replica = plane.add_replica(self.policy.replica_shape, t,
                                    spinup_s=self.policy.spinup_s)
        plane.events.record(
            AUTOSCALE_DECISION, action="scale-out", t_s=t,
            replica=replica.name, pressure=round(pressure, 3),
            slo_breach=slo_breach, fleet=n_active + 1)

    def _scale_in(self, plane, t: float, pressure: float,
                  n_active: int) -> bool:
        """Begin draining one replica; ``False`` when none is eligible."""
        victims = plane.active_replicas()
        victim = victims[-1]  # LIFO: retire the newest first
        plane.begin_scale_in(victim.name, t)
        plane.events.record(
            AUTOSCALE_DECISION, action="scale-in", t_s=t,
            replica=victim.name, pressure=round(pressure, 3),
            fleet=n_active - 1)
        return True

    # -- plan steering ------------------------------------------------------

    def _steer_plans(self, plane, t: float) -> None:
        policy = self.policy
        d_prefill = plane.prefill_tokens - self._last_prefill
        d_decode = plane.decode_tokens - self._last_decode
        self._last_prefill = plane.prefill_tokens
        self._last_decode = plane.decode_tokens
        total = d_prefill + d_decode
        if total == 0:
            return  # idle window: no evidence, keep streaks
        frac = d_prefill / total
        if frac >= policy.prefill_heavy_frac:
            self._ws_streak += 1
            self._wg_streak = 0
        elif frac <= policy.decode_heavy_frac:
            self._wg_streak += 1
            self._ws_streak = 0
        else:
            self._ws_streak = 0
            self._wg_streak = 0
        target = None
        if self._ws_streak >= policy.plan_after:
            target = "weight-stationary"
        elif self._wg_streak >= policy.plan_after:
            target = "weight-gathered"
        if target is not None and plane.target_profile != target:
            plane.target_profile = target
            self.plan_switches += 1
            plane.events.record(
                AUTOSCALE_DECISION, action="profile", t_s=t,
                profile=target, prefill_frac=round(frac, 3))

    # -- brownout ladder ----------------------------------------------------

    def _lowest_priority_classes(self, plane) -> tuple[str, ...]:
        classes = list(plane.admission.classes.values())
        if len(classes) < 2:
            return ()  # a single class is never capped/shed
        worst = max(c.priority for c in classes)
        return tuple(sorted(c.name for c in classes
                            if c.priority == worst))

    def _recovery_condition(self) -> str:
        return (f"pressure <= {self.policy.brownout_exit_pressure:g} "
                f"for {self.policy.recover_after} ticks "
                f"({self.policy.interval_s:g}s each)")

    def _brownout_tick(self, plane, t: float, pressure: float) -> None:
        policy = self.policy
        state = self._brownout
        at_capacity = len(plane.active_replicas()) >= policy.max_replicas
        if pressure >= policy.brownout_enter_pressure and at_capacity:
            self._calm_streak = 0
            if state.level < len(self.ladder):
                self._engage(plane, t, pressure)
        elif pressure <= policy.brownout_exit_pressure:
            self._calm_streak += 1
            if state.level > 0 and \
                    self._calm_streak >= policy.recover_after:
                self._release(plane, t, pressure)
        else:
            self._calm_streak = 0

    def _engage_custom(self, plane, t: float, rung: str) -> None:
        """Engage a rung the base ladder does not define (subclasses)."""
        raise ValueError(f"unknown brownout rung {rung!r}")

    def _release_custom(self, plane, t: float, rung: str) -> None:
        """Release a rung the base ladder does not define (subclasses)."""
        raise ValueError(f"unknown brownout rung {rung!r}")

    def _engage(self, plane, t: float, pressure: float) -> None:
        state = self._brownout
        rung = self.ladder[state.level]
        if rung == "hedge-off":
            plane.hedging_enabled = False
        elif rung == "cap-output":
            classes = (self.policy.cap_classes
                       if self.policy.cap_classes is not None
                       else self._lowest_priority_classes(plane))
            state.capped = tuple(c for c in classes
                                 if c in plane.admission.classes)
            for name in state.capped:
                plane.output_caps[name] = self.policy.batch_output_cap
        elif rung == "throughput-plan":
            state.saved_profile = plane.target_profile
            plane.target_profile = "weight-gathered"
        elif rung == "shed-lowest":
            classes = (self.policy.shed_classes
                       if self.policy.shed_classes is not None
                       else self._lowest_priority_classes(plane))
            state.shed = tuple(c for c in classes
                               if c in plane.admission.classes)
            for name in state.shed:
                plane.admission.set_limits(name, accept=False, now_s=t,
                                           reason=f"brownout {rung}")
        else:
            self._engage_custom(plane, t, rung)
        state.level += 1
        state.engaged.append(rung)
        plane.events.record(
            BROWNOUT_STEP, step=rung, level=state.level, t_s=t,
            pressure=round(pressure, 3),
            recovery=self._recovery_condition())
        plane.tracer.mark(f"brownout:{rung}", level=state.level)

    def _release(self, plane, t: float, pressure: float) -> None:
        state = self._brownout
        state.level -= 1
        rung = self.ladder[state.level]
        if rung == "hedge-off":
            plane.hedging_enabled = True
        elif rung == "cap-output":
            for name in state.capped:
                plane.output_caps.pop(name, None)
            state.capped = ()
        elif rung == "throughput-plan":
            plane.target_profile = state.saved_profile
            state.saved_profile = None
        elif rung == "shed-lowest":
            for name in state.shed:
                plane.admission.set_limits(name, accept=True, now_s=t,
                                           reason=f"brownout {rung} "
                                                  f"released")
            state.shed = ()
        else:
            self._release_custom(plane, t, rung)
        plane.events.record(
            BROWNOUT_RECOVERED, step=rung, level=state.level, t_s=t,
            pressure=round(pressure, 3))
        plane.tracer.mark(f"brownout-recovered:{rung}",
                          level=state.level)

    # -- introspection ------------------------------------------------------

    @property
    def brownout_level(self) -> int:
        return self._brownout.level

    @property
    def brownout_steps(self) -> list[str]:
        """Every rung engagement, in order (repeats on re-entry)."""
        return list(self._brownout.engaged)

    def settled(self, plane) -> bool:
        """Is there nothing left for idle ticks to do?

        True once the brownout ladder is fully released, no replica is
        mid-retirement, and the fleet is back at ``min_replicas`` — the
        fixed point an empty backlog drives the controller to.  The
        control plane's post-run cooldown ticks until this holds.
        """
        return (self._brownout.level == 0
                and not plane.retiring
                and len(plane.active_replicas())
                <= self.policy.min_replicas)

    def assert_reverted(self, plane) -> None:
        """Every brownout lever must be back in its neutral position.

        Called by tests and the chaos checker after a run whose ladder
        engaged: hedging re-enabled, no output caps, every class
        accepting again, and the plan profile restored.  Raises
        ``AssertionError`` otherwise.
        """
        problems = []
        if self._brownout.level != 0:
            problems.append(f"ladder still at level "
                            f"{self._brownout.level}")
        if not plane.hedging_enabled:
            problems.append("hedging still disabled")
        if plane.output_caps:
            problems.append(f"output caps still set: "
                            f"{plane.output_caps}")
        shed = [name for name, ok in plane.admission._accepting.items()
                if not ok]
        if shed:
            problems.append(f"classes still shed: {shed}")
        if plane.target_profile == "weight-gathered" and \
                self._brownout.saved_profile is not None:
            problems.append("throughput plan not restored")
        if problems:
            raise AssertionError("brownout did not fully revert: "
                                 + "; ".join(problems))
