"""Seeded chaos scenarios against the cluster control plane.

Chaos engineering for the simulated fleet: each :class:`ChaosScenario`
is a fully deterministic experiment — a replica topology, a scheduled
:class:`~repro.mesh.faults.FaultPlan` per replica, an admission policy
and a synthetic workload — that :func:`run_scenario` executes under a
fixed seed and distills into a :class:`ChaosReport` (availability,
per-class goodput, latency percentiles, failover/hedge counts, and a
bit-identity check of every completed token stream against the
fault-free reference model).

Because every clock in the stack is virtual (the control plane's
``now_s``, the mesh fault clocks, the tracer), the *entire run* — tokens,
events, spans, report — is a pure function of ``(scenario, backend,
seed)``.  The CI chaos job exploits that: it replays the scenarios over
a seed matrix on both mesh backends and asserts the invariants hold.

Built-in scenarios (:data:`SCENARIOS`):

* ``rolling-kill`` — a chip dies mid-decode on one of three replicas;
  every admitted request must still complete, bit-identical, zero drops.
* ``planned-drain`` — a replica is drained mid-decode; its live KV
  caches migrate to a sibling (re-prefill only as fallback).
* ``correlated-stragglers`` — two replicas stagger through a straggler
  window; hedged decode races a clean replica and the first finish wins.
* ``overload-burst`` — a burst over capacity; the token buckets and
  bounded queues shed load with *typed* rejections, and the priority
  classes show who kept their goodput.
* ``breaker-flap`` — repeated collective timeouts on one replica walk
  its circuit breaker closed -> open -> half-open -> closed.
* ``flash-crowd`` — a trace-driven 8x arrival spike against a fleet
  already at ``max_replicas``; scaling cannot help, so the brownout
  ladder engages rung by rung and fully reverses once the crowd passes.
* ``diurnal-rolling-kill`` — a diurnal trace with a chip death at the
  daily peak; the autoscaler rides the curve (scale-out, then drain
  back) while failover absorbs the kill.
* ``control-plane-crash-mid-drain`` — the control plane itself dies
  with a drain pending; it recovers by replaying the write-ahead
  journal and the drain still executes.
* ``pool-partition`` — the decode pool drops off the heartbeat network
  mid-run; the transactional KV handoff retries into the partition with
  seeded backoff until it heals, and commits.
* ``restart-storm`` — three scheduled replica process deaths (cold and
  warm) roll through the fleet; in-flight groups fail over and every
  replica rejoins after its restart downtime.
* ``shared-prefix-kill`` — chat traffic with heavy system-prompt reuse
  hits the paged prefix cache; a chip dies on the replica holding the
  shared pages mid-run, its store invalidates, failover re-prefills,
  and the auditor certifies no page was double-freed or leaked.

Every run — chaotic or not — additionally proves its journal: replay
must reconstruct the live control-plane state bit-identically, and the
invariant auditor (:mod:`repro.cluster.audit`) must certify request
conservation, exactly-once KV handoff, and token bit-identity against
the fault-free oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.admission import PriorityClass
from repro.cluster.autoscaler import Autoscaler, AutoscalerPolicy
from repro.cluster.audit import audit_run
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterOutcome,
    ClusterPolicy,
    ClusterRequestStatus,
    ClusterSubmission,
    RestartSpec,
)
from repro.cluster.disagg import (
    DisaggAutoscaler,
    DisaggControlPlane,
    DisaggPolicy,
    PoolPartition,
    PoolSpec,
    default_pools,
)
from repro.cluster.journal import JournalTruncated, replay_journal
from repro.cluster.workload import TRACES, generate_trace
from repro.events import EventLog
from repro.mesh.faults import (
    ChipKill,
    CollectiveFault,
    FaultPlan,
    StragglerFault,
)
from repro.model import ReferenceTransformer, init_weights, tiny_test_config
from repro.observability.metrics import (
    capture_stats_line,
    kvstore_stats_line,
)
from repro.observability.spans import Tracer
from repro.serving.engine import Request, TwoPhaseServer
from repro.serving.resilient import CostModel

Coord = tuple[int, int, int]

#: Model every scenario serves: tiny but real — the same config the
#: fault-tolerance acceptance tests decode, so reference completions are
#: cheap to recompute for the bit-identity check.
CHAOS_CONFIG = tiny_test_config(n_layers=2, d_model=16, d_ff=32,
                                n_heads=8, d_head=8, vocab_size=32)
PROMPT_LEN = 6
NEW_TOKENS = 6


@dataclass(frozen=True)
class ChaosScenario:
    """One deterministic chaos experiment (pure data; see module doc)."""

    name: str
    description: str
    shapes: tuple[Coord, ...] = ((2, 2, 2), (2, 2, 2), (2, 2, 2))
    decode_batch: int = 4
    fault_plans: tuple[tuple[int, FaultPlan], ...] = ()
    drains: tuple[tuple[str, float], ...] = ()
    classes: tuple[PriorityClass, ...] = (PriorityClass("default"),)
    policy: ClusterPolicy = ClusterPolicy()
    n_requests: int = 8
    arrival_spacing_s: float = 0.05
    deadline_s: float | None = None
    #: Round-robin class assignment over arrivals.
    class_cycle: tuple[str, ...] = ("default",)
    #: Trace-driven workload: a :data:`repro.cluster.workload.TRACES`
    #: name replaces the synthetic fixed-spacing arrivals above (the
    #: trace spec's classes/deadlines apply; set ``classes`` to match).
    trace: str | None = None
    #: Attach an autoscaler with this policy (None = static fleet).
    autoscale: AutoscalerPolicy | None = None
    #: Cost model override; trace scenarios slow the virtual replicas
    #: down so the trace's bursts create real queueing pressure.
    costs: CostModel | None = None
    #: Disaggregated serving: pool specs replace ``shapes`` and the
    #: scenario runs on a :class:`~repro.cluster.disagg.
    #: DisaggControlPlane` (fault plan indices follow the concatenated
    #: prefill-then-decode replica order).
    pools: tuple[PoolSpec, ...] = ()
    #: Scheduled replica process deaths: (replica name, RestartSpec).
    #: The replica crashes at ``at_s`` (failing any in-flight group over
    #: to a sibling) and rejoins after its cold/warm restart downtime.
    restarts: tuple[tuple[str, RestartSpec], ...] = ()
    #: Heartbeat-loss windows that quarantine a whole disagg pool
    #: (ignored for colocated scenarios).
    partitions: tuple[PoolPartition, ...] = ()
    #: Kill the control plane itself at this virtual time; it must
    #: recover by replaying its write-ahead journal.
    crash_at_s: float | None = None
    #: Invariants the report checks beyond the universal ones.
    expect_failovers: bool = False
    expect_hedges: bool = False
    expect_rejections: tuple[str, ...] = ()
    #: Rejections are tolerated but not required (brownout shedding
    #: depends on how hard the trace happens to spike under this seed).
    allow_rejections: bool = False
    expect_breaker_round_trip: bool = False
    expect_brownout: bool = False
    expect_scale_out: bool = False
    expect_handoffs: bool = False
    expect_handoff_retries: bool = False
    expect_restarts: bool = False
    expect_recovery: bool = False
    expect_quarantine: bool = False
    expect_page_hits: bool = False


SCENARIOS: dict[str, ChaosScenario] = {s.name: s for s in (
    ChaosScenario(
        name="rolling-kill",
        description="chip death mid-decode on 1 of 3 replicas; failover "
                    "re-prefills, zero drops, bit-identical tokens",
        fault_plans=((0, FaultPlan(faults=(
            ChipKill(chip=(0, 1, 0), at_step=2, phase="decode"),))),),
        n_requests=12,
        expect_failovers=True,
    ),
    ChaosScenario(
        name="planned-drain",
        description="replica drained mid-decode; live KV caches migrate "
                    "to a sibling replica",
        shapes=((2, 2, 2), (2, 2, 2)),
        drains=(("r0", 0.02),),
        n_requests=8,
    ),
    ChaosScenario(
        name="correlated-stragglers",
        description="straggler window on 2 of 3 replicas; hedged decode "
                    "races a clean replica and the first finish wins",
        fault_plans=(
            (0, FaultPlan(faults=(
                StragglerFault(chip=(0, 0, 1), slowdown=4.0,
                               delay_s_per_op=2e-3, at_step=1,
                               until_step=60, phase="decode"),))),
            (1, FaultPlan(faults=(
                StragglerFault(chip=(1, 1, 0), slowdown=4.0,
                               delay_s_per_op=2e-3, at_step=1,
                               until_step=60, phase="decode"),))),
        ),
        n_requests=8,
        arrival_spacing_s=0.2,
        expect_hedges=True,
    ),
    ChaosScenario(
        name="overload-burst",
        description="arrival burst over fleet capacity; token buckets "
                    "and bounded queues shed load with typed errors "
                    "while the interactive class keeps its goodput",
        shapes=((2, 2, 2), (2, 2, 2)),
        classes=(
            PriorityClass("interactive", priority=0, rate=1000.0,
                          burst=24, queue_limit=6),
            PriorityClass("batch", priority=1, rate=30.0, burst=4,
                          queue_limit=4),
        ),
        class_cycle=("interactive", "batch"),
        n_requests=36,
        arrival_spacing_s=0.001,
        deadline_s=60.0,
        expect_rejections=("QueueFull", "RateLimited"),
    ),
    ChaosScenario(
        name="breaker-flap",
        description="repeated collective timeouts trip one replica's "
                    "breaker open; after the cooldown a half-open probe "
                    "closes it again",
        shapes=((2, 2, 2), (2, 2, 2)),
        fault_plans=((0, FaultPlan(faults=(
            CollectiveFault(kind="timeout", at_step=1, phase="decode",
                            match_index=0),
            CollectiveFault(kind="timeout", at_step=2, phase="decode",
                            match_index=5),))),),
        policy=ClusterPolicy(breaker_failures=2, breaker_cooldown_s=0.2),
        n_requests=16,
        arrival_spacing_s=0.05,
        expect_failovers=True,
        expect_breaker_round_trip=True,
    ),
    ChaosScenario(
        name="flash-crowd",
        description="trace-driven 8x arrival spike against a fleet "
                    "pinned at max_replicas; the brownout ladder engages "
                    "rung by rung and fully reverses after the crowd",
        shapes=((2, 2, 2),),
        trace="flash-crowd",
        classes=TRACES["flash-crowd"].priority_classes(),
        autoscale=AutoscalerPolicy(
            min_replicas=1, max_replicas=1, scale_out_pressure=6.0,
            brownout_enter_pressure=8.0, brownout_exit_pressure=2.0,
            recover_after=2),
        costs=CostModel(prefill_s=0.05, decode_step_s=0.01),
        policy=ClusterPolicy(max_batch_wait_s=0.05),
        allow_rejections=True,
        expect_brownout=True,
    ),
    ChaosScenario(
        name="diurnal-rolling-kill",
        description="diurnal trace with a chip death near the peak; the "
                    "autoscaler rides the curve out to 3 replicas and "
                    "drains back while failover absorbs the kill",
        shapes=((2, 2, 2), (2, 2, 2)),
        trace="diurnal",
        classes=TRACES["diurnal"].priority_classes(),
        fault_plans=((0, FaultPlan(faults=(
            ChipKill(chip=(0, 1, 0), at_step=2, phase="decode"),))),),
        autoscale=AutoscalerPolicy(
            min_replicas=2, max_replicas=3, scale_out_pressure=1.0,
            scale_in_pressure=0.5, up_after=2, down_after=4,
            spinup_s=0.1),
        costs=CostModel(prefill_s=0.05, decode_step_s=0.01),
        policy=ClusterPolicy(max_batch_wait_s=0.05),
        expect_failovers=True,
        expect_scale_out=True,
    ),
    ChaosScenario(
        name="prefill-kill-mid-handoff",
        description="disaggregated pools: a prefill replica's chip dies "
                    "exactly at the KV handoff; the transactional "
                    "handoff's staged pages survive the source replan, "
                    "the retry commits on a degraded source, and every "
                    "handoff lands bit-identical tokens on the decode "
                    "pool (the pre-transactional path aborted here)",
        pools=default_pools([(2, 2, 2), (2, 2, 2)], [(2, 2, 2)]),
        fault_plans=((0, FaultPlan(faults=(
            ChipKill(chip=(0, 1, 0), at_step=1, phase="handoff"),))),),
        n_requests=12,
        expect_handoffs=True,
        expect_handoff_retries=True,
    ),
    ChaosScenario(
        name="control-plane-crash-mid-drain",
        description="the control plane crashes with a drain pending; it "
                    "recovers by replaying the write-ahead journal "
                    "(replayed state must be bit-identical to the live "
                    "state) and the drain still executes afterwards",
        shapes=((2, 2, 2), (2, 2, 2)),
        drains=(("r0", 0.04),),
        crash_at_s=0.03,
        n_requests=10,
        expect_recovery=True,
    ),
    ChaosScenario(
        name="pool-partition",
        description="the decode pool drops off the heartbeat network "
                    "mid-run and is quarantined; the transactional KV "
                    "handoff retries into the partition with seeded "
                    "jittered backoff until the pool heals, then commits "
                    "exactly once",
        pools=default_pools([(2, 2, 2)], [(2, 2, 2)]),
        partitions=(PoolPartition("decode", 0.02, 0.25),),
        policy=DisaggPolicy(handoff_retries=4,
                            handoff_backoff_base_s=0.05),
        n_requests=8,
        arrival_spacing_s=0.01,
        expect_handoffs=True,
        expect_handoff_retries=True,
        expect_quarantine=True,
    ),
    ChaosScenario(
        name="restart-storm",
        description="three scheduled replica process deaths (cold, "
                    "warm, cold) roll through the fleet; in-flight "
                    "groups fail over, each replica re-shards (cold) or "
                    "rejoins warm after its downtime, and the journal "
                    "records every crash/rejoin pair",
        restarts=(("r0", RestartSpec(at_s=0.05, mode="cold")),
                  ("r1", RestartSpec(at_s=0.15, mode="cold")),
                  ("r2", RestartSpec(at_s=0.28, mode="warm"))),
        n_requests=14,
        arrival_spacing_s=0.03,
        expect_failovers=True,
        expect_restarts=True,
    ),
    ChaosScenario(
        name="shared-prefix-kill",
        description="chat trace with 80% shared system prompts warms "
                    "the paged prefix cache; a chip dies mid-decode on "
                    "the replica holding the shared pages, its store "
                    "invalidates, failover re-prefills on a sibling, "
                    "and page-lease accounting stays exactly-once",
        shapes=((2, 2, 2), (2, 2, 2)),
        trace="chatbot-sessions",
        classes=TRACES["chatbot-sessions"].priority_classes(),
        fault_plans=((0, FaultPlan(faults=(
            ChipKill(chip=(0, 1, 0), at_step=2, phase="decode"),))),),
        costs=CostModel(prefill_s=0.05, decode_step_s=0.01),
        policy=ClusterPolicy(max_batch_wait_s=0.05),
        expect_failovers=True,
        expect_page_hits=True,
    ),
    ChaosScenario(
        name="flash-crowd-disagg",
        description="flash-crowd spike on disaggregated pools pinned at "
                    "capacity; the brownout ladder climbs to collapse-"
                    "to-colocated, merges the pools under pressure, and "
                    "fully reverses (pools split again) after the crowd",
        pools=default_pools([(2, 2, 2)], [(2, 2, 2)]),
        trace="flash-crowd",
        classes=TRACES["flash-crowd"].priority_classes(),
        autoscale=AutoscalerPolicy(
            min_replicas=2, max_replicas=2, scale_out_pressure=6.0,
            brownout_enter_pressure=8.0, brownout_exit_pressure=2.0,
            recover_after=2),
        costs=CostModel(prefill_s=0.05, decode_step_s=0.01),
        policy=ClusterPolicy(max_batch_wait_s=0.05),
        allow_rejections=True,
        expect_brownout=True,
        expect_handoffs=True,
    ),
)}

#: The fast subset CI runs on every push (all of them are cheap; the
#: name exists so heavier scenarios can be added without slowing CI).
SMOKE_SCENARIOS = tuple(SCENARIOS)


@dataclass
class ChaosReport:
    """What one seeded chaos run did, distilled for assertions and CLI."""

    scenario: str
    backend: str
    seed: int
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    deadline_missed: int = 0
    rejections: dict[str, int] = field(default_factory=dict)
    dropped_in_flight: int = 0
    availability: float = 1.0          # completed / admitted
    goodput_per_class: dict[str, float] = field(default_factory=dict)
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    makespan_s: float = 0.0
    failovers: int = 0
    hedges: int = 0
    breaker_states: list[str] = field(default_factory=list)
    health_transitions: int = 0
    replicas_added: int = 0
    replicas_removed: int = 0
    plan_switches: int = 0
    brownout_steps: list[str] = field(default_factory=list)
    brownout_reverted: bool = True
    output_capped: int = 0
    fleet_chip_seconds: float = 0.0
    kv_handoffs: int = 0
    kv_handoff_bytes: int = 0
    handoffs_colocated: int = 0
    handoff_retries: int = 0
    handoff_aborts: int = 0
    handoff_dup_drops: int = 0
    restarts: int = 0
    recoveries: int = 0
    quarantines: int = 0
    journal_records: int = 0
    journal_truncated: int = 0
    replay_matches: bool = True
    audit_certified: bool = True
    audit_violations: list[str] = field(default_factory=list)
    #: Per-replica :meth:`StepCompiler.stats` snapshots (retired
    #: replicas included), keyed by replica name.
    capture_stats: dict[str, dict] = field(default_factory=dict)
    #: Per-replica :meth:`KVStore.stats` + buffer-arena snapshots,
    #: keyed by replica name (arena-only when the store is disabled).
    kvstore_stats: dict[str, dict] = field(default_factory=dict)
    page_leases: int = 0
    page_releases: int = 0
    n_events: int = 0
    n_spans: int = 0
    bit_identical: bool = True
    violations: list[str] = field(default_factory=list)
    #: The run's span stream (virtual-clock timestamps), for export.
    spans: list = field(default_factory=list, repr=False)
    #: The run's full journal as plain dicts (for the ``recovery`` CLI
    #: artifact; small — tens of records per run).
    journal_dump: list = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations


def build_workload(scenario: ChaosScenario,
                   seed: int) -> list[ClusterSubmission]:
    """The scenario's synthetic arrivals: prompts and classes from the
    seed, arrival times from the scenario's spacing — or, for trace
    scenarios, the full seeded trace generator."""
    if scenario.trace is not None:
        return generate_trace(TRACES[scenario.trace], seed,
                              vocab_size=CHAOS_CONFIG.vocab_size)
    rng = np.random.default_rng(seed)
    subs = []
    for i in range(scenario.n_requests):
        prompt = rng.integers(0, CHAOS_CONFIG.vocab_size, size=PROMPT_LEN)
        cls = scenario.class_cycle[i % len(scenario.class_cycle)]
        subs.append(ClusterSubmission(
            Request(i, prompt, NEW_TOKENS), priority_class=cls,
            deadline_s=scenario.deadline_s,
            arrival_s=i * scenario.arrival_spacing_s))
    return subs


def reference_completions(submissions: Sequence[ClusterSubmission],
                          weights, decode_batch: int):
    """Fault-free reference tokens, keyed by request id."""
    requests = [s.request for s in submissions]
    server = TwoPhaseServer(ReferenceTransformer(weights),
                            decode_batch=decode_batch)
    return {c.request_id: c for c in server.serve(requests)}


def _check(report: ChaosReport, scenario: ChaosScenario,
           outcomes: Sequence[ClusterOutcome]) -> None:
    """Universal + per-scenario invariants -> ``report.violations``."""
    v = report.violations
    if not report.bit_identical:
        v.append("completed token streams diverged from the fault-free "
                 "reference")
    if not report.replay_matches:
        v.append("journal replay did not reconstruct the live "
                 "control-plane state bit-identically")
    if not report.audit_certified:
        for violation in report.audit_violations:
            v.append(f"audit: {violation}")
    if report.page_leases != report.page_releases:
        v.append(f"page-lease accounting is not balanced: "
                 f"{report.page_leases} leases vs "
                 f"{report.page_releases} releases")
    if scenario.expect_page_hits:
        hits = sum(s.get("hits", 0)
                   for s in report.kvstore_stats.values())
        if not hits:
            v.append("expected prefix-cache page hits; saw none")
    if report.dropped_in_flight:
        v.append(f"{report.dropped_in_flight} admitted requests have no "
                 f"terminal outcome")
    if report.failed:
        v.append(f"{report.failed} admitted requests FAILED")
    for kind in scenario.expect_rejections:
        if not report.rejections.get(kind):
            v.append(f"expected {kind} rejections; saw none")
    if not scenario.expect_rejections and not scenario.allow_rejections \
            and report.rejections:
        v.append(f"unexpected rejections {report.rejections}")
    if scenario.expect_failovers and not report.failovers:
        v.append("expected failovers; saw none")
    if scenario.expect_hedges and not report.hedges:
        v.append("expected hedged decodes; saw none")
    if scenario.expect_handoffs and not report.kv_handoffs:
        v.append("expected cross-pool KV handoffs; saw none")
    if scenario.expect_handoff_retries and not report.handoff_retries:
        v.append("expected the transactional handoff to retry; it "
                 "never did")
    if scenario.expect_restarts and not report.restarts:
        v.append("expected replica restarts; saw none")
    if scenario.expect_recovery and not report.recoveries:
        v.append("expected a control-plane journal recovery; saw none")
    if scenario.expect_quarantine and not report.quarantines:
        v.append("expected a pool quarantine; saw none")
    if scenario.expect_brownout and not report.brownout_steps:
        v.append("expected the brownout ladder to engage; it never did")
    if not report.brownout_reverted:
        v.append("brownout did not fully revert after the load subsided")
    if scenario.expect_scale_out:
        if not report.replicas_added:
            v.append("expected the autoscaler to scale out; it never did")
        if not report.replicas_removed:
            v.append("expected scaled-out replicas to drain back in; "
                     "none were removed")
    if scenario.expect_breaker_round_trip:
        need = ["open", "half_open", "closed"]
        states = list(report.breaker_states)
        pos = 0
        for want in need:
            while pos < len(states) and states[pos] != want:
                pos += 1
            if pos == len(states):
                v.append(f"breaker never made the open -> half_open -> "
                         f"closed round trip; transitions were "
                         f"{report.breaker_states}")
                break
            pos += 1


def run_scenario(scenario: ChaosScenario | str, *, backend: str = "loop",
                 seed: int = 0, event_log: EventLog | None = None,
                 tracer: Tracer | None = None,
                 weights_seed: int = 0,
                 step_threads: int = 0) -> ChaosReport:
    """Execute one scenario deterministically and report what happened.

    Pass ``event_log`` / ``tracer`` to keep the run's timeline and spans
    for export (the ``repro-inference chaos`` CLI does, to feed the
    ``trace`` exporter); by default fresh ones are created and summarized
    into the report's ``n_events`` / ``n_spans`` counts.

    ``step_threads >= 1`` turns on the control plane's parallel replica
    stepping (hedged decodes race on a thread pool); the report is
    identical either way — the chaos tests assert it.
    """
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise ValueError(f"unknown chaos scenario {scenario!r}; have "
                             f"{sorted(SCENARIOS)}") from None
    weights = init_weights(CHAOS_CONFIG, seed=weights_seed)
    submissions = build_workload(scenario, seed)
    events = event_log if event_log is not None else EventLog()
    scaler_cls = DisaggAutoscaler if scenario.pools else Autoscaler
    autoscaler = (scaler_cls(scenario.autoscale)
                  if scenario.autoscale is not None else None)
    common = dict(
        backend=backend,
        decode_batch=scenario.decode_batch,
        classes=scenario.classes,
        fault_plans=dict(scenario.fault_plans),
        drains=dict(scenario.drains),
        costs=scenario.costs,
        policy=scenario.policy, event_log=events, tracer=tracer,
        prompt_len_hint=PROMPT_LEN, step_threads=step_threads,
        autoscaler=autoscaler,
        restarts=dict(scenario.restarts),
        crash_at_s=scenario.crash_at_s)
    if scenario.pools:
        plane = DisaggControlPlane(weights, scenario.pools,
                                   partitions=scenario.partitions,
                                   **common)
    else:
        plane = ClusterControlPlane(weights, scenario.shapes, **common)
    outcomes = plane.serve(submissions)
    reference = reference_completions(submissions, weights,
                                      scenario.decode_batch)

    report = ChaosReport(scenario.name, backend or "default", seed)
    report.submitted = len(submissions)
    by_status: dict[ClusterRequestStatus, list[ClusterOutcome]] = {}
    for outcome in outcomes:
        by_status.setdefault(outcome.status, []).append(outcome)
    rejected = by_status.get(ClusterRequestStatus.REJECTED, [])
    report.admitted = report.submitted - len(rejected)
    completed = by_status.get(ClusterRequestStatus.COMPLETED, [])
    report.completed = len(completed)
    report.failed = len(by_status.get(ClusterRequestStatus.FAILED, []))
    report.deadline_missed = len(
        by_status.get(ClusterRequestStatus.DEADLINE_MISSED, []))
    for outcome in rejected:
        report.rejections[outcome.rejection] = \
            report.rejections.get(outcome.rejection, 0) + 1
    report.dropped_in_flight = report.admitted - report.completed \
        - report.failed - report.deadline_missed
    report.availability = (report.completed / report.admitted
                           if report.admitted else 1.0)
    report.failovers = plane.failovers
    report.hedges = plane.hedges
    report.breaker_states = [e["new"] for e
                             in events.of_kind("breaker_transition")]
    report.health_transitions = len(events.of_kind("replica_health"))
    report.replicas_added = len(events.of_kind("replica_added"))
    report.replicas_removed = len(events.of_kind("replica_removed"))
    report.plan_switches = len(events.of_kind("plan_switched"))
    report.output_capped = sum(1 for o in outcomes if o.output_capped)
    report.fleet_chip_seconds = plane.fleet_chip_seconds(plane.now_s)
    handoffs = events.of_kind("kv_handoff")
    report.kv_handoffs = len(handoffs)
    report.kv_handoff_bytes = sum(e["bytes"] for e in handoffs)
    report.handoffs_colocated = getattr(plane, "handoffs_colocated", 0)
    report.handoff_retries = getattr(plane, "handoff_retries", 0)
    report.handoff_aborts = getattr(plane, "handoff_aborts", 0)
    report.handoff_dup_drops = getattr(plane, "handoff_dups_dropped", 0)
    report.restarts = plane.restarts
    report.recoveries = plane.recoveries
    report.quarantines = len(events.of_kind("pool_quarantined"))
    report.journal_records = len(plane.journal)
    report.journal_truncated = plane.journal.truncated
    try:
        report.replay_matches = (replay_journal(plane.journal)
                                 == plane.control_state())
    except JournalTruncated:
        report.replay_matches = False
    audit = audit_run(
        plane.journal, final_state=plane.control_state(),
        reference={rid: c.tokens for rid, c in reference.items()})
    report.audit_certified = audit.certified
    report.audit_violations = list(audit.violations)
    report.journal_dump = [
        {"seq": r.seq, "t_s": r.t_s, "kind": r.kind, "data": dict(r.data)}
        for r in plane.journal.records]
    report.capture_stats = {
        r.name: r.step_compiler.stats()
        for r in list(plane.replicas) + plane.retired}
    report.kvstore_stats = {
        r.name: r.kvstore_stats()
        for r in list(plane.replicas) + plane.retired}
    report.page_leases = plane.kv_page_leases
    report.page_releases = plane.kv_page_releases
    if autoscaler is not None:
        report.brownout_steps = autoscaler.brownout_steps
        try:
            autoscaler.assert_reverted(plane)
        except AssertionError:
            report.brownout_reverted = False
    report.n_events = len(events)
    report.n_spans = len(plane.tracer.spans)
    report.spans = list(plane.tracer.spans)

    finished = completed + by_status.get(
        ClusterRequestStatus.DEADLINE_MISSED, [])
    if finished:
        latencies = sorted(o.latency_s for o in finished)
        report.p50_latency_s = float(np.percentile(latencies, 50))
        report.p99_latency_s = float(np.percentile(latencies, 99))
        report.makespan_s = max(o.finish_s for o in finished)
        span = max(report.makespan_s,
                   max(o.arrival_s for o in finished)) or 1.0
        for outcome in completed:
            report.goodput_per_class[outcome.priority_class] = \
                report.goodput_per_class.get(outcome.priority_class, 0.0) \
                + outcome.completion.n_generated / span
    for outcome in finished:
        ref = reference[outcome.request_id]
        tokens = outcome.completion.tokens
        if outcome.output_capped:
            # A brownout-capped stream is a greedy prefix of the
            # uncapped reference (greedy decode is horizon-invariant).
            identical = np.array_equal(tokens, ref.tokens[:len(tokens)])
        else:
            identical = np.array_equal(tokens, ref.tokens)
        if not identical:
            report.bit_identical = False
    _check(report, scenario, outcomes)
    return report


def run_suite(names: Sequence[str] | None = None, *,
              backend: str = "loop", seed: int = 0) -> list[ChaosReport]:
    """Run the named scenarios (default: all) under one seed."""
    return [run_scenario(name, backend=backend, seed=seed)
            for name in (names or sorted(SCENARIOS))]


def format_report(report: ChaosReport) -> str:
    """Human-readable block for one scenario run (CLI output)."""
    lines = [
        f"scenario {report.scenario} [backend={report.backend} "
        f"seed={report.seed}]: {'OK' if report.ok else 'VIOLATED'}",
        f"  requests: {report.submitted} submitted, {report.admitted} "
        f"admitted, {report.completed} completed, {report.failed} failed, "
        f"{report.deadline_missed} missed deadline, "
        f"{report.dropped_in_flight} dropped in flight",
        f"  availability: {report.availability:.3f}   latency p50 "
        f"{report.p50_latency_s * 1e3:.1f} ms  p99 "
        f"{report.p99_latency_s * 1e3:.1f} ms  makespan "
        f"{report.makespan_s:.3f} s",
        f"  resilience: {report.failovers} failovers, {report.hedges} "
        f"hedges, {report.health_transitions} health transitions, "
        f"breaker {report.breaker_states or '(quiet)'}",
        f"  tokens bit-identical to reference: "
        f"{'yes' if report.bit_identical else 'NO'}",
    ]
    lines.append(
        f"  journal: {report.journal_records} records "
        f"({report.journal_truncated} truncated), replay "
        f"{'bit-identical' if report.replay_matches else 'DIVERGED'}, "
        f"audit {'CERTIFIED' if report.audit_certified else 'VIOLATED'}")
    if report.kv_handoffs or report.handoffs_colocated:
        lines.append(
            f"  disagg: {report.kv_handoffs} KV handoffs "
            f"({report.kv_handoff_bytes} B across the link), "
            f"{report.handoffs_colocated} decoded in place")
    if (report.handoff_retries or report.handoff_aborts
            or report.handoff_dup_drops):
        lines.append(
            f"  handoff transactions: {report.handoff_retries} retries, "
            f"{report.handoff_aborts} aborts, "
            f"{report.handoff_dup_drops} duplicate deliveries dropped")
    if report.restarts or report.recoveries or report.quarantines:
        lines.append(
            f"  recovery: {report.restarts} replica restarts, "
            f"{report.recoveries} control-plane recoveries, "
            f"{report.quarantines} pool quarantines")
    if report.rejections:
        shed = ", ".join(f"{k}={n}" for k, n
                         in sorted(report.rejections.items()))
        lines.append(f"  shed load (typed): {shed}")
    if report.goodput_per_class:
        good = ", ".join(f"{k}={v:.1f} tok/s" for k, v
                         in sorted(report.goodput_per_class.items()))
        lines.append(f"  goodput: {good}")
    if report.replicas_added or report.replicas_removed or \
            report.brownout_steps:
        lines.append(
            f"  autoscale: +{report.replicas_added} replicas, "
            f"-{report.replicas_removed}, {report.plan_switches} plan "
            f"switches, {report.fleet_chip_seconds:.1f} chip-s, "
            f"{report.output_capped} capped outputs")
    if report.brownout_steps:
        reverted = "reverted" if report.brownout_reverted \
            else "NOT reverted"
        lines.append(f"  brownout: {' -> '.join(report.brownout_steps)} "
                     f"({reverted})")
    for name in sorted(report.capture_stats):
        lines.append(f"  capture[{name}]: "
                     f"{capture_stats_line(report.capture_stats[name])}")
    for name in sorted(report.kvstore_stats):
        stats = report.kvstore_stats[name]
        if not stats.get("lookups") and not stats.get("pages"):
            continue
        lines.append(f"  kvstore[{name}]: {kvstore_stats_line(stats)}")
    for violation in report.violations:
        lines.append(f"  VIOLATION: {violation}")
    return "\n".join(lines)
