"""Seeded chaos scenarios against the cluster control plane.

Chaos engineering for the simulated fleet: each :class:`ChaosScenario`
is a fully deterministic experiment — a replica topology, a scheduled
:class:`~repro.mesh.faults.FaultPlan` per replica, an admission policy
and a synthetic workload — that :func:`run_scenario` executes under a
fixed seed and distills into a :class:`ChaosReport` (availability,
per-class goodput, latency percentiles, failover/hedge counts, and a
bit-identity check of every completed token stream against the
fault-free reference model).

Because every clock in the stack is virtual (the control plane's
``now_s``, the mesh fault clocks, the tracer), the *entire run* — tokens,
events, spans, report — is a pure function of ``(scenario, backend,
seed)``.  The CI chaos job exploits that: it replays the scenarios over
a seed matrix on both mesh backends and asserts the invariants hold.

Built-in scenarios (:data:`SCENARIOS`):

* ``rolling-kill`` — a chip dies mid-decode on one of three replicas;
  every admitted request must still complete, bit-identical, zero drops.
* ``planned-drain`` — a replica is drained mid-decode; its live KV
  caches migrate to a sibling (re-prefill only as fallback).
* ``correlated-stragglers`` — two replicas stagger through a straggler
  window; hedged decode races a clean replica and the first finish wins.
* ``overload-burst`` — a burst over capacity; the token buckets and
  bounded queues shed load with *typed* rejections, and the priority
  classes show who kept their goodput.
* ``breaker-flap`` — repeated collective timeouts on one replica walk
  its circuit breaker closed -> open -> half-open -> closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.admission import PriorityClass
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterOutcome,
    ClusterPolicy,
    ClusterRequestStatus,
    ClusterSubmission,
)
from repro.events import EventLog
from repro.mesh.faults import (
    ChipKill,
    CollectiveFault,
    FaultPlan,
    StragglerFault,
)
from repro.model import ReferenceTransformer, init_weights, tiny_test_config
from repro.observability.spans import Tracer
from repro.serving.engine import Request, TwoPhaseServer

Coord = tuple[int, int, int]

#: Model every scenario serves: tiny but real — the same config the
#: fault-tolerance acceptance tests decode, so reference completions are
#: cheap to recompute for the bit-identity check.
CHAOS_CONFIG = tiny_test_config(n_layers=2, d_model=16, d_ff=32,
                                n_heads=8, d_head=8, vocab_size=32)
PROMPT_LEN = 6
NEW_TOKENS = 6


@dataclass(frozen=True)
class ChaosScenario:
    """One deterministic chaos experiment (pure data; see module doc)."""

    name: str
    description: str
    shapes: tuple[Coord, ...] = ((2, 2, 2), (2, 2, 2), (2, 2, 2))
    decode_batch: int = 4
    fault_plans: tuple[tuple[int, FaultPlan], ...] = ()
    drains: tuple[tuple[str, float], ...] = ()
    classes: tuple[PriorityClass, ...] = (PriorityClass("default"),)
    policy: ClusterPolicy = ClusterPolicy()
    n_requests: int = 8
    arrival_spacing_s: float = 0.05
    deadline_s: float | None = None
    #: Round-robin class assignment over arrivals.
    class_cycle: tuple[str, ...] = ("default",)
    #: Invariants the report checks beyond the universal ones.
    expect_failovers: bool = False
    expect_hedges: bool = False
    expect_rejections: tuple[str, ...] = ()
    expect_breaker_round_trip: bool = False


SCENARIOS: dict[str, ChaosScenario] = {s.name: s for s in (
    ChaosScenario(
        name="rolling-kill",
        description="chip death mid-decode on 1 of 3 replicas; failover "
                    "re-prefills, zero drops, bit-identical tokens",
        fault_plans=((0, FaultPlan(faults=(
            ChipKill(chip=(0, 1, 0), at_step=2, phase="decode"),))),),
        n_requests=12,
        expect_failovers=True,
    ),
    ChaosScenario(
        name="planned-drain",
        description="replica drained mid-decode; live KV caches migrate "
                    "to a sibling replica",
        shapes=((2, 2, 2), (2, 2, 2)),
        drains=(("r0", 0.02),),
        n_requests=8,
    ),
    ChaosScenario(
        name="correlated-stragglers",
        description="straggler window on 2 of 3 replicas; hedged decode "
                    "races a clean replica and the first finish wins",
        fault_plans=(
            (0, FaultPlan(faults=(
                StragglerFault(chip=(0, 0, 1), slowdown=4.0,
                               delay_s_per_op=2e-3, at_step=1,
                               until_step=60, phase="decode"),))),
            (1, FaultPlan(faults=(
                StragglerFault(chip=(1, 1, 0), slowdown=4.0,
                               delay_s_per_op=2e-3, at_step=1,
                               until_step=60, phase="decode"),))),
        ),
        n_requests=8,
        arrival_spacing_s=0.2,
        expect_hedges=True,
    ),
    ChaosScenario(
        name="overload-burst",
        description="arrival burst over fleet capacity; token buckets "
                    "and bounded queues shed load with typed errors "
                    "while the interactive class keeps its goodput",
        shapes=((2, 2, 2), (2, 2, 2)),
        classes=(
            PriorityClass("interactive", priority=0, rate=1000.0,
                          burst=24, queue_limit=6),
            PriorityClass("batch", priority=1, rate=30.0, burst=4,
                          queue_limit=4),
        ),
        class_cycle=("interactive", "batch"),
        n_requests=36,
        arrival_spacing_s=0.001,
        deadline_s=60.0,
        expect_rejections=("QueueFull", "RateLimited"),
    ),
    ChaosScenario(
        name="breaker-flap",
        description="repeated collective timeouts trip one replica's "
                    "breaker open; after the cooldown a half-open probe "
                    "closes it again",
        shapes=((2, 2, 2), (2, 2, 2)),
        fault_plans=((0, FaultPlan(faults=(
            CollectiveFault(kind="timeout", at_step=1, phase="decode",
                            match_index=0),
            CollectiveFault(kind="timeout", at_step=2, phase="decode",
                            match_index=5),))),),
        policy=ClusterPolicy(breaker_failures=2, breaker_cooldown_s=0.2),
        n_requests=16,
        arrival_spacing_s=0.05,
        expect_failovers=True,
        expect_breaker_round_trip=True,
    ),
)}

#: The fast subset CI runs on every push (all of them are cheap; the
#: name exists so heavier scenarios can be added without slowing CI).
SMOKE_SCENARIOS = tuple(SCENARIOS)


@dataclass
class ChaosReport:
    """What one seeded chaos run did, distilled for assertions and CLI."""

    scenario: str
    backend: str
    seed: int
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    deadline_missed: int = 0
    rejections: dict[str, int] = field(default_factory=dict)
    dropped_in_flight: int = 0
    availability: float = 1.0          # completed / admitted
    goodput_per_class: dict[str, float] = field(default_factory=dict)
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    makespan_s: float = 0.0
    failovers: int = 0
    hedges: int = 0
    breaker_states: list[str] = field(default_factory=list)
    health_transitions: int = 0
    n_events: int = 0
    n_spans: int = 0
    bit_identical: bool = True
    violations: list[str] = field(default_factory=list)
    #: The run's span stream (virtual-clock timestamps), for export.
    spans: list = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations


def build_workload(scenario: ChaosScenario,
                   seed: int) -> list[ClusterSubmission]:
    """The scenario's synthetic arrivals: prompts and classes from the
    seed, arrival times from the scenario's spacing."""
    rng = np.random.default_rng(seed)
    subs = []
    for i in range(scenario.n_requests):
        prompt = rng.integers(0, CHAOS_CONFIG.vocab_size, size=PROMPT_LEN)
        cls = scenario.class_cycle[i % len(scenario.class_cycle)]
        subs.append(ClusterSubmission(
            Request(i, prompt, NEW_TOKENS), priority_class=cls,
            deadline_s=scenario.deadline_s,
            arrival_s=i * scenario.arrival_spacing_s))
    return subs


def reference_completions(submissions: Sequence[ClusterSubmission],
                          weights, decode_batch: int):
    """Fault-free reference tokens, keyed by request id."""
    requests = [s.request for s in submissions]
    server = TwoPhaseServer(ReferenceTransformer(weights),
                            decode_batch=decode_batch)
    return {c.request_id: c for c in server.serve(requests)}


def _check(report: ChaosReport, scenario: ChaosScenario,
           outcomes: Sequence[ClusterOutcome]) -> None:
    """Universal + per-scenario invariants -> ``report.violations``."""
    v = report.violations
    if not report.bit_identical:
        v.append("completed token streams diverged from the fault-free "
                 "reference")
    if report.dropped_in_flight:
        v.append(f"{report.dropped_in_flight} admitted requests have no "
                 f"terminal outcome")
    if report.failed:
        v.append(f"{report.failed} admitted requests FAILED")
    for kind in scenario.expect_rejections:
        if not report.rejections.get(kind):
            v.append(f"expected {kind} rejections; saw none")
    if not scenario.expect_rejections and report.rejections:
        v.append(f"unexpected rejections {report.rejections}")
    if scenario.expect_failovers and not report.failovers:
        v.append("expected failovers; saw none")
    if scenario.expect_hedges and not report.hedges:
        v.append("expected hedged decodes; saw none")
    if scenario.expect_breaker_round_trip:
        need = ["open", "half_open", "closed"]
        states = list(report.breaker_states)
        pos = 0
        for want in need:
            while pos < len(states) and states[pos] != want:
                pos += 1
            if pos == len(states):
                v.append(f"breaker never made the open -> half_open -> "
                         f"closed round trip; transitions were "
                         f"{report.breaker_states}")
                break
            pos += 1


def run_scenario(scenario: ChaosScenario | str, *, backend: str = "loop",
                 seed: int = 0, event_log: EventLog | None = None,
                 tracer: Tracer | None = None,
                 weights_seed: int = 0,
                 step_threads: int = 0) -> ChaosReport:
    """Execute one scenario deterministically and report what happened.

    Pass ``event_log`` / ``tracer`` to keep the run's timeline and spans
    for export (the ``repro-inference chaos`` CLI does, to feed the
    ``trace`` exporter); by default fresh ones are created and summarized
    into the report's ``n_events`` / ``n_spans`` counts.

    ``step_threads >= 1`` turns on the control plane's parallel replica
    stepping (hedged decodes race on a thread pool); the report is
    identical either way — the chaos tests assert it.
    """
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise ValueError(f"unknown chaos scenario {scenario!r}; have "
                             f"{sorted(SCENARIOS)}") from None
    weights = init_weights(CHAOS_CONFIG, seed=weights_seed)
    submissions = build_workload(scenario, seed)
    events = event_log if event_log is not None else EventLog()
    plane = ClusterControlPlane(
        weights, scenario.shapes, backend=backend,
        decode_batch=scenario.decode_batch,
        classes=scenario.classes,
        fault_plans=dict(scenario.fault_plans),
        drains=dict(scenario.drains),
        policy=scenario.policy, event_log=events, tracer=tracer,
        prompt_len_hint=PROMPT_LEN, step_threads=step_threads)
    outcomes = plane.serve(submissions)
    reference = reference_completions(submissions, weights,
                                      scenario.decode_batch)

    report = ChaosReport(scenario.name, backend or "default", seed)
    report.submitted = len(submissions)
    by_status: dict[ClusterRequestStatus, list[ClusterOutcome]] = {}
    for outcome in outcomes:
        by_status.setdefault(outcome.status, []).append(outcome)
    rejected = by_status.get(ClusterRequestStatus.REJECTED, [])
    report.admitted = report.submitted - len(rejected)
    completed = by_status.get(ClusterRequestStatus.COMPLETED, [])
    report.completed = len(completed)
    report.failed = len(by_status.get(ClusterRequestStatus.FAILED, []))
    report.deadline_missed = len(
        by_status.get(ClusterRequestStatus.DEADLINE_MISSED, []))
    for outcome in rejected:
        report.rejections[outcome.rejection] = \
            report.rejections.get(outcome.rejection, 0) + 1
    report.dropped_in_flight = report.admitted - report.completed \
        - report.failed - report.deadline_missed
    report.availability = (report.completed / report.admitted
                           if report.admitted else 1.0)
    report.failovers = plane.failovers
    report.hedges = plane.hedges
    report.breaker_states = [e["new"] for e
                             in events.of_kind("breaker_transition")]
    report.health_transitions = len(events.of_kind("replica_health"))
    report.n_events = len(events)
    report.n_spans = len(plane.tracer.spans)
    report.spans = list(plane.tracer.spans)

    finished = completed + by_status.get(
        ClusterRequestStatus.DEADLINE_MISSED, [])
    if finished:
        latencies = sorted(o.latency_s for o in finished)
        report.p50_latency_s = float(np.percentile(latencies, 50))
        report.p99_latency_s = float(np.percentile(latencies, 99))
        report.makespan_s = max(o.finish_s for o in finished)
        span = max(report.makespan_s,
                   max(o.arrival_s for o in finished)) or 1.0
        for outcome in completed:
            report.goodput_per_class[outcome.priority_class] = \
                report.goodput_per_class.get(outcome.priority_class, 0.0) \
                + outcome.completion.n_generated / span
    for outcome in finished:
        ref = reference[outcome.request_id]
        if not np.array_equal(outcome.completion.tokens, ref.tokens):
            report.bit_identical = False
    _check(report, scenario, outcomes)
    return report


def run_suite(names: Sequence[str] | None = None, *,
              backend: str = "loop", seed: int = 0) -> list[ChaosReport]:
    """Run the named scenarios (default: all) under one seed."""
    return [run_scenario(name, backend=backend, seed=seed)
            for name in (names or sorted(SCENARIOS))]


def format_report(report: ChaosReport) -> str:
    """Human-readable block for one scenario run (CLI output)."""
    lines = [
        f"scenario {report.scenario} [backend={report.backend} "
        f"seed={report.seed}]: {'OK' if report.ok else 'VIOLATED'}",
        f"  requests: {report.submitted} submitted, {report.admitted} "
        f"admitted, {report.completed} completed, {report.failed} failed, "
        f"{report.deadline_missed} missed deadline, "
        f"{report.dropped_in_flight} dropped in flight",
        f"  availability: {report.availability:.3f}   latency p50 "
        f"{report.p50_latency_s * 1e3:.1f} ms  p99 "
        f"{report.p99_latency_s * 1e3:.1f} ms  makespan "
        f"{report.makespan_s:.3f} s",
        f"  resilience: {report.failovers} failovers, {report.hedges} "
        f"hedges, {report.health_transitions} health transitions, "
        f"breaker {report.breaker_states or '(quiet)'}",
        f"  tokens bit-identical to reference: "
        f"{'yes' if report.bit_identical else 'NO'}",
    ]
    if report.rejections:
        shed = ", ".join(f"{k}={n}" for k, n
                         in sorted(report.rejections.items()))
        lines.append(f"  shed load (typed): {shed}")
    if report.goodput_per_class:
        good = ", ".join(f"{k}={v:.1f} tok/s" for k, v
                         in sorted(report.goodput_per_class.items()))
        lines.append(f"  goodput: {good}")
    for violation in report.violations:
        lines.append(f"  VIOLATION: {violation}")
    return "\n".join(lines)
