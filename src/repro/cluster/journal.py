"""Write-ahead journal of control-plane transitions, with replay.

The control plane's state — which requests were admitted, which groups
dispatched, which drains are pending, which brownout levers are pulled —
lives only in memory; this module makes it *recoverable*.  Every typed
transition is appended to a :class:`Journal` as a
:class:`JournalRecord` on the virtual clock, and
:func:`replay_journal` folds the records (from a
:class:`ControlPlaneState` snapshot) back into the exact state the live
run reached — bit-identically, asserted by the chaos harness on every
scenario.  A control-plane crash mid-drain or mid-handoff therefore
recovers by replay instead of losing the fleet
(:meth:`~repro.cluster.control_plane.ClusterControlPlane` checks the
reconstruction against its live state and rebuilds its dispatch
bookkeeping from the replayed snapshot).

Unlike the :class:`~repro.events.EventLog` ring buffer, whose drops are
silently counted, a bounded journal is **loud**: the first dropped
record emits a typed :data:`~repro.events.JOURNAL_TRUNCATED` event,
:func:`replay_journal` raises :class:`JournalTruncated` when the
retained suffix no longer covers the snapshot's watermark, and the
auditor (:mod:`repro.cluster.audit`) refuses to certify a truncated
journal outright.

Record kinds and their replay semantics are defined in one place
(:data:`_FOLDERS`), so a new transition cannot be journaled without
deciding how it replays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.events import JOURNAL_TRUNCATED, EventLog


def token_crc(tokens) -> int:
    """Order-sensitive fingerprint of one completed token stream.

    ``crc32`` over the raw bytes — cheap enough to journal per request,
    strong enough that the auditor's bit-identity check against the
    fault-free oracle cannot pass by accident.
    """
    return zlib.crc32(np.ascontiguousarray(tokens).tobytes())


class JournalTruncated(RuntimeError):
    """Replay (or audit) needs records the bounded journal dropped."""


class JournalReplayMismatch(RuntimeError):
    """Replaying the journal did not reconstruct the live state."""


@dataclass(frozen=True)
class JournalRecord:
    """One typed control-plane transition on the virtual clock."""

    seq: int
    t_s: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


@dataclass(frozen=True)
class ControlPlaneState:
    """Canonical, comparable snapshot of the control plane's state.

    Everything here is reconstructible by folding journal records from
    a prior snapshot — the definition of "the journal is complete".
    Collections are sorted tuples so two snapshots compare by ``==``
    regardless of the order transitions happened to interleave.
    ``journal_seq`` is the replay watermark: the sequence number of the
    next record this snapshot has *not* absorbed.
    """

    journal_seq: int = 0
    replicas: tuple[str, ...] = ()
    pools: tuple[tuple[str, str], ...] = ()
    retiring: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    pending_drains: tuple[tuple[str, float], ...] = ()
    group_counter: int = 0
    admitted: tuple[int, ...] = ()
    rejected: tuple[tuple[int, str], ...] = ()
    #: ``(request_id, token_crc, n_tokens, output_capped)`` per finished
    #: request — the auditor checks the crc against the fault-free
    #: oracle (capped streams against the oracle's prefix).
    completed: tuple[tuple[int, int, int, bool], ...] = ()
    failed: tuple[tuple[int, str], ...] = ()
    failovers: int = 0
    hedges: int = 0
    restarts: int = 0
    recoveries: int = 0
    kv_handoffs: int = 0
    handoff_retries: int = 0
    handoff_aborts: int = 0
    handoff_dup_drops: int = 0
    #: Page-lease ledger: every cached-prefix pin (a kvstore PageLease)
    #: and its release, journaled so the auditor can prove exactly-once
    #: page lifecycle — no double free, no lease leaked by failover.
    kv_page_leases: int = 0
    kv_page_releases: int = 0
    kv_pages_leased: int = 0
    kv_pages_released: int = 0
    hedging_enabled: bool = True
    output_caps: tuple[tuple[str, int], ...] = ()
    target_profile: str | None = None
    shed_classes: tuple[str, ...] = ()
    pools_collapsed: bool = False
    quarantined: tuple[str, ...] = ()


class Journal:
    """Append-only write-ahead journal with an optional bound.

    ``max_records`` turns it into a ring: once full, appending drops the
    *oldest* record — but loudly (see module doc).  ``set_genesis``
    stores the snapshot replay starts from; the control plane takes it
    at the top of ``serve()`` so construction-time bookkeeping is
    captured once instead of journaled piecemeal.
    """

    def __init__(self, max_records: int | None = None,
                 event_log: EventLog | None = None):
        if max_records is not None and max_records < 1:
            raise ValueError(
                f"max_records must be >= 1, got {max_records}")
        self.max_records = max_records
        self.events = event_log
        self.genesis: ControlPlaneState | None = None
        self.records: list[JournalRecord] = []
        self.truncated = 0
        self._seq = 0

    @property
    def next_seq(self) -> int:
        return self._seq

    def set_genesis(self, state: ControlPlaneState) -> None:
        """Record the snapshot replay starts from (first call wins)."""
        if self.genesis is None:
            self.genesis = state

    def append(self, kind: str, t_s: float, **data: Any) -> JournalRecord:
        record = JournalRecord(seq=self._seq, t_s=t_s, kind=kind,
                               data=data)
        self._seq += 1
        self.records.append(record)
        if self.max_records is not None and \
                len(self.records) > self.max_records:
            del self.records[0]
            self.truncated += 1
            if self.truncated == 1 and self.events is not None:
                self.events.record(JOURNAL_TRUNCATED, t_s=t_s,
                                   max_records=self.max_records,
                                   first_dropped_seq=record.seq
                                   - self.max_records)
        return record

    def of_kind(self, kind: str) -> list[JournalRecord]:
        return [r for r in self.records if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)


# ---------------------------------------------------------------------------
# Replay: fold records into a state
# ---------------------------------------------------------------------------

class _Working:
    """Mutable scratch form of :class:`ControlPlaneState` during a fold."""

    def __init__(self, state: ControlPlaneState):
        self.replicas = set(state.replicas)
        self.pools = dict(state.pools)
        self.retiring = set(state.retiring)
        self.removed = set(state.removed)
        self.pending_drains = dict(state.pending_drains)
        self.group_counter = state.group_counter
        self.admitted = set(state.admitted)
        self.rejected = dict(state.rejected)
        self.completed = {rid: (crc, n, capped)
                          for rid, crc, n, capped in state.completed}
        self.failed = dict(state.failed)
        self.failovers = state.failovers
        self.hedges = state.hedges
        self.restarts = state.restarts
        self.recoveries = state.recoveries
        self.kv_handoffs = state.kv_handoffs
        self.handoff_retries = state.handoff_retries
        self.handoff_aborts = state.handoff_aborts
        self.handoff_dup_drops = state.handoff_dup_drops
        self.kv_page_leases = state.kv_page_leases
        self.kv_page_releases = state.kv_page_releases
        self.kv_pages_leased = state.kv_pages_leased
        self.kv_pages_released = state.kv_pages_released
        self.hedging_enabled = state.hedging_enabled
        self.output_caps = dict(state.output_caps)
        self.target_profile = state.target_profile
        self.shed_classes = set(state.shed_classes)
        self.pools_collapsed = state.pools_collapsed
        self.quarantined = set(state.quarantined)

    def freeze(self, journal_seq: int) -> ControlPlaneState:
        return ControlPlaneState(
            journal_seq=journal_seq,
            replicas=tuple(sorted(self.replicas)),
            pools=tuple(sorted(self.pools.items())),
            retiring=tuple(sorted(self.retiring)),
            removed=tuple(sorted(self.removed)),
            pending_drains=tuple(sorted(self.pending_drains.items())),
            group_counter=self.group_counter,
            admitted=tuple(sorted(self.admitted)),
            rejected=tuple(sorted(self.rejected.items())),
            completed=tuple(sorted(
                (rid, crc, n, capped)
                for rid, (crc, n, capped) in self.completed.items())),
            failed=tuple(sorted(self.failed.items())),
            failovers=self.failovers,
            hedges=self.hedges,
            restarts=self.restarts,
            recoveries=self.recoveries,
            kv_handoffs=self.kv_handoffs,
            handoff_retries=self.handoff_retries,
            handoff_aborts=self.handoff_aborts,
            handoff_dup_drops=self.handoff_dup_drops,
            kv_page_leases=self.kv_page_leases,
            kv_page_releases=self.kv_page_releases,
            kv_pages_leased=self.kv_pages_leased,
            kv_pages_released=self.kv_pages_released,
            hedging_enabled=self.hedging_enabled,
            output_caps=tuple(sorted(self.output_caps.items())),
            target_profile=self.target_profile,
            shed_classes=tuple(sorted(self.shed_classes)),
            pools_collapsed=self.pools_collapsed,
            quarantined=tuple(sorted(self.quarantined)),
        )


def _fold_admit(w: _Working, r: JournalRecord) -> None:
    w.admitted.add(r["request_id"])


def _fold_reject(w: _Working, r: JournalRecord) -> None:
    w.rejected[r["request_id"]] = r["reason"]


def _fold_group_start(w: _Working, r: JournalRecord) -> None:
    w.group_counter = max(w.group_counter, r["group"] + 1)


def _fold_group_complete(w: _Working, r: JournalRecord) -> None:
    for rid, crc, n, capped in r["entries"]:
        w.completed[rid] = (crc, n, capped)


def _fold_group_fail(w: _Working, r: JournalRecord) -> None:
    for rid in r["requests"]:
        w.failed[rid] = r["reason"]


def _fold_failover(w: _Working, r: JournalRecord) -> None:
    w.failovers += 1


def _fold_hedge(w: _Working, r: JournalRecord) -> None:
    w.hedges += 1


def _fold_drain(w: _Working, r: JournalRecord) -> None:
    w.pending_drains.pop(r["replica"], None)


def _fold_scale_in(w: _Working, r: JournalRecord) -> None:
    w.retiring.add(r["replica"])
    w.pending_drains[r["replica"]] = r.t_s


def _fold_scale_in_abandoned(w: _Working, r: JournalRecord) -> None:
    w.retiring.discard(r["replica"])


def _fold_replica_add(w: _Working, r: JournalRecord) -> None:
    w.replicas.add(r["replica"])
    if r.get("pool") is not None:
        w.pools[r["replica"]] = r["pool"]


def _fold_replica_remove(w: _Working, r: JournalRecord) -> None:
    w.replicas.discard(r["replica"])
    w.retiring.discard(r["replica"])
    w.removed.add(r["replica"])


def _fold_replica_crash(w: _Working, r: JournalRecord) -> None:
    pass  # the rejoin record carries the state change


def _fold_replica_rejoin(w: _Working, r: JournalRecord) -> None:
    w.restarts += 1


def _fold_lever(w: _Working, r: JournalRecord) -> None:
    lever = r["lever"]
    if lever == "hedging":
        w.hedging_enabled = r["value"]
    elif lever == "target_profile":
        w.target_profile = r["value"]
    elif lever == "output_cap":
        if r["cap"] is None:
            w.output_caps.pop(r["priority_class"], None)
        else:
            w.output_caps[r["priority_class"]] = r["cap"]
    else:
        raise ValueError(f"unknown lever {lever!r} in record {r}")


def _fold_limits(w: _Working, r: JournalRecord) -> None:
    if r["accept"]:
        w.shed_classes.discard(r["priority_class"])
    else:
        w.shed_classes.add(r["priority_class"])


def _fold_pools(w: _Working, r: JournalRecord) -> None:
    w.pools_collapsed = r["collapsed"]


def _fold_quarantine(w: _Working, r: JournalRecord) -> None:
    w.quarantined.update(r["replicas"])


def _fold_pool_rejoin(w: _Working, r: JournalRecord) -> None:
    w.quarantined.difference_update(r["replicas"])


def _fold_handoff_prepare(w: _Working, r: JournalRecord) -> None:
    pass  # audited (commit requires prepare), no state change


def _fold_handoff_retry(w: _Working, r: JournalRecord) -> None:
    w.handoff_retries += 1


def _fold_handoff_commit(w: _Working, r: JournalRecord) -> None:
    w.kv_handoffs += 1


def _fold_handoff_dup(w: _Working, r: JournalRecord) -> None:
    w.handoff_dup_drops += 1


def _fold_handoff_abort(w: _Working, r: JournalRecord) -> None:
    w.handoff_aborts += 1


def _fold_page_lease(w: _Working, r: JournalRecord) -> None:
    w.kv_page_leases += 1
    w.kv_pages_leased += r["pages"]


def _fold_page_release(w: _Working, r: JournalRecord) -> None:
    w.kv_page_releases += 1
    w.kv_pages_released += r["pages"]


def _fold_control_recovered(w: _Working, r: JournalRecord) -> None:
    w.recoveries += 1


#: kind -> fold function.  Every journaled kind must appear here; replay
#: of an unknown kind is a hard error (a silent skip would let the
#: bit-identical-reconstruction guarantee rot).
_FOLDERS = {
    "admit": _fold_admit,
    "reject": _fold_reject,
    "group_start": _fold_group_start,
    "group_complete": _fold_group_complete,
    "group_fail": _fold_group_fail,
    "failover": _fold_failover,
    "hedge": _fold_hedge,
    "drain": _fold_drain,
    "scale_in": _fold_scale_in,
    "scale_in_abandoned": _fold_scale_in_abandoned,
    "replica_add": _fold_replica_add,
    "replica_remove": _fold_replica_remove,
    "replica_crash": _fold_replica_crash,
    "replica_rejoin": _fold_replica_rejoin,
    "lever": _fold_lever,
    "limits": _fold_limits,
    "pools": _fold_pools,
    "quarantine": _fold_quarantine,
    "pool_rejoin": _fold_pool_rejoin,
    "handoff_prepare": _fold_handoff_prepare,
    "handoff_retry": _fold_handoff_retry,
    "handoff_commit": _fold_handoff_commit,
    "handoff_dup": _fold_handoff_dup,
    "handoff_abort": _fold_handoff_abort,
    "page_lease": _fold_page_lease,
    "page_release": _fold_page_release,
    "control_recovered": _fold_control_recovered,
}

JOURNAL_KINDS = tuple(sorted(_FOLDERS))


def replay_journal(journal: Journal,
                   snapshot: ControlPlaneState | None = None
                   ) -> ControlPlaneState:
    """Fold the journal into the control-plane state it describes.

    Starts from ``snapshot`` (default: the journal's genesis snapshot;
    an empty state if none was set) and applies every retained record
    with ``seq >= snapshot.journal_seq`` in order.  Raises
    :class:`JournalTruncated` when the bounded journal dropped records
    the snapshot has not absorbed — recovery from a later snapshot is
    still possible, recovery from this one is not.
    """
    start = snapshot if snapshot is not None else journal.genesis
    if start is None:
        start = ControlPlaneState()
    todo = [r for r in journal.records if r.seq >= start.journal_seq]
    if journal.truncated and journal.next_seq > start.journal_seq:
        oldest = journal.records[0].seq if journal.records \
            else journal.next_seq
        if oldest > start.journal_seq:
            raise JournalTruncated(
                f"journal dropped {journal.truncated} records; replay "
                f"needs seq >= {start.journal_seq} but the oldest "
                f"retained record is seq {oldest}")
    working = _Working(start)
    seq = start.journal_seq
    for record in todo:
        folder = _FOLDERS.get(record.kind)
        if folder is None:
            raise ValueError(f"journal record kind {record.kind!r} has "
                             f"no replay rule (seq {record.seq})")
        folder(working, record)
        seq = record.seq + 1
    return working.freeze(seq)


def diff_states(a: ControlPlaneState, b: ControlPlaneState) -> list[str]:
    """Field-by-field differences, for readable mismatch errors."""
    out = []
    for name in ControlPlaneState.__dataclass_fields__:
        left, right = getattr(a, name), getattr(b, name)
        if left != right:
            out.append(f"{name}: {left!r} != {right!r}")
    return out
