"""One serving replica: a mesh, its models, and its health.

A :class:`Replica` is the unit the cluster control plane schedules onto:
a :class:`~repro.mesh.VirtualMesh` (its own slice, possibly a different
shape from its siblings), shared-weight prefill/decode
``ShardedTransformer`` models planned for that shape, and the fault
state injected by a chaos scenario.  Health is tracked explicitly:

* ``HEALTHY`` — full slice, dispatchable.
* ``DEGRADED`` — lost chips (replanned onto a healthy sub-slice) or
  carrying active stragglers; still dispatchable, just slower.
* ``DRAINING`` — being emptied for planned maintenance; no new groups.
* ``DEAD`` — no healthy sub-slice supports the model; out of rotation.

:meth:`Replica.heartbeat` is the health check: it consults the mesh's
:class:`~repro.mesh.faults.FaultState` (the same machinery that makes
collectives raise), so a scheduled kill is noticed *proactively* at the
next heartbeat even before a collective trips over it, triggering
degraded replanning — or a transition to ``DEAD`` when no sub-slice
fits.  Every transition is recorded in the shared
:class:`~repro.events.EventLog` and as a tracer mark.

:class:`GroupRun` is one request group's in-flight execution, stepped by
the control plane one decode step at a time — that step granularity is
what makes mid-decode failover, live KV-cache re-dispatch
(:meth:`GroupRun.migrate_to`) and hedging observable and testable.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

import numpy as np

from repro.events import PLAN_SWITCHED, REPLICA_HEALTH, EventLog
from repro.hardware.topology import Torus3D
from repro.mesh import VirtualMesh
from repro.mesh.capture import StepCompiler
from repro.mesh.faults import FaultPlan
from repro.model.sampling import greedy
from repro.partitioning.degraded import (
    migrate_caches,
    plan_batch_group,
    replan_after_failure,
    select_degraded_plan,
    select_prefill_profile_plan,
    select_profile_plan,
)
from repro.partitioning.selector import Phase
from repro.serving.chunked import chunked_prefill, default_prefill_chunk
from repro.serving.engine import Completion
from repro.serving.resilient import CostModel, ResilientRequest
from repro.serving.sharded import merge_sharded_caches

Coord = tuple[int, int, int]


class ReplicaHealth(str, Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DRAINING = "draining"
    DEAD = "dead"


class Replica:
    """A mesh deployment plus its health, clocked by the control plane."""

    def __init__(self, name: str, weights, shape: Coord, *,
                 backend: str | None = None, decode_batch: int = 4,
                 fault_plan: FaultPlan | None = None,
                 costs: CostModel | None = None,
                 event_log: EventLog | None = None, tracer=None,
                 trace_mesh: bool = False, prompt_len_hint: int = 64,
                 prefill_chunk: int | None | str = "auto",
                 kvstore_pages: int = 256):
        from repro.layouts.model import ShardedTransformer

        self.name = name
        self.weights = weights
        self.decode_batch = decode_batch
        self.costs = costs or CostModel()
        self.events = event_log if event_log is not None else EventLog()
        self.tracer = tracer
        self.trace_mesh = trace_mesh
        self.mesh = VirtualMesh(shape, backend=backend)
        self.full_chips = self.mesh.num_chips
        self.health = ReplicaHealth.HEALTHY
        self.busy_until_s = 0.0
        # Chunked prefill is the default path (see serving.chunked);
        # "auto" resolves the REPRO_PREFILL_* env knobs, None forces the
        # legacy whole-prompt prefill, an int pins the chunk size.
        self.prefill_chunk = (default_prefill_chunk()
                              if prefill_chunk == "auto" else prefill_chunk)
        # Decode-plan profile the autoscaler steers (see switch_profile):
        # "balanced" is the selector's own pick.  The prefill profile is
        # steered separately by the disaggregated prefill pool (see
        # switch_prefill_profile / repro.cluster.disagg).
        self.profile = "balanced"
        self.prefill_profile = "balanced"
        self.prompt_len_hint = prompt_len_hint

        config = weights.config
        torus = Torus3D(*shape)
        decode_plan = select_degraded_plan(
            config, torus, Phase.DECODE, batch=decode_batch,
            tokens_per_seq=1)
        prefill_plan = select_degraded_plan(
            config, torus, Phase.PREFILL, batch=1,
            tokens_per_seq=prompt_len_hint)
        self.decode_model = ShardedTransformer(weights, self.mesh,
                                               decode_plan)
        try:
            self.prefill_model = self.decode_model.with_plan(prefill_plan)
        except ValueError:
            self.prefill_model = ShardedTransformer(weights, self.mesh,
                                                    prefill_plan)
        self.fault_state = None
        if fault_plan is not None:
            self.fault_state = self.mesh.install_faults(fault_plan,
                                                        self.events)
        if tracer is not None and trace_mesh:
            self.mesh.tracer = tracer
        # Per-replica capture-and-replay compiler for decode steps.  It
        # outlives health transitions (HEALTHY <-> DEGRADED): the captured
        # program keeps replaying while the mesh object and fault clock
        # stay quiet, falls back to eager while a fault is live, and is
        # invalidated (re-captured on the new deployment) by
        # :meth:`replan_around` — so failover and degraded replanning
        # exercise the full invalidate -> eager -> re-capture cycle.
        self.step_compiler = StepCompiler()
        # Per-replica paged prefix cache (repro.kvstore).  Page size is
        # the prefill chunk so cached-prefix suffixes see the cold path's
        # exact chunk boundaries (the bit-identity contract); disabled
        # when chunked prefill is off or ``kvstore_pages == 0``.  The
        # buffer arena recycles device-shaped KV buffers across cache
        # lifetimes on both models.
        from repro.kvstore import KVBufferArena, KVStore

        self.kv_arena = KVBufferArena()
        self.kvstore = (KVStore(page_tokens=self.prefill_chunk,
                                capacity_pages=kvstore_pages, name=name)
                        if self.prefill_chunk and kvstore_pages else None)
        self._wire_kv()

    def _wire_kv(self) -> None:
        """Point both models' cache allocation at this replica's arena.

        Models are rebuilt wholesale on replan/restart/profile switches
        (``with_plan`` and the ``ShardedTransformer`` ctor both default
        ``kv_arena`` to ``None``), so every rebuild site re-wires here.
        """
        self.decode_model.kv_arena = self.kv_arena
        self.prefill_model.kv_arena = self.kv_arena

    # -- simulated time -----------------------------------------------------

    @property
    def scale(self) -> float:
        """Slowdown of the (possibly degraded) slice vs. its full size."""
        return self.full_chips / self.mesh.num_chips

    def delay_s(self) -> float:
        """Accumulated straggler delay on this replica's fault clock."""
        return self.fault_state.sim_delay_s if self.fault_state else 0.0

    def advance(self, phase: str) -> None:
        if self.fault_state is not None:
            self.fault_state.advance(phase)

    # -- health -------------------------------------------------------------

    @property
    def dispatchable(self) -> bool:
        return self.health in (ReplicaHealth.HEALTHY,
                               ReplicaHealth.DEGRADED)

    def set_health(self, health: ReplicaHealth, now_s: float,
                   reason: str) -> None:
        if health is self.health:
            return
        old, self.health = self.health, health
        self.events.record(REPLICA_HEALTH, replica=self.name,
                           old=old.value, new=health.value, t_s=now_s,
                           reason=reason)
        if self.tracer is not None:
            self.tracer.mark(f"health:{self.name}:{health.value}",
                             replica=self.name, old=old.value,
                             new=health.value, reason=reason)

    def heartbeat(self, now_s: float) -> ReplicaHealth:
        """Health-check probe, driven by the mesh fault machinery.

        Reads the fault state's *currently active* faults — so a
        scheduled kill surfaces at the heartbeat after its step arrives,
        not only when a collective trips over it.  Dead chips trigger
        degraded replanning right here (the proactive path); if no
        healthy sub-slice supports the model, the replica goes ``DEAD``.
        """
        if self.health is ReplicaHealth.DEAD:
            return self.health
        state = self.fault_state
        dead = sorted(state.dead_chips) if state is not None else []
        if dead:
            try:
                self.replan_around(dead)
                self.set_health(ReplicaHealth.DEGRADED, now_s,
                                f"heartbeat found dead chips {dead}; "
                                f"replanned to {self.mesh.shape}")
            except ValueError as exc:
                self.set_health(ReplicaHealth.DEAD, now_s,
                                f"no healthy sub-slice: {exc}")
        elif state is not None and state.straggler_chips():
            self.set_health(
                ReplicaHealth.DEGRADED, now_s,
                f"straggler chips {sorted(state.straggler_chips())}")
        elif self.health is ReplicaHealth.DEGRADED and \
                self.mesh.num_chips == self.full_chips:
            # Stragglers healed (windowed fault) and no chips were lost.
            self.set_health(ReplicaHealth.HEALTHY, now_s,
                            "stragglers healed")
        return self.health

    # -- recovery -----------------------------------------------------------

    def replan_around(self, chips: Sequence[Coord]) -> None:
        """Rebuild this replica on its largest healthy sub-slice.

        Mirrors the single-mesh resilient server: re-select layouts for
        the shrunken torus, re-shard weights, rebase the unfired fault
        schedule and carry the fault clock so later faults still land.
        """
        deploy = replan_after_failure(
            self.weights, self.mesh, chips,
            decode_batch=self.decode_batch, event_log=self.events)
        if self.fault_state is not None:
            remaining = self.fault_state.remaining_plan(
                deploy.subslice.origin, deploy.subslice.shape)
            new_state = deploy.mesh.install_faults(remaining, self.events)
            new_state.step = self.fault_state.step
            new_state.phase = self.fault_state.phase
            new_state.phase_steps = dict(self.fault_state.phase_steps)
            new_state.sim_delay_s = self.fault_state.sim_delay_s
            self.fault_state = new_state
        if self.tracer is not None and self.trace_mesh:
            deploy.mesh.tracer = self.tracer
        self.mesh = deploy.mesh
        self.prefill_model = deploy.prefill_model
        self.decode_model = deploy.decode_model
        self.step_compiler.invalidate()
        # Cached pages were extracted on the old deployment; the lease
        # epoch bump makes in-flight releases no-ops, exactly like the
        # compiler dropping captured programs.  The pooled device buffers
        # are shaped for the old mesh, so the arena empties too.
        if self.kvstore is not None:
            self.kvstore.invalidate("replan")
        self.kv_arena.clear()
        self._wire_kv()
        self.profile = "balanced"  # replan re-selects; profiles re-apply
        self.prefill_profile = "balanced"  # at the next group dispatch

    def restart(self, mode: str = "cold") -> None:
        """Recover from full process death (a scheduled
        :class:`~repro.cluster.control_plane.RestartSpec`).

        ``"cold"`` is a fresh process: layouts are re-selected and the
        weights re-sharded for the current (possibly degraded) mesh,
        profiles reset to ``"balanced"``, and every captured program is
        dropped.  ``"warm"`` is a journal-guided rejoin: the sharded
        state survived in host memory, so only the capture caches are
        invalidated (the next decode step re-captures).  The control
        plane charges the corresponding downtime either way.
        """
        from repro.layouts.model import ShardedTransformer

        if mode not in ("cold", "warm"):
            raise ValueError(
                f"restart mode must be 'cold' or 'warm', got {mode!r}")
        if mode == "cold":
            config = self.weights.config
            torus = Torus3D(*self.mesh.shape)
            decode_plan = select_degraded_plan(
                config, torus, Phase.DECODE, batch=self.decode_batch,
                tokens_per_seq=1)
            prefill_plan = select_degraded_plan(
                config, torus, Phase.PREFILL, batch=1,
                tokens_per_seq=self.prompt_len_hint)
            self.decode_model = ShardedTransformer(self.weights,
                                                   self.mesh, decode_plan)
            try:
                self.prefill_model = self.decode_model.with_plan(
                    prefill_plan)
            except ValueError:
                self.prefill_model = ShardedTransformer(
                    self.weights, self.mesh, prefill_plan)
            self.profile = "balanced"
            self.prefill_profile = "balanced"
            self._wire_kv()
        self.step_compiler.invalidate()
        # Process death loses the host-resident page store either way:
        # a cold restart rebuilt the models, and even a warm rejoin
        # cannot prove page contents survived — the auditor's
        # exactly-once ledger only covers lease events, not payloads.
        if self.kvstore is not None:
            self.kvstore.invalidate("restart")
        self.kv_arena.clear()

    def switch_profile(self, profile: str, now_s: float) -> bool:
        """Move the decode model to one end of the Pareto frontier.

        ``profile`` is ``"balanced"`` (the selector's own latency-biased
        pick), ``"weight-stationary"`` (minimum-latency decode under
        heavy prefill load) or ``"weight-gathered"`` (the throughput-
        Pareto plan for decode-dominated load, Section 3.2).  Only the
        decode model is rebuilt — prefill keeps its plan — and the step
        compiler is invalidated so the next decode step re-captures on
        the new layout.  Returns ``True`` when the plan actually changed
        (the control plane charges the switch cost only then); a profile
        with no valid plan on the current (possibly degraded) slice is
        refused without changing anything.
        """
        from repro.layouts.model import ShardedTransformer

        if profile not in ("balanced", "weight-stationary",
                           "weight-gathered"):
            raise ValueError(f"unknown decode profile {profile!r}")
        if profile == self.profile:
            return False
        config = self.weights.config
        torus = Torus3D(*self.mesh.shape)
        try:
            if profile == "balanced":
                plan = select_degraded_plan(config, torus, Phase.DECODE,
                                            batch=self.decode_batch,
                                            tokens_per_seq=1)
            else:
                plan = select_profile_plan(
                    config, torus, self.decode_batch,
                    weight_gathered=(profile == "weight-gathered"))
        except ValueError:
            return False
        old_plan = self.decode_model.plan
        if plan == old_plan:
            self.profile = profile
            return False
        try:
            self.decode_model = self.decode_model.with_plan(plan)
        except ValueError:
            self.decode_model = ShardedTransformer(self.weights,
                                                   self.mesh, plan)
        self.step_compiler.invalidate()
        # Pages store KV in global form, so the prefix cache survives a
        # layout switch — install resharding onto the new plan is the
        # same host-mediated copy either way.
        self._wire_kv()
        self.profile = profile
        self.events.record(
            PLAN_SWITCHED, replica=self.name, profile=profile,
            old_plan=f"{old_plan.ffn.value}/{old_plan.attention.value}",
            new_plan=f"{plan.ffn.value}/{plan.attention.value}",
            t_s=now_s)
        if self.tracer is not None:
            self.tracer.mark(f"plan:{self.name}:{profile}",
                             plan=f"{plan.ffn.value}/"
                                  f"{plan.attention.value}")
        return True

    def switch_prefill_profile(self, profile: str, now_s: float) -> bool:
        """Move the *prefill* model to one end of the Pareto frontier.

        The prefill counterpart of :meth:`switch_profile`, steered by the
        disaggregated prefill pool (:mod:`repro.cluster.disagg`):
        ``"balanced"`` is the selector's own pick and
        ``"weight-stationary"`` prefers the 2D weight-stationary layout
        of Section 3.2.2.  Only the prefill model is rebuilt — the decode
        model and its KV layout stay put, and prefill-chunk programs for
        the new plan capture under their own signatures, so nothing is
        invalidated.  Returns ``True`` when the plan actually changed; a
        profile with no valid plan on the current slice is refused.
        """
        from repro.layouts.model import ShardedTransformer

        if profile not in ("balanced", "weight-stationary",
                           "weight-gathered"):
            raise ValueError(f"unknown prefill profile {profile!r}")
        if profile == self.prefill_profile:
            return False
        config = self.weights.config
        torus = Torus3D(*self.mesh.shape)
        try:
            if profile == "balanced":
                plan = select_degraded_plan(
                    config, torus, Phase.PREFILL, batch=1,
                    tokens_per_seq=self.prompt_len_hint)
            else:
                plan = select_prefill_profile_plan(
                    config, torus, self.prompt_len_hint,
                    weight_gathered=(profile == "weight-gathered"))
        except ValueError:
            return False
        old_plan = self.prefill_model.plan
        if plan == old_plan:
            self.prefill_profile = profile
            return False
        try:
            self.prefill_model = self.decode_model.with_plan(plan)
        except ValueError:
            self.prefill_model = ShardedTransformer(self.weights,
                                                    self.mesh, plan)
        self._wire_kv()
        self.prefill_profile = profile
        self.events.record(
            PLAN_SWITCHED, replica=self.name, profile=profile,
            phase="prefill",
            old_plan=f"{old_plan.ffn.value}/{old_plan.attention.value}",
            new_plan=f"{plan.ffn.value}/{plan.attention.value}",
            t_s=now_s)
        if self.tracer is not None:
            self.tracer.mark(f"prefill-plan:{self.name}:{profile}",
                             plan=f"{plan.ffn.value}/"
                                  f"{plan.attention.value}")
        return True

    def kvstore_stats(self) -> dict:
        """Merged prefix-cache + buffer-arena counters for reporting."""
        stats = dict(self.kvstore.stats()) if self.kvstore is not None \
            else {}
        stats.update(self.kv_arena.stats())
        return stats

    def __repr__(self) -> str:
        return (f"Replica({self.name!r}, {self.mesh.shape}, "
                f"{self.health.value})")


class GroupRun:
    """One request group in flight on one replica, stepped externally.

    The control plane drives it: :meth:`run_prefill` once, then
    :meth:`decode_step` until :attr:`done`.  Both return the simulated
    seconds that invocation cost on the replica (base cost scaled by the
    degradation factor, plus any straggler delay the mesh fault state
    accumulated during the call) and may raise
    :class:`~repro.mesh.faults.MeshFault` — which the control plane
    turns into failover, not a dropped request.
    """

    def __init__(self, replica: Replica,
                 wrapped: Sequence[ResilientRequest]):
        if not wrapped:
            raise ValueError("cannot run an empty request group")
        self.replica = replica
        self.wrapped = list(wrapped)
        self.group = [w.request for w in self.wrapped]
        self.n_steps = max(r.max_new_tokens for r in self.group)
        self.steps_done = 0
        self.caches = None
        self.current = None
        self.generated: list[np.ndarray] = []
        self._delay_before = 0.0
        # Page leases pinning cached prefixes this run installed; held
        # until the group retires (or is abandoned) so eviction can never
        # free a page under a live decode slot.
        self.leases: list = []

    @property
    def done(self) -> bool:
        return self.caches is not None and \
            self.steps_done >= self.n_steps - 1

    @property
    def remaining_steps(self) -> int:
        return max(self.n_steps - 1 - self.steps_done, 0)

    def run_prefill(self) -> float:
        """Prefill every request and merge the decode batch."""
        replica = self.replica
        max_len = len(self.group[0].prompt) + self.n_steps
        caches_per_request, first_logits = [], []
        elapsed = 0.0
        chunk = replica.prefill_chunk
        kvstore = replica.kvstore
        for request in self.group:
            before = replica.delay_s()
            replica.advance("prefill")
            computed_frac = 1.0
            if chunk:
                # Default path: chunked prefill through the program
                # cache — same-length chunks replay across prompts —
                # and, when the replica carries a prefix store, through
                # the paged cache: only the uncached suffix is computed,
                # and the prefill cost shrinks by the same fraction.
                logits, caches = chunked_prefill(
                    replica.prefill_model, request.prompt[None, :],
                    chunk, max_len, compiler=replica.step_compiler,
                    kvstore=kvstore)
                if kvstore is not None:
                    reuse = kvstore.take_last_reuse()
                    if reuse is not None and reuse.lease is not None:
                        self.leases.append(reuse.lease)
                        computed_frac = reuse.computed_fraction
            else:
                logits, caches = replica.prefill_model.prefill(
                    request.prompt[None, :], max_len)
            elapsed += replica.costs.prefill_cost_s(
                replica.prefill_profile) * replica.scale \
                * computed_frac + (replica.delay_s() - before)
            caches_per_request.append(caches)
            first_logits.append(logits)

        # Pad up to the decode plan's batch-sharding divisor by repeating
        # the last request's caches (host-side; padded rows are dropped).
        batch_group = plan_batch_group(replica.decode_model.plan,
                                       Torus3D(*replica.mesh.shape))
        pad = (-len(self.group)) % max(batch_group, 1)
        for _ in range(pad):
            caches_per_request.append(caches_per_request[-1])
            first_logits.append(first_logits[-1])

        self.caches = merge_sharded_caches(caches_per_request,
                                           replica.decode_model)
        self.current = greedy(np.concatenate(first_logits, axis=0))
        self.generated = [self.current[:, None]]
        return elapsed

    def decode_step(self) -> float:
        """One batched decode step; returns its simulated cost."""
        thunk = self.begin_decode_step()
        return self.finish_decode_step(thunk())

    def begin_decode_step(self):
        """Clock + bookkeeping half of a decode step; returns its thunk.

        Runs on the control-plane thread: advances the fault clock and
        resolves the step through the compiler's program cache.  The
        returned zero-argument callable does the actual compute — a pure
        program replay when a warm program is valid, otherwise the full
        eager/capture path — and touches only this replica's model and
        caches, so thunks of *distinct* replicas may run concurrently
        (the control plane's hedged race does).  Call
        :meth:`finish_decode_step` with the thunk's logits to commit.
        """
        replica = self.replica
        self._delay_before = replica.delay_s()
        replica.advance("decode")
        compiler = replica.step_compiler
        thunk = compiler.decode_thunk(replica.decode_model, self.current,
                                      self.caches)
        if thunk is not None:
            return thunk
        model, tokens, caches = (replica.decode_model, self.current,
                                 self.caches)
        return lambda: compiler.decode_step(model, tokens, caches)

    def finish_decode_step(self, logits: np.ndarray) -> float:
        """Commit one decode step's logits; returns its simulated cost."""
        replica = self.replica
        elapsed = replica.costs.decode_cost_s(replica.profile) \
            * replica.scale \
            + (replica.delay_s() - self._delay_before)
        self.current = greedy(logits)
        self.generated.append(self.current[:, None])
        self.steps_done += 1
        return elapsed

    def release_leases(self) -> list:
        """Unpin this run's cached-prefix pages; returns what released.

        Idempotent, and safe across replans — a lease from a bumped
        store epoch is a counted no-op (``stale_releases``), so chaos
        paths can release unconditionally.  Only leases that actually
        released on the current epoch are returned (for journaling).
        """
        released = []
        for lease in self.leases:
            if lease.release():
                released.append(lease)
        self.leases = []
        return released

    def completions(self) -> list[Completion]:
        all_generated = np.concatenate(self.generated, axis=1)
        out = []
        for i, request in enumerate(self.group):
            n = request.max_new_tokens
            tokens = np.concatenate([request.prompt, all_generated[i, :n]])
            out.append(Completion(request.request_id, tokens, n))
        return out

    def kv_cache_bytes(self) -> int:
        """Bytes of live KV cache (every layer, K and V, padding rows
        included — the handoff moves the merged batch as stored)."""
        if self.caches is None:
            return 0
        total = 0
        for cache in self.caches:
            batch, _, n_kv_heads, d_head = cache.global_shape
            total += 2 * batch * cache.length * n_kv_heads * d_head \
                * np.dtype(cache.dtype).itemsize
        return total

    def migrate_to(self, target: Replica) -> "GroupRun":
        """Re-dispatch this in-flight group onto ``target`` with its KV.

        Host-mediated cache migration (the Section 4.4 transfer): valid
        while the source mesh's data is readable — a drain or straggler,
        not a chip death.  Raises ``ValueError`` when the target's plan
        cannot host the migrated batch; the control plane then falls
        back to re-prefill.
        """
        if self.caches is None:
            raise ValueError("group has not prefilled; nothing to migrate")
        migrated = migrate_caches(self.caches, self.replica.decode_model,
                                  target.decode_model)
        batch = migrated[0].global_shape[0]
        batch_group = plan_batch_group(target.decode_model.plan,
                                       Torus3D(*target.mesh.shape))
        if batch % max(batch_group, 1) != 0:
            raise ValueError(
                f"migrated batch {batch} does not divide target plan's "
                f"batch group {batch_group}")
        run = GroupRun(target, self.wrapped)
        run.caches = migrated
        run.current = self.current
        run.generated = list(self.generated)
        run.steps_done = self.steps_done
        # Page leases stay behind: they pin pages in the *source*
        # replica's store, and the migrated caches carry their own full
        # copy of the prefix.  The control plane releases them.
        return run
