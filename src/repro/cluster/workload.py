"""Trace-driven load generation for the cluster control plane.

The chaos harness injects *faults*; this module injects *traffic*.  A
:class:`TraceSpec` describes offered load the way capacity planners see
it — a diurnal rate curve, flash-crowd burst windows, heavy-tailed
prompt and output lengths, a priority-class mix — and
:func:`generate_trace` turns it into a concrete list of
:class:`~repro.cluster.control_plane.ClusterSubmission`\\ s on the
cluster's virtual clock.  The expansion is a pure function of
``(trace_spec, seed)``: same spec, same seed, bit-identical arrivals,
prompts and classes, so autoscaler runs are replayable and CI can sweep
a seed matrix.

Mechanics:

* **Arrivals** are a non-homogeneous Poisson process, sampled by
  thinning: exponential gaps at the trace's peak rate, each candidate
  kept with probability ``rate_at(t) / peak``.  The instantaneous rate
  is the diurnal sinusoid times every burst window covering ``t``.
* **Prompt lengths** are lognormal (most prompts short, a long tail),
  quantized *up* to the spec's bucket list — the same length-bucket
  batching the scheduler and the capture program cache key on.
* **Output lengths** are Zipf-distributed, clipped to the spec's range:
  a heavy tail of long generations on top of a mass of short ones.
* **Classes** are drawn from the mix's weights; each class carries its
  admission limits and an optional relative deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.admission import PriorityClass
from repro.cluster.control_plane import ClusterSubmission
from repro.serving.engine import Request


@dataclass(frozen=True)
class BurstWindow:
    """One flash-crowd window: the rate multiplies by ``multiplier``."""

    start_s: float
    duration_s: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got "
                             f"{self.duration_s}")
        if self.multiplier <= 0:
            raise ValueError(f"multiplier must be > 0, got "
                             f"{self.multiplier}")

    def covers(self, t: float) -> bool:
        return self.start_s <= t < self.start_s + self.duration_s


@dataclass(frozen=True)
class ClassMix:
    """One traffic class in a trace: admission limits + SLO + weight."""

    name: str
    priority: int = 0
    weight: float = 1.0          # share of arrivals (normalized over mix)
    rate: float = 1000.0         # admission token-bucket rate
    burst: int = 64
    queue_limit: int = 64
    deadline_s: float | None = None   # relative to arrival; None = no SLO

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")

    def priority_class(self) -> PriorityClass:
        return PriorityClass(self.name, priority=self.priority,
                             rate=self.rate, burst=self.burst,
                             queue_limit=self.queue_limit)


@dataclass(frozen=True)
class TraceSpec:
    """A seeded traffic trace, declaratively (pure data).

    ``base_rate_rps`` is the mean arrival rate; the diurnal sinusoid
    (amplitude in ``[0, 1)``, one period = one simulated "day") and the
    burst windows modulate it.  Lengths and classes are sampled per
    arrival from the distributions described in the module docstring.
    """

    name: str
    description: str = ""
    duration_s: float = 4.0
    base_rate_rps: float = 10.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 4.0
    bursts: tuple[BurstWindow, ...] = ()
    #: Lognormal prompt-length parameters (of ``ln(length)``), quantized
    #: up to the bucket list so groups batch on few distinct lengths.
    prompt_len_buckets: tuple[int, ...] = (4, 6, 8, 12)
    prompt_len_mu: float = 1.7
    prompt_len_sigma: float = 0.4
    #: Zipf output lengths clipped to ``[output_min, output_max]``.
    output_min: int = 2
    output_max: int = 8
    output_zipf_a: float = 2.5
    #: Shared-prefix traffic (chat serving): a pool of
    #: ``system_prompt_pool`` seeded system prompts, each
    #: ``system_prompt_len`` tokens.  Each arrival is a shared-prefix
    #: request with probability ``shared_prefix_fraction`` — it prepends
    #: a pool prompt (Zipf-weighted by rank, exponent ``prefix_zipf_a``)
    #: or, with probability ``session_fraction``, continues an earlier
    #: shared conversation (multi-turn: the prior prompt is the prefix).
    #: All zero by default — the legacy traces' random streams are
    #: byte-identical when the pool is disabled.
    system_prompt_pool: int = 0
    system_prompt_len: int = 0
    shared_prefix_fraction: float = 0.0
    prefix_zipf_a: float = 1.5
    session_fraction: float = 0.0
    classes: tuple[ClassMix, ...] = (
        ClassMix("interactive", priority=0, weight=0.7, deadline_s=2.0),
        ClassMix("batch", priority=1, weight=0.3, queue_limit=96),
    )

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.base_rate_rps <= 0:
            raise ValueError("base_rate_rps must be > 0")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError(f"diurnal_amplitude must be in [0, 1), got "
                             f"{self.diurnal_amplitude}")
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be > 0")
        if not self.prompt_len_buckets or \
                list(self.prompt_len_buckets) != \
                sorted(set(self.prompt_len_buckets)):
            raise ValueError("prompt_len_buckets must be sorted, unique "
                             "and non-empty")
        if any(b < 1 for b in self.prompt_len_buckets):
            raise ValueError("prompt length buckets must be >= 1")
        if not 1 <= self.output_min <= self.output_max:
            raise ValueError("need 1 <= output_min <= output_max")
        if self.output_zipf_a <= 1:
            raise ValueError("output_zipf_a must be > 1")
        if self.system_prompt_pool < 0:
            raise ValueError("system_prompt_pool must be >= 0")
        if self.system_prompt_pool > 0 and self.system_prompt_len < 1:
            raise ValueError("a system-prompt pool needs "
                             "system_prompt_len >= 1")
        if not 0.0 <= self.shared_prefix_fraction <= 1.0:
            raise ValueError("shared_prefix_fraction must be in [0, 1]")
        if not 0.0 <= self.session_fraction <= 1.0:
            raise ValueError("session_fraction must be in [0, 1]")
        if self.prefix_zipf_a <= 0:
            raise ValueError("prefix_zipf_a must be > 0")
        if not self.classes:
            raise ValueError("a trace needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names in {names}")

    def priority_classes(self) -> tuple[PriorityClass, ...]:
        """The admission-controller classes this trace expects."""
        return tuple(c.priority_class() for c in self.classes)


def rate_at(spec: TraceSpec, t: float) -> float:
    """Instantaneous offered rate (requests/s) at virtual time ``t``."""
    rate = spec.base_rate_rps * (
        1.0 + spec.diurnal_amplitude
        * math.sin(2.0 * math.pi * t / spec.diurnal_period_s))
    for burst in spec.bursts:
        if burst.covers(t):
            rate *= burst.multiplier
    return rate


def peak_rate(spec: TraceSpec) -> float:
    """An upper bound on :func:`rate_at` over the trace (for thinning)."""
    rate = spec.base_rate_rps * (1.0 + spec.diurnal_amplitude)
    # Bursts can overlap; bound by the product of all multipliers > 1.
    for burst in spec.bursts:
        if burst.multiplier > 1.0:
            rate *= burst.multiplier
    return rate


def _quantize_length(raw: float, buckets: tuple[int, ...]) -> int:
    """Round a sampled length up to the nearest bucket (cap at last)."""
    for bucket in buckets:
        if raw <= bucket:
            return bucket
    return buckets[-1]


def generate_trace(spec: TraceSpec, seed: int, *,
                   vocab_size: int) -> list[ClusterSubmission]:
    """Expand ``spec`` into concrete submissions — pure in (spec, seed).

    Request ids are assigned in arrival order starting at 0; every
    random draw comes from one ``default_rng(seed)`` stream, so the
    arrivals, prompts, output lengths and class labels are all
    bit-reproducible.
    """
    if vocab_size < 1:
        raise ValueError("vocab_size must be >= 1")
    rng = np.random.default_rng(seed)
    peak = peak_rate(spec)
    weights = np.array([c.weight for c in spec.classes], dtype=float)
    weights /= weights.sum()
    # Shared-prefix machinery, only touched when the pool is enabled so
    # legacy specs keep their random streams byte-identical.  Pool
    # prompts are drawn up front; reuse is Zipf-weighted by rank.
    pool: list[np.ndarray] = []
    pool_weights = None
    if spec.system_prompt_pool > 0:
        pool = [rng.integers(0, vocab_size, size=spec.system_prompt_len)
                for _ in range(spec.system_prompt_pool)]
        ranks = np.arange(1, spec.system_prompt_pool + 1, dtype=float)
        pool_weights = ranks ** -spec.prefix_zipf_a
        pool_weights /= pool_weights.sum()
    #: Conversations in flight: each entry is the full token prefix a
    #: follow-up turn extends.  Bounded so sessions (and prompt lengths)
    #: cannot grow without limit.
    sessions: list[np.ndarray] = []
    max_sessions = 64
    max_session_tokens = 40

    submissions: list[ClusterSubmission] = []
    t = 0.0
    rid = 0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= spec.duration_s:
            break
        # Thinning: keep this candidate with probability rate(t)/peak.
        if float(rng.random()) >= rate_at(spec, t) / peak:
            continue
        raw_len = float(rng.lognormal(spec.prompt_len_mu,
                                      spec.prompt_len_sigma))
        prompt_len = _quantize_length(raw_len, spec.prompt_len_buckets)
        out_len = int(rng.zipf(spec.output_zipf_a))
        out_len = min(max(out_len, spec.output_min), spec.output_max)
        cls = spec.classes[int(rng.choice(len(spec.classes), p=weights))]
        base = None
        if pool and float(rng.random()) < spec.shared_prefix_fraction:
            if sessions and float(rng.random()) < spec.session_fraction:
                # Multi-turn: extend an earlier shared conversation.
                base = sessions[int(rng.integers(0, len(sessions)))]
            else:
                base = pool[int(rng.choice(len(pool), p=pool_weights))]
        suffix = rng.integers(0, vocab_size, size=prompt_len)
        prompt = suffix if base is None \
            else np.concatenate([base, suffix])
        if base is not None and len(prompt) <= max_session_tokens:
            sessions.append(prompt)
            if len(sessions) > max_sessions:
                sessions.pop(0)
        submissions.append(ClusterSubmission(
            Request(rid, prompt, out_len),
            priority_class=cls.name,
            deadline_s=(None if cls.deadline_s is None
                        else t + cls.deadline_s),
            arrival_s=t))
        rid += 1
    return submissions


#: The built-in traces the autoscale bench and chaos scenarios use.
#: All are deliberately small (tens of requests) so the CI matrix stays
#: fast; the *shapes* of the curves are what matters.
TRACES: dict[str, TraceSpec] = {spec.name: spec for spec in (
    TraceSpec(
        name="diurnal",
        description="sinusoidal day/night curve; the autoscaler should "
                    "grow the fleet at the peak and drain it back in "
                    "the trough",
        duration_s=4.0,
        base_rate_rps=12.0,
        diurnal_amplitude=0.6,
        diurnal_period_s=4.0,
    ),
    TraceSpec(
        name="flash-crowd",
        description="calm baseline, then an 8x surge for half a second, "
                    "then calm again; brownout territory when the fleet "
                    "cannot grow",
        duration_s=3.0,
        base_rate_rps=8.0,
        bursts=(BurstWindow(start_s=0.8, duration_s=0.5,
                            multiplier=8.0),),
    ),
    TraceSpec(
        name="heavy-tail",
        description="flat rate but lognormal prompts with a fat tail "
                    "and Zipf outputs biased long; stresses length-"
                    "bucketed batching and TPOT",
        duration_s=3.0,
        base_rate_rps=14.0,
        prompt_len_mu=1.9,
        prompt_len_sigma=0.7,
        output_zipf_a=1.7,
    ),
    TraceSpec(
        name="chatbot-sessions",
        description="chat traffic: 80% of arrivals share one of three "
                    "pooled system prompts (Zipf-weighted) and a good "
                    "chunk continue earlier conversations; the prefix "
                    "cache bench's shared-prefix workload",
        duration_s=3.0,
        base_rate_rps=12.0,
        prompt_len_buckets=(4, 8),
        system_prompt_pool=3,
        system_prompt_len=12,
        shared_prefix_fraction=0.8,
        prefix_zipf_a=1.5,
        session_fraction=0.4,
        output_max=6,
    ),
)}
