"""Cluster-level serving: N mesh replicas behind one control plane.

The paper scales one model onto one TPU slice; production serving runs
*fleets* of such slices.  This package is that layer, built entirely on
the simulated substrate so every behavior is deterministic and testable:

- :mod:`~repro.cluster.replica` — one mesh deployment plus its health
  (heartbeats driven by the fault machinery, degraded replanning,
  in-flight :class:`GroupRun` stepping, live KV-cache migration);
- :mod:`~repro.cluster.admission` — token-bucket rate limits, bounded
  priority queues, per-replica circuit breakers; rejections are typed
  errors, never timeouts;
- :mod:`~repro.cluster.control_plane` — dispatch, failover, planned
  drain and hedged decode over a virtual clock;
- :mod:`~repro.cluster.chaos` — seeded chaos scenarios and the reports
  the CI chaos job asserts on.
"""

from repro.cluster.admission import (
    DEFAULT_CLASSES,
    AdmissionController,
    AdmissionError,
    BreakerState,
    CircuitBreaker,
    NoHealthyReplica,
    PriorityClass,
    QueueFull,
    RateLimited,
    TokenBucket,
)
from repro.cluster.chaos import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    ChaosReport,
    ChaosScenario,
    build_workload,
    format_report,
    run_scenario,
    run_suite,
)
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterOutcome,
    ClusterPolicy,
    ClusterRequestStatus,
    ClusterSubmission,
)
from repro.cluster.replica import GroupRun, Replica, ReplicaHealth

__all__ = [
    "AdmissionController", "AdmissionError", "BreakerState",
    "ChaosReport", "ChaosScenario", "CircuitBreaker",
    "ClusterControlPlane", "ClusterOutcome", "ClusterPolicy",
    "ClusterRequestStatus", "ClusterSubmission", "DEFAULT_CLASSES",
    "GroupRun", "NoHealthyReplica", "PriorityClass", "QueueFull",
    "RateLimited", "Replica", "ReplicaHealth", "SCENARIOS",
    "SMOKE_SCENARIOS", "TokenBucket", "build_workload", "format_report",
    "run_scenario", "run_suite",
]
