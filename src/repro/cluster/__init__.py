"""Cluster-level serving: N mesh replicas behind one control plane.

The paper scales one model onto one TPU slice; production serving runs
*fleets* of such slices.  This package is that layer, built entirely on
the simulated substrate so every behavior is deterministic and testable:

- :mod:`~repro.cluster.replica` — one mesh deployment plus its health
  (heartbeats driven by the fault machinery, degraded replanning,
  in-flight :class:`GroupRun` stepping, live KV-cache migration);
- :mod:`~repro.cluster.admission` — token-bucket rate limits, bounded
  priority queues, per-replica circuit breakers; rejections are typed
  errors, never timeouts;
- :mod:`~repro.cluster.control_plane` — dispatch, failover, planned
  drain and hedged decode over a virtual clock;
- :mod:`~repro.cluster.workload` — seeded trace-driven load generation
  (diurnal curves, bursts, heavy-tailed lengths, priority mixes);
- :mod:`~repro.cluster.autoscaler` — the SLO-aware scaling loop and the
  reversible brownout ladder;
- :mod:`~repro.cluster.disagg` — disaggregated serving: a prefill pool
  and a decode pool with an explicit A.1-priced KV handoff between
  them, pool-aware autoscaling and a collapse-to-colocated brownout
  rung;
- :mod:`~repro.cluster.journal` — the control plane's write-ahead
  journal of typed transitions; genesis snapshot + deterministic replay
  reconstruct the control-plane state bit-identically (crash recovery);
- :mod:`~repro.cluster.audit` — the invariant auditor that certifies a
  run from its journal (request conservation, exactly-once KV handoff,
  token bit-identity against the fault-free oracle);
- :mod:`~repro.cluster.chaos` — seeded chaos scenarios and the reports
  the CI chaos job asserts on;
- :mod:`~repro.cluster.bench` — the autoscale and disagg
  goodput/latency/cost benchmarks behind ``BENCH_autoscale.json`` and
  ``BENCH_disagg.json``.
"""

from repro.cluster.audit import AuditReport, audit_run, format_audit

from repro.cluster.admission import (
    DEFAULT_CLASSES,
    AdmissionController,
    AdmissionError,
    BreakerState,
    CircuitBreaker,
    ClassShed,
    NoHealthyReplica,
    PriorityClass,
    QueueFull,
    RateLimited,
    TokenBucket,
)
from repro.cluster.autoscaler import (
    BROWNOUT_LADDER,
    Autoscaler,
    AutoscalerPolicy,
)
from repro.cluster.bench import (
    autoscale_bench,
    disagg_bench,
    run_autoscale,
    run_disagg,
)
from repro.cluster.chaos import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    ChaosReport,
    ChaosScenario,
    build_workload,
    format_report,
    run_scenario,
    run_suite,
)
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterOutcome,
    ClusterPolicy,
    ClusterRequestStatus,
    ClusterSubmission,
    FleetConfigError,
    RestartSpec,
)
from repro.cluster.disagg import (
    DISAGG_BROWNOUT_LADDER,
    DisaggAutoscaler,
    DisaggAutoscalerPolicy,
    DisaggControlPlane,
    DisaggPolicy,
    HandoffAborted,
    PoolPartition,
    PoolSpec,
    default_pools,
    handoff_transfer_s,
)
from repro.cluster.journal import (
    JOURNAL_KINDS,
    ControlPlaneState,
    Journal,
    JournalRecord,
    JournalReplayMismatch,
    JournalTruncated,
    replay_journal,
    token_crc,
)
from repro.cluster.replica import GroupRun, Replica, ReplicaHealth
from repro.cluster.workload import (
    TRACES,
    BurstWindow,
    ClassMix,
    TraceSpec,
    generate_trace,
    peak_rate,
    rate_at,
)

__all__ = [
    "AdmissionController", "AdmissionError", "AuditReport", "Autoscaler",
    "AutoscalerPolicy", "BROWNOUT_LADDER", "BreakerState", "BurstWindow",
    "ChaosReport", "ChaosScenario", "CircuitBreaker", "ClassMix",
    "ClassShed", "ClusterControlPlane", "ClusterOutcome",
    "ClusterPolicy", "ClusterRequestStatus", "ClusterSubmission",
    "ControlPlaneState", "DEFAULT_CLASSES", "DISAGG_BROWNOUT_LADDER",
    "DisaggAutoscaler", "DisaggAutoscalerPolicy", "DisaggControlPlane",
    "DisaggPolicy", "FleetConfigError", "GroupRun", "HandoffAborted",
    "JOURNAL_KINDS", "Journal", "JournalRecord", "JournalReplayMismatch",
    "JournalTruncated", "NoHealthyReplica", "PoolPartition", "PoolSpec",
    "PriorityClass", "QueueFull", "RateLimited", "Replica",
    "ReplicaHealth", "RestartSpec", "SCENARIOS", "SMOKE_SCENARIOS",
    "TRACES", "TokenBucket", "TraceSpec", "audit_run", "autoscale_bench",
    "build_workload", "default_pools", "disagg_bench", "format_audit",
    "format_report", "generate_trace", "handoff_transfer_s", "peak_rate",
    "rate_at", "replay_journal", "run_autoscale", "run_disagg",
    "run_scenario", "run_suite", "token_crc",
]
