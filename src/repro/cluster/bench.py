"""The autoscale benchmark: goodput / latency / cost across traces.

``BENCH_autoscale.json`` is the PR's quantitative artifact: for each
registered trace (:data:`repro.cluster.workload.TRACES`) it serves the
seeded workload through a :class:`~repro.cluster.control_plane.
ClusterControlPlane` with an attached :class:`~repro.cluster.autoscaler.
Autoscaler` and reports

* **goodput** — deadline-met tokens per second of makespan, total and
  per priority class;
* **latency** — per-class TTFT / TPOT p50/p99 (virtual-clock seconds);
* **cost** — provisioned chip-seconds per generated token, against the
  statically over-provisioned fleet serving the same trace;
* **correctness** — zero dropped in-flight requests and bit-identical
  completions against the static fleet (capped outputs compare as
  greedy prefixes), plus a full re-run determinism check.

For the ``flash-crowd`` trace the benchmark also runs the brownout
ladder OFF and asserts the ladder *helps*: interactive goodput with
brownout must be at least the no-brownout baseline.

Everything is a pure function of ``(trace, seed, backend)`` — the CI
autoscale job replays it over a seed matrix and diffs the JSON.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster.autoscaler import Autoscaler, AutoscalerPolicy
from repro.cluster.chaos import CHAOS_CONFIG
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterPolicy,
    ClusterRequestStatus,
)
from repro.cluster.disagg import (
    DisaggControlPlane,
    DisaggPolicy,
    default_pools,
)
from repro.cluster.workload import TRACES, generate_trace
from repro.model import init_weights, tiny_test_config
from repro.observability.metrics import slo_summary
from repro.serving.resilient import CostModel

#: Virtual replica speed for every bench run: slow enough that the
#: traces' bursts create real queueing pressure on a small fleet.
BENCH_COSTS = CostModel(prefill_s=0.05, decode_step_s=0.01)
BENCH_CLUSTER_POLICY = ClusterPolicy(max_batch_wait_s=0.05)

#: Per-trace control policies.  ``flash-crowd`` pins the fleet at one
#: replica so the spike exercises the brownout ladder; the others let
#: the autoscaler ride the rate curve.
BENCH_POLICIES: dict[str, AutoscalerPolicy] = {
    "diurnal": AutoscalerPolicy(
        min_replicas=1, max_replicas=3, scale_out_pressure=1.0,
        scale_in_pressure=0.5, up_after=2, down_after=4, spinup_s=0.1),
    "flash-crowd": AutoscalerPolicy(
        min_replicas=1, max_replicas=1, scale_out_pressure=6.0,
        brownout_enter_pressure=8.0, brownout_exit_pressure=2.0,
        recover_after=2),
    "heavy-tail": AutoscalerPolicy(
        min_replicas=1, max_replicas=3, scale_out_pressure=1.5,
        scale_in_pressure=0.5, up_after=2, down_after=4, spinup_s=0.1),
    "chatbot-sessions": AutoscalerPolicy(
        min_replicas=1, max_replicas=2, scale_out_pressure=1.5,
        scale_in_pressure=0.5, up_after=2, down_after=4, spinup_s=0.1,
        cache_pressure_weight=0.5),
}


def _serve(trace: str, seed: int, backend: str,
           policy: AutoscalerPolicy | None, n_replicas: int):
    """One plane serving the seeded trace; returns (plane, outcomes)."""
    spec = TRACES[trace]
    weights = init_weights(CHAOS_CONFIG, seed=0)
    submissions = generate_trace(spec, seed,
                                 vocab_size=CHAOS_CONFIG.vocab_size)
    autoscaler = Autoscaler(policy) if policy is not None else None
    plane = ClusterControlPlane(
        weights, [(2, 2, 2)] * n_replicas, backend=backend,
        decode_batch=4, classes=spec.priority_classes(),
        costs=BENCH_COSTS, policy=BENCH_CLUSTER_POLICY,
        autoscaler=autoscaler)
    outcomes = plane.serve(submissions)
    return plane, outcomes


def _bit_identical(outcomes, static_outcomes) -> bool:
    """Completed streams match the static fleet's, prefix-wise if capped.

    Greedy decode is fleet-, plan- and batch-composition-invariant, so
    any request both fleets completed must carry identical tokens; a
    brownout-capped stream must be a prefix of the static one.
    """
    static_by_id = {o.request_id: o for o in static_outcomes
                    if o.completion is not None}
    for outcome in outcomes:
        if outcome.completion is None:
            continue
        ref = static_by_id.get(outcome.request_id)
        if ref is None:
            continue
        tokens = outcome.completion.tokens
        if outcome.output_capped:
            if not np.array_equal(tokens, ref.completion.tokens[:len(tokens)]):
                return False
        elif not np.array_equal(tokens, ref.completion.tokens):
            return False
    return True


def _goodput(outcomes, makespan_s: float) -> float:
    """Deadline-met generated tokens per second of makespan."""
    tokens = sum(o.completion.n_generated for o in outcomes
                 if o.status is ClusterRequestStatus.COMPLETED)
    return tokens / makespan_s if makespan_s > 0 else 0.0


def _class_goodput(outcomes, makespan_s: float, cls: str) -> float:
    tokens = sum(o.completion.n_generated for o in outcomes
                 if o.status is ClusterRequestStatus.COMPLETED
                 and o.priority_class == cls)
    return tokens / makespan_s if makespan_s > 0 else 0.0


def run_autoscale(trace: str, *, backend: str = "loop",
                  seed: int = 0) -> dict:
    """Benchmark one trace; returns the JSON-ready result row."""
    policy = BENCH_POLICIES[trace]
    plane, outcomes = _serve(trace, seed, backend, policy,
                             policy.min_replicas)
    # The statically over-provisioned reference: max_replicas from t=0,
    # no autoscaler, no brownout.
    static_plane, static_outcomes = _serve(trace, seed, backend, None,
                                           policy.max_replicas)

    finished = [o for o in outcomes if o.completion is not None]
    makespan = max((o.finish_s for o in finished), default=0.0)
    statuses = {s.value: 0 for s in ClusterRequestStatus}
    for o in outcomes:
        statuses[o.status.value] += 1
    dropped = (len(outcomes) - statuses["rejected"]
               - len(finished) - statuses["failed"])
    total_tokens = sum(o.completion.n_generated for o in finished)
    chip_s = plane.fleet_chip_seconds(plane.now_s)
    static_chip_s = static_plane.fleet_chip_seconds(static_plane.now_s)
    autoscaler = plane.autoscaler

    result = {
        "trace": trace,
        "seed": seed,
        "backend": backend,
        "n_requests": len(outcomes),
        "statuses": statuses,
        "dropped_in_flight": dropped,
        "makespan_s": round(makespan, 6),
        "goodput_tok_s": round(_goodput(outcomes, makespan), 6),
        "classes": {name: slo.as_dict() for name, slo
                    in sorted(slo_summary(plane.events).items())},
        "tokens": total_tokens,
        "chip_seconds": round(chip_s, 6),
        "static_chip_seconds": round(static_chip_s, 6),
        "cost_chip_s_per_token": round(chip_s / total_tokens, 6)
        if total_tokens else None,
        "replicas_added": len(plane.events.of_kind("replica_added")),
        "replicas_removed": len(plane.events.of_kind("replica_removed")),
        "plan_switches": len(plane.events.of_kind("plan_switched")),
        "brownout_steps": autoscaler.brownout_steps,
        "bit_identical_vs_static": _bit_identical(outcomes,
                                                  static_outcomes),
    }
    autoscaler.assert_reverted(plane)

    if trace == "flash-crowd":
        # The ladder must *help*: compare interactive goodput against
        # the identical run with the brownout rungs disabled.
        off_plane, off_outcomes = _serve(
            trace, seed, backend, replace(policy, brownout=False),
            policy.min_replicas)
        off_makespan = max((o.finish_s for o in off_outcomes
                            if o.completion is not None), default=0.0)
        with_b = _class_goodput(outcomes, makespan, "interactive")
        without_b = _class_goodput(off_outcomes, off_makespan,
                                   "interactive")
        result["interactive_goodput_tok_s"] = round(with_b, 6)
        result["interactive_goodput_no_brownout_tok_s"] = \
            round(without_b, 6)
        result["brownout_helps"] = with_b >= without_b
    return result


def check_autoscale_result(result: dict) -> list[str]:
    """The benchmark's acceptance gates -> list of violations."""
    v = []
    if result["dropped_in_flight"]:
        v.append(f"{result['dropped_in_flight']} requests dropped "
                 f"in flight")
    if result["statuses"]["failed"]:
        v.append(f"{result['statuses']['failed']} requests FAILED")
    if not result["bit_identical_vs_static"]:
        v.append("completions diverged from the statically "
                 "over-provisioned fleet")
    if result["goodput_tok_s"] <= 0:
        v.append("zero goodput")
    if result.get("brownout_helps") is False:
        v.append("brownout lowered interactive goodput "
                 f"({result['interactive_goodput_tok_s']} < "
                 f"{result['interactive_goodput_no_brownout_tok_s']} "
                 f"tok/s)")
    return v


def autoscale_bench(*, backend: str = "loop", seed: int = 0,
                    traces: tuple[str, ...] | None = None,
                    check_determinism: bool = True) -> dict:
    """The full benchmark: every registered trace, one JSON document."""
    names = traces if traces is not None else tuple(sorted(TRACES))
    results = []
    violations = []
    for name in names:
        result = run_autoscale(name, backend=backend, seed=seed)
        if check_determinism:
            rerun = run_autoscale(name, backend=backend, seed=seed)
            result["deterministic"] = rerun == result
            if not result["deterministic"]:
                violations.append(f"{name}: re-run diverged")
        for problem in check_autoscale_result(result):
            violations.append(f"{name}: {problem}")
        results.append(result)
    return {
        "bench": "autoscale",
        "backend": backend,
        "seed": seed,
        "traces": results,
        "violations": violations,
        "ok": not violations,
    }


# -- disaggregated prefill/decode vs colocated (BENCH_disagg.json) ----------

#: The disagg benchmark's cost model: the bench fleet speed plus the
#: Section 3.2 specialization payoff — a pool steered to its phase's
#: end of the Pareto frontier (2D weight-stationary prefill,
#: weight-gathered decode) runs that phase at 0.6x the balanced cost.
#: Colocated replicas stay on the balanced plan (one plan must serve
#: both phases), so they keep the exact legacy numbers.
DISAGG_COSTS = CostModel(
    prefill_s=0.05, decode_step_s=0.01,
    prefill_profile_factors=(("weight-stationary", 0.6),),
    decode_profile_factors=(("weight-gathered", 0.6),))

#: Pool shapes for the benchmark fleet: one prefill replica and one
#: decode replica, against a colocated fleet of the same two shapes —
#: equal chips, so any goodput edge is architecture, not hardware.
DISAGG_POOL_SHAPES: tuple[tuple, tuple] = (((2, 2, 2),), ((2, 2, 2),))


def _serve_disagg(trace: str, seed: int, backend: str):
    """The disaggregated fleet serving the seeded trace."""
    spec = TRACES[trace]
    weights = init_weights(CHAOS_CONFIG, seed=0)
    submissions = generate_trace(spec, seed,
                                 vocab_size=CHAOS_CONFIG.vocab_size)
    pools = default_pools(*DISAGG_POOL_SHAPES)
    plane = DisaggControlPlane(
        weights, pools, backend=backend, decode_batch=4,
        classes=spec.priority_classes(), costs=DISAGG_COSTS,
        policy=DisaggPolicy(max_batch_wait_s=0.05))
    outcomes = plane.serve(submissions)
    return plane, outcomes


def _serve_colocated(trace: str, seed: int, backend: str,
                     n_replicas: int):
    """The equal-chip colocated reference (balanced plans, no pools)."""
    spec = TRACES[trace]
    weights = init_weights(CHAOS_CONFIG, seed=0)
    submissions = generate_trace(spec, seed,
                                 vocab_size=CHAOS_CONFIG.vocab_size)
    plane = ClusterControlPlane(
        weights, [(2, 2, 2)] * n_replicas, backend=backend,
        decode_batch=4, classes=spec.priority_classes(),
        costs=DISAGG_COSTS, policy=BENCH_CLUSTER_POLICY)
    outcomes = plane.serve(submissions)
    return plane, outcomes


def run_disagg(trace: str, *, backend: str = "loop",
               seed: int = 0) -> dict:
    """Disaggregated vs colocated on one trace -> JSON-ready row."""
    n_colocated = sum(len(s) for s in DISAGG_POOL_SHAPES)
    plane, outcomes = _serve_disagg(trace, seed, backend)
    co_plane, co_outcomes = _serve_colocated(trace, seed, backend,
                                             n_colocated)

    def _summarise(pl, outs):
        finished = [o for o in outs if o.completion is not None]
        makespan = max((o.finish_s for o in finished), default=0.0)
        statuses = {s.value: 0 for s in ClusterRequestStatus}
        for o in outs:
            statuses[o.status.value] += 1
        return {
            "statuses": statuses,
            "dropped_in_flight": (len(outs) - statuses["rejected"]
                                  - len(finished) - statuses["failed"]),
            "makespan_s": round(makespan, 6),
            "goodput_tok_s": round(_goodput(outs, makespan), 6),
            "interactive_goodput_tok_s": round(
                _class_goodput(outs, makespan, "interactive"), 6),
            "chip_seconds": round(pl.fleet_chip_seconds(pl.now_s), 6),
            "chips": sum(r.full_chips for r in pl.replicas),
        }, makespan

    disagg, makespan = _summarise(plane, outcomes)
    colocated, _ = _summarise(co_plane, co_outcomes)
    disagg.update({
        "kv_handoffs": plane.kv_handoffs,
        "kv_handoff_bytes": plane.kv_handoff_bytes,
        "handoffs_colocated": plane.handoffs_colocated,
        "handoff_transfer_s": round(sum(
            e.data["transfer_s"]
            for e in plane.events.of_kind("kv_handoff")), 9),
        "handoff_overlapped_s": round(sum(
            e.data["overlapped_s"]
            for e in plane.events.of_kind("kv_handoff")), 9),
    })
    return {
        "trace": trace,
        "seed": seed,
        "backend": backend,
        "n_requests": len(outcomes),
        "disagg": disagg,
        "colocated": colocated,
        "bit_identical_vs_colocated": _bit_identical(outcomes,
                                                     co_outcomes),
        "classes": {name: slo.as_dict() for name, slo
                    in sorted(slo_summary(plane.events).items())},
    }


def check_disagg_result(result: dict, *, gate_goodput: bool) -> list[str]:
    """The disagg benchmark's acceptance gates -> list of violations."""
    v = []
    d, c = result["disagg"], result["colocated"]
    for side, row in (("disagg", d), ("colocated", c)):
        if row["dropped_in_flight"]:
            v.append(f"{side}: {row['dropped_in_flight']} requests "
                     f"dropped in flight")
        if row["statuses"]["failed"]:
            v.append(f"{side}: {row['statuses']['failed']} requests "
                     f"FAILED")
    if d["chips"] != c["chips"]:
        v.append(f"unequal fleets: {d['chips']} vs {c['chips']} chips")
    if not result["bit_identical_vs_colocated"]:
        v.append("completions diverged from the colocated fleet")
    if d["kv_handoffs"] < 1:
        v.append("no KV handoffs happened (pools never exercised)")
    if gate_goodput and \
            d["interactive_goodput_tok_s"] < c["interactive_goodput_tok_s"]:
        v.append(f"disagg interactive goodput "
                 f"{d['interactive_goodput_tok_s']} < colocated "
                 f"{c['interactive_goodput_tok_s']} tok/s")
    return v


def disagg_bench(*, backend: str = "loop", seed: int = 0,
                 check_determinism: bool = True) -> dict:
    """The full disagg benchmark: one JSON document.

    ``flash-crowd`` is the gated trace (disagg must beat the equal-chip
    colocated fleet on interactive goodput); ``heavy-tail`` rides along
    informationally — its long prompts move more KV bytes per handoff
    but its decode-bound tail narrows the specialization edge.
    """
    results = []
    violations = []
    for name, gated in (("flash-crowd", True), ("heavy-tail", False)):
        result = run_disagg(name, backend=backend, seed=seed)
        if check_determinism:
            rerun = run_disagg(name, backend=backend, seed=seed)
            result["deterministic"] = rerun == result
            if not result["deterministic"]:
                violations.append(f"{name}: re-run diverged")
        result["goodput_gated"] = gated
        for problem in check_disagg_result(result, gate_goodput=gated):
            violations.append(f"{name}: {problem}")
        results.append(result)
    return {
        "bench": "disagg",
        "backend": backend,
        "seed": seed,
        "traces": results,
        "violations": violations,
        "ok": not violations,
    }


# -- paged prefix cache: cached vs recompute (BENCH_prefix_cache.json) ------

#: The prefix bench's model: big enough to shard on a 4x4x4 torus (the
#: embedding table splits over all 64 chips) while staying fast to
#: serve under the virtual clock.
PREFIX_CONFIG = tiny_test_config(n_layers=2, d_model=64, d_ff=128,
                                 n_heads=16, d_head=4, vocab_size=32)

#: The gated run's mesh: one replica at the paper's 4x4x4 scale.
PREFIX_SHAPE = (4, 4, 4)

#: The shared-prefix workload (80% pooled system prompts + sessions)
#: and the no-sharing control trace the cache must not slow down.
PREFIX_TRACE = "chatbot-sessions"
PREFIX_BASELINE_TRACE = "diurnal"


def _serve_prefix(trace: str, seed: int, backend: str, shape,
                  *, cache_on: bool):
    """One single-replica plane serving the seeded trace, cache on/off."""
    spec = TRACES[trace]
    weights = init_weights(PREFIX_CONFIG, seed=0)
    submissions = generate_trace(spec, seed,
                                 vocab_size=PREFIX_CONFIG.vocab_size)
    policy = BENCH_CLUSTER_POLICY if cache_on else \
        replace(BENCH_CLUSTER_POLICY, kvstore_pages=0)
    plane = ClusterControlPlane(
        weights, [shape], backend=backend, decode_batch=4,
        classes=spec.priority_classes(), costs=BENCH_COSTS, policy=policy)
    outcomes = plane.serve(submissions)
    return plane, outcomes


def _fleet_kvstore_stats(plane) -> dict:
    """Summed store counters across the fleet (retired included)."""
    total: dict = {}
    for replica in list(plane.replicas) + plane.retired:
        for key, value in replica.kvstore_stats().items():
            if isinstance(value, (int, float)) and key not in (
                    "hit_rate", "occupancy", "page_tokens",
                    "capacity_pages"):
                total[key] = total.get(key, 0) + value
    cacheable = total.get("pages_hit", 0) + total.get("pages_missed", 0)
    total["hit_rate"] = (total.get("pages_hit", 0) / cacheable
                         if cacheable else 0.0)
    return total


def run_prefix_cache(trace: str, *, backend: str = "stacked",
                     seed: int = 0, shape=PREFIX_SHAPE) -> dict:
    """Cache-on vs cache-off (the recompute oracle) on one trace."""
    plane, outcomes = _serve_prefix(trace, seed, backend, shape,
                                    cache_on=True)
    off_plane, off_outcomes = _serve_prefix(trace, seed, backend, shape,
                                            cache_on=False)

    def _makespan(outs) -> float:
        return max((o.finish_s for o in outs
                    if o.completion is not None), default=0.0)

    stats = _fleet_kvstore_stats(plane)
    computed = stats.get("tokens_computed", 0)
    total_tokens = stats.get("tokens_total", 0)
    makespan = _makespan(outcomes)
    off_makespan = _makespan(off_outcomes)
    statuses = {s.value: 0 for s in ClusterRequestStatus}
    for o in outcomes:
        statuses[o.status.value] += 1
    finished = sum(1 for o in outcomes if o.completion is not None)
    return {
        "trace": trace,
        "seed": seed,
        "backend": backend,
        "shape": "x".join(map(str, shape)),
        "n_requests": len(outcomes),
        "statuses": statuses,
        "dropped_in_flight": (len(outcomes) - statuses["rejected"]
                              - finished - statuses["failed"]),
        "makespan_s": round(makespan, 6),
        "uncached_makespan_s": round(off_makespan, 6),
        "prefill_tokens_total": total_tokens,
        "prefill_tokens_computed": computed,
        "compute_reduction": round(total_tokens / computed, 6)
        if computed else None,
        "page_hit_rate": round(stats["hit_rate"], 6),
        "pages_resident": stats.get("pages", 0),
        "evictions": stats.get("evictions", 0),
        "kv_bytes_saved": stats.get("bytes_saved", 0),
        "page_leases": plane.kv_page_leases,
        "page_releases": plane.kv_page_releases,
        "bit_identical_vs_uncached": _bit_identical(outcomes,
                                                    off_outcomes),
        "goodput_tok_s": round(_goodput(outcomes, makespan), 6),
        "uncached_goodput_tok_s": round(
            _goodput(off_outcomes, off_makespan), 6),
    }


def check_prefix_cache_result(result: dict, *, shared: bool) -> list[str]:
    """The prefix-cache benchmark's acceptance gates -> violations.

    ``shared`` marks the shared-prefix trace, which must clear the
    reuse gates (>= 2x prefill-step compute reduction, >= 60% page hit
    rate); the no-sharing control only has to not regress.  Both must
    land bit-identical tokens against the cache-off oracle and keep
    page-lease accounting balanced.
    """
    v = []
    if result["dropped_in_flight"]:
        v.append(f"{result['dropped_in_flight']} requests dropped "
                 f"in flight")
    if result["statuses"]["failed"]:
        v.append(f"{result['statuses']['failed']} requests FAILED")
    if not result["bit_identical_vs_uncached"]:
        v.append("completions diverged from the cache-off oracle")
    if result["page_leases"] != result["page_releases"]:
        v.append(f"page-lease accounting unbalanced: "
                 f"{result['page_leases']} leases vs "
                 f"{result['page_releases']} releases")
    if result["makespan_s"] > result["uncached_makespan_s"] + 1e-9:
        v.append(f"cache slowed the trace down: makespan "
                 f"{result['makespan_s']} > uncached "
                 f"{result['uncached_makespan_s']}")
    if shared:
        reduction = result["compute_reduction"] or 0.0
        if reduction < 2.0:
            v.append(f"prefill compute reduction {reduction:.2f}x < 2x")
        if result["page_hit_rate"] < 0.6:
            v.append(f"page hit rate {result['page_hit_rate']:.1%} < 60%")
    return v


def prefix_cache_bench(*, seed: int = 0,
                       check_determinism: bool = True) -> dict:
    """The full prefix-cache benchmark: one JSON document.

    Three serving legs plus a chaos leg:

    * the shared-prefix trace on the stacked backend at 4x4x4 — the
      gated run (compute reduction, hit rate, bit-identity, speed);
    * the no-sharing control trace on the same fleet — the cache must
      be invisible (bit-identical, not a hair slower);
    * the shared-prefix trace on the loop backend at 2x2x2 — the same
      reuse gates must hold on the other mesh backend;
    * the ``shared-prefix-kill`` chaos scenario — a chip dies on the
      replica holding the shared pages and the auditor must certify
      exactly-once page leases and zero lost requests.
    """
    from repro.cluster.chaos import run_scenario

    legs = (
        (PREFIX_TRACE, "stacked", PREFIX_SHAPE, True),
        (PREFIX_BASELINE_TRACE, "stacked", PREFIX_SHAPE, False),
        (PREFIX_TRACE, "loop", (2, 2, 2), True),
    )
    results = []
    violations = []
    for trace, backend, shape, shared in legs:
        result = run_prefix_cache(trace, backend=backend, seed=seed,
                                  shape=shape)
        if check_determinism:
            rerun = run_prefix_cache(trace, backend=backend, seed=seed,
                                     shape=shape)
            result["deterministic"] = rerun == result
            if not result["deterministic"]:
                violations.append(f"{trace}/{backend}: re-run diverged")
        result["reuse_gated"] = shared
        for problem in check_prefix_cache_result(result, shared=shared):
            violations.append(f"{trace}/{backend}: {problem}")
        results.append(result)

    chaos = run_scenario("shared-prefix-kill", backend="loop", seed=seed)
    chaos_row = {
        "scenario": chaos.scenario,
        "backend": chaos.backend,
        "seed": chaos.seed,
        "completed": chaos.completed,
        "failovers": chaos.failovers,
        "page_leases": chaos.page_leases,
        "page_releases": chaos.page_releases,
        "audit_certified": chaos.audit_certified,
        "bit_identical": chaos.bit_identical,
        "chaos_certified": chaos.ok,
    }
    if not chaos.ok:
        for problem in chaos.violations:
            violations.append(f"shared-prefix-kill: {problem}")
    return {
        "bench": "prefix_cache",
        "seed": seed,
        "traces": results,
        "chaos": chaos_row,
        "violations": violations,
        "ok": not violations,
    }
