"""The autoscale benchmark: goodput / latency / cost across traces.

``BENCH_autoscale.json`` is the PR's quantitative artifact: for each
registered trace (:data:`repro.cluster.workload.TRACES`) it serves the
seeded workload through a :class:`~repro.cluster.control_plane.
ClusterControlPlane` with an attached :class:`~repro.cluster.autoscaler.
Autoscaler` and reports

* **goodput** — deadline-met tokens per second of makespan, total and
  per priority class;
* **latency** — per-class TTFT / TPOT p50/p99 (virtual-clock seconds);
* **cost** — provisioned chip-seconds per generated token, against the
  statically over-provisioned fleet serving the same trace;
* **correctness** — zero dropped in-flight requests and bit-identical
  completions against the static fleet (capped outputs compare as
  greedy prefixes), plus a full re-run determinism check.

For the ``flash-crowd`` trace the benchmark also runs the brownout
ladder OFF and asserts the ladder *helps*: interactive goodput with
brownout must be at least the no-brownout baseline.

Everything is a pure function of ``(trace, seed, backend)`` — the CI
autoscale job replays it over a seed matrix and diffs the JSON.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster.autoscaler import Autoscaler, AutoscalerPolicy
from repro.cluster.chaos import CHAOS_CONFIG
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterPolicy,
    ClusterRequestStatus,
)
from repro.cluster.workload import TRACES, generate_trace
from repro.model import init_weights
from repro.observability.metrics import slo_summary
from repro.serving.resilient import CostModel

#: Virtual replica speed for every bench run: slow enough that the
#: traces' bursts create real queueing pressure on a small fleet.
BENCH_COSTS = CostModel(prefill_s=0.05, decode_step_s=0.01)
BENCH_CLUSTER_POLICY = ClusterPolicy(max_batch_wait_s=0.05)

#: Per-trace control policies.  ``flash-crowd`` pins the fleet at one
#: replica so the spike exercises the brownout ladder; the others let
#: the autoscaler ride the rate curve.
BENCH_POLICIES: dict[str, AutoscalerPolicy] = {
    "diurnal": AutoscalerPolicy(
        min_replicas=1, max_replicas=3, scale_out_pressure=1.0,
        scale_in_pressure=0.5, up_after=2, down_after=4, spinup_s=0.1),
    "flash-crowd": AutoscalerPolicy(
        min_replicas=1, max_replicas=1, scale_out_pressure=6.0,
        brownout_enter_pressure=8.0, brownout_exit_pressure=2.0,
        recover_after=2),
    "heavy-tail": AutoscalerPolicy(
        min_replicas=1, max_replicas=3, scale_out_pressure=1.5,
        scale_in_pressure=0.5, up_after=2, down_after=4, spinup_s=0.1),
}


def _serve(trace: str, seed: int, backend: str,
           policy: AutoscalerPolicy | None, n_replicas: int):
    """One plane serving the seeded trace; returns (plane, outcomes)."""
    spec = TRACES[trace]
    weights = init_weights(CHAOS_CONFIG, seed=0)
    submissions = generate_trace(spec, seed,
                                 vocab_size=CHAOS_CONFIG.vocab_size)
    autoscaler = Autoscaler(policy) if policy is not None else None
    plane = ClusterControlPlane(
        weights, [(2, 2, 2)] * n_replicas, backend=backend,
        decode_batch=4, classes=spec.priority_classes(),
        costs=BENCH_COSTS, policy=BENCH_CLUSTER_POLICY,
        autoscaler=autoscaler)
    outcomes = plane.serve(submissions)
    return plane, outcomes


def _bit_identical(outcomes, static_outcomes) -> bool:
    """Completed streams match the static fleet's, prefix-wise if capped.

    Greedy decode is fleet-, plan- and batch-composition-invariant, so
    any request both fleets completed must carry identical tokens; a
    brownout-capped stream must be a prefix of the static one.
    """
    static_by_id = {o.request_id: o for o in static_outcomes
                    if o.completion is not None}
    for outcome in outcomes:
        if outcome.completion is None:
            continue
        ref = static_by_id.get(outcome.request_id)
        if ref is None:
            continue
        tokens = outcome.completion.tokens
        if outcome.output_capped:
            if not np.array_equal(tokens, ref.completion.tokens[:len(tokens)]):
                return False
        elif not np.array_equal(tokens, ref.completion.tokens):
            return False
    return True


def _goodput(outcomes, makespan_s: float) -> float:
    """Deadline-met generated tokens per second of makespan."""
    tokens = sum(o.completion.n_generated for o in outcomes
                 if o.status is ClusterRequestStatus.COMPLETED)
    return tokens / makespan_s if makespan_s > 0 else 0.0


def _class_goodput(outcomes, makespan_s: float, cls: str) -> float:
    tokens = sum(o.completion.n_generated for o in outcomes
                 if o.status is ClusterRequestStatus.COMPLETED
                 and o.priority_class == cls)
    return tokens / makespan_s if makespan_s > 0 else 0.0


def run_autoscale(trace: str, *, backend: str = "loop",
                  seed: int = 0) -> dict:
    """Benchmark one trace; returns the JSON-ready result row."""
    policy = BENCH_POLICIES[trace]
    plane, outcomes = _serve(trace, seed, backend, policy,
                             policy.min_replicas)
    # The statically over-provisioned reference: max_replicas from t=0,
    # no autoscaler, no brownout.
    static_plane, static_outcomes = _serve(trace, seed, backend, None,
                                           policy.max_replicas)

    finished = [o for o in outcomes if o.completion is not None]
    makespan = max((o.finish_s for o in finished), default=0.0)
    statuses = {s.value: 0 for s in ClusterRequestStatus}
    for o in outcomes:
        statuses[o.status.value] += 1
    dropped = (len(outcomes) - statuses["rejected"]
               - len(finished) - statuses["failed"])
    total_tokens = sum(o.completion.n_generated for o in finished)
    chip_s = plane.fleet_chip_seconds(plane.now_s)
    static_chip_s = static_plane.fleet_chip_seconds(static_plane.now_s)
    autoscaler = plane.autoscaler

    result = {
        "trace": trace,
        "seed": seed,
        "backend": backend,
        "n_requests": len(outcomes),
        "statuses": statuses,
        "dropped_in_flight": dropped,
        "makespan_s": round(makespan, 6),
        "goodput_tok_s": round(_goodput(outcomes, makespan), 6),
        "classes": {name: slo.as_dict() for name, slo
                    in sorted(slo_summary(plane.events).items())},
        "tokens": total_tokens,
        "chip_seconds": round(chip_s, 6),
        "static_chip_seconds": round(static_chip_s, 6),
        "cost_chip_s_per_token": round(chip_s / total_tokens, 6)
        if total_tokens else None,
        "replicas_added": len(plane.events.of_kind("replica_added")),
        "replicas_removed": len(plane.events.of_kind("replica_removed")),
        "plan_switches": len(plane.events.of_kind("plan_switched")),
        "brownout_steps": autoscaler.brownout_steps,
        "bit_identical_vs_static": _bit_identical(outcomes,
                                                  static_outcomes),
    }
    autoscaler.assert_reverted(plane)

    if trace == "flash-crowd":
        # The ladder must *help*: compare interactive goodput against
        # the identical run with the brownout rungs disabled.
        off_plane, off_outcomes = _serve(
            trace, seed, backend, replace(policy, brownout=False),
            policy.min_replicas)
        off_makespan = max((o.finish_s for o in off_outcomes
                            if o.completion is not None), default=0.0)
        with_b = _class_goodput(outcomes, makespan, "interactive")
        without_b = _class_goodput(off_outcomes, off_makespan,
                                   "interactive")
        result["interactive_goodput_tok_s"] = round(with_b, 6)
        result["interactive_goodput_no_brownout_tok_s"] = \
            round(without_b, 6)
        result["brownout_helps"] = with_b >= without_b
    return result


def check_autoscale_result(result: dict) -> list[str]:
    """The benchmark's acceptance gates -> list of violations."""
    v = []
    if result["dropped_in_flight"]:
        v.append(f"{result['dropped_in_flight']} requests dropped "
                 f"in flight")
    if result["statuses"]["failed"]:
        v.append(f"{result['statuses']['failed']} requests FAILED")
    if not result["bit_identical_vs_static"]:
        v.append("completions diverged from the statically "
                 "over-provisioned fleet")
    if result["goodput_tok_s"] <= 0:
        v.append("zero goodput")
    if result.get("brownout_helps") is False:
        v.append("brownout lowered interactive goodput "
                 f"({result['interactive_goodput_tok_s']} < "
                 f"{result['interactive_goodput_no_brownout_tok_s']} "
                 f"tok/s)")
    return v


def autoscale_bench(*, backend: str = "loop", seed: int = 0,
                    traces: tuple[str, ...] | None = None,
                    check_determinism: bool = True) -> dict:
    """The full benchmark: every registered trace, one JSON document."""
    names = traces if traces is not None else tuple(sorted(TRACES))
    results = []
    violations = []
    for name in names:
        result = run_autoscale(name, backend=backend, seed=seed)
        if check_determinism:
            rerun = run_autoscale(name, backend=backend, seed=seed)
            result["deterministic"] = rerun == result
            if not result["deterministic"]:
                violations.append(f"{name}: re-run diverged")
        for problem in check_autoscale_result(result):
            violations.append(f"{name}: {problem}")
        results.append(result)
    return {
        "bench": "autoscale",
        "backend": backend,
        "seed": seed,
        "traces": results,
        "violations": violations,
        "ok": not violations,
    }
