"""Disaggregated prefill/decode serving: two pools, explicit KV handoff.

The paper's Section 3.2 Pareto analysis says prefill and decode want
*different* partitioning layouts — token-rich prefill the 2D
weight-stationary plan (Section 3.2.2), large-batch decode the
weight-gathered plan — and Section 4.4 already describes the
prefill-server -> decode-server cache transfer that makes running them
on separate machines possible.  DistServe and TPLA (see PAPERS.md) turn
that observation into an architecture: a **prefill pool** and a
**decode pool** of independently shaped, independently planned replicas
with an explicit KV-cache handoff between them.  This module is that
architecture on the simulated substrate:

* :class:`PoolSpec` — per-pool replica shapes plus the pool's
  partitioning profiles (prefill pool defaults to 2D weight-stationary
  prefill, decode pool to weight-gathered decode).
* :class:`DisaggControlPlane` — a phase-aware
  :class:`~repro.cluster.control_plane.ClusterControlPlane`: new groups
  prefill in the prefill pool, then the finished KV caches move to a
  decode replica over the existing live-migration path
  (:meth:`~repro.cluster.replica.GroupRun.migrate_to`), priced by the
  Appendix A.1 link model and recorded as a typed
  :data:`~repro.events.KV_HANDOFF` event.  The transfer *overlaps* the
  decode pool's ongoing steps: decode starts at
  ``max(prefill_end + transfer, target_busy)``.
* :class:`DisaggAutoscaler` — pools scale independently (scale-out
  picks the pool the token mix says is the bottleneck) and the brownout
  ladder gains a ``collapse-pools`` rung that merges the pools back
  into a colocated fleet under pressure — and reverses cleanly.

Invariants, same as the rest of :mod:`repro.cluster`:

* **Virtual-clock purity** — every run is a pure function of
  ``(workload, backend, seed)``; the handoff charges simulated seconds
  from :func:`handoff_transfer_s`, never wall time.
* **Bit-identity** — greedy decode is plan-, mesh- and batch-
  composition-invariant, so disaggregated completions are bit-identical
  to a colocated fleet's (the disagg benchmark and chaos scenario
  assert it).
* **Typed events** — every handoff, abort, collapse and restore is a
  typed :class:`~repro.events.EventLog` record; failures surface as
  :class:`HandoffAborted` (a :class:`~repro.mesh.faults.MeshFault`), so
  the control plane's failover machinery — re-prefill in the prefill
  pool — covers mid-handoff chip deaths with zero dropped requests.
* **Capture** — a handoff invalidates nothing: decode programs key on
  the *destination* replica's signature (each replica owns its
  :class:`~repro.mesh.capture.StepCompiler`), so the decode pool's
  warm programs keep replaying across handoffs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Sequence

import numpy as np

from repro.cluster.admission import NoHealthyReplica
from repro.cluster.autoscaler import (
    BROWNOUT_LADDER,
    Autoscaler,
    AutoscalerPolicy,
)
from repro.cluster.control_plane import (
    ClusterControlPlane,
    ClusterPolicy,
    FleetConfigError,
)
from repro.cluster.replica import GroupRun, Replica
from repro.collectives.cost import all_gather_time
from repro.events import (
    AUTOSCALE_DECISION,
    KV_HANDOFF,
    KV_HANDOFF_ABORTED,
    KV_HANDOFF_DEDUPED,
    KV_HANDOFF_PREPARED,
    KV_HANDOFF_RETRIED,
    POOL_QUARANTINED,
    POOL_REJOINED,
    POOLS_COLLAPSED,
    POOLS_RESTORED,
)
from repro.mesh.faults import MeshFault
from repro.serving.backoff import jittered_backoff_s

Coord = tuple[int, int, int]

#: The disaggregated fleet's brownout ladder: the base rungs with
#: ``collapse-pools`` inserted before the final shed — merging the
#: pools is less harmful than refusing users, so it engages first.
DISAGG_BROWNOUT_LADDER = (BROWNOUT_LADDER[:-1] + ("collapse-pools",)
                          + BROWNOUT_LADDER[-1:])


class HandoffAborted(MeshFault):
    """The KV handoff transaction gave up after its retry budget.

    Raised out of :meth:`DisaggControlPlane._after_prefill` only once
    ``DisaggPolicy.handoff_retries`` seeded-backoff retries have all
    failed (a single transfer fault is retried, not aborted).  Caught by
    the control plane's standard failover handler — which re-prefills
    the group in the prefill pool, exactly like any other mid-group
    fault.
    """


@dataclass(frozen=True)
class PoolSpec:
    """One pool's replica shapes and partitioning profiles (pure data).

    ``name`` must be ``"prefill"`` or ``"decode"``.  The profiles name
    ends of the Section 3.2 frontier (``"balanced"`` /
    ``"weight-stationary"`` / ``"weight-gathered"``); each replica in
    the pool is steered to them at construction and re-steered at
    dispatch after any degraded replan.  ``names`` optionally pins the
    pool's replica names (one per shape, fleet-unique) — misconfigured
    rosters raise :class:`~repro.cluster.control_plane.FleetConfigError`
    at construction, mirroring ``FaultPlan``'s eager validation.
    """

    name: str
    shapes: tuple[Coord, ...]
    prefill_profile: str = "balanced"
    decode_profile: str = "balanced"
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in ("prefill", "decode"):
            raise ValueError(f"pool name must be 'prefill' or 'decode', "
                             f"got {self.name!r}")
        if not self.shapes:
            raise FleetConfigError(f"pool {self.name!r} needs at least "
                                   f"one replica shape")
        for profile in (self.prefill_profile, self.decode_profile):
            if profile not in ("balanced", "weight-stationary",
                               "weight-gathered"):
                raise ValueError(f"unknown profile {profile!r}")
        if self.names:
            if len(self.names) != len(self.shapes):
                raise FleetConfigError(
                    f"pool {self.name!r} names {len(self.names)} "
                    f"replicas but has {len(self.shapes)} shapes")
            dupes = {n for n in self.names if self.names.count(n) > 1}
            if dupes:
                raise FleetConfigError(
                    f"pool {self.name!r} repeats replica names "
                    f"{sorted(dupes)}")


def default_pools(prefill_shapes: Sequence[Coord],
                  decode_shapes: Sequence[Coord]
                  ) -> tuple[PoolSpec, PoolSpec]:
    """The paper-faithful pool pair: 2D weight-stationary prefill
    replicas and weight-gathered decode replicas (Section 3.2)."""
    return (
        PoolSpec("prefill", tuple(prefill_shapes),
                 prefill_profile="weight-stationary"),
        PoolSpec("decode", tuple(decode_shapes),
                 decode_profile="weight-gathered"),
    )


@dataclass(frozen=True)
class DisaggPolicy(ClusterPolicy):
    """Cluster policy plus the cross-pool link and routing knobs."""

    #: The prefill->decode link the KV caches cross, priced by the
    #: Appendix A.1 beta model (one inter-replica hop): TPU v4 ICI
    #: bandwidth by default.
    link_bandwidth: float = 270e9
    link_alpha_s: float = 1e-6         # per-hop launch latency
    #: ``True`` refuses groups when a phase's pool has no dispatchable
    #: replica; the default degrades to colocated routing instead (the
    #: other pool can run both phases, just on its own plans).
    strict_pools: bool = False
    #: Transactional handoff: how many times a failed transfer is
    #: retried (with seeded jittered exponential backoff) before the
    #: transaction aborts to re-prefill.  0 restores the legacy
    #: abort-on-first-fault behavior.
    handoff_retries: int = 2
    handoff_backoff_base_s: float = 0.01
    handoff_backoff_jitter: float = 0.5
    handoff_backoff_seed: int = 0


@dataclass(frozen=True)
class PoolPartition:
    """Scheduled heartbeat loss of one whole pool (a chaos fault class).

    From ``at_s`` until ``until_s`` the control plane cannot reach any
    replica of ``pool``: the members are *quarantined* (no dispatch, no
    handoff target) and the transactional handoff keeps retrying into
    the partition with seeded backoff until it heals — or the retry
    budget aborts to re-prefill.  Recovery re-admits the survivors
    (:data:`~repro.events.POOL_REJOINED`).
    """

    pool: str
    at_s: float
    until_s: float

    def __post_init__(self) -> None:
        if self.pool not in ("prefill", "decode"):
            raise ValueError(f"pool must be 'prefill' or 'decode', "
                             f"got {self.pool!r}")
        if not 0.0 <= self.at_s < self.until_s:
            raise ValueError(
                f"partition window must satisfy 0 <= at_s < until_s, "
                f"got [{self.at_s}, {self.until_s})")


def handoff_transfer_s(n_bytes: int, policy: DisaggPolicy) -> float:
    """Virtual seconds to move ``n_bytes`` of KV cache across pools.

    One host-mediated hop of the Appendix A.1 link model:
    ``bytes / link_bandwidth + alpha`` (``all_gather_time`` with group
    size 2 and ``exact=False`` reduces to exactly that).
    """
    return all_gather_time(float(n_bytes), 2, policy.link_bandwidth,
                           exact=False, alpha=policy.link_alpha_s)


class DisaggControlPlane(ClusterControlPlane):
    """A control plane whose fleet is split into prefill/decode pools.

    Replica order is pools-in-order (prefill pool first), so
    ``fault_plans`` indices and replica names line up with the
    concatenated shape list.  All base-plane machinery — admission,
    failover, drains, hedging, autoscaler levers — works unchanged; the
    pool structure only changes *routing* (phase-aware
    :meth:`_phase_candidates`) and adds the post-prefill KV handoff
    (:meth:`_after_prefill`).
    """

    def __init__(self, weights, pools: Sequence[PoolSpec], *,
                 policy: ClusterPolicy | None = None,
                 partitions: Sequence[PoolPartition] = (),
                 **kwargs):
        pools = tuple(pools)
        pool_names = sorted(p.name for p in pools)
        if pool_names != ["decode", "prefill"]:
            raise ValueError(f"need exactly one 'prefill' and one "
                             f"'decode' pool, got {[p.name for p in pools]}")
        policy = policy if policy is not None else DisaggPolicy()
        if not isinstance(policy, DisaggPolicy):
            # Promote a plain ClusterPolicy (chaos scenarios pass one);
            # the link/routing knobs take their defaults.
            policy = DisaggPolicy(**{
                f.name: getattr(policy, f.name)
                for f in fields(ClusterPolicy)})
        named = [p for p in pools if p.names]
        if named and len(named) != len(pools):
            raise FleetConfigError(
                "either every pool names its replicas or none does; "
                f"only {[p.name for p in named]} did")
        if named:
            flat = [n for p in pools for n in p.names]
            overlap = {n for n in flat if flat.count(n) > 1}
            if overlap:
                raise FleetConfigError(
                    f"replicas {sorted(overlap)} belong to more than "
                    f"one pool")
            kwargs["names"] = flat
        shapes = [shape for spec in pools for shape in spec.shapes]
        super().__init__(weights, shapes, policy=policy, **kwargs)
        self.pool_specs = {p.name: p for p in pools}
        self.pool_of: dict[str, str] = {}
        i = 0
        for spec in pools:
            for _ in spec.shapes:
                self.pool_of[self.replicas[i].name] = spec.name
                i += 1
        self.pools_collapsed = False
        self.kv_handoffs = 0
        self.kv_handoff_bytes = 0
        self.kv_handoff_bytes_saved = 0  # prefix pages the target held
        self.kv_pages_adopted = 0     # source pages registered on targets
        self.handoffs_colocated = 0   # no decode target: decoded in place
        self.handoff_retries = 0
        self.handoff_aborts = 0
        self.handoff_dups_dropped = 0
        #: Groups whose KV pages reached the decode side even though the
        #: transfer ack was lost — the retransmit dedups against this.
        self._handoff_delivered: set[int] = set()
        self.partitions = tuple(partitions)
        self._partition_active = [False] * len(self.partitions)
        self.quarantined: set[str] = set()
        self._pool_fallback_noted = False
        for replica in self.replicas:
            self._apply_pool_profiles(replica, 0.0)

    # -- pool structure -----------------------------------------------------

    def active_replicas(self, pool: str | None = None) -> list[Replica]:
        """Dispatchable, non-retiring replicas, optionally one pool's."""
        replicas = super().active_replicas()
        if pool is None:
            return replicas
        return [r for r in replicas if self.pool_of.get(r.name) == pool]

    def add_replica(self, shape: Coord, now_s: float, *,
                    spinup_s: float = 0.0,
                    pool: str = "decode") -> Replica:
        """Scale out into ``pool`` (profiles applied at construction)."""
        if pool not in self.pool_specs:
            raise ValueError(f"unknown pool {pool!r}")
        replica = super().add_replica(shape, now_s, spinup_s=spinup_s,
                                      pool=pool)
        self.pool_of[replica.name] = pool
        self._apply_pool_profiles(replica, now_s)
        return replica

    # -- pool partitions (heartbeat loss) ------------------------------------

    def _heartbeat_all(self, now_s: float) -> None:
        self._update_partitions(now_s)
        super()._heartbeat_all(now_s)

    def _update_partitions(self, now_s: float) -> None:
        """Quarantine / re-admit pool members as partition windows move.

        A quarantined replica is unreachable, not dead: its process and
        caches are fine, the control plane just cannot dispatch to it
        (or hand KV pages to it) until heartbeats resume.  Both edges
        are journaled, so replay reconstructs the quarantine set.
        """
        for i, part in enumerate(self.partitions):
            active = part.at_s <= now_s < part.until_s
            if active and not self._partition_active[i]:
                self._partition_active[i] = True
                members = sorted(
                    r.name for r in self.replicas
                    if self.pool_of.get(r.name) == part.pool
                    and r.name not in self.quarantined)
                self.quarantined.update(members)
                self._journal("quarantine", t_s=now_s, pool=part.pool,
                              replicas=members)
                self.events.record(POOL_QUARANTINED, pool=part.pool,
                                   replicas=members, t_s=now_s,
                                   until_s=part.until_s)
                self.tracer.mark(f"pool-quarantined:{part.pool}",
                                 replicas=members)
            elif not active and self._partition_active[i] and \
                    now_s >= part.until_s:
                self._partition_active[i] = False
                held = sorted(n for n in self.quarantined
                              if self.pool_of.get(n) == part.pool)
                self.quarantined.difference_update(held)
                self._journal("pool_rejoin", t_s=now_s, pool=part.pool,
                              replicas=held)
                self.events.record(POOL_REJOINED, pool=part.pool,
                                   replicas=held, t_s=now_s)
                self.tracer.mark(f"pool-rejoined:{part.pool}",
                                 replicas=held)

    def _apply_pool_profiles(self, replica: Replica, t: float) -> None:
        """Steer a replica's prefill and decode plans to its pool's."""
        spec = self.pool_specs[self.pool_of[replica.name]]
        if replica.prefill_profile != spec.prefill_profile:
            replica.switch_prefill_profile(spec.prefill_profile, t)
        if replica.profile != spec.decode_profile:
            replica.switch_profile(spec.decode_profile, t)

    def _phase_candidates(self, phase: str) -> list[Replica]:
        # Quarantined replicas (pool partition) are unreachable for
        # dispatch regardless of pool routing, including the fallback.
        live = [r for r in self.replicas
                if r.name not in self.quarantined]
        if self.pools_collapsed or phase == "any":
            return live
        pool = "prefill" if phase == "prefill" else "decode"
        members = [r for r in live if self.pool_of.get(r.name) == pool]
        if not getattr(self.policy, "strict_pools", False) and \
                not any(r.dispatchable for r in members):
            # The pool is lost (dead / draining / not yet provisioned):
            # degrade to colocated routing rather than refuse service.
            if not self._pool_fallback_noted:
                self._pool_fallback_noted = True
                self.tracer.mark(f"pool-fallback:{pool}",
                                 pool=pool, phase=phase)
            return live
        return members

    def _apply_profile(self, replica: Replica, t: float) -> float:
        """At dispatch, steer to the pool's plans (collapsed: base rules).

        After a degraded replan reset a replica to ``balanced`` this is
        where its pool profiles come back; the switch charges one
        ``plan_switch_s`` like any other plan move.
        """
        if self.pools_collapsed or replica.name not in self.pool_of:
            return super()._apply_profile(replica, t)
        spec = self.pool_specs[self.pool_of[replica.name]]
        switched = False
        if replica.prefill_profile != spec.prefill_profile and \
                replica.switch_prefill_profile(spec.prefill_profile, t):
            switched = True
        if replica.profile != spec.decode_profile and \
                replica.switch_profile(spec.decode_profile, t):
            switched = True
        return self.policy.plan_switch_s if switched else 0.0

    # -- the KV handoff -----------------------------------------------------

    def _colocate(self, run: GroupRun, t: float, gid: int,
                  reason: str) -> tuple[GroupRun, float]:
        """Give up on handing off: decode in place on the prefill
        replica (a degrade path, not a fault)."""
        self.handoffs_colocated += 1
        self.tracer.mark(f"handoff-colocated:{run.replica.name}",
                         group=gid, reason=reason)
        return run, t

    def _uncached_bytes(self, run: GroupRun,
                        target: Replica) -> tuple[int, int]:
        """Split the handoff payload into (uncached, already-cached) bytes.

        The Mooncake-style pricing: prefix pages the *target's* store
        already holds need not cross the link — only the uncached
        remainder is transferred.  Matched tokens are measured by a pure
        ``peek`` per request against the target store.
        """
        total = run.kv_cache_bytes()
        if target.kvstore is None:
            return total, 0
        per_token = sum(
            2 * cache.global_shape[2] * cache.global_shape[3]
            * np.dtype(cache.dtype).itemsize
            for cache in run.caches)
        matched = sum(target.kvstore.peek(request.prompt)
                      for request in run.group)
        saved = min(matched * per_token, total)
        return total - saved, saved

    def _adopt_pages(self, run: GroupRun, source: Replica,
                     target: Replica, t: float, gid: int) -> None:
        """Register the source's prefix pages on the target store.

        Adoption is by reference (sealed pages are immutable), so later
        prompts sharing the prefix hit on the decode side too and the
        next handoff of the same prefix prices at zero.  No journal
        record: adoption only seeds a cache — losing it costs recompute,
        never correctness — unlike leases, which pin memory.
        """
        if source.kvstore is None or target.kvstore is None:
            return
        adopted = 0
        for request in run.group:
            pages = source.kvstore.lookup_pages(request.prompt)
            if pages:
                adopted += target.kvstore.adopt(request.prompt, pages)
        if adopted:
            self.kv_pages_adopted += adopted
            self.tracer.mark(
                f"page-adopt:{source.name}->{target.name}",
                group=gid, pages=adopted)

    def _handoff_target(self, t: float, run: GroupRun,
                        source: Replica) -> Replica | None:
        rid = run.group[0].request_id
        try:
            target = self._pick_replica(t, rid, "default",
                                        exclude=source, phase="decode")
        except NoHealthyReplica:
            return None
        return None if target is source else target

    def _after_prefill(self, run: GroupRun, t: float,
                       gid: int) -> tuple[GroupRun, float]:
        """Hand the group's finished KV caches to a decode replica —
        transactionally.

        The Section 4.4 prefill-server -> decode-server transfer as a
        prepare/commit transaction.  **Prepare** stages the merged
        caches host-side (:meth:`GroupRun.migrate_to` — Section 4.4's
        host-mediated path), so the staged pages stay valid however the
        source mesh changes afterwards.  **Commit** drives the transfer:
        the source's fault clock advances one ``"handoff"`` phase step,
        and any fault there — source chips lost, the transfer ack lost,
        the decode pool partitioned — is *retried* with seeded jittered
        exponential backoff (``jittered_backoff_s``, keyed by the group
        id) after a source heartbeat replans around whatever died.  The
        retransmit path dedups: if the pages already landed (ack lost
        after delivery), the duplicate is dropped on the decode side and
        the commit proceeds — the journal's prepare/retry/commit records
        are what the auditor replays to certify exactly-once delivery.
        Only an exhausted retry budget raises :class:`HandoffAborted`
        into the failover path (re-prefill in the prefill pool).

        Committed decode starts at ``max(prefill_end + transfer,
        target_busy)`` — the A.1-priced transfer overlaps whatever the
        decode replica is already running.  No decode target (or a plan
        that cannot host the batch) degrades to decoding in place,
        unless the pool is merely partitioned — then the transaction
        waits it out instead of wasting the prefill.
        """
        if self.pools_collapsed:
            return run, t
        source = run.replica
        if self.pool_of.get(source.name) != "prefill":
            return run, t  # already decode-capable (pool fallback path)
        policy = self.policy
        n_bytes = run.kv_cache_bytes()
        self._journal("handoff_prepare", t_s=t, group=gid,
                      source=source.name, bytes=n_bytes)
        self.events.record(KV_HANDOFF_PREPARED, group=gid,
                           source=source.name, bytes=n_bytes, t_s=t)
        budget = max(getattr(policy, "handoff_retries", 0), 0)
        attempts = budget + 1
        target: Replica | None = None
        new_run: GroupRun | None = None
        for attempt in range(1, attempts + 1):
            self._update_partitions(t)
            failure = None
            if target is not None and target.name in self.quarantined:
                target = None     # partition opened mid-backoff:
                new_run = None    # re-pick (and re-stage) after it heals
            if target is None:
                target = self._handoff_target(t, run, source)
                if target is None:
                    if self.quarantined:
                        # The decode pool is partitioned, not gone: the
                        # staged pages are fine, wait out the window.
                        failure = "decode-pool-partitioned"
                    else:
                        return self._colocate(run, t, gid,
                                              "no decode target")
            if failure is None and new_run is None:
                try:
                    new_run = run.migrate_to(target)
                except ValueError:
                    # The target's plan cannot host this batch (weight-
                    # gathered batch-group divisibility): not a fault,
                    # just decode here.
                    return self._colocate(run, t, gid,
                                          "migration refused")
            if failure is None:
                # Commit: the source drives the transfer — advance its
                # fault clock one "handoff" phase step so chaos can
                # fault exactly here.
                source.advance("handoff")
                state = source.fault_state
                if state is not None and state.dead_chips:
                    failure = "source-chips-lost"
                elif state is not None and \
                        state.take_transfer_fault("handoff") is not None:
                    # The pages landed but the ack was lost: the decode
                    # side holds them; the retransmit must dedup.
                    self._handoff_delivered.add(gid)
                    failure = "ack-lost"
            if failure is None:
                if gid in self._handoff_delivered:
                    self.handoff_dups_dropped += 1
                    self._journal("handoff_dup", t_s=t, group=gid)
                    self.events.record(KV_HANDOFF_DEDUPED, group=gid,
                                       target=target.name, t_s=t)
                    self.tracer.mark(f"handoff-dedup:{target.name}",
                                     group=gid)
                # Prefix pages the target's store already holds stay
                # put — only the uncached remainder is priced on the
                # A.1 link (storage traded for transfer, the Mooncake
                # recipe applied to the handoff).
                uncached, saved = self._uncached_bytes(run, target)
                transfer_s = handoff_transfer_s(uncached, policy)
                # The source is occupied until the transfer completes
                # (a drain or scale-in of it waits at least that long);
                # the target keeps decoding its current work — overlap
                # comes from starting at whichever of transfer-done /
                # target-free is later.
                source.busy_until_s = t + transfer_s
                decode_start = max(t + transfer_s, target.busy_until_s)
                self.kv_handoffs += 1
                self.kv_handoff_bytes += uncached
                self.kv_handoff_bytes_saved += saved
                self._journal("handoff_commit", t_s=t, group=gid,
                              source=source.name, target=target.name,
                              attempt=attempt)
                self.events.record(
                    KV_HANDOFF, group=gid, source=source.name,
                    target=target.name, bytes=uncached,
                    bytes_saved=saved,
                    transfer_s=transfer_s, t_s=t,
                    decode_start_s=decode_start, attempts=attempt,
                    overlapped_s=max(
                        target.busy_until_s - (t + transfer_s), 0.0))
                self.tracer.mark(
                    f"kv-handoff:{source.name}->{target.name}",
                    group=gid, bytes=uncached, transfer_s=transfer_s)
                # Post-commit: seed the decode side's store so the next
                # shared-prefix handoff prices (and routes) even better.
                self._adopt_pages(run, source, target, t, gid)
                return new_run, decode_start
            if attempt == attempts:
                self.handoff_aborts += 1
                self._journal("handoff_abort", t_s=t, group=gid,
                              reason=failure, budget=budget)
                self.events.record(KV_HANDOFF_ABORTED, group=gid,
                                   source=source.name, reason=failure,
                                   retries=budget, t_s=t)
                source.busy_until_s = t
                raise HandoffAborted(
                    f"KV handoff for group {gid} gave up after "
                    f"{budget} retries ({failure}); re-prefilling")
            self.handoff_retries += 1
            backoff = jittered_backoff_s(
                attempt,
                base_s=getattr(policy, "handoff_backoff_base_s", 0.01),
                jitter=getattr(policy, "handoff_backoff_jitter", 0.5),
                seed=getattr(policy, "handoff_backoff_seed", 0),
                key=gid)
            self._journal("handoff_retry", t_s=t, group=gid,
                          attempt=attempt, reason=failure,
                          backoff_s=backoff)
            self.events.record(KV_HANDOFF_RETRIED, group=gid,
                               source=source.name, attempt=attempt,
                               reason=failure, backoff_s=backoff, t_s=t)
            self.tracer.mark(f"handoff-retry:{source.name}", group=gid,
                             attempt=attempt, reason=failure)
            t += backoff
            self._set_now(t)
            source.busy_until_s = t
            # Replan around whatever died before the retransmit; the
            # staged pages (prepare) stay valid across the replan.
            source.heartbeat(t)
        raise AssertionError("unreachable: handoff loop neither "
                             "committed nor aborted")

    # -- collapse-to-colocated ----------------------------------------------

    def collapse_pools(self, now_s: float) -> bool:
        """Merge the pools: any replica serves any phase (brownout rung).

        Routing reverts to the base plane's least-busy dispatch and the
        handoff is suspended; replicas keep their current plans until
        the base profile rules re-steer them at dispatch.  Reversible
        via :meth:`restore_pools`.
        """
        if self.pools_collapsed:
            return False
        self.pools_collapsed = True
        self._journal("pools", t_s=now_s, collapsed=True)
        self.events.record(POOLS_COLLAPSED, t_s=now_s)
        self.tracer.mark("pools-collapsed")
        return True

    def restore_pools(self, now_s: float) -> bool:
        """Reverse :meth:`collapse_pools`: pool routing and handoffs
        resume; pool profiles re-apply at each replica's next dispatch."""
        if not self.pools_collapsed:
            return False
        self.pools_collapsed = False
        self._journal("pools", t_s=now_s, collapsed=False)
        self.events.record(POOLS_RESTORED, t_s=now_s)
        self.tracer.mark("pools-restored")
        return True


@dataclass(frozen=True)
class DisaggAutoscalerPolicy(AutoscalerPolicy):
    """Autoscaler policy plus the per-pool knobs."""

    min_per_pool: int = 1              # scale-in floor per pool
    #: Shapes scale-out provisions per pool; ``None`` falls back to
    #: ``replica_shape``.
    prefill_shape: Coord | None = None
    decode_shape: Coord | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.min_per_pool < 1:
            raise ValueError("min_per_pool must be >= 1")


class DisaggAutoscaler(Autoscaler):
    """The pool-aware control loop for a :class:`DisaggControlPlane`.

    Pools scale *independently*: scale-out reads the token mix since
    the last decision and grows the pool doing the bottleneck phase;
    scale-in drains the newest replica of whichever pool is above its
    floor.  The brownout ladder is the base ladder plus a
    ``collapse-pools`` rung (engaged before shedding, released in
    reverse order) that merges the fleet back to colocated serving
    under pressure — :meth:`assert_reverted` additionally checks the
    pools were split again.
    """

    ladder = DISAGG_BROWNOUT_LADDER

    def __init__(self, policy: AutoscalerPolicy | None = None):
        super().__init__(policy or DisaggAutoscalerPolicy())
        self._scale_prefill_mark = 0
        self._scale_decode_mark = 0

    def _pool_shape(self, pool: str) -> Coord:
        shape = getattr(self.policy,
                        "prefill_shape" if pool == "prefill"
                        else "decode_shape", None)
        return shape if shape is not None else self.policy.replica_shape

    def _scale_out(self, plane, t: float, pressure: float,
                   slo_breach: bool, n_active: int) -> None:
        d_prefill = plane.prefill_tokens - self._scale_prefill_mark
        d_decode = plane.decode_tokens - self._scale_decode_mark
        self._scale_prefill_mark = plane.prefill_tokens
        self._scale_decode_mark = plane.decode_tokens
        total = d_prefill + d_decode
        if total:
            pool = "prefill" if d_prefill / total >= 0.5 else "decode"
        else:
            # No token evidence yet: grow the smaller pool (prefill on
            # ties — new groups enter the fleet there).
            n_p = len(plane.active_replicas(pool="prefill"))
            n_d = len(plane.active_replicas(pool="decode"))
            pool = "prefill" if n_p <= n_d else "decode"
        replica = plane.add_replica(self._pool_shape(pool), t,
                                    spinup_s=self.policy.spinup_s,
                                    pool=pool)
        plane.events.record(
            AUTOSCALE_DECISION, action="scale-out", t_s=t,
            replica=replica.name, pool=pool,
            pressure=round(pressure, 3), slo_breach=slo_breach,
            fleet=n_active + 1)

    def _scale_in(self, plane, t: float, pressure: float,
                  n_active: int) -> bool:
        floor = getattr(self.policy, "min_per_pool", 1)
        eligible = {}
        for pool in ("prefill", "decode"):
            members = plane.active_replicas(pool=pool)
            if len(members) > floor:
                eligible[pool] = members
        if not eligible:
            return False  # both pools at their floor: keep the fleet
        # Retire from the larger pool (decode on ties), newest first.
        pool = max(eligible, key=lambda p: (len(eligible[p]),
                                            p == "decode"))
        victim = eligible[pool][-1]
        plane.begin_scale_in(victim.name, t)
        plane.events.record(
            AUTOSCALE_DECISION, action="scale-in", t_s=t,
            replica=victim.name, pool=pool,
            pressure=round(pressure, 3), fleet=n_active - 1)
        return True

    def _engage_custom(self, plane, t: float, rung: str) -> None:
        if rung == "collapse-pools":
            plane.collapse_pools(t)
        else:
            super()._engage_custom(plane, t, rung)

    def _release_custom(self, plane, t: float, rung: str) -> None:
        if rung == "collapse-pools":
            plane.restore_pools(t)
        else:
            super()._release_custom(plane, t, rung)

    def settled(self, plane) -> bool:
        return super().settled(plane) and not plane.pools_collapsed

    def assert_reverted(self, plane) -> None:
        super().assert_reverted(plane)
        if plane.pools_collapsed:
            raise AssertionError("pools still collapsed after recovery")
