"""The cluster control plane: N replicas behind one serving front end.

The paper's Section 4 studies one slice; production PaLM-class serving
runs many slices behind a router.  :class:`ClusterControlPlane` is that
router, grown from the single-mesh resilient lifecycle (PR 2) to fleet
scope:

* **Admission** (:mod:`repro.cluster.admission`) — token buckets,
  bounded priority queues, typed rejections.  Offered load the fleet
  cannot carry is refused *explicitly*, never timed out.
* **Dispatch** — request groups go to the least-busy dispatchable
  replica whose circuit breaker admits traffic.  Heartbeats run at every
  dispatch point, so a scheduled chip kill is usually absorbed by
  proactive degraded replanning before any collective trips on it.
* **Failover** — a :class:`~repro.mesh.faults.MeshFault` mid-group marks
  the breaker, health-checks the replica (replan or ``DEAD``), and
  re-dispatches the group to another replica by re-prefilling from the
  prompts.  Greedy decoding makes the move invisible in the tokens.
* **Drain** — a *planned* removal migrates the live KV caches to the
  target replica mid-decode (:meth:`GroupRun.migrate_to`, the Section
  4.4 host-mediated transfer) and falls back to re-prefill only when
  the target's plan cannot host the batch.
* **Hedged decode** — when consecutive decode steps run slower than the
  straggler threshold, the group is re-dispatched to a second replica
  and the first completion wins; both streams are asserted bit-identical
  before the winner is taken.

Time is *virtual* throughout: every model invocation charges its
:class:`~repro.serving.resilient.CostModel` cost (scaled by replica
degradation, plus injected straggler delay); replicas run in parallel in
simulated time via per-replica ``busy_until_s``.  The attached
:class:`~repro.observability.Tracer` runs on the same virtual clock, so
a chaos run's spans and events are bit-for-bit reproducible.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.admission import (
    DEFAULT_CLASSES,
    AdmissionController,
    AdmissionError,
    CircuitBreaker,
    NoHealthyReplica,
    PriorityClass,
)
from repro.cluster.journal import (
    ControlPlaneState,
    Journal,
    JournalReplayMismatch,
    diff_states,
    replay_journal,
    token_crc,
)
from repro.cluster.replica import GroupRun, Replica, ReplicaHealth
from repro.events import (
    CONTROL_PLANE_RECOVERED,
    FAILOVER,
    FAULT_DETECTED,
    HEDGE,
    REPLICA_ADDED,
    REPLICA_REJOINED,
    REPLICA_REMOVED,
    REPLICA_RESTARTED,
    REQUEST_COMPLETED,
    REQUEST_FAILED,
    EventLog,
)
from repro.mesh.faults import FaultPlan, MeshFault, ReplicaCrashed
from repro.observability.spans import Tracer
from repro.serving.engine import Completion, Request
from repro.serving.resilient import CostModel, ResilientRequest

Coord = tuple[int, int, int]


@dataclass(frozen=True)
class ClusterPolicy:
    """Control-plane knobs: retries, hedging, breakers, overheads."""

    max_retries: int = 3               # failovers per group before FAILED
    failover_overhead_s: float = 0.05  # detect + re-dispatch cost
    drain_migrate_s: float = 0.02      # host-mediated KV transfer cost
    hedge_slowdown: float = 3.0        # observed/expected step-time ratio
    hedge_after_steps: int = 2         # consecutive slow steps to hedge
    breaker_failures: int = 3
    breaker_cooldown_s: float = 1.0
    plan_switch_s: float = 0.01        # decode-plan reshard (host-side)
    cold_restart_s: float = 0.25       # process death: re-shard + re-init
    warm_rejoin_s: float = 0.05        # journal-guided rejoin (cache inval)
    #: Age-based partial-group dispatch: a queued head older than this
    #: goes out even below ``decode_batch``.  ``None`` keeps the legacy
    #: full-groups-only behavior (mixed-length traces need the age
    #: trigger or odd-length prompts would wait for the final flush).
    max_batch_wait_s: float | None = None
    #: Prefix-affinity dispatch: route a new group to the prefill
    #: replica whose paged KV store holds the longest cached prefix of
    #: its head prompt (ties and zero matches fall back to least-busy).
    prefix_affinity: bool = True
    #: Per-replica prefix-cache capacity in pages; 0 disables the
    #: stores entirely (prefills always recompute).
    kvstore_pages: int = 256


@dataclass(frozen=True)
class ClusterSubmission:
    """One request as the front end sees it: class, deadline, arrival."""

    request: Request
    priority_class: str = "default"
    deadline_s: float | None = None
    arrival_s: float = 0.0


class ClusterRequestStatus(str, Enum):
    COMPLETED = "completed"
    REJECTED = "rejected"              # typed admission rejection
    FAILED = "failed"                  # failover budget exhausted
    DEADLINE_MISSED = "deadline_missed"


@dataclass
class ClusterOutcome:
    """Terminal record for one submission."""

    request_id: int
    status: ClusterRequestStatus
    priority_class: str
    completion: Completion | None = None
    replica: str | None = None
    arrival_s: float = 0.0
    finish_s: float = 0.0
    hedged: bool = False
    failovers: int = 0
    rejection: str | None = None       # AdmissionError subclass name
    first_token_s: float | None = None  # end of the group's prefill
    output_capped: bool = False         # brownout shortened max_new_tokens

    @property
    def ok(self) -> bool:
        return self.status is ClusterRequestStatus.COMPLETED

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> float | None:
        """Time to first token: arrival -> end of the group's prefill."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float | None:
        """Time per output token over the decode phase."""
        if self.first_token_s is None or self.completion is None:
            return None
        steps = self.completion.n_generated - 1
        if steps <= 0:
            return 0.0
        return (self.finish_s - self.first_token_s) / steps


@dataclass
class _PendingGroup:
    wrapped: list[ResilientRequest]
    submissions: list[ClusterSubmission]


class FleetConfigError(ValueError):
    """Invalid fleet topology: duplicate replica names, name/shape arity
    mismatches, empty pools, or overlapping pool membership.  Raised at
    construction time — a misconfigured fleet never serves a request —
    mirroring :class:`~repro.mesh.faults.FaultPlan`'s eager validation.
    """


@dataclass(frozen=True)
class RestartSpec:
    """Scheduled full-replica process death (a chaos fault class).

    Unlike a :class:`~repro.mesh.faults.ChipKill` — one chip fails and
    the mesh replans around it — a restart takes the whole replica
    process down at ``at_s``.  A group running there at that moment
    fails over (re-prefill elsewhere); the replica itself comes back
    after the policy's restart downtime:

    * ``mode="cold"`` — full restart: re-shard the weights, rebuild
      both phase models, empty capture caches
      (``ClusterPolicy.cold_restart_s``).
    * ``mode="warm"`` — journal-guided rejoin: the process state
      survives, only the capture caches are invalidated
      (``ClusterPolicy.warm_rejoin_s``).
    """

    at_s: float
    mode: str = "cold"

    def __post_init__(self):
        if self.mode not in ("cold", "warm"):
            raise ValueError(
                f"restart mode must be 'cold' or 'warm', got {self.mode!r}")
        if self.at_s < 0:
            raise ValueError(f"restart at_s must be >= 0, got {self.at_s}")


class _JournaledCaps(dict):
    """Brownout output caps that journal every change as a lever record.

    The autoscaler mutates ``plane.output_caps`` directly
    (``caps[name] = cap`` on the way down the ladder, ``caps.pop(name)``
    on the way back up), so journaling lives in the container rather
    than at every call site.
    """

    def __init__(self, plane: "ClusterControlPlane"):
        super().__init__()
        self._plane = plane

    def __setitem__(self, key: str, value: int) -> None:
        if self.get(key) != value:
            self._plane._journal("lever", lever="output_cap",
                                 priority_class=key, cap=value)
        super().__setitem__(key, value)

    def __delitem__(self, key: str) -> None:
        if key in self:
            self._plane._journal("lever", lever="output_cap",
                                 priority_class=key, cap=None)
        super().__delitem__(key)

    def pop(self, key: str, *default):
        if key in self:
            self._plane._journal("lever", lever="output_cap",
                                 priority_class=key, cap=None)
        return super().pop(key, *default)

    def replace_silently(self, mapping: Mapping[str, int]) -> None:
        """Crash recovery: adopt replayed caps without re-journaling."""
        super().clear()
        super().update(mapping)


class ClusterControlPlane:
    """N heterogeneous mesh replicas behind one admission front end."""

    def __init__(self, weights, shapes: Sequence[Coord], *,
                 backend: str | None = None, decode_batch: int = 4,
                 classes: Sequence[PriorityClass] = DEFAULT_CLASSES,
                 fault_plans: Mapping[int, FaultPlan] | None = None,
                 drains: Mapping[str, float] | None = None,
                 costs: CostModel | None = None,
                 policy: ClusterPolicy | None = None,
                 event_log: EventLog | None = None,
                 tracer: Tracer | None = None,
                 trace_mesh: bool = False,
                 prompt_len_hint: int = 64,
                 step_threads: int = 0,
                 autoscaler=None,
                 journal: Journal | None = None,
                 restarts: Mapping[str, RestartSpec] | None = None,
                 crash_at_s: float | None = None,
                 names: Sequence[str] | None = None):
        if not shapes:
            raise ValueError("a cluster needs at least one replica")
        if step_threads < 0:
            raise ValueError("step_threads must be >= 0")
        if names is None:
            names = [f"r{i}" for i in range(len(shapes))]
        else:
            names = list(names)
            if len(names) != len(shapes):
                raise FleetConfigError(
                    f"{len(names)} replica names for {len(shapes)} "
                    f"shapes")
            dupes = {n for n in names if names.count(n) > 1}
            if dupes:
                raise FleetConfigError(
                    f"duplicate replica names: {sorted(dupes)}")
        self.costs = costs or CostModel()
        self.policy = policy or ClusterPolicy()
        self.events = event_log if event_log is not None else EventLog()
        self.now_s = 0.0
        # The write-ahead journal records every control-plane transition
        # on the virtual clock; ``serve()`` snapshots genesis state and
        # the chaos harness asserts replay(genesis + journal) ==
        # control_state() after every run.
        self.journal = journal if journal is not None \
            else Journal(event_log=self.events)
        # The tracer runs on the control plane's virtual clock: chaos
        # runs under a fixed seed produce bit-identical span streams.
        self.tracer = tracer if tracer is not None else Tracer(
            event_log=self.events, clock=lambda: self.now_s)
        fault_plans = dict(fault_plans or {})
        self.weights = weights
        self.backend = backend
        self.trace_mesh = trace_mesh
        self.prompt_len_hint = prompt_len_hint
        self.replicas = [
            Replica(name, weights, shape, backend=backend,
                    decode_batch=decode_batch,
                    fault_plan=fault_plans.get(i), costs=self.costs,
                    event_log=self.events, tracer=self.tracer,
                    trace_mesh=trace_mesh,
                    prompt_len_hint=prompt_len_hint,
                    kvstore_pages=self.policy.kvstore_pages)
            for i, (name, shape) in enumerate(zip(names, shapes))]
        self.breakers = {
            r.name: CircuitBreaker(
                r.name, failure_threshold=self.policy.breaker_failures,
                cooldown_s=self.policy.breaker_cooldown_s,
                event_log=self.events, tracer=self.tracer)
            for r in self.replicas}
        self.admission = AdmissionController(
            tuple(classes), event_log=self.events, tracer=self.tracer)
        self.admission.journal = self.journal
        self.decode_batch = decode_batch
        self._drains = dict(drains or {})
        self._group_counter = 0
        self.hedges = 0
        self.failovers = 0
        # Crash-recovery state: scheduled replica process deaths, an
        # optional control-plane crash point, and the completion ledgers
        # whose equality with journal replay proves the journal complete.
        known = {r.name for r in self.replicas}
        restarts = dict(restarts or {})
        unknown = sorted(set(restarts) - known)
        if unknown:
            raise FleetConfigError(
                f"restart specs for unknown replicas: {unknown}")
        self._restarts = restarts
        self.crash_at_s = crash_at_s
        self._crashed = False
        self.restarts = 0
        self.recoveries = 0
        self._ledger_admitted: set[int] = set()
        self._ledger_rejected: dict[int, str] = {}
        self._ledger_completed: dict[int, tuple[int, int, bool]] = {}
        self._ledger_failed: dict[int, str] = {}
        # Autoscaler hooks (see repro.cluster.autoscaler).  The control
        # plane only provides mechanism: the fleet roster, the brownout
        # levers below, and a tick call at every virtual-clock advance.
        # Lever state lives in backing fields; the properties journal
        # every change as a typed "lever" record.
        self.autoscaler = autoscaler
        self._hedging_enabled = True             # brownout rung 1
        self.output_caps = _JournaledCaps(self)  # brownout rung 2
        self._target_profile: str | None = None  # rung 3 / plan steering
        self.retiring: set[str] = set()
        self.retired: list[Replica] = []
        self.replica_added_s = {r.name: 0.0 for r in self.replicas}
        self.replica_removed_s: dict[str, float] = {}
        self._replica_seq = len(self.replicas)
        self._running: set[str] = set()        # replicas mid-group
        self.prefill_tokens = 0
        self.decode_tokens = 0
        # Shared-page accounting: every pinned prefix (a PageLease) is
        # journaled on acquisition and on release, so the auditor can
        # prove exactly-once page lifecycle — no double free, no lease
        # leaked by a failover/drain/hedge path.
        self.kv_page_leases = 0
        self.kv_page_releases = 0
        self.kv_pages_leased = 0
        self.kv_pages_released = 0
        # Parallel replica stepping: with ``step_threads >= 1`` a hedged
        # race steps the two replicas' replay programs concurrently, one
        # pool worker per replica per tick (see :meth:`_barrier_step`).
        # 0 keeps the legacy serial path everywhere.
        self.step_threads = step_threads
        self._pool: ThreadPoolExecutor | None = None

    def _step_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.step_threads,
                thread_name_prefix="replica-step")
        return self._pool

    # -- time ---------------------------------------------------------------

    def _set_now(self, t: float) -> None:
        self.now_s = max(self.now_s, t)

    # -- journal / crash recovery -------------------------------------------

    def _journal(self, kind: str, t_s: float | None = None, **data):
        self.journal.append(kind, self.now_s if t_s is None else t_s,
                            **data)

    @property
    def hedging_enabled(self) -> bool:
        return self._hedging_enabled

    @hedging_enabled.setter
    def hedging_enabled(self, value: bool) -> None:
        if value != self._hedging_enabled:
            self._journal("lever", lever="hedging", value=value)
        self._hedging_enabled = value

    @property
    def target_profile(self) -> str | None:
        return self._target_profile

    @target_profile.setter
    def target_profile(self, value: str | None) -> None:
        if value != self._target_profile:
            self._journal("lever", lever="target_profile", value=value)
        self._target_profile = value

    def control_state(self) -> ControlPlaneState:
        """The live control-plane state, in journal-comparable form.

        Journaling is proved complete by equality:
        ``replay_journal(self.journal) == self.control_state()`` after
        every run (the chaos harness asserts it; recovery relies on it).
        The disagg-only fields fall back to their defaults on the
        colocated plane via ``getattr``.
        """
        accepting = self.admission._accepting
        return ControlPlaneState(
            journal_seq=self.journal.next_seq,
            replicas=tuple(sorted(r.name for r in self.replicas)),
            pools=tuple(sorted(getattr(self, "pool_of", {}).items())),
            retiring=tuple(sorted(self.retiring)),
            removed=tuple(sorted(self.replica_removed_s)),
            pending_drains=tuple(sorted(self._drains.items())),
            group_counter=self._group_counter,
            admitted=tuple(sorted(self._ledger_admitted)),
            rejected=tuple(sorted(self._ledger_rejected.items())),
            completed=tuple(sorted(
                (rid, crc, n, capped)
                for rid, (crc, n, capped)
                in self._ledger_completed.items())),
            failed=tuple(sorted(self._ledger_failed.items())),
            failovers=self.failovers,
            hedges=self.hedges,
            restarts=self.restarts,
            recoveries=self.recoveries,
            kv_handoffs=getattr(self, "kv_handoffs", 0),
            handoff_retries=getattr(self, "handoff_retries", 0),
            handoff_aborts=getattr(self, "handoff_aborts", 0),
            handoff_dup_drops=getattr(self, "handoff_dups_dropped", 0),
            kv_page_leases=self.kv_page_leases,
            kv_page_releases=self.kv_page_releases,
            kv_pages_leased=self.kv_pages_leased,
            kv_pages_released=self.kv_pages_released,
            hedging_enabled=self._hedging_enabled,
            output_caps=tuple(sorted(self.output_caps.items())),
            target_profile=self._target_profile,
            shed_classes=tuple(sorted(
                c for c, ok in accepting.items() if not ok)),
            pools_collapsed=getattr(self, "pools_collapsed", False),
            quarantined=tuple(sorted(getattr(self, "quarantined", ()))),
        )

    def _crash_and_recover(self, t: float) -> None:
        """Control-plane process crash, recovered by journal replay.

        The in-memory scheduling state (pending drains, retirement
        intents, brownout levers, the group counter) is wiped and
        rebuilt from ``replay_journal``; the replicas themselves survive
        — they are the data plane.  Replay is first checked bit-identical
        against the live state, so a journaling gap fails loudly here
        instead of resuming from a silently wrong state.
        """
        live = self.control_state()
        replayed = replay_journal(self.journal)
        if replayed != live:
            raise JournalReplayMismatch(
                "journal replay diverged from live control-plane "
                "state:\n  " + "\n  ".join(diff_states(replayed, live)))
        self._drains = dict(replayed.pending_drains)
        self.retiring = set(replayed.retiring)
        self._group_counter = replayed.group_counter
        self._hedging_enabled = replayed.hedging_enabled
        self._target_profile = replayed.target_profile
        self.output_caps.replace_silently(dict(replayed.output_caps))
        self.recoveries += 1
        self._journal("control_recovered", t_s=t)
        self.events.record(CONTROL_PLANE_RECOVERED, t_s=t,
                           journal_records=len(self.journal),
                           pending_drains=len(self._drains))
        self.tracer.mark("control-plane-recovered",
                         records=len(self.journal))

    # -- replica selection --------------------------------------------------

    def _heartbeat_all(self, now_s: float) -> None:
        self._fire_idle_restarts(now_s)
        for replica in self.replicas:
            replica.heartbeat(now_s)

    def _fire_idle_restarts(self, now_s: float) -> None:
        """Fire scheduled process deaths on replicas with no group.

        A restart due on a replica that is mid-group fires inside the
        group loop instead (:meth:`_maybe_crash_running`) so the group
        takes the failover path; an idle replica just bounces.
        """
        due = [name for name, spec in self._restarts.items()
               if spec.at_s <= now_s and name not in self._running]
        for name in due:
            replica = next((r for r in self.replicas
                            if r.name == name), None)
            if replica is None:
                del self._restarts[name]
                continue
            spec = self._restarts.pop(name)
            self._journal("replica_crash", t_s=now_s, replica=name,
                          mode=spec.mode, group=None)
            self.events.record(REPLICA_RESTARTED, replica=name,
                               mode=spec.mode, t_s=now_s, group=None)
            self._restart_replica(replica, now_s, spec.mode)

    def _maybe_crash_running(self, run: GroupRun, t: float,
                             gid: int) -> None:
        """Raise :class:`ReplicaCrashed` if ``run``'s replica is due to
        die at ``t`` — caught by the group loop's failover handler."""
        spec = self._restarts.get(run.replica.name)
        if spec is not None and t >= spec.at_s:
            del self._restarts[run.replica.name]
            raise ReplicaCrashed(run.replica.name, spec.mode, gid)

    def _restart_replica(self, replica: Replica, t: float,
                         mode: str) -> None:
        replica.restart(mode)
        downtime = (self.policy.cold_restart_s if mode == "cold"
                    else self.policy.warm_rejoin_s)
        ready = max(replica.busy_until_s, t) + downtime
        replica.busy_until_s = ready
        self.restarts += 1
        self._journal("replica_rejoin", t_s=t, replica=replica.name,
                      mode=mode, ready_s=ready)
        self.events.record(REPLICA_REJOINED, replica=replica.name,
                           mode=mode, t_s=t, ready_s=ready)
        self.tracer.mark(f"restart:{replica.name}", mode=mode)

    def _phase_candidates(self, phase: str) -> list[Replica]:
        """Replicas eligible to serve ``phase`` ("prefill"/"decode"/"any").

        The base plane is colocated — every replica runs both phases —
        so the phase is ignored here.  The disaggregated plane
        (:mod:`repro.cluster.disagg`) overrides this to route each phase
        to its pool.
        """
        return self.replicas

    def _pick_replica(self, now_s: float, request_id: int,
                      priority_class: str,
                      exclude: Replica | None = None,
                      phase: str = "any",
                      prompt=None) -> Replica:
        candidates = [r for r in self._phase_candidates(phase)
                      if r.dispatchable
                      and self.breakers[r.name].allow(now_s)]
        if exclude is not None and len(candidates) > 1:
            candidates = [r for r in candidates if r is not exclude]
        # A replica being scaled in takes no new groups while any other
        # candidate exists (capacity beats the scale-in intent otherwise).
        non_retiring = [r for r in candidates
                        if r.name not in self.retiring]
        if non_retiring:
            candidates = non_retiring
        if not candidates:
            raise NoHealthyReplica(
                f"no dispatchable replica at t={now_s:.4f}s "
                f"(health: {[(r.name, r.health.value) for r in self.replicas]})",
                request_id=request_id, priority_class=priority_class)
        # Prefix-affinity routing (the Mooncake recipe): among the
        # eligible replicas, prefer the ones whose paged KV store holds
        # the longest cached prefix of the group's prompt — trading
        # placement freedom for recompute savings.  ``peek`` is a pure
        # read (no pin, no LRU touch) so routing never perturbs cache
        # state; zero matches everywhere fall through to least-busy.
        if prompt is not None and self.policy.prefix_affinity and \
                len(candidates) > 1:
            matched = {r.name: (r.kvstore.peek(prompt)
                                if r.kvstore is not None else 0)
                       for r in candidates}
            best = max(matched.values())
            if best > 0:
                candidates = [r for r in candidates
                              if matched[r.name] == best]
        return min(candidates, key=lambda r: (r.busy_until_s, r.name))

    # -- fleet management (the autoscaler's levers) --------------------------

    def active_replicas(self) -> list[Replica]:
        """Dispatchable replicas not being scaled in."""
        return [r for r in self.replicas
                if r.dispatchable and r.name not in self.retiring]

    def add_replica(self, shape: Coord, now_s: float, *,
                    spinup_s: float = 0.0,
                    pool: str | None = None) -> Replica:
        """Scale out: provision one more replica on the same weights.

        The new replica becomes dispatchable after ``spinup_s`` of
        simulated provisioning (weight sharding, process start) — its
        ``busy_until_s`` models the warm-up, so the least-busy dispatch
        naturally avoids it until it is ready.  ``pool`` is recorded in
        the journal for the disaggregated plane's membership bookkeeping
        (the colocated base plane ignores it otherwise).
        """
        taken = {r.name for r in self.replicas} | \
            {r.name for r in self.retired} | set(self.replica_removed_s)
        name = f"r{self._replica_seq}"
        self._replica_seq += 1
        while name in taken:
            name = f"r{self._replica_seq}"
            self._replica_seq += 1
        replica = Replica(name, self.weights, shape,
                          backend=self.backend,
                          decode_batch=self.decode_batch,
                          costs=self.costs, event_log=self.events,
                          tracer=self.tracer, trace_mesh=self.trace_mesh,
                          prompt_len_hint=self.prompt_len_hint,
                          kvstore_pages=self.policy.kvstore_pages)
        replica.busy_until_s = now_s + spinup_s
        self.replicas.append(replica)
        self.breakers[name] = CircuitBreaker(
            name, failure_threshold=self.policy.breaker_failures,
            cooldown_s=self.policy.breaker_cooldown_s,
            event_log=self.events, tracer=self.tracer)
        self.replica_added_s[name] = now_s
        self._journal("replica_add", t_s=now_s, replica=name,
                      shape=tuple(shape), pool=pool)
        self.events.record(REPLICA_ADDED, replica=name,
                           shape=tuple(shape), t_s=now_s,
                           spinup_s=spinup_s)
        self.tracer.mark(f"scale-out:{name}", shape=tuple(shape))
        return replica

    def begin_scale_in(self, name: str, now_s: float) -> None:
        """Scale in: schedule a live drain of ``name`` and mark it
        retiring.  In-flight work migrates off via the normal drain path
        (:meth:`_maybe_drain` — KV caches move, nothing is dropped); the
        replica is actually removed by :meth:`reap_retiring` once idle.
        """
        if not any(r.name == name for r in self.replicas):
            raise ValueError(f"unknown replica {name!r}")
        self.retiring.add(name)
        self._drains[name] = now_s
        self._journal("scale_in", t_s=now_s, replica=name)

    def reap_retiring(self, now_s: float) -> list[str]:
        """Complete any scale-ins whose replicas have gone idle."""
        removed = []
        for replica in [r for r in self.replicas
                        if r.name in self.retiring]:
            name = replica.name
            if name in self._running or replica.busy_until_s > now_s:
                continue
            if name in self._drains:
                # Idle: no in-flight group will ever execute the drain,
                # so transition directly.
                del self._drains[name]
                self._journal("drain", t_s=now_s, replica=name,
                              mode="idle")
                replica.set_health(ReplicaHealth.DRAINING, now_s,
                                   "autoscale scale-in (idle)")
            if replica.health is not ReplicaHealth.DRAINING:
                # The drain was aborted (no migration target); give up
                # on this scale-in rather than wedge the replica.
                self.retiring.discard(name)
                self._journal("scale_in_abandoned", t_s=now_s,
                              replica=name)
                continue
            self.replicas.remove(replica)
            self.retired.append(replica)
            self.retiring.discard(name)
            self.replica_removed_s[name] = now_s
            self._journal("replica_remove", t_s=now_s, replica=name)
            self.events.record(REPLICA_REMOVED, replica=name, t_s=now_s)
            self.tracer.mark(f"scale-in:{name}")
            removed.append(name)
        return removed

    def fleet_chip_seconds(self, end_s: float) -> float:
        """Chip-seconds provisioned over the run (the cost denominator)."""
        total = 0.0
        for replica in list(self.replicas) + self.retired:
            start = self.replica_added_s.get(replica.name, 0.0)
            end = self.replica_removed_s.get(replica.name, end_s)
            total += max(end - start, 0.0) * replica.full_chips
        return total

    def _autoscale(self, now_s: float) -> None:
        if self.autoscaler is not None:
            self.autoscaler.maybe_tick(self, now_s)

    def _apply_profile(self, replica: Replica, t: float) -> float:
        """Steer ``replica`` to the target decode profile at dispatch.

        Plan switches happen only at group boundaries (never mid-decode,
        the KV layout must stay put) and charge ``plan_switch_s``.
        """
        desired = self.target_profile or "balanced"
        if replica.profile != desired and \
                replica.switch_profile(desired, t):
            return self.policy.plan_switch_s
        return 0.0

    # -- serving ------------------------------------------------------------

    def serve(self, submissions: Sequence[ClusterSubmission]
              ) -> list[ClusterOutcome]:
        """Admit, dispatch and complete all submissions; one outcome each.

        Submissions are processed in arrival order.  Between arrivals the
        control plane dispatches any full group that a replica could have
        started by that time — so queue occupancy (and the bounded-queue
        backpressure it triggers) reflects actual fleet saturation, not
        an artifact of batch processing.
        """
        # Genesis snapshot: replay starts here, so construction-time
        # state (initial drains, pool membership) is captured once
        # instead of journaled piecemeal.  First call wins — a second
        # serve() continues the same journal.
        self.journal.set_genesis(self.control_state())
        ordered = sorted(enumerate(submissions),
                         key=lambda pair: (pair[1].arrival_s, pair[0]))
        by_id: dict[int, ClusterOutcome] = {}
        seen: set[int] = set()
        for _, sub in ordered:
            if sub.request.request_id in seen:
                raise ValueError(
                    f"duplicate request id {sub.request.request_id}")
            seen.add(sub.request.request_id)

        for _, sub in ordered:
            self._set_now(sub.arrival_s)
            if self.crash_at_s is not None and not self._crashed and \
                    self.now_s >= self.crash_at_s:
                self._crashed = True
                self._crash_and_recover(self.now_s)
            self._autoscale(sub.arrival_s)
            self._dispatch_ready(by_id, up_to_s=sub.arrival_s)
            rid = sub.request.request_id
            try:
                self.admission.submit(sub, rid, sub.arrival_s,
                                      class_name=sub.priority_class)
                self._ledger_admitted.add(rid)
                self._journal("admit", t_s=sub.arrival_s, request_id=rid)
            except AdmissionError as exc:
                reason = type(exc).__name__
                self._ledger_rejected[rid] = reason
                self._journal("reject", t_s=sub.arrival_s,
                              request_id=rid, reason=reason)
                by_id[rid] = ClusterOutcome(
                    rid, ClusterRequestStatus.REJECTED,
                    sub.priority_class, arrival_s=sub.arrival_s,
                    finish_s=sub.arrival_s,
                    rejection=reason)
        self._dispatch_ready(by_id, up_to_s=None, flush=True)
        self._cooldown()
        return [by_id[sub.request.request_id] for sub in submissions]

    def _cooldown(self, max_ticks: int = 1000) -> None:
        """Idle the virtual clock until the autoscaler settles.

        The offered load is over but the control loop's recovery half is
        not: the brownout ladder releases only after sustained calm, and
        the surplus fleet drains back to ``min_replicas``.  Keep ticking
        over an empty backlog (pressure zero) until the autoscaler
        reports a fixed point — still purely virtual time, so the
        recovery trajectory is as deterministic as the loaded one.
        """
        self._autoscale(self.now_s)
        if self.autoscaler is None:
            return
        interval = self.autoscaler.policy.interval_s
        for _ in range(max_ticks):
            if self.autoscaler.settled(self):
                return
            self._set_now(self.now_s + interval)
            self._autoscale(self.now_s)

    def _dispatch_ready(self, by_id: dict[int, ClusterOutcome],
                        up_to_s: float | None,
                        flush: bool = False) -> None:
        """Dispatch queued groups a replica could start by ``up_to_s``."""
        while True:
            backlog = self.admission.backlog()
            if backlog == 0:
                return
            if backlog < self.decode_batch and not flush and \
                    not self._head_aged_out():
                return
            self._heartbeat_all(self.now_s)
            self._autoscale(self.now_s)
            # New groups start with prefill, so dispatch readiness is
            # judged against the replicas that could run one.
            free = [r.busy_until_s for r in self._phase_candidates("prefill")
                    if r.dispatchable]
            if up_to_s is not None and (not free or min(free) > up_to_s):
                return  # every replica still busy: backlog builds up
            # Groups are homogeneous in prompt length (the merged decode
            # batch shares one KV geometry); the head item — highest
            # priority, oldest — always defines the batch.
            subs = self.admission.next_batch(
                self.decode_batch, key=lambda s: len(s.request.prompt))
            self._run_group([s for s in subs], by_id)

    def _head_aged_out(self) -> bool:
        """Has some queue head waited past the partial-dispatch age?"""
        wait = self.policy.max_batch_wait_s
        if wait is None:
            return False
        heads = self.admission.heads()
        return bool(heads) and \
            self.now_s - min(h.arrival_s for h in heads) >= wait

    def _wrap(self, sub: ClusterSubmission
              ) -> tuple[ResilientRequest, bool]:
        """Wrap a submission, applying any brownout output cap."""
        request = sub.request
        cap = self.output_caps.get(sub.priority_class)
        capped = cap is not None and request.max_new_tokens > cap
        if capped:
            request = Request(request.request_id, request.prompt, cap)
        return ResilientRequest(request, deadline_s=sub.deadline_s), capped

    def _run_group(self, subs: list[ClusterSubmission],
                   by_id: dict[int, ClusterOutcome]) -> None:
        """Run one group to completion with failover/drain/hedge cover."""
        pairs = [self._wrap(s) for s in subs]
        wrapped = [w for w, _ in pairs]
        capped = [c for _, c in pairs]
        first_rid = subs[0].request.request_id
        first_class = subs[0].priority_class
        gid = self._group_counter
        self._group_counter += 1
        self._journal("group_start", group=gid,
                      requests=[s.request.request_id for s in subs])

        try:
            replica = self._pick_replica(self.now_s, first_rid, first_class,
                                         phase="prefill",
                                         prompt=subs[0].request.prompt)
        except NoHealthyReplica as exc:
            self._fail_group(subs, by_id, gid=gid,
                             error=type(exc).__name__, failovers=0)
            return

        attempt = 0
        hedged = False
        hedge_finish: float | None = None
        hedge_completions: list[Completion] | None = None
        hedge_replica: str | None = None
        first_token_s: float | None = None
        run = GroupRun(replica, wrapped)
        t = max(self.now_s, replica.busy_until_s)
        t += self._apply_profile(replica, t)
        self._running.add(replica.name)
        try:
            with self.tracer.region(f"group{gid}", kind="group",
                                    group=gid, replica=replica.name,
                                    requests=[s.request.request_id
                                              for s in subs]):
                while True:
                    try:
                        self._maybe_crash_running(run, t, gid)
                        if run.caches is None:
                            t += run.run_prefill()
                            self._set_now(t)
                            self._note_leases(run, t, gid)
                            self.prefill_tokens += sum(
                                len(r.prompt) for r in run.group)
                            if first_token_s is None:
                                first_token_s = t
                            # Phase boundary: the disaggregated plane's
                            # KV handoff happens here (may raise a
                            # MeshFault -> the failover path below).
                            prev_run = run
                            prev = run.replica.name
                            run, t = self._after_prefill(run, t, gid)
                            if run.replica.name != prev:
                                self._running.discard(prev)
                                self._running.add(run.replica.name)
                            if run is not prev_run:
                                # Handed off: the target holds its own
                                # copy (and adopted the shared pages);
                                # the prefill-side pins drop.
                                self._release_leases(prev_run, t, gid)
                        slow_steps = 0
                        while not run.done:
                            drained = self._maybe_drain(run, t)
                            if drained is not None:
                                self._running.discard(run.replica.name)
                                # The migrated caches carry their own
                                # prefix copy; the source's pins drop.
                                self._release_leases(run, t, gid)
                                run, t = drained
                                self._running.add(run.replica.name)
                                if run.caches is None:
                                    break  # drain fell back to re-prefill
                                continue
                            self._maybe_crash_running(run, t, gid)
                            dt = run.decode_step()
                            t += dt
                            self._set_now(t)
                            self.decode_tokens += len(run.group)
                            self._autoscale(t)
                            expected = self.costs.decode_cost_s(
                                run.replica.profile) * run.replica.scale
                            slow_steps = slow_steps + 1 \
                                if dt > self.policy.hedge_slowdown * expected \
                                else 0
                            if not hedged and self.hedging_enabled and \
                                    slow_steps >= self.policy.hedge_after_steps:
                                hedged = True
                                if self.step_threads >= 1 and \
                                        run.replica.name not in self._drains:
                                    t, result = self._race_hedge(run, t, gid)
                                else:
                                    _, result = self._try_hedge(run, t, gid)
                                if result is not None:
                                    hedge_finish, hedge_completions, \
                                        hedge_replica = result
                        if not run.done:
                            continue  # re-prefill the group on the target
                        break
                    except MeshFault as exc:
                        # A fault raised out of a parallel hedge race carries
                        # the primary's advanced clock (and the hedge's
                        # completed result, when it finished first).
                        t = getattr(exc, "race_t", t)
                        race_result = getattr(exc, "race_hedge_result", None)
                        if race_result is not None:
                            hedge_finish, hedge_completions, hedge_replica = \
                                race_result
                        t = self._on_group_fault(run.replica, exc, t)
                        attempt += 1
                        self.failovers += 1
                        self._journal("failover", t_s=t, group=gid,
                                      source=run.replica.name,
                                      error=type(exc).__name__,
                                      attempt=attempt)
                        if attempt > self.policy.max_retries:
                            self._fail_group(subs, by_id, gid=gid,
                                             error=type(exc).__name__,
                                             failovers=attempt, finish_s=t)
                            return
                        # The abandoned attempt's pins drop before the
                        # group re-prefills elsewhere (the source store
                        # may already be invalidated — stale no-ops).
                        self._release_leases(run, t, gid)
                        try:
                            target = self._pick_replica(
                                t, first_rid, first_class,
                                exclude=run.replica, phase="prefill",
                                prompt=subs[0].request.prompt)
                        except NoHealthyReplica as nhr_exc:
                            self._fail_group(subs, by_id, gid=gid,
                                             error=type(nhr_exc).__name__,
                                             failovers=attempt, finish_s=t)
                            return
                        self.events.record(
                            FAILOVER, group=gid, mode="re-prefill",
                            source=run.replica.name, target=target.name,
                            t_s=t, error=type(exc).__name__)
                        self.tracer.mark(
                            f"failover:{run.replica.name}->{target.name}",
                            group=gid, mode="re-prefill",
                            error=type(exc).__name__)
                        t = max(t + self.policy.failover_overhead_s,
                                target.busy_until_s)
                        self._running.discard(run.replica.name)
                        run = GroupRun(target, wrapped)
                        self._running.add(target.name)

                # Group decoded to completion on run.replica at time t.
                run.replica.busy_until_s = t
                self.breakers[run.replica.name].record_success(t)
                completions = run.completions()
                winner_replica = run.replica.name
                finish = t
                if hedge_finish is not None and hedge_finish < finish:
                    # The hedge won the race; streams must agree bit-for-bit.
                    self._assert_identical(completions, hedge_completions)
                    completions = hedge_completions
                    finish = hedge_finish
                    winner_replica = hedge_replica
                self._set_now(finish)
                self._complete_group(subs, completions, by_id, finish,
                                     winner_replica, gid=gid,
                                     hedged=hedged, failovers=attempt,
                                     first_token_s=first_token_s,
                                     capped=capped)
        finally:
            self._running.discard(run.replica.name)
            self._release_leases(run, t, gid)

    # -- fault / drain / hedge handling ------------------------------------

    def _after_prefill(self, run: GroupRun, t: float,
                       gid: int) -> tuple[GroupRun, float]:
        """Hook between a group's prefill and its decode loop.

        The colocated base plane decodes where it prefilled, so this is
        the identity.  The disaggregated plane overrides it to hand the
        finished KV caches to a decode-pool replica (and may raise a
        :class:`~repro.mesh.faults.MeshFault`, which the caller's
        failover handler turns into a re-prefill).
        """
        return run, t

    def _note_leases(self, run: GroupRun, t: float, gid: int) -> None:
        """Journal the page leases ``run``'s prefill just pinned.

        Called after every ``run_prefill`` site (main loop, hedges) so
        the write-ahead journal sees each lease exactly once; the
        auditor later checks each journaled lease has exactly one
        matching release record — the exactly-once ledger extended to
        shared pages.
        """
        for lease in run.leases:
            if lease.journaled:
                continue
            lease.journaled = True
            self.kv_page_leases += 1
            self.kv_pages_leased += lease.n_pages
            self._journal("page_lease", t_s=t, group=gid,
                          replica=run.replica.name,
                          lease_id=lease.lease_id,
                          pages=lease.n_pages, tokens=lease.n_tokens)

    def _release_leases(self, run: GroupRun, t: float, gid: int) -> None:
        """Unpin and journal every lease ``run`` still holds.

        Covers all terminal paths — completion, failover abandon, drain
        migration, hedge retirement, replica crash.  Release is
        idempotent and epoch-checked in the store, so a crash that
        already invalidated the store turns these into counted no-op
        (stale) releases; the journal record closes the lease either
        way, keeping the lease/release ledger balanced.
        """
        for lease in run.release_leases():
            if not lease.journaled:
                continue
            self.kv_page_releases += 1
            self.kv_pages_released += lease.n_pages
            self._journal("page_release", t_s=t, group=gid,
                          replica=run.replica.name,
                          lease_id=lease.lease_id,
                          pages=lease.n_pages)

    def _on_group_fault(self, replica: Replica, exc: MeshFault,
                        t: float) -> float:
        self.events.record(FAULT_DETECTED, replica=replica.name,
                           error=type(exc).__name__, detail=str(exc),
                           t_s=t)
        self.breakers[replica.name].record_failure(
            t, reason=type(exc).__name__)
        replica.busy_until_s = t  # partial work still occupied the slice
        if isinstance(exc, ReplicaCrashed):
            # Whole process died: no replan can save it — restart and
            # rejoin after the policy downtime.
            self._journal("replica_crash", t_s=t, replica=replica.name,
                          mode=exc.mode, group=exc.group)
            self.events.record(REPLICA_RESTARTED, replica=replica.name,
                               mode=exc.mode, t_s=t, group=exc.group)
            self._restart_replica(replica, t, exc.mode)
        else:
            replica.heartbeat(t)  # replan around dead chips, or go DEAD
        return t

    def _maybe_drain(self, run: GroupRun,
                     t: float) -> tuple[GroupRun, float] | None:
        """Execute a scheduled drain of the replica running ``run``.

        Marks the source ``DRAINING`` (out of rotation), migrates the
        live KV caches to a target replica, and falls back to re-prefill
        when the target's plan cannot host the migrated batch.
        """
        name = run.replica.name
        drain_at = self._drains.get(name)
        if drain_at is None or t < drain_at:
            return None
        del self._drains[name]
        source = run.replica
        source.set_health(ReplicaHealth.DRAINING, t,
                          "scheduled drain (planned maintenance)")
        source.busy_until_s = t
        rid = run.group[0].request_id
        try:
            target = self._pick_replica(t, rid, "default", exclude=source,
                                        phase="decode")
        except NoHealthyReplica:
            # Nowhere to go: cancel the drain and keep serving here.
            source.set_health(ReplicaHealth.DEGRADED, t,
                              "drain aborted: no target replica")
            self._journal("drain", t_s=t, replica=name, mode="aborted")
            return None
        try:
            new_run = run.migrate_to(target)
            mode = "cache-migration"
            t = max(t + self.policy.drain_migrate_s, target.busy_until_s)
        except ValueError as exc:
            new_run = GroupRun(target, run.wrapped)
            mode = "re-prefill"
            t = max(t + self.policy.failover_overhead_s,
                    target.busy_until_s)
            self.events.record(FAULT_DETECTED, replica=source.name,
                               error="CacheMigrationFailed",
                               detail=str(exc), t_s=t)
        self._journal("drain", t_s=t, replica=name, mode=mode)
        self.events.record(FAILOVER, mode=mode, source=source.name,
                           target=target.name, t_s=t, error="drain")
        self.tracer.mark(f"drain:{source.name}->{target.name}",
                         mode=mode)
        return new_run, t

    def _try_hedge(self, run: GroupRun, t: float, gid: int):
        """Dispatch a duplicate of the lagging group to a second replica.

        Returns ``(True, (finish, completions, replica) | None)``; the
        caller races the original to completion and takes the earlier
        finish.  A hedge that faults is abandoned (the original is still
        running); the breaker records the failure either way.
        """
        rid = run.group[0].request_id
        try:
            backup = self._pick_replica(t, rid, "default",
                                        exclude=run.replica, phase="decode")
        except NoHealthyReplica:
            return True, None  # nobody to hedge to; don't retry the check
        if backup is run.replica:
            return True, None
        self.hedges += 1
        self._journal("hedge", t_s=t, group=gid,
                      source=run.replica.name, target=backup.name)
        self.events.record(HEDGE, group=gid, source=run.replica.name,
                           target=backup.name, t_s=t)
        self.tracer.mark(f"hedge:{run.replica.name}->{backup.name}",
                         group=gid)
        hedge_run = GroupRun(backup, run.wrapped)
        bt = max(t, backup.busy_until_s)
        self._running.add(backup.name)
        try:
            bt += hedge_run.run_prefill()
            self._note_leases(hedge_run, bt, gid)
            while not hedge_run.done:
                bt += hedge_run.decode_step()
        except MeshFault as exc:
            self._on_group_fault(backup, exc, bt)
            return True, None
        finally:
            self._running.discard(backup.name)
            self._release_leases(hedge_run, bt, gid)
        backup.busy_until_s = bt
        self.breakers[backup.name].record_success(bt)
        return True, (bt, hedge_run.completions(), backup.name)

    def _barrier_step(self, runs: Sequence[GroupRun]) -> list:
        """One lockstep decode tick over independent replicas' runs.

        All bookkeeping — fault-clock advance, program-cache lookup,
        sampling, virtual-time charge — happens on this thread in list
        order; only the pure compute thunks go to the pool, one worker
        per replica, joined before anything later commits.  Each run's
        entry in the result is its simulated step cost, or the
        :class:`MeshFault` its compute raised.
        """
        thunks = [run.begin_decode_step() for run in runs]
        futures = [self._step_pool().submit(thunk) for thunk in thunks]
        results = []
        for run, future in zip(runs, futures):
            try:
                results.append(run.finish_decode_step(future.result()))
            except MeshFault as exc:
                results.append(exc)
        return results

    def _race_hedge(self, run: GroupRun, t: float,
                    gid: int) -> tuple[float, tuple | None]:
        """Hedged decode with parallel replica stepping.

        The ``step_threads >= 1`` counterpart of :meth:`_try_hedge`:
        after the hedge's prefill, the primary's and the hedge's replay
        programs step *concurrently*, one lockstep tick at a time, until
        the hedge completes or dies; a primary remainder continues in
        the caller's loop.  Every clock is per-replica and every commit
        happens on the control-plane thread in a fixed order, so tokens,
        virtual times and the chaos report match the serial path
        bit-for-bit.  Returns ``(advanced_primary_clock, result)``; a
        primary fault is re-raised with that clock (and any completed
        hedge result) attached for the caller's failover handler.
        """
        rid = run.group[0].request_id
        try:
            backup = self._pick_replica(t, rid, "default",
                                        exclude=run.replica, phase="decode")
        except NoHealthyReplica:
            return t, None  # nobody to hedge to; don't retry the check
        if backup is run.replica:
            return t, None
        self.hedges += 1
        self._journal("hedge", t_s=t, group=gid,
                      source=run.replica.name, target=backup.name)
        self.events.record(HEDGE, group=gid, source=run.replica.name,
                           target=backup.name, t_s=t)
        self.tracer.mark(f"hedge:{run.replica.name}->{backup.name}",
                         group=gid)
        hedge_run = GroupRun(backup, run.wrapped)
        bt = max(t, backup.busy_until_s)
        self._running.add(backup.name)
        try:
            try:
                bt += hedge_run.run_prefill()
                self._note_leases(hedge_run, bt, gid)
            except MeshFault as exc:
                self._on_group_fault(backup, exc, bt)
                return t, None
            primary_exc: MeshFault | None = None
            hedge_alive = True
            while hedge_alive and not hedge_run.done:
                if primary_exc is not None or run.done:
                    # Primary out of the race: drain the hedge serially,
                    # exactly as the serial path would have run it.
                    try:
                        bt += hedge_run.decode_step()
                    except MeshFault as exc:
                        self._on_group_fault(backup, exc, bt)
                        hedge_alive = False
                    continue
                primary_dt, hedge_dt = self._barrier_step([run, hedge_run])
                if isinstance(primary_dt, MeshFault):
                    primary_exc = primary_dt
                else:
                    t += primary_dt
                    self._set_now(t)
                if isinstance(hedge_dt, MeshFault):
                    self._on_group_fault(backup, hedge_dt, bt)
                    hedge_alive = False
                else:
                    bt += hedge_dt
            result = None
            if hedge_alive:
                backup.busy_until_s = bt
                self.breakers[backup.name].record_success(bt)
                result = (bt, hedge_run.completions(), backup.name)
            if primary_exc is not None:
                primary_exc.race_t = t
                if result is not None:
                    primary_exc.race_hedge_result = result
                raise primary_exc
            return t, result
        finally:
            self._running.discard(backup.name)
            self._release_leases(hedge_run, bt, gid)

    @staticmethod
    def _assert_identical(a: Sequence[Completion],
                          b: Sequence[Completion]) -> None:
        for left, right in zip(a, b):
            if left.request_id != right.request_id or \
                    not np.array_equal(left.tokens, right.tokens):
                raise AssertionError(
                    f"hedged streams diverged for request "
                    f"{left.request_id}: greedy decode must be "
                    f"replica-invariant")

    # -- outcome bookkeeping ------------------------------------------------

    def _complete_group(self, subs, completions, by_id, finish_s: float,
                        replica: str, *, gid: int, hedged: bool,
                        failovers: int,
                        first_token_s: float | None = None,
                        capped: Sequence[bool] | None = None) -> None:
        capped = capped or [False] * len(subs)
        entries = []
        for sub, completion, was_capped in zip(subs, completions, capped):
            rid = sub.request.request_id
            crc = token_crc(completion.tokens)
            n_tokens = int(len(completion.tokens))
            entries.append((rid, crc, n_tokens, was_capped))
            self._ledger_completed[rid] = (crc, n_tokens, was_capped)
            met = sub.deadline_s is None or finish_s <= sub.deadline_s
            status = (ClusterRequestStatus.COMPLETED if met
                      else ClusterRequestStatus.DEADLINE_MISSED)
            outcome = ClusterOutcome(
                rid, status, sub.priority_class, completion=completion,
                replica=replica, arrival_s=sub.arrival_s,
                finish_s=finish_s, hedged=hedged, failovers=failovers,
                first_token_s=first_token_s, output_capped=was_capped)
            by_id[rid] = outcome
            self.events.record(REQUEST_COMPLETED, request_id=rid,
                               t_s=finish_s, replica=replica,
                               met_deadline=met, hedged=hedged,
                               failovers=failovers,
                               priority_class=sub.priority_class,
                               ttft_s=outcome.ttft_s,
                               tpot_s=outcome.tpot_s,
                               n_tokens=completion.n_generated,
                               output_capped=was_capped)
        self._journal("group_complete", t_s=finish_s, group=gid,
                      replica=replica, entries=entries)

    def _fail_group(self, subs, by_id, *, gid: int, error: str,
                    failovers: int,
                    finish_s: float | None = None) -> None:
        finish = self.now_s if finish_s is None else finish_s
        rids = [sub.request.request_id for sub in subs]
        self._journal("group_fail", t_s=finish, group=gid,
                      requests=rids, reason=error)
        for sub in subs:
            rid = sub.request.request_id
            self._ledger_failed[rid] = error
            by_id[rid] = ClusterOutcome(
                rid, ClusterRequestStatus.FAILED, sub.priority_class,
                arrival_s=sub.arrival_s, finish_s=finish,
                failovers=failovers, rejection=error)
            self.events.record(REQUEST_FAILED, request_id=rid,
                               retries=failovers, error=error)
