"""Admission control for the cluster front end.

Production serving never lets offered load hit the accelerators raw: a
front-end *admission controller* decides, per request, whether capacity
exists — and rejects with an explicit, typed error when it does not, so
clients can back off instead of timing out.  Three mechanisms compose:

* **Token-bucket rate limiting** per :class:`PriorityClass` — sustained
  rate plus a burst allowance, refilled on the cluster's *virtual*
  clock, so chaos scenarios exercise it deterministically.
* **Bounded queues with backpressure** — each class has a queue depth
  limit; a full queue rejects (:class:`QueueFull`) rather than growing
  without bound.  Dequeue order is strict priority, FIFO within class.
* **Per-replica circuit breakers** — consecutive
  :class:`~repro.mesh.faults.MeshFault`\\ s open the breaker (dispatch
  stops), a cooldown later it half-opens and admits one probe; a probe
  success closes it, a probe failure re-opens it.

Every rejection and every breaker transition is recorded in the
:class:`~repro.events.EventLog` and (when a tracer is attached) as a
zero-duration observability mark, so shed load is as visible as served
load.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable

from repro.events import (
    ADMISSION_LIMITS_CHANGED,
    ADMISSION_REJECTED,
    BREAKER_TRANSITION,
    REQUEST_ADMITTED,
    EventLog,
)


class AdmissionError(RuntimeError):
    """Base class for typed admission rejections (never a timeout)."""

    def __init__(self, message: str, *, request_id: int,
                 priority_class: str):
        super().__init__(message)
        self.request_id = request_id
        self.priority_class = priority_class


class RateLimited(AdmissionError):
    """The class's token bucket is empty: offered rate exceeds the limit."""


class QueueFull(AdmissionError):
    """The class's bounded queue is at capacity: backpressure."""


class NoHealthyReplica(AdmissionError):
    """Dispatch found no replica both healthy and breaker-admissible."""


class ClassShed(AdmissionError):
    """The class is temporarily shed (brownout); re-offer after recovery.

    Raised only for *new* submissions while :meth:`AdmissionController.
    set_limits` has marked the class non-accepting — requests already in
    the queue are never evicted."""


@dataclass(frozen=True)
class PriorityClass:
    """One traffic class: its rate limit, burst and queue bound.

    ``priority`` orders dispatch (lower value wins); ``rate``/``burst``
    parameterize the token bucket; ``queue_limit`` bounds the backlog.
    """

    name: str
    priority: int = 0
    rate: float = 100.0          # sustained admissions per second
    burst: int = 16              # bucket capacity (instantaneous burst)
    queue_limit: int = 64        # bounded backlog

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}")


#: Default single-class policy: generous limits, mostly a pass-through.
DEFAULT_CLASSES = (PriorityClass("default"),)


class TokenBucket:
    """Deterministic token bucket on an externally-supplied clock."""

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = burst
        self.level = float(burst)
        self._last_s = 0.0

    def try_take(self, now_s: float) -> bool:
        """Refill to ``now_s`` and take one token if available."""
        if now_s > self._last_s:
            self.level = min(self.burst,
                             self.level + (now_s - self._last_s) * self.rate)
            self._last_s = now_s
        if self.level >= 1.0:
            self.level -= 1.0
            return True
        return False


class AdmissionController:
    """Token buckets + bounded priority queues over the virtual clock."""

    def __init__(self, classes=DEFAULT_CLASSES,
                 event_log: EventLog | None = None, tracer=None):
        self.classes = {c.name: c for c in classes}
        if len(self.classes) != len(classes):
            raise ValueError("duplicate priority class names")
        self.events = event_log if event_log is not None else EventLog()
        self.tracer = tracer
        self._buckets = {c.name: TokenBucket(c.rate, c.burst)
                         for c in classes}
        self._queues: dict[str, deque] = {c.name: deque() for c in classes}
        self._accepting = {c.name: True for c in classes}
        self.admitted = 0
        self.rejected: dict[str, int] = {}
        # Write-ahead journal hook: the control plane points this at its
        # Journal so accept/shed flips replay after a crash (the
        # rate/burst knobs only shape future admissions, which are
        # journaled individually — the accept flag is the one piece of
        # *state* here).
        self.journal = None

    def _reject(self, error_cls, message: str, request_id: int,
                class_name: str) -> AdmissionError:
        error = error_cls(message, request_id=request_id,
                          priority_class=class_name)
        self.rejected[error_cls.__name__] = \
            self.rejected.get(error_cls.__name__, 0) + 1
        self.events.record(ADMISSION_REJECTED, request_id=request_id,
                           priority_class=class_name,
                           error=error_cls.__name__, detail=message)
        if self.tracer is not None:
            self.tracer.mark(f"reject:{error_cls.__name__}",
                             request_id=request_id,
                             priority_class=class_name)
        return error

    def submit(self, item, request_id: int, now_s: float,
               class_name: str = "default") -> None:
        """Admit ``item`` into its class queue or raise a typed rejection.

        ``item`` is opaque to the controller (the control plane enqueues
        its wrapped requests); ``request_id`` is only used for the event
        record and the error payload.
        """
        cls = self.classes.get(class_name)
        if cls is None:
            raise ValueError(f"unknown priority class {class_name!r}; "
                             f"have {sorted(self.classes)}")
        if not self._accepting[class_name]:
            raise self._reject(
                ClassShed,
                f"class {class_name!r} is shed (brownout) at "
                f"t={now_s:.4f}s",
                request_id, class_name)
        if not self._buckets[class_name].try_take(now_s):
            raise self._reject(
                RateLimited,
                f"class {class_name!r} over its {cls.rate:g}/s rate "
                f"(burst {cls.burst}) at t={now_s:.4f}s",
                request_id, class_name)
        queue = self._queues[class_name]
        if len(queue) >= cls.queue_limit:
            raise self._reject(
                QueueFull,
                f"class {class_name!r} queue at its bound "
                f"{cls.queue_limit} at t={now_s:.4f}s",
                request_id, class_name)
        queue.append(item)
        self.admitted += 1
        self.events.record(REQUEST_ADMITTED, request_id=request_id,
                           priority_class=class_name, t_s=now_s)

    def backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def backlog_per_class(self) -> dict[str, int]:
        """Queue depth per class (every class, zeros included)."""
        return {name: len(q) for name, q in self._queues.items()}

    def heads(self) -> list:
        """Head item of each non-empty queue, in strict priority order.

        The first entry is exactly what the next :meth:`next_batch` call
        will dequeue first; the control plane peeks it to age-trigger
        partial-group dispatch.
        """
        return [self._queues[cls.name][0]
                for cls in self._ordered_classes()
                if self._queues[cls.name]]

    def _ordered_classes(self) -> list[PriorityClass]:
        return sorted(self.classes.values(),
                      key=lambda c: (c.priority, c.name))

    def next_batch(self, max_items: int,
                   key: Callable | None = None) -> list:
        """Dequeue up to ``max_items`` in strict priority order.

        FIFO within a class; a higher-priority class always drains
        before a lower one (priority inversion is the chaos scenarios'
        job to disprove).

        With ``key``, the batch is additionally *homogeneous* under
        ``key(item)`` — the control plane batches by prompt length so
        every group can merge its KV caches.  The key of the overall
        head item (highest priority, oldest) defines the batch, so
        keying never starves a higher-priority class; non-matching
        items are left queued in their original order.
        """
        out: list = []
        batch_key = None
        for cls in self._ordered_classes():
            queue = self._queues[cls.name]
            skipped = []
            while queue and len(out) < max_items:
                item = queue.popleft()
                if key is not None:
                    item_key = key(item)
                    if not out:
                        batch_key = item_key
                    elif item_key != batch_key:
                        skipped.append(item)
                        continue
                out.append(item)
            for item in reversed(skipped):
                queue.appendleft(item)
            if len(out) >= max_items:
                break
        return out

    def set_limits(self, class_name: str, *, rate: float | None = None,
                   burst: int | None = None,
                   queue_limit: int | None = None,
                   accept: bool | None = None, now_s: float = 0.0,
                   reason: str = "") -> None:
        """Retune one class's limits mid-run, without losing anything.

        Tightening applies to *future* submissions only: items already
        queued are never evicted (they were admitted under the old
        contract), and a queue above a lowered ``queue_limit`` simply
        drains without accepting new entries.  ``accept=False`` sheds
        the class entirely (new submissions raise :class:`ClassShed`)
        until a later ``accept=True`` — the brownout ladder's last rung.
        Every change is a typed :data:`~repro.events.
        ADMISSION_LIMITS_CHANGED` event.
        """
        cls = self.classes.get(class_name)
        if cls is None:
            raise ValueError(f"unknown priority class {class_name!r}; "
                             f"have {sorted(self.classes)}")
        updates = {}
        if rate is not None:
            updates["rate"] = rate
        if burst is not None:
            updates["burst"] = burst
        if queue_limit is not None:
            updates["queue_limit"] = queue_limit
        if updates:
            self.classes[class_name] = replace(cls, **updates)
            bucket = self._buckets[class_name]
            if rate is not None:
                bucket.rate = rate
            if burst is not None:
                bucket.burst = burst
                bucket.level = min(bucket.level, float(burst))
        if accept is not None:
            changed = self._accepting[class_name] != accept
            self._accepting[class_name] = accept
            if changed and self.journal is not None:
                self.journal.append("limits", now_s,
                                    priority_class=class_name,
                                    accept=accept)
        self.events.record(
            ADMISSION_LIMITS_CHANGED, priority_class=class_name,
            t_s=now_s, accept=self._accepting[class_name],
            reason=reason, **updates)


class BreakerState(str, Enum):
    CLOSED = "closed"          # normal dispatch
    OPEN = "open"              # failures tripped it; no dispatch
    HALF_OPEN = "half_open"    # cooldown elapsed; one probe allowed


class CircuitBreaker:
    """Per-replica breaker: open on consecutive faults, probe to close."""

    def __init__(self, name: str, *, failure_threshold: int = 3,
                 cooldown_s: float = 1.0,
                 event_log: EventLog | None = None, tracer=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.events = event_log if event_log is not None else EventLog()
        self.tracer = tracer
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._opened_at_s = 0.0

    def _transition(self, state: BreakerState, now_s: float,
                    reason: str) -> None:
        if state is self.state:
            return
        old, self.state = self.state, state
        self.events.record(BREAKER_TRANSITION, breaker=self.name,
                           old=old.value, new=state.value, t_s=now_s,
                           reason=reason)
        if self.tracer is not None:
            self.tracer.mark(f"breaker:{self.name}:{state.value}",
                             old=old.value, new=state.value,
                             reason=reason)

    def allow(self, now_s: float) -> bool:
        """May a request be dispatched through this breaker at ``now_s``?

        In ``OPEN``, cooldown expiry transitions to ``HALF_OPEN`` and the
        answer becomes yes — but exactly as a probe: the next recorded
        failure re-opens immediately, a success closes.
        """
        if self.state is BreakerState.OPEN:
            if now_s - self._opened_at_s >= self.cooldown_s:
                self._transition(BreakerState.HALF_OPEN, now_s,
                                 f"cooldown {self.cooldown_s:g}s elapsed")
            else:
                return False
        return True

    def record_success(self, now_s: float) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED, now_s, "probe succeeded")

    def record_failure(self, now_s: float, reason: str = "") -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN or \
                self.consecutive_failures >= self.failure_threshold:
            self._opened_at_s = now_s
            self._transition(
                BreakerState.OPEN, now_s,
                reason or f"{self.consecutive_failures} consecutive "
                          f"failures")
