"""Invariant auditor: certify a run from its journal.

After any cluster run — chaotic or not — the auditor replays the
write-ahead journal (:mod:`repro.cluster.journal`) and checks the
invariants the control plane promises:

* **Conservation** — every admitted request reaches exactly one
  terminal state (completed *or* failed with a typed reason), no
  request completes twice (checked against the raw ``group_complete``
  records, not just the folded set), and no rejected request was also
  admitted.
* **Exactly-once KV handoff** — per dispatch group, at most one
  ``handoff_commit``; every commit is preceded by a
  ``handoff_prepare``; an ``handoff_abort`` is only legal after the
  retry budget (``handoff_retry`` records) was spent.
* **Exactly-once page leases** — every journaled cached-prefix pin
  (``page_lease``, one per replica/lease id) has exactly one matching
  ``page_release`` with the same page count: no lease leaked by a
  failover/drain/hedge path, no page double-freed.
* **Bit-identity** — when the fault-free oracle's token streams are
  supplied, every completed request's journaled ``token_crc`` must
  match the oracle (capped streams against the oracle's greedy prefix).
* **Reconstruction** — when the live final state is supplied, replay
  must reproduce it bit-identically.

A truncated journal is refused outright: the per-record checks above
need the full stream, so a journal that dropped records cannot certify
anything (replay from a covering snapshot may still *recover*, but
recovery and certification are different promises).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.journal import (
    ControlPlaneState,
    Journal,
    JournalTruncated,
    diff_states,
    replay_journal,
    token_crc,
)


@dataclass
class AuditReport:
    """Outcome of one audit: certified or a list of typed violations."""

    certified: bool
    violations: list[str] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)


def audit_run(journal: Journal, *,
              final_state: ControlPlaneState | None = None,
              reference: Mapping[int, object] | None = None
              ) -> AuditReport:
    """Replay ``journal`` and check the control-plane invariants.

    ``final_state`` is the live plane's ``control_state()`` — supplied,
    the reconstruction check runs.  ``reference`` maps request id to
    the fault-free oracle's token array — supplied, completed streams
    are checked bit-identical (capped streams against the prefix).
    """
    violations: list[str] = []

    if journal.truncated:
        return AuditReport(
            certified=False,
            violations=[f"journal truncated: {journal.truncated} "
                        f"records dropped; a partial journal cannot "
                        f"certify anything"],
            counters={"records": len(journal.records),
                      "truncated": journal.truncated})

    try:
        state = replay_journal(journal)
    except (JournalTruncated, ValueError) as exc:
        return AuditReport(certified=False,
                           violations=[f"replay failed: {exc}"],
                           counters={"records": len(journal.records)})

    if final_state is not None and state != final_state:
        for line in diff_states(state, final_state):
            violations.append(f"replay mismatch: {line}")

    # --- conservation -----------------------------------------------------
    admitted = set(state.admitted)
    completed = {rid for rid, _, _, _ in state.completed}
    failed = {rid for rid, _ in state.failed}
    rejected = {rid for rid, _ in state.rejected}

    for rid in sorted(admitted - completed - failed):
        violations.append(f"request {rid} admitted but never reached a "
                          f"terminal state")
    for rid in sorted((completed | failed) - admitted):
        violations.append(f"request {rid} reached a terminal state "
                          f"without being admitted")
    for rid in sorted(completed & failed):
        violations.append(f"request {rid} both completed and failed")
    for rid in sorted(rejected & admitted):
        violations.append(f"request {rid} both rejected and admitted")

    seen_complete: dict[int, int] = {}
    for record in journal.of_kind("group_complete"):
        for rid, _, _, _ in record["entries"]:
            seen_complete[rid] = seen_complete.get(rid, 0) + 1
    for rid, count in sorted(seen_complete.items()):
        if count > 1:
            violations.append(f"request {rid} completed {count} times")

    # --- exactly-once KV handoff ------------------------------------------
    prepared = {r["group"] for r in journal.of_kind("handoff_prepare")}
    commits: dict[int, int] = {}
    for record in journal.of_kind("handoff_commit"):
        gid = record["group"]
        commits[gid] = commits.get(gid, 0) + 1
        if gid not in prepared:
            violations.append(f"group {gid} committed a KV handoff "
                              f"without a prepare record")
    for gid, count in sorted(commits.items()):
        if count > 1:
            violations.append(f"group {gid} committed a KV handoff "
                              f"{count} times (pages delivered twice)")
    retries: dict[int, int] = {}
    for record in journal.of_kind("handoff_retry"):
        gid = record["group"]
        retries[gid] = retries.get(gid, 0) + 1
    for record in journal.of_kind("handoff_abort"):
        gid = record["group"]
        budget = record.get("budget")
        if gid in commits:
            violations.append(f"group {gid} both committed and aborted "
                              f"its KV handoff")
        if budget is not None and retries.get(gid, 0) < budget:
            violations.append(
                f"group {gid} aborted its KV handoff after only "
                f"{retries.get(gid, 0)} of {budget} budgeted retries")

    # --- exactly-once page leases ------------------------------------------
    leased: dict[tuple[str, int], int] = {}
    for record in journal.of_kind("page_lease"):
        key = (record["replica"], record["lease_id"])
        if key in leased:
            violations.append(f"page lease {key[1]} on {key[0]} "
                              f"journaled twice")
        leased[key] = record["pages"]
    released: dict[tuple[str, int], int] = {}
    for record in journal.of_kind("page_release"):
        key = (record["replica"], record["lease_id"])
        if key in released:
            violations.append(f"page lease {key[1]} on {key[0]} "
                              f"released twice (double free)")
        released[key] = record["pages"]
        if key not in leased:
            violations.append(f"page release {key[1]} on {key[0]} "
                              f"without a lease record")
        elif leased[key] != record["pages"]:
            violations.append(
                f"page lease {key[1]} on {key[0]} pinned "
                f"{leased[key]} pages but released {record['pages']}")
    for key in sorted(set(leased) - set(released)):
        violations.append(f"page lease {key[1]} on {key[0]} never "
                          f"released (pages pinned forever)")

    # --- bit-identity vs the fault-free oracle ----------------------------
    if reference is not None:
        for rid, crc, n_tokens, capped in state.completed:
            if rid not in reference:
                violations.append(f"request {rid} completed but the "
                                  f"oracle has no stream for it")
                continue
            ref_tokens = reference[rid]
            expect = token_crc(ref_tokens[:n_tokens]) if capped \
                else token_crc(ref_tokens)
            if not capped and n_tokens != len(ref_tokens):
                violations.append(
                    f"request {rid} completed {n_tokens} tokens; the "
                    f"oracle produced {len(ref_tokens)}")
            elif crc != expect:
                violations.append(
                    f"request {rid} token stream diverged from the "
                    f"fault-free oracle (crc {crc:#010x} != "
                    f"{expect:#010x})")

    counters = {
        "records": len(journal.records),
        "admitted": len(admitted),
        "completed": len(completed),
        "failed": len(failed),
        "rejected": len(rejected),
        "handoff_commits": len(commits),
        "handoff_retries": state.handoff_retries,
        "handoff_aborts": state.handoff_aborts,
        "handoff_dup_drops": state.handoff_dup_drops,
        "page_leases": state.kv_page_leases,
        "page_releases": state.kv_page_releases,
        "restarts": state.restarts,
        "recoveries": state.recoveries,
    }
    return AuditReport(certified=not violations, violations=violations,
                       counters=counters)


def format_audit(report: AuditReport) -> str:
    """Human-readable audit summary for the CLI."""
    lines = []
    verdict = "CERTIFIED" if report.certified else "VIOLATIONS"
    lines.append(f"audit: {verdict}")
    for name, value in sorted(report.counters.items()):
        lines.append(f"  {name:<18} {value}")
    for violation in report.violations:
        lines.append(f"  ! {violation}")
    return "\n".join(lines)
