"""Command-line interface: ``repro-inference <subcommand>``.

Subcommands mirror the library's main entry points:

* ``estimate`` — latency/MFU/cost breakdown of one operating point.
* ``plan`` — the analytical layout selection for a workload (Section 4.1).
* ``sweep`` — the Pareto frontier over batch and chips (Figure 1).
* ``max-context`` — Table 1's memory-limited context lengths.
* ``simulate`` — discrete-event simulation of one forward pass, with
  optional chrome-trace export.
* ``serve`` — request-level queueing simulation under Poisson traffic.
* ``fault-sim`` — the same simulation under an MTBF-driven chip-failure
  process: goodput, p99 latency and availability (docs/fault_tolerance.md).
* ``disaggregate`` — size the §4.4 prefill-server → decode-server pipeline.
* ``mesh-bench`` — time the loop vs stacked virtual-mesh backends on a
  real decode workload; ``--capture`` times eager vs captured-replay
  decode steps instead (see docs/mesh_backends.md).
* ``chaos`` — seeded chaos scenarios against the multi-replica cluster
  control plane: availability, goodput and p99 per scenario, typed
  shed-load counts, bit-identity vs. the reference (docs/cluster.md).
* ``trace`` — Perfetto/Chrome trace of one decode step: the analytical
  simulator's schedule for model presets, the *executed* span stream
  of a tiny model on the virtual mesh (docs/observability.md), or a
  chaos run's cluster span stream (``--mode cluster``).
* ``metrics`` — per-phase/per-layer communication and roofline metrics of
  an executed virtual-mesh workload; ``--crosscheck`` prints the
  estimator vs. executed-trace event-match table.
* ``calibrate`` — the Table 2 calibration report (and optional refit).

Examples::

    repro-inference estimate --model palm-540b --chips 64 --batch 64 \\
        --phase decode --context 2048 --int8
    repro-inference sweep --model palm-62b --phase decode
    repro-inference max-context --model palm-540b --batch 128
    repro-inference simulate --model palm-540b --chips 64 --batch 512 \\
        --trace /tmp/step.json
"""

from __future__ import annotations

import argparse
import sys

from repro.hardware import TPU_V4, default_slice_shape, get_chip
from repro.model import MODEL_PRESETS, PALM_540B, get_model
from repro.partitioning.selector import (
    Phase,
    SelectionContext,
    select_plan,
)
from repro.perf import InferenceEstimator, pareto_frontier, sweep_decode
from repro.perf.memory import table1_max_context
from repro.perf.pareto import sweep_prefill
from repro.partitioning import AttentionLayoutKind


def _resolve_model(name: str):
    """Model + the padded serving variant + MFU normalization params."""
    config = get_model(name)
    if name == "palm-540b":
        # Serve the padded variant (Section 4); count MFU on true 540B.
        return get_model("palm-540b-pad64"), PALM_540B.n_params
    return config, None


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="palm-540b",
                        choices=sorted(MODEL_PRESETS),
                        help="model preset")
    parser.add_argument("--chip", default="tpu-v4",
                        help="chip preset (tpu-v4, a100-80gb)")
    parser.add_argument("--int8", action="store_true",
                        help="int8 weights (default bfloat16)")


def cmd_estimate(args) -> int:
    config, mfu_params = _resolve_model(args.model)
    torus = default_slice_shape(args.chips)
    phase = Phase(args.phase)
    ctx = SelectionContext(config, torus, phase, args.batch,
                           args.seq_len if phase is Phase.PREFILL else 1)
    plan = select_plan(ctx)
    estimator = InferenceEstimator(
        config, get_chip(args.chip), torus,
        weight_dtype_bytes=1 if args.int8 else 2, mfu_params=mfu_params)
    if phase is Phase.PREFILL:
        cost = estimator.prefill_cost(plan, args.batch, args.seq_len)
        headline = f"prefill of {args.seq_len} tokens: {cost.time_s:.3f} s"
    else:
        cost = estimator.decode_step_cost(plan, args.batch, args.context)
        headline = (f"decode step at context {args.context}: "
                    f"{cost.time_s * 1e3:.1f} ms/token")
    print(f"{config.name} on {args.chips} x {args.chip} ({torus}), "
          f"batch {args.batch}, {'int8' if args.int8 else 'bf16'} weights")
    print(f"plan: {plan.describe()}")
    print(headline)
    print(f"  compute {cost.compute_s * 1e3:9.2f} ms")
    print(f"  weights {cost.weight_load_s * 1e3:9.2f} ms   "
          f"kv-cache {cost.kv_load_s * 1e3:.2f} ms")
    print(f"  comm    {cost.comm_s * 1e3:9.2f} ms "
          f"({cost.comm_exposed_s * 1e3:.2f} exposed)")
    print(f"  MFU {cost.mfu:.1%}   cost "
          f"{cost.cost_chip_seconds_per_token * 1e3:.3f} chip-ms/token")
    return 0


def cmd_plan(args) -> int:
    config, _ = _resolve_model(args.model)
    torus = default_slice_shape(args.chips)
    phase = Phase(args.phase)
    ctx = SelectionContext(config, torus, phase, args.batch,
                           args.seq_len if phase is Phase.PREFILL else 1)
    plan = select_plan(ctx)
    print(f"{config.name}, {args.chips} chips ({torus}), batch "
          f"{args.batch}, {phase.value}: {plan.describe()}")
    return 0


def cmd_sweep(args) -> int:
    config, mfu_params = _resolve_model(args.model)
    sweep = sweep_decode if args.phase == "decode" else sweep_prefill
    kwargs = (dict(context_len=args.context, gen_len=64)
              if args.phase == "decode" else dict(input_len=args.seq_len))
    points = sweep(config, get_chip(args.chip),
                   weight_dtype_bytes=1 if args.int8 else 2,
                   mfu_params=mfu_params, **kwargs)
    frontier = pareto_frontier(points)
    print(f"{config.name} {args.phase} Pareto frontier "
          f"({'int8' if args.int8 else 'bf16'}):")
    print(f"{'chips':>6s} {'batch':>6s} {'layout':32s} {'latency':>10s} "
          f"{'chip-ms/tok':>12s} {'MFU':>7s}")
    for p in frontier:
        latency = (f"{p.latency_s * 1e3:8.1f}ms" if args.phase == "decode"
                   else f"{p.latency_s:9.2f}s")
        print(f"{p.n_chips:>6d} {p.batch:>6d} {p.plan.describe():32s} "
              f"{latency:>10s} "
              f"{p.cost_chip_seconds_per_token * 1e3:12.3f} {p.mfu:7.1%}")
    return 0


def cmd_max_context(args) -> int:
    config, _ = _resolve_model(args.model)
    chip = get_chip(args.chip)
    print(f"max context for {config.name}, {args.chips} chips, batch "
          f"{args.batch} (30% of HBM for KV):")
    for label, layout in (("sharded over heads", AttentionLayoutKind.HEAD),
                          ("sharded over batch",
                           AttentionLayoutKind.BATCH)):
        try:
            value = table1_max_context(config, layout, chip, args.chips,
                                       args.batch)
            print(f"  {label:20s} {value:>10,d} tokens")
        except ValueError as exc:
            print(f"  {label:20s} n/a ({exc})")
    return 0


def cmd_simulate(args) -> int:
    from repro.partitioning import FfnLayoutKind, LayoutPlan
    from repro.simulator import (
        BuildSpec,
        build_forward_program,
        simulate,
        write_chrome_trace,
    )

    config, _ = _resolve_model(args.model)
    torus = default_slice_shape(args.chips)
    plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH
                      if args.batch >= 4 else AttentionLayoutKind.HEAD)
    spec = BuildSpec(config, plan, torus, get_chip(args.chip),
                     batch=args.batch, l_new=1,
                     context_before=args.context,
                     weight_dtype_bytes=1 if args.int8 else 2,
                     overlap=not args.no_overlap)
    result = simulate(build_forward_program(spec))
    print(f"simulated decode step: {result.makespan * 1e3:.2f} ms "
          f"(overlap {'off' if args.no_overlap else 'on'})")
    for resource in ("mxu", "hbm", "ici"):
        utilization = result.utilization(resource)
        print(f"  {resource} utilization {utilization:.1%}")
    if args.trace:
        write_chrome_trace(result, args.trace)
        print(f"  chrome trace written to {args.trace}")
    return 0


def cmd_serve(args) -> int:
    from repro.partitioning import FfnLayoutKind, LayoutPlan
    from repro.serving.simulation import (
        ServerConfig,
        WorkloadSpec,
        poisson_arrivals,
        simulate_serving,
    )

    config, mfu_params = _resolve_model(args.model)
    torus = default_slice_shape(args.chips)
    estimator = InferenceEstimator(
        config, get_chip(args.chip), torus,
        weight_dtype_bytes=1 if args.int8 else 2, mfu_params=mfu_params)
    server = ServerConfig(
        max_batch=args.max_batch, max_wait_s=args.max_wait,
        prefill_plan=LayoutPlan(FfnLayoutKind.WS_2D,
                                AttentionLayoutKind.HEAD),
        decode_plan=LayoutPlan(FfnLayoutKind.WS_2D,
                               AttentionLayoutKind.BATCH))
    workload = WorkloadSpec(input_len=args.seq_len, gen_len=args.gen_len)
    arrivals = poisson_arrivals(args.rate, args.duration, seed=args.seed)
    report = simulate_serving(estimator, server, workload, arrivals)
    print(f"{config.name} on {args.chips} chips: {args.rate:g} req/s "
          f"for {args.duration:g}s ({report.completed} requests)")
    print(f"  p50 latency {report.latency_percentile(50):7.2f} s")
    print(f"  p95 latency {report.latency_percentile(95):7.2f} s")
    print(f"  mean batch  {report.mean_batch:7.1f}")
    print(f"  utilization {report.utilization:7.1%}")
    return 0


def cmd_fault_sim(args) -> int:
    from repro.partitioning import FfnLayoutKind, LayoutPlan
    from repro.serving.simulation import (
        FaultModel,
        ServerConfig,
        WorkloadSpec,
        poisson_arrivals,
        simulate_serving_under_faults,
    )

    config, mfu_params = _resolve_model(args.model)
    torus = default_slice_shape(args.chips)
    estimator = InferenceEstimator(
        config, get_chip(args.chip), torus,
        weight_dtype_bytes=1 if args.int8 else 2, mfu_params=mfu_params)
    server = ServerConfig(
        max_batch=args.max_batch, max_wait_s=args.max_wait,
        prefill_plan=LayoutPlan(FfnLayoutKind.WS_2D,
                                AttentionLayoutKind.HEAD),
        decode_plan=LayoutPlan(FfnLayoutKind.WS_2D,
                               AttentionLayoutKind.BATCH))
    workload = WorkloadSpec(input_len=args.seq_len, gen_len=args.gen_len)
    arrivals = poisson_arrivals(args.rate, args.duration, seed=args.seed)
    faults = FaultModel(mtbf_s=args.mtbf, replan_s=args.replan_s,
                        recovery_s=args.recovery_s,
                        degraded_factor=args.degraded_factor,
                        seed=args.seed)
    report = simulate_serving_under_faults(
        estimator, server, workload, arrivals, faults,
        deadline_s=args.deadline)
    print(f"{config.name} on {args.chips} chips: {args.rate:g} req/s for "
          f"{args.duration:g}s, MTBF {args.mtbf:g}s"
          + (f", deadline {args.deadline:g}s" if args.deadline else ""))
    print(f"  failures    {report.failures:7d}   "
          f"downtime {report.downtime_s:8.1f} s")
    print(f"  completed   {report.completed:7d}   "
          f"retried {report.retried_requests:5d}  "
          f"shed {report.shed_requests:5d}  "
          f"dropped {report.dropped_requests:5d}")
    if report.completed:
        print(f"  p50 latency {report.latency_percentile(50):7.2f} s   "
              f"p99 {report.latency_percentile(99):7.2f} s")
    print(f"  goodput     {report.goodput_rps:7.2f} req/s "
          f"(in-deadline completions)")
    print(f"  availability {report.availability:6.1%}")
    return 0


def cmd_disaggregate(args) -> int:
    from repro.partitioning import FfnLayoutKind, LayoutPlan
    from repro.perf.disaggregation import size_pipeline, turn_latency

    config, mfu_params = _resolve_model(args.model)
    torus = default_slice_shape(args.chips)
    est = InferenceEstimator(
        config, get_chip(args.chip), torus,
        weight_dtype_bytes=1 if args.int8 else 2, mfu_params=mfu_params)
    plan = size_pipeline(
        est, est,
        LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD),
        LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH),
        input_len=args.seq_len, gen_len=args.gen_len,
        decode_batch=args.decode_batch)
    print(f"{config.name}, {args.chips}-chip prefill and decode servers, "
          f"{args.seq_len}-in/{args.gen_len}-out:")
    print(f"  batch-1 prefill: "
          f"{plan.prefill_seconds_per_request * 1e3:8.1f} ms/request")
    print(f"  batch-{plan.decode_batch} decode: "
          f"{plan.decode_seconds_per_request * 1e3:8.1f} ms/request")
    print(f"  prefill replicas per decode server: "
          f"{plan.prefill_replicas}")
    print(f"  pipeline throughput: {plan.requests_per_second:.1f} req/s "
          f"(bottleneck: {plan.bottleneck})")
    print(f"  unloaded turn latency: {turn_latency(plan):.2f} s")
    return 0


def _mesh_shape(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(n) for n in text.split("x"))
    except ValueError:
        shape = ()
    if len(shape) != 3 or min(shape) < 1:
        raise argparse.ArgumentTypeError(
            f"mesh shape must look like 2x2x4, got {text!r}")
    return shape


def cmd_mesh_bench(args) -> int:
    from repro.mesh.bench import (
        CAPTURE_BATCH,
        CAPTURE_V2_SHAPES,
        MESH_SHAPES,
        compare_backends,
        compare_capture,
        compare_capture_v2,
        format_capture_table,
        format_capture_v2_table,
        format_table,
    )

    shapes = tuple(args.shapes) if args.shapes else MESH_SHAPES
    backends = ("loop", "stacked") if args.backend == "both" \
        else (args.backend,)
    if args.capture_v2:
        v2_shapes = tuple(args.shapes) if args.shapes else CAPTURE_V2_SHAPES
        batch = args.batch if args.batch is not None else CAPTURE_BATCH
        sections = compare_capture_v2(v2_shapes, batch=batch,
                                      reps=args.reps, backends=backends)
        print(format_capture_v2_table(sections))
        rows = sections["fused"] + sections["prefill"]
        return 0 if all(r["bit_identical"] for r in rows) else 1
    if args.capture:
        batch = args.batch if args.batch is not None else CAPTURE_BATCH
        rows = compare_capture(shapes, steps=args.steps, batch=batch,
                               reps=args.reps, backends=backends)
        print(format_capture_table(rows))
        return 0 if all(r["bit_identical"] for r in rows) else 1
    batch = args.batch if args.batch is not None else 64
    rows = compare_backends(shapes, steps=args.steps, batch=batch,
                            reps=args.reps, backends=backends)
    print(format_table(rows))
    return 0


def _executed_workload(topology, backend, batch, steps, seed=0):
    """Run the shared decode workload with tracing on; returns the tracer.

    The workload is :mod:`repro.mesh.bench`'s deep-narrow decode model
    (divisible on every mesh up to 4x4x4) under the weight-gathered
    layout — the most communication-heavy regime, so traces show every
    span kind.
    """
    import numpy as np

    from repro.layouts import ShardedTransformer
    from repro.mesh import VirtualMesh
    from repro.mesh.bench import decode_config
    from repro.model import init_weights
    from repro.partitioning import FfnLayoutKind, LayoutPlan

    config = decode_config()
    mesh = VirtualMesh(topology, backend=backend)
    tracer = mesh.install_tracer()
    plan = LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH)
    model = ShardedTransformer(init_weights(config, seed=seed), mesh, plan)
    prompt = np.random.default_rng(seed + 1).integers(
        0, config.vocab_size, size=(batch, 4))
    tracer.clear()  # weight placement, not the workload
    _, caches = model.prefill(prompt, 4 + steps)
    token = prompt[:, -1]
    for _ in range(steps):
        token = np.argmax(model.decode_step(token, caches), -1)
    return tracer


def cmd_chaos(args) -> int:
    import json

    from repro.cluster import SCENARIOS, format_report, run_scenario
    from repro.observability import spans_to_chrome_trace

    names = sorted(SCENARIOS) if args.scenario == "all" \
        else [args.scenario]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown chaos scenario {unknown[0]!r}; have "
                         f"{sorted(SCENARIOS)} or 'all'")
    backends = ("loop", "stacked") if args.backend == "both" \
        else (args.backend,)
    all_ok = True
    last_report = None
    for backend in backends:
        for name in names:
            report = run_scenario(name, backend=backend, seed=args.seed)
            last_report = report
            print(format_report(report))
            print()
            all_ok = all_ok and report.ok
    if args.trace and last_report is not None:
        trace = spans_to_chrome_trace(last_report.spans,
                                      process_name="cluster")
        with open(args.trace, "w") as f:
            json.dump(trace, f)
        print(f"cluster span trace ({len(trace['traceEvents'])} events) "
              f"written to {args.trace}")
    return 0 if all_ok else 1


#: The crash-recovery chaos scenarios the ``recovery`` CI job gates on.
RECOVERY_SCENARIOS = ("control-plane-crash-mid-drain", "pool-partition",
                      "restart-storm", "prefill-kill-mid-handoff")


def cmd_recovery(args) -> int:
    import json

    from repro.cluster import SCENARIOS, format_report, run_scenario

    names = list(RECOVERY_SCENARIOS) if args.scenario == "all" \
        else [args.scenario]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown recovery scenario {unknown[0]!r}; "
                         f"have {list(RECOVERY_SCENARIOS)} or 'all'")
    backends = ("loop", "stacked") if args.backend == "both" \
        else (args.backend,)
    seeds = [int(s) for s in args.seeds.split(",")]
    all_ok = True
    runs = []
    for backend in backends:
        for seed in seeds:
            for name in names:
                report = run_scenario(name, backend=backend, seed=seed)
                print(format_report(report))
                print()
                all_ok = all_ok and report.ok
                runs.append({
                    "scenario": name, "backend": backend, "seed": seed,
                    "ok": report.ok, "violations": report.violations,
                    "replay_matches": report.replay_matches,
                    "audit_certified": report.audit_certified,
                    "audit_violations": report.audit_violations,
                    "journal_records": report.journal_records,
                    "journal_truncated": report.journal_truncated,
                    "restarts": report.restarts,
                    "recoveries": report.recoveries,
                    "quarantines": report.quarantines,
                    "kv_handoffs": report.kv_handoffs,
                    "handoff_retries": report.handoff_retries,
                    "handoff_aborts": report.handoff_aborts,
                    "handoff_dup_drops": report.handoff_dup_drops,
                    "journal": report.journal_dump,
                })
    print(f"recovery: {len(runs)} runs, "
          f"{sum(1 for r in runs if r['ok'])} ok")
    if args.json:
        doc = {"ok": all_ok, "runs": runs}
        with open(args.json, "w") as f:
            json.dump(doc, f, indent=2,
                      default=lambda o: o.item()
                      if hasattr(o, "item") else str(o))
            f.write("\n")
        print(f"recovery journal + audit artifact written to {args.json}")
    return 0 if all_ok else 1


def cmd_autoscale(args) -> int:
    import json

    from repro.cluster import TRACES
    from repro.cluster.bench import autoscale_bench

    traces = tuple(sorted(TRACES)) if args.trace == "all" \
        else (args.trace,)
    unknown = [t for t in traces if t not in TRACES]
    if unknown:
        raise SystemExit(f"unknown trace {unknown[0]!r}; have "
                         f"{sorted(TRACES)} or 'all'")
    doc = autoscale_bench(backend=args.backend, seed=args.seed,
                          traces=traces,
                          check_determinism=not args.no_determinism)
    for row in doc["traces"]:
        print(f"trace {row['trace']} [backend={row['backend']} "
              f"seed={row['seed']}]")
        print(f"  goodput {row['goodput_tok_s']:.1f} tok/s over "
              f"{row['makespan_s']:.2f} s; cost "
              f"{row['cost_chip_s_per_token']} chip-s/token "
              f"(fleet {row['chip_seconds']:.1f} chip-s, static "
              f"{row['static_chip_seconds']:.1f})")
        for name, cls in row["classes"].items():
            print(f"  {name}: ttft p50 {cls['ttft_p50_s'] * 1e3:.0f} ms "
                  f"p99 {cls['ttft_p99_s'] * 1e3:.0f} ms, tpot p50 "
                  f"{cls['tpot_p50_s'] * 1e3:.0f} ms p99 "
                  f"{cls['tpot_p99_s'] * 1e3:.0f} ms, goodput "
                  f"{cls['goodput']}/{cls['completed']}")
        print(f"  fleet: +{row['replicas_added']}/"
              f"-{row['replicas_removed']} replicas, "
              f"{row['plan_switches']} plan switches, brownout "
              f"{' -> '.join(row['brownout_steps']) or '(never)'}")
        print(f"  bit-identical vs static fleet: "
              f"{'yes' if row['bit_identical_vs_static'] else 'NO'}")
        print()
    for violation in doc["violations"]:
        print(f"VIOLATION: {violation}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"autoscale bench written to {args.json}")
    return 0 if doc["ok"] else 1


def cmd_disagg(args) -> int:
    import json

    from repro.cluster.bench import disagg_bench

    doc = disagg_bench(backend=args.backend, seed=args.seed,
                       check_determinism=not args.no_determinism)
    for row in doc["traces"]:
        d, c = row["disagg"], row["colocated"]
        gate = "gated" if row["goodput_gated"] else "informational"
        print(f"trace {row['trace']} [backend={row['backend']} "
              f"seed={row['seed']}] ({gate})")
        print(f"  disagg:    interactive {d['interactive_goodput_tok_s']:.1f} "
              f"tok/s, total {d['goodput_tok_s']:.1f} tok/s over "
              f"{d['makespan_s']:.2f} s on {d['chips']} chips")
        print(f"  colocated: interactive {c['interactive_goodput_tok_s']:.1f} "
              f"tok/s, total {c['goodput_tok_s']:.1f} tok/s over "
              f"{c['makespan_s']:.2f} s on {c['chips']} chips")
        print(f"  handoffs: {d['kv_handoffs']} "
              f"({d['kv_handoff_bytes']} B, "
              f"{d['handoff_transfer_s'] * 1e6:.1f} us on the link), "
              f"{d['handoffs_colocated']} decoded in place")
        print(f"  bit-identical vs colocated fleet: "
              f"{'yes' if row['bit_identical_vs_colocated'] else 'NO'}")
        print()
    for violation in doc["violations"]:
        print(f"VIOLATION: {violation}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"disagg bench written to {args.json}")
    return 0 if doc["ok"] else 1


def cmd_trace(args) -> int:
    import json

    mode = args.mode
    if mode == "auto":
        mode = "executed" if args.preset == "tiny" else "simulated"
    if mode == "cluster":
        from repro.cluster import run_scenario
        from repro.observability import spans_to_chrome_trace

        report = run_scenario(args.scenario, backend=args.backend,
                              seed=args.seed)
        trace = spans_to_chrome_trace(
            report.spans, process_name=f"cluster-{args.scenario}")
        source = (f"cluster chaos scenario {args.scenario!r} "
                  f"({report.n_spans} spans, {report.n_events} events)")
    elif mode == "simulated":
        if args.preset == "tiny":
            raise SystemExit("the tiny preset has no analytical model; "
                             "use --mode executed")
        from repro.hardware.topology import Torus3D
        from repro.partitioning import FfnLayoutKind, LayoutPlan
        from repro.simulator import (
            BuildSpec,
            build_forward_program,
            simulate,
            to_chrome_trace,
        )

        config, _ = _resolve_model(args.preset)
        torus = Torus3D(*args.topology)
        plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.BATCH
                          if args.batch >= 4 else AttentionLayoutKind.HEAD)
        spec = BuildSpec(config, plan, torus, get_chip(args.chip),
                         batch=args.batch, l_new=1,
                         context_before=args.context,
                         weight_dtype_bytes=1 if args.int8 else 2)
        result = simulate(build_forward_program(spec))
        trace = to_chrome_trace(result, process_name=f"{config.name}-chip0")
        source = (f"simulated decode step of {config.name} on "
                  f"{'x'.join(map(str, args.topology))}")
    else:
        from repro.observability import spans_to_chrome_trace

        tracer = _executed_workload(args.topology, args.backend,
                                    args.batch_exec, args.steps)
        trace = spans_to_chrome_trace(
            tracer.spans,
            process_name=f"virtual-mesh-"
                         f"{'x'.join(map(str, args.topology))}")
        source = (f"executed {len(tracer.spans)}-span workload on the "
                  f"{args.backend} backend")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(trace, f)
        print(f"{source}: {len(trace['traceEvents'])} trace events "
              f"written to {args.out}")
    else:
        json.dump(trace, sys.stdout)
        print()
    return 0


def _capture_workload(topology, backend, batch, steps, seed=0):
    """Run the shared decode workload through a StepCompiler.

    Same model and layout as :func:`_executed_workload`, but decode goes
    through the capture-and-replay driver so the program-cache counters
    (hits, misses, evictions, per-reason invalidations) reflect a real
    serving loop: warmup, one capture, then replays.
    """
    import numpy as np

    from repro.layouts import ShardedTransformer
    from repro.mesh import VirtualMesh
    from repro.mesh.bench import decode_config
    from repro.mesh.capture import StepCompiler
    from repro.model import init_weights
    from repro.partitioning import FfnLayoutKind, LayoutPlan

    config = decode_config()
    mesh = VirtualMesh(topology, backend=backend)
    plan = LayoutPlan(FfnLayoutKind.WG_XY, AttentionLayoutKind.BATCH)
    model = ShardedTransformer(init_weights(config, seed=seed), mesh, plan)
    prompt = np.random.default_rng(seed + 1).integers(
        0, config.vocab_size, size=(batch, 4))
    compiler = StepCompiler(batch_bucket=batch)
    _, caches = model.prefill(prompt, 4 + steps)
    token = prompt[:, -1]
    for _ in range(steps):
        token = np.argmax(
            compiler.decode_step(model, token, caches), -1)
    return compiler


def _kvstore_workload(topology, backend, seed=0):
    """Run two shared-prefix prefills through a paged KV store.

    The second prompt repeats the first's 8-token prefix, so the radix
    index serves two pages from cache and only the suffix is computed —
    the counters show a real hit/miss mix rather than a cold store.
    """
    import numpy as np

    from repro.kvstore import KVStore
    from repro.layouts import ShardedTransformer
    from repro.mesh import VirtualMesh
    from repro.mesh.bench import decode_config
    from repro.model import init_weights
    from repro.partitioning import FfnLayoutKind, LayoutPlan
    from repro.serving.chunked import chunked_prefill

    config = decode_config()
    mesh = VirtualMesh(topology, backend=backend)
    # Weight-stationary FFN + head-sharded attention: the store installs
    # single-request prompts, which a batch-sharded KV layout cannot
    # hold on a multi-chip mesh.
    plan = LayoutPlan(FfnLayoutKind.WS_2D, AttentionLayoutKind.HEAD)
    model = ShardedTransformer(init_weights(config, seed=seed), mesh, plan)
    store = KVStore(page_tokens=4, capacity_pages=32, name="cli")
    rng = np.random.default_rng(seed + 2)
    shared = rng.integers(0, config.vocab_size, size=8)
    for _ in range(2):
        suffix = rng.integers(0, config.vocab_size, size=4)
        prompt = np.concatenate([shared, suffix])[None, :]
        chunked_prefill(model, prompt, 4, prompt.shape[1] + 1,
                        kvstore=store)
        reuse = store.take_last_reuse()
        if reuse is not None and reuse.lease is not None:
            reuse.lease.release()
    return store


def cmd_metrics(args) -> int:
    from repro.observability import (
        format_capture_stats,
        format_kvstore_stats,
        format_layer_metrics,
        format_phase_metrics,
    )

    tracer = _executed_workload(args.topology, args.backend, args.batch,
                                args.steps)
    print(format_phase_metrics(tracer.spans))
    print()
    print(format_layer_metrics(tracer.spans, "decode"))
    compiler = _capture_workload(args.topology, args.backend, args.batch,
                                 args.steps)
    print()
    print(format_capture_stats(compiler.stats()))
    store = _kvstore_workload(args.topology, args.backend)
    print()
    print(format_kvstore_stats(store.stats()))
    if args.crosscheck:
        from repro.observability import crosscheck

        print()
        print("Estimator vs. executed-trace crosscheck "
              f"(mesh {'x'.join(map(str, crosscheck.MESH_SHAPE))}):")
        checks = crosscheck.run_crosscheck()
        print(crosscheck.format_table(checks))
        if not all(c.ok for c in checks):
            return 1
    return 0


def cmd_calibrate(args) -> int:
    from repro.perf.calibrate import calibrate, report

    print("Table 2 anchors under the shipped efficiency defaults:")
    print(report())
    if args.refit:
        best, value = calibrate(sweeps=args.sweeps)
        print(f"\nrefit objective: {value:.4f}")
        print(report(best))
        for name in ("flops_efficiency", "rows_half_peak",
                     "overlap_fraction", "per_layer_overhead"):
            print(f"  {name} = {getattr(best, name):.6g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-inference",
        description=__doc__.split("\n\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("estimate", help="cost breakdown of one point")
    _add_common(p)
    p.add_argument("--chips", type=int, default=64)
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--phase", choices=["prefill", "decode"],
                   default="decode")
    p.add_argument("--context", type=int, default=2048)
    p.add_argument("--seq-len", type=int, default=2048)
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("plan", help="analytical layout selection")
    _add_common(p)
    p.add_argument("--chips", type=int, default=64)
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--phase", choices=["prefill", "decode"],
                   default="decode")
    p.add_argument("--seq-len", type=int, default=2048)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("sweep", help="Pareto frontier (Figure 1)")
    _add_common(p)
    p.add_argument("--phase", choices=["prefill", "decode"],
                   default="decode")
    p.add_argument("--context", type=int, default=2048)
    p.add_argument("--seq-len", type=int, default=2048)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("max-context", help="Table 1 memory limits")
    _add_common(p)
    p.add_argument("--chips", type=int, default=64)
    p.add_argument("--batch", type=int, default=128)
    p.set_defaults(func=cmd_max_context)

    p = sub.add_parser("simulate", help="discrete-event simulation")
    _add_common(p)
    p.add_argument("--chips", type=int, default=64)
    p.add_argument("--batch", type=int, default=512)
    p.add_argument("--context", type=int, default=2048)
    p.add_argument("--no-overlap", action="store_true",
                   help="disable Looped-CollectiveEinsum overlap")
    p.add_argument("--trace", help="write a chrome trace JSON here")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("serve", help="request-level queueing simulation")
    _add_common(p)
    p.add_argument("--chips", type=int, default=64)
    p.add_argument("--rate", type=float, default=4.0,
                   help="Poisson arrival rate, requests/second")
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--max-wait", type=float, default=0.2)
    p.add_argument("--seq-len", type=int, default=64)
    p.add_argument("--gen-len", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("fault-sim",
                       help="queueing simulation under chip failures")
    _add_common(p)
    p.add_argument("--chips", type=int, default=64)
    p.add_argument("--rate", type=float, default=4.0,
                   help="Poisson arrival rate, requests/second")
    p.add_argument("--duration", type=float, default=600.0)
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--max-wait", type=float, default=0.2)
    p.add_argument("--seq-len", type=int, default=64)
    p.add_argument("--gen-len", type=int, default=64)
    p.add_argument("--mtbf", type=float, default=120.0,
                   help="mean time between chip failures, seconds")
    p.add_argument("--replan-s", type=float, default=2.0,
                   help="downtime per failure (detect + replan)")
    p.add_argument("--recovery-s", type=float, default=60.0,
                   help="time until the slice is repaired to full size")
    p.add_argument("--degraded-factor", type=float, default=1.5,
                   help="service-time multiplier while degraded")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline for goodput/shedding")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fault_sim)

    p = sub.add_parser("disaggregate",
                       help="size the prefill->decode pipeline (Sec. 4.4)")
    _add_common(p)
    p.add_argument("--chips", type=int, default=64)
    p.add_argument("--seq-len", type=int, default=2048)
    p.add_argument("--gen-len", type=int, default=64)
    p.add_argument("--decode-batch", type=int, default=64)
    p.set_defaults(func=cmd_disaggregate)

    p = sub.add_parser("mesh-bench",
                       help="loop vs stacked mesh backend decode timing")
    p.add_argument("--backend", choices=["loop", "stacked", "both"],
                   default="both")
    p.add_argument("--shapes", nargs="*", metavar="AxBxC",
                   type=_mesh_shape,
                   help="mesh shapes to time, e.g. 2x2x2 4x4x4 "
                        "(default: the full 1..64-chip ladder)")
    p.add_argument("--steps", type=int, default=4,
                   help="decode steps per timed repetition")
    p.add_argument("--batch", type=int, default=None,
                   help="decode batch (default: 64, or 16 with --capture "
                        "— the latency-oriented decode point)")
    p.add_argument("--reps", type=int, default=3,
                   help="repetitions (best is reported)")
    p.add_argument("--capture", action="store_true",
                   help="time eager vs captured-replay decode steps "
                        "instead of loop vs stacked (exits nonzero if "
                        "replay is not bit-identical)")
    p.add_argument("--capture-v2", action="store_true",
                   help="time the capture-v2 paths: fused multi-step "
                        "decode vs single-step replay, prefill-chunk "
                        "replay vs eager, and the program-cache hit "
                        "rate on a shrinking continuous batch (exits "
                        "nonzero if any replay is not bit-identical)")
    p.set_defaults(func=cmd_mesh_bench)

    p = sub.add_parser("trace",
                       help="Perfetto/Chrome trace of one decode step")
    p.add_argument("--preset", default="palm-540b",
                   choices=sorted(MODEL_PRESETS) + ["tiny"],
                   help="model preset, or 'tiny' (executable proxy)")
    p.add_argument("--topology", type=_mesh_shape, default=(4, 4, 4),
                   metavar="AxBxC", help="torus shape, e.g. 4x4x4")
    p.add_argument("--mode",
                   choices=["auto", "simulated", "executed", "cluster"],
                   default="auto",
                   help="auto: simulated for model presets, executed "
                        "for tiny; cluster: span stream of a chaos "
                        "scenario run")
    p.add_argument("--scenario", default="rolling-kill",
                   help="chaos scenario for --mode cluster")
    p.add_argument("--seed", type=int, default=0,
                   help="chaos seed for --mode cluster")
    p.add_argument("--chip", default="tpu-v4")
    p.add_argument("--int8", action="store_true")
    p.add_argument("--batch", type=int, default=512,
                   help="batch for the simulated schedule")
    p.add_argument("--context", type=int, default=2048)
    p.add_argument("--backend", choices=["loop", "stacked"],
                   default="stacked",
                   help="mesh backend for executed traces")
    p.add_argument("--batch-exec", type=int, default=64,
                   help="batch for the executed workload")
    p.add_argument("--steps", type=int, default=2,
                   help="decode steps in the executed workload")
    p.add_argument("--out", help="write the trace JSON here "
                                 "(default: stdout)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("chaos",
                       help="seeded cluster chaos scenarios "
                            "(docs/cluster.md)")
    p.add_argument("--scenario", default="all",
                   help="scenario name, or 'all' (rolling-kill, "
                        "planned-drain, correlated-stragglers, "
                        "overload-burst, breaker-flap)")
    p.add_argument("--backend", choices=["loop", "stacked", "both"],
                   default="loop", help="mesh execution backend")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (the run is a pure function of "
                        "scenario, backend and seed)")
    p.add_argument("--trace", help="write the last run's cluster span "
                                   "trace JSON here")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("recovery",
                       help="crash-recovery chaos: journal replay, "
                            "transactional KV handoff, restart storms "
                            "(docs/fault_tolerance.md)")
    p.add_argument("--scenario", default="all",
                   help="one of the recovery scenarios, or 'all' "
                        "(control-plane-crash-mid-drain, pool-partition, "
                        "restart-storm, prefill-kill-mid-handoff)")
    p.add_argument("--backend", choices=["loop", "stacked", "both"],
                   default="both", help="mesh execution backend")
    p.add_argument("--seeds", default="0,1,7",
                   help="comma-separated workload seeds")
    p.add_argument("--json", help="write the journal + audit artifact "
                                  "JSON here")
    p.set_defaults(func=cmd_recovery)

    p = sub.add_parser("autoscale",
                       help="trace-driven autoscale benchmark "
                            "(goodput, per-class SLO latency, cost)")
    p.add_argument("--trace", default="all",
                   help="trace name or 'all' (default)")
    p.add_argument("--backend", default="loop",
                   choices=["loop", "stacked"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", help="write BENCH_autoscale-style JSON here")
    p.add_argument("--no-determinism", action="store_true",
                   help="skip the re-run determinism check (faster)")
    p.set_defaults(func=cmd_autoscale)

    p = sub.add_parser("disagg",
                       help="disaggregated prefill/decode pools vs the "
                            "equal-chip colocated fleet (KV handoff)")
    p.add_argument("--backend", default="loop",
                   choices=["loop", "stacked"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", help="write BENCH_disagg-style JSON here")
    p.add_argument("--no-determinism", action="store_true",
                   help="skip the re-run determinism check (faster)")
    p.set_defaults(func=cmd_disagg)

    p = sub.add_parser("metrics",
                       help="per-phase/per-layer executed mesh metrics")
    p.add_argument("--topology", type=_mesh_shape, default=(2, 2, 2),
                   metavar="AxBxC")
    p.add_argument("--backend", choices=["loop", "stacked"],
                   default="stacked")
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--steps", type=int, default=2)
    p.add_argument("--crosscheck", action="store_true",
                   help="also run the estimator vs. executed-trace "
                        "event-match suite")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("calibrate",
                       help="Table 2 calibration report / refit")
    p.add_argument("--refit", action="store_true",
                   help="run the coordinate-descent refit")
    p.add_argument("--sweeps", type=int, default=2)
    p.set_defaults(func=cmd_calibrate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
